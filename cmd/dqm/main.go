// Command dqm runs the paper's four-step data quality requirements
// methodology and prints its documents.
//
// With no flags it runs the built-in trading application (the paper's
// Figures 3-5). A JSON elicitation spec can be supplied with -spec to run
// the methodology on any application; see the Spec type for the format.
//
//	dqm                     # full requirements document for the trading app
//	dqm -render fig3        # just the application view
//	dqm -render fig4        # parameter view
//	dqm -render fig5        # quality view
//	dqm -render schema      # integrated quality schema + compiled relations
//	dqm -render taxonomy    # Figure 1
//	dqm -render appendix    # Appendix A candidate list
//	dqm -spec app.json      # run on a custom elicitation spec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/value"
)

// Spec is the JSON elicitation format consumed by -spec.
type Spec struct {
	Application struct {
		Name     string `json:"name"`
		Entities []struct {
			Name  string `json:"name"`
			Attrs []struct {
				Name        string `json:"name"`
				Kind        string `json:"kind"`
				Identifying bool   `json:"identifying"`
			} `json:"attrs"`
		} `json:"entities"`
		Relationships []struct {
			Name  string `json:"name"`
			Left  string `json:"left"`
			Right string `json:"right"`
			Attrs []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"attrs"`
		} `json:"relationships"`
	} `json:"application"`
	Parameters []struct {
		Element    string `json:"element"`
		Parameter  string `json:"parameter"`
		Inspection bool   `json:"inspection"`
		Rationale  string `json:"rationale"`
	} `json:"parameters"`
	Choices []struct {
		Element    string `json:"element"`
		Parameter  string `json:"parameter"`
		Indicators []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
			Doc  string `json:"doc"`
		} `json:"indicators"`
	} `json:"choices"`
	// AppRelevant lists indicator names the integrator should suggest
	// promoting to application attributes (Premise 1.1).
	AppRelevant []string `json:"app_relevant"`
}

func pipelineFromSpec(raw []byte) (*core.Pipeline, error) {
	var spec Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("dqm: parsing spec: %w", err)
	}
	app := er.NewModel(spec.Application.Name)
	for _, e := range spec.Application.Entities {
		ent := &er.Entity{Name: e.Name}
		for _, a := range e.Attrs {
			k, err := value.ParseKind(a.Kind)
			if err != nil {
				return nil, fmt.Errorf("dqm: entity %s: %w", e.Name, err)
			}
			ent.Attrs = append(ent.Attrs, er.Attribute{Name: a.Name, Kind: k, Identifying: a.Identifying})
		}
		app.AddEntity(ent)
	}
	for _, r := range spec.Application.Relationships {
		rel := &er.Relationship{Name: r.Name, Left: r.Left, Right: r.Right,
			LeftCard: er.Many, RightCard: er.Many}
		for _, a := range r.Attrs {
			k, err := value.ParseKind(a.Kind)
			if err != nil {
				return nil, fmt.Errorf("dqm: relationship %s: %w", r.Name, err)
			}
			rel.Attrs = append(rel.Attrs, er.Attribute{Name: a.Name, Kind: k})
		}
		app.AddRelationship(rel)
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	var step2 core.Step2Input
	for _, p := range spec.Parameters {
		ref, err := er.ParseElementRef(p.Element)
		if err != nil {
			return nil, err
		}
		step2.Parameters = append(step2.Parameters, core.ParameterAnnotation{
			Element: ref, Parameter: p.Parameter, Inspection: p.Inspection, Rationale: p.Rationale,
		})
	}
	var step3 core.Step3Input
	for _, c := range spec.Choices {
		ref, err := er.ParseElementRef(c.Element)
		if err != nil {
			return nil, err
		}
		choice := core.OperationalizationChoice{Element: ref, Parameter: c.Parameter}
		for _, ind := range c.Indicators {
			k, err := value.ParseKind(ind.Kind)
			if err != nil {
				return nil, fmt.Errorf("dqm: choice %s: %w", c.Element, err)
			}
			choice.Indicators = append(choice.Indicators, catalog.IndicatorSpec{Name: ind.Name, Kind: k, Doc: ind.Doc})
		}
		step3.Choices = append(step3.Choices, choice)
	}
	return &core.Pipeline{
		App: app, Step2: step2, Step3: step3,
		Integrator: core.Integrator{Registry: derive.StandardRegistry(), AppRelevant: spec.AppRelevant},
	}, nil
}

func main() {
	render := flag.String("render", "doc", "what to print: doc, fig3, fig4, fig5, schema, taxonomy, appendix")
	specPath := flag.String("spec", "", "JSON elicitation spec (default: built-in trading application)")
	flag.Parse()

	switch *render {
	case "taxonomy":
		fmt.Print(catalog.Taxonomy())
		return
	case "appendix":
		fmt.Println("Appendix A: candidate quality attributes")
		group := ""
		for _, c := range catalog.Candidates() {
			if c.Group != group {
				group = c.Group
				fmt.Printf("\n[%s]\n", group)
			}
			fmt.Printf("  %-22s %-24s %-20s %s\n", c.Name, c.Class, "("+c.Scope.String()+")", c.Doc)
		}
		return
	}

	var pipeline *core.Pipeline
	var err error
	if *specPath != "" {
		raw, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		pipeline, err = pipelineFromSpec(raw)
	} else {
		pipeline, err = core.TradingPipeline()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := pipeline.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch *render {
	case "doc":
		fmt.Print(res.Document())
	case "fig3":
		fmt.Print(pipeline.App.Render())
	case "fig4":
		fmt.Print(res.ParameterView.Render())
	case "fig5":
		fmt.Print(res.QualityView.Render())
	case "schema":
		fmt.Print(res.QualitySchema.Render())
		fmt.Println("Compiled storage schemas:")
		for _, s := range res.Schemas {
			fmt.Println("  " + s.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "dqm: unknown -render %q\n", *render)
		os.Exit(2)
	}
}
