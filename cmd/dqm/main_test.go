package main

import (
	"os"
	"strings"
	"testing"
)

func TestPipelineFromSpec(t *testing.T) {
	raw, err := os.ReadFile("testdata/hospital.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipelineFromSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	for _, want := range []string{
		"(timeliness) on patient.diagnosis",
		"(credibility) on lab_result()",
		"[creation_time time] on patient.diagnosis",
		"[source string] on lab_result()",
		"patient(", "lab(", "lab_result(",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
	// The lab_result relationship schema keys on both endpoints.
	for _, sc := range res.Schemas {
		if sc.Name == "lab_result" {
			if len(sc.Key) != 2 {
				t.Errorf("lab_result key = %v", sc.Key)
			}
		}
	}
}

func TestPipelineFromSpecErrors(t *testing.T) {
	cases := []string{
		`{`, // bad JSON
		`{"application":{"name":"x","entities":[{"name":"e","attrs":[{"name":"a","kind":"blob"}]}]}}`,                                                                                                                                         // bad kind
		`{"application":{"name":"x","entities":[{"name":"e","attrs":[{"name":"a","kind":"int"}]}]},"parameters":[{"element":"ghost.attr","parameter":"timeliness"}]}`,                                                                         // unknown element survives parse but fails Step2
		`{"application":{"name":"x","entities":[{"name":"e","attrs":[{"name":"a","kind":"int"}]}],"relationships":[{"name":"r","left":"e","right":"ghost"}]}}`,                                                                                // bad relationship endpoint
		`{"application":{"name":"x","entities":[{"name":"e","attrs":[{"name":"a","kind":"int"}]}]},"parameters":[{"element":"e.a","parameter":"p"}],"choices":[{"element":"e.a","parameter":"p","indicators":[{"name":"i","kind":"blob"}]}]}`, // bad indicator kind
	}
	for i, src := range cases {
		p, err := pipelineFromSpec([]byte(src))
		if err != nil {
			continue // rejected at load time: fine
		}
		if _, err := p.Run(); err == nil {
			t.Errorf("case %d should fail somewhere", i)
		}
	}
}
