package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// modulePrefix gates which vet units get real fact computation: qqlvet is
// this repository's own tool (it links the repo's analyzers), so only
// units of this module carry facts. Standard-library dependency units get
// an empty facts file — analyzers hard-code the stdlib knowledge they
// need (which sync and net calls block, which errors are droppable), and
// type-checking all of std on every vet run would make `go vet` crawl.
const modulePrefix = "repro"

// vetConfig mirrors the JSON unit configuration cmd/go writes for each
// package when invoked as `go vet -vettool=qqlvet`. Field names and
// semantics follow src/cmd/go/internal/work/exec.go (vetConfig); only the
// fields this tool consumes are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a cmd/go vet.cfg file and
// returns the process exit code: 0 clean, 2 when findings were reported
// (the same convention as the stock vet tool).
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts accumulated so far: every dependency's vetx file cmd/go hands
	// us, merged into one store. Missing or stale files decode as empty —
	// facts weaken diagnostics when absent, they never fail the run.
	facts := lint.NewFacts()
	for _, vetxFile := range cfg.PackageVetx {
		if data, err := os.ReadFile(vetxFile); err == nil {
			facts.Merge(lint.DecodeFacts(data))
		}
	}

	// writeVetx persists the merged store (dependencies plus this unit's
	// exports): cmd/go only guarantees direct deps in PackageVetx, so each
	// facts file carries its transitive knowledge forward.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666)
		}
	}

	// The import path of a test unit carries a " [pkg.test]" suffix; the
	// Match predicates care about the underlying package. Test variants
	// also re-compile the plain sources, so they mirror the standalone
	// driver: only IncludeTests analyzers report, and only on _test.go
	// files — everything else the plain compilation already covered (and a
	// variant's facts may legitimately differ, e.g. a sealed interface
	// gains test-only implementations).
	matchPath := cfg.ImportPath
	testVariant := false
	if i := strings.IndexByte(matchPath, ' '); i >= 0 {
		matchPath = matchPath[:i]
		testVariant = true
	}
	inModule := matchPath == modulePrefix || strings.HasPrefix(matchPath, modulePrefix+"/")

	// Out-of-module dependency units exist only to keep cmd/go's facts
	// chain connected; they carry no facts of their own.
	if cfg.VetxOnly && !inModule {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "qqlvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Two views of the unit: reporting and facts-only. Analyzers whose
	// Match excludes this package still run facts-only — a dependent
	// package in scope may need the facts (always-nil errors, enum
	// membership) that only this package can export.
	reportPkg := &lint.Package{Path: matchPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	factsPkg := &lint.Package{Path: matchPath, Fset: fset, Files: files, Types: tpkg, Info: info, FactsOnly: true}

	exit := 0
	for _, a := range lint.All() {
		pkg := reportPkg
		if cfg.VetxOnly || (a.Match != nil && !a.Match(matchPath)) || (testVariant && !a.IncludeTests) {
			pkg = factsPkg
		}
		diags, err := lint.RunAnalyzer(a, pkg, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qqlvet: %s: %v\n", cfg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if testVariant && !strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			exit = 2
		}
	}
	writeVetx()
	return exit
}
