package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON unit configuration cmd/go writes for each
// package when invoked as `go vet -vettool=qqlvet`. Field names and
// semantics follow src/cmd/go/internal/work/exec.go (vetConfig); only the
// fields this tool consumes are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a cmd/go vet.cfg file and
// returns the process exit code: 0 clean, 2 when findings were reported
// (the same convention as the stock vet tool).
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go always wants the facts file, even from tools that track no
	// facts: it is the cache key for "this unit was vetted".
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte("qqlvet.facts.v1\n"), 0o666)
		}
	}

	// Dependency units exist only to propagate facts; qqlvet keeps none,
	// so they are free.
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	// The import path of a test unit carries a " [pkg.test]" suffix; the
	// Match predicates care about the underlying package.
	matchPath := cfg.ImportPath
	if i := strings.IndexByte(matchPath, ' '); i >= 0 {
		matchPath = matchPath[:i]
	}
	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if a.Match == nil || a.Match(matchPath) {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "qqlvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		diags, err := lint.RunAnalyzer(a, fset, files, tpkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qqlvet: %s: %v\n", cfg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 2
		}
	}
	writeVetx()
	return exit
}
