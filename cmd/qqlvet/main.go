// Command qqlvet is the engine's invariant checker: a multichecker over
// the analyzers in internal/lint, machine-checking the conventions the
// compiler cannot see — storage lock discipline (locksafe), deterministic
// pool release (releasepair), pointer-based Value comparison on hot paths
// (valuecopy), construction-time metrics registration (metricsreg) and
// zero-clone query scans (sharedscan).
//
// It runs in two modes:
//
//	qqlvet ./...
//
// Standalone: resolves the patterns with the go tool, type-checks against
// build-cache export data and runs the suite. Unless -novet is given it
// first runs the standard `go vet` passes over the same patterns, so one
// command gives the union of stock vet and the engine's own invariants —
// this is what CI runs, and why the invariant checks cannot drift out of
// the default developer flow.
//
//	go vet -vettool=$(command -v qqlvet) ./...
//
// Vet-tool mode: qqlvet speaks the cmd/go vet protocol (-V=full version
// handshake, JSON vet.cfg unit inputs, export-data type checking), so it
// slots into `go vet` and `go test -vet` wherever those run. In this mode
// only the custom analyzers run — the stock passes are the ones being
// replaced — which is why CI uses standalone mode.
//
// Exit status is non-zero when any analyzer reports a finding. There is
// no suppression mechanism by design: a finding is fixed, or the analyzer
// is wrong and gets fixed instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The cmd/go handshake: every vet tool must answer -V=full with
	// "<name> version <id>" before it is trusted with unit configs.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("qqlvet version 1.0.0\n")
		return
	}
	// cmd/go also probes `<vettool> -flags` for the JSON list of analyzer
	// flags it should accept on the vet command line; qqlvet exposes none.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet-tool mode: cmd/go passes a single *.cfg argument per package.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	novet := flag.Bool("novet", false, "skip the embedded standard `go vet` passes")
	runOnly := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("analyzers", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qqlvet [-novet] [-run a,b] packages...\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	if !*novet {
		// Embed the stock passes: qqlvet replaces the bare `go vet` step,
		// so it must be a superset of it.
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	analyzers := selectAnalyzers(*runOnly)
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
		os.Exit(1)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			diags, err := lint.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qqlvet: %s: %v\n", pkg.Path, err)
				os.Exit(1)
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func selectAnalyzers(runOnly string) []*lint.Analyzer {
	all := lint.All()
	if runOnly == "" {
		return all
	}
	want := map[string]bool{}
	for _, n := range strings.Split(runOnly, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "qqlvet: -run %q matches no analyzers\n", runOnly)
		os.Exit(2)
	}
	return out
}
