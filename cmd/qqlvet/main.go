// Command qqlvet is the engine's invariant checker: a multichecker over
// the analyzers in internal/lint, machine-checking the conventions the
// compiler cannot see — storage lock discipline (locksafe), deterministic
// pool release (releasepair), pointer-based Value comparison on hot paths
// (valuecopy), construction-time metrics registration (metricsreg) and
// zero-clone query scans (sharedscan).
//
// It runs in two modes:
//
//	qqlvet ./...
//
// Standalone: resolves the patterns with the go tool, type-checks against
// build-cache export data and runs the suite. Unless -novet is given it
// first runs the standard `go vet` passes over the same patterns, so one
// command gives the union of stock vet and the engine's own invariants —
// this is what CI runs, and why the invariant checks cannot drift out of
// the default developer flow.
//
//	go vet -vettool=$(command -v qqlvet) ./...
//
// Vet-tool mode: qqlvet speaks the cmd/go vet protocol (-V=full version
// handshake, JSON vet.cfg unit inputs, export-data type checking), so it
// slots into `go vet` and `go test -vet` wherever those run. In this mode
// only the custom analyzers run — the stock passes are the ones being
// replaced — which is why CI uses standalone mode.
//
// Exit status is non-zero when any analyzer reports a finding. There is
// no suppression mechanism by design: a finding is fixed, or the analyzer
// is wrong and gets fixed instead.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The cmd/go handshake: every vet tool must answer -V=full with
	// "<name> version <id>" before it is trusted with unit configs. The id
	// must change whenever the analyzers change — cmd/go caches vet
	// results keyed by it, so a constant id would serve stale diagnostics
	// from a previous build of the tool. Hashing the executable itself is
	// how x/tools' unitchecker solves the same problem.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("qqlvet version %s\n", buildID())
		return
	}
	// cmd/go also probes `<vettool> -flags` for the JSON list of analyzer
	// flags it should accept on the vet command line; qqlvet exposes none.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet-tool mode: cmd/go passes a single *.cfg argument per package.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	novet := flag.Bool("novet", false, "skip the embedded standard `go vet` passes")
	runOnly := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("analyzers", false, "list registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout instead of text on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qqlvet [-novet] [-json] [-run a,b] packages...\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	if !*novet {
		// Embed the stock passes: qqlvet replaces the bare `go vet` step,
		// so it must be a superset of it.
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	analyzers := selectAnalyzers(*runOnly)
	// LoadProgram returns the matched packages, their test variants and
	// every in-module dependency in dependency order, so RunProgram's
	// facts (lock acquisition sets, always-nil errors, enum membership)
	// flow from defining package to user.
	pkgs, err := lint.LoadProgram(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
		os.Exit(1)
	}
	diags, _, err := lint.RunProgram(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qqlvet: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		printJSON(pkgs, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", position(pkgs, d), d.Analyzer, d.Message)
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// buildID derives the -V=full version id from the running executable's
// content, so rebuilding the tool invalidates cmd/go's cached vet results.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// position renders a diagnostic's position; every loaded package shares
// one FileSet, so the first package's suffices.
func position(pkgs []*lint.Package, d lint.Diagnostic) token.Position {
	if len(pkgs) == 0 {
		return token.Position{}
	}
	return pkgs[0].Fset.Position(d.Pos)
}

// jsonDiagnostic is the structured form of one finding, stable for CI
// tooling: the same fields the text format prints, split out.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(pkgs []*lint.Package, diags []lint.Diagnostic) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := position(pkgs, d)
		out = append(out, jsonDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func selectAnalyzers(runOnly string) []*lint.Analyzer {
	all := lint.All()
	if runOnly == "" {
		return all
	}
	want := map[string]bool{}
	for _, n := range strings.Split(runOnly, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "qqlvet: -run %q matches no analyzers\n", runOnly)
		os.Exit(2)
	}
	return out
}
