package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// capture redirects one of the process streams (stdout/stderr) around fn
// and returns what fn wrote.
func capture(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := *stream
	*stream = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<16)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	fn()
	w.Close()
	*stream = old
	out := <-done
	r.Close()
	return out
}

// TestVersionHandshake pins the -V=full contract from cmd/go: the output
// must be "<name> version <id>" with at least three fields, field two
// exactly "version", and an id cmd/go will accept into a build ID (not
// "devel"). Break this and `go vet -vettool=qqlvet` refuses to run.
func TestVersionHandshake(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"qqlvet", "-V=full"}
	out := capture(t, &os.Stdout, main)
	f := strings.Fields(out)
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" {
		t.Fatalf("-V=full output %q does not satisfy the cmd/go tool-ID handshake", out)
	}
	if f[0] != "qqlvet" {
		t.Fatalf("-V=full reports tool name %q, want qqlvet", f[0])
	}
}

// TestFlagsHandshake pins the second cmd/go probe: `qqlvet -flags` must
// print a JSON list of tool flags (empty for qqlvet).
func TestFlagsHandshake(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"qqlvet", "-flags"}
	out := capture(t, &os.Stdout, main)
	var flags []struct{ Name string }
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output %q is not a JSON flag list: %v", out, err)
	}
	if len(flags) != 0 {
		t.Fatalf("-flags advertises %d flags, want 0", len(flags))
	}
}

// writeUnit writes a one-file package plus its vet.cfg the way cmd/go
// does, returning the cfg path and the facts output path.
func writeUnit(t *testing.T, src string, vetxOnly bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfg := vetConfig{
		ID:          "test/p",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "test/p",
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetx
}

// leakSrc is a self-contained (import-free) releasepair violation: the
// batch leaks on the early return.
const leakSrc = `package p

type batch struct{ n int }

func getBatch(n int) *batch { return &batch{n: n} }
func putBatch(b *batch)     {}

func leak(fail bool) int {
	b := getBatch(1)
	if fail {
		return 0
	}
	putBatch(b)
	return 1
}
`

// TestUnitcheckReportsFindings drives the vet.cfg path end to end: the
// unit must typecheck, the analyzers must run, the finding must land on
// stderr, the exit code must be 2 (the stock vet convention) and the
// facts file must be written so cmd/go caches the unit.
func TestUnitcheckReportsFindings(t *testing.T) {
	cfgPath, vetx := writeUnit(t, leakSrc, false)
	var code int
	errOut := capture(t, &os.Stderr, func() { code = unitcheck(cfgPath) })
	if code != 2 {
		t.Fatalf("unitcheck exit = %d, want 2; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "[releasepair]") || !strings.Contains(errOut, "not released") {
		t.Fatalf("stderr missing releasepair finding: %s", errOut)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

// TestUnitcheckVetxOnly: dependency units exist only to propagate facts;
// they must succeed immediately and still write the facts file.
func TestUnitcheckVetxOnly(t *testing.T) {
	cfgPath, vetx := writeUnit(t, leakSrc, true)
	if code := unitcheck(cfgPath); code != 0 {
		t.Fatalf("VetxOnly unit exit = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written for VetxOnly unit: %v", err)
	}
}

// TestSelectAnalyzers pins the -run filter against the registry.
func TestSelectAnalyzers(t *testing.T) {
	if got := selectAnalyzers(""); len(got) != len(lint.All()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, want all %d", len(got), len(lint.All()))
	}
	got := selectAnalyzers("locksafe, valuecopy")
	if len(got) != 2 {
		t.Fatalf("selectAnalyzers(locksafe,valuecopy) = %d analyzers, want 2", len(got))
	}
	for _, a := range got {
		if a.Name != "locksafe" && a.Name != "valuecopy" {
			t.Fatalf("unexpected analyzer %q selected", a.Name)
		}
	}
}
