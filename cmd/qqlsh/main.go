// Command qqlsh executes QQL — the quality query language — against an
// in-memory database.
//
//	qqlsh script.qql ...    # run script files in order
//	qqlsh                   # read statements from stdin (REPL when a TTY)
//
// The session clock defaults to the wall clock; pass -now to fix it (QQL's
// AGE() and NOW() then evaluate against that instant), e.g.
//
//	qqlsh -now 1992-01-01T00:00:00Z demo.qql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/qql"
	"repro/internal/relation"
	"repro/internal/storage"
)

func main() {
	nowFlag := flag.String("now", "", "fix the session clock (RFC3339)")
	quiet := flag.Bool("q", false, "suppress DDL/DML messages")
	loadPath := flag.String("load", "", "load a catalog saved with -save before running")
	savePath := flag.String("save", "", "save the catalog to this file on exit")
	flag.Parse()

	cat := storage.NewCatalog()
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cat, err = storage.LoadCatalog(f)
		_ = f.Close() // read-only handle: nothing buffered to lose
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sess := qql.NewSession(cat)
	saveOnExit := func() {
		if *savePath == "" {
			return
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Close errors matter on a written file: the OS may defer the
		// flush, and a silent short write corrupts the saved catalog.
		err = cat.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	defer saveOnExit()
	if *nowFlag != "" {
		t, err := time.Parse(time.RFC3339, *nowFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qqlsh: bad -now: %v\n", err)
			os.Exit(2)
		}
		sess.SetNow(t)
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			raw, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if !run(sess, string(raw), *quiet) {
				saveOnExit()
				os.Exit(1)
			}
		}
		return
	}

	// Stdin mode: accumulate lines until a terminating semicolon.
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Fprint(os.Stderr, "qql> ")
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		trimmed := strings.TrimSpace(line)
		if strings.HasSuffix(trimmed, ";") {
			run(sess, buf.String(), *quiet)
			buf.Reset()
		}
		fmt.Fprint(os.Stderr, "qql> ")
	}
	if strings.TrimSpace(buf.String()) != "" {
		run(sess, buf.String(), *quiet)
	}
}

// run executes a script and prints results; it reports success.
func run(sess *qql.Session, src string, quiet bool) bool {
	results, err := sess.Exec(src)
	for _, r := range results {
		switch {
		case r.Rel != nil:
			fmt.Print(relation.Format(r.Rel, true))
			fmt.Printf("(%d row(s))\n", r.Rel.Len())
		case r.Plan != "":
			fmt.Print(r.Plan)
		case r.Msg != "" && !quiet:
			fmt.Println(r.Msg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	return true
}
