package main

import (
	"os"
	"testing"
	"time"

	"repro/internal/qql"
	"repro/internal/storage"
)

func TestRunDemoScript(t *testing.T) {
	raw, err := os.ReadFile("testdata/demo.qql")
	if err != nil {
		t.Fatal(err)
	}
	sess := qql.NewSession(storage.NewCatalog())
	sess.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	if !run(sess, string(raw), true) {
		t.Fatal("demo script failed")
	}
	// The script left the table in place with both rows.
	rel, err := sess.Query(`SELECT COUNT(*) AS n FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0].Cells[0].V.AsInt() != 2 {
		t.Fatalf("row count = %v", rel.Tuples[0].Cells[0].V)
	}
}

func TestRunReportsErrors(t *testing.T) {
	sess := qql.NewSession(storage.NewCatalog())
	if run(sess, `SELECT * FROM nonexistent`, true) {
		t.Error("run should report failure for bad statements")
	}
}

func TestRunDropTable(t *testing.T) {
	sess := qql.NewSession(storage.NewCatalog())
	if !run(sess, `CREATE TABLE s (n int); INSERT INTO s VALUES (1); DROP TABLE s`, true) {
		t.Fatal("drop script failed")
	}
	if run(sess, `SELECT * FROM s`, true) {
		t.Error("query on dropped table should fail")
	}
	// The demo pattern: recreate after drop works.
	if !run(sess, `CREATE TABLE s (m string); INSERT INTO s VALUES ('x')`, true) {
		t.Fatal("recreate after drop failed")
	}
}
