// Command benchrunner regenerates every table and figure of the paper plus
// the quantitative ablations documented in EXPERIMENTS.md.
//
//	benchrunner            # run every experiment
//	benchrunner -exp T2    # run one (T1 T2 F1 F2 F3 F4 F5 A X1 X2 X3 X4 AB1 AB2 AB3 AB4 AB5)
//	benchrunner -list      # list experiment ids
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/audit"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/inspect"
	"repro/internal/qql"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/value"
	"repro/internal/workload"
)

type experiment struct {
	id    string
	title string
	run   func() error
}

// PAR / PIPE experiment knobs (package-level so the experiment closures
// see the parsed values).
var (
	parRows   = flag.Int("par-rows", 100000, "PAR: customer table size")
	parDegree = flag.Int("par-degree", 0, "PAR: parallel fan-out (0 = GOMAXPROCS)")
	parIters  = flag.Int("par-iters", 0, "PAR: measured runs per query per mode (0 = default)")
	parOut    = flag.String("par-out", "BENCH_PAR.json", "PAR: machine-readable output path ('' to skip)")

	pipeRows  = flag.Int("pipe-rows", 5000, "PIPE: INSERT statements per ingest mode")
	pipeDepth = flag.Int("pipe-depth", 16, "PIPE: pipelined mode's in-flight window")
	pipeBatch = flag.Int("pipe-batch", 50, "PIPE: statements per batch frame")
	pipeOut   = flag.String("pipe-out", "BENCH_PIPE.json", "PIPE: machine-readable output path ('' to skip)")

	cacheRows  = flag.Int("cache-rows", 20000, "CACHE: customer table size")
	cacheIters = flag.Int("cache-iters", 3000, "CACHE: measured executions per cache mode")
	cacheOut   = flag.String("cache-out", "BENCH_CACHE.json", "CACHE: machine-readable output path ('' to skip)")

	vecRows  = flag.Int("vec-rows", 100000, "VEC: customer table size")
	vecIters = flag.Int("vec-iters", 0, "VEC: measured runs per query per mode (0 = default)")
	vecOut   = flag.String("vec-out", "BENCH_VEC.json", "VEC: machine-readable output path ('' to skip)")

	walRows    = flag.Int("wal-rows", 4000, "WAL: INSERT statements per fsync policy")
	walClients = flag.Int("wal-clients", 16, "WAL: concurrent batched connections")
	walBatch   = flag.Int("wal-batch", 1, "WAL: statements per batch frame (one commit each)")
	walOut     = flag.String("wal-out", "BENCH_WAL.json", "WAL: machine-readable output path ('' to skip)")
)

func main() {
	expFlag := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if *expFlag != "" && !strings.EqualFold(e.id, *expFlag) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expFlag)
		os.Exit(2)
	}
}

func experiments() []experiment {
	return []experiment{
		{"T1", "Table 1: customer information (untagged)", runT1},
		{"T2", "Table 2: customer information with quality tags", runT2},
		{"F1", "Figure 1: quality attribute taxonomy", runF1},
		{"F2", "Figure 2: the four-step methodology pipeline", runF2},
		{"F3", "Figure 3: trading application view", runF3},
		{"F4", "Figure 4: parameter view", runF4},
		{"F5", "Figure 5: quality view", runF5},
		{"A", "Appendix A: candidate quality attributes", runA},
		{"X1", "§1.2: query-time filtering over quality tags", runX1},
		{"X2", "§3.4: view integration subsumption (age vs creation_time)", runX2},
		{"X3", "§4: clearing-house grading by application profile", runX3},
		{"X4", "§4: erred-transaction audit trace", runX4},
		{"AB1", "ablation: cell tagging overhead", runAB1},
		{"AB2", "ablation: quality predicate selectivity sweep (index vs scan)", runAB2},
		{"AB3", "ablation: polygen source propagation cost vs join size", runAB3},
		{"AB4", "ablation: view integration scaling", runAB4},
		{"AB5", "ablation: SPC detection of injected defect bursts", runAB5},
		{"SRV", "server mode: concurrent clients vs qqld over TCP", runSRV},
		{"PAR", "parallel scans: segmented heap fan-out vs serial", runPAR},
		{"PIPE", "wire v2 ingest: serial vs pipelined vs batched", runPIPE},
		{"CACHE", "plan cache: cold vs AST-cached vs bound-plan-cached hot query", runCACHE},
		{"VEC", "vectorized execution: scalar vs batch vs batch+compiled expressions", runVEC},
		{"WAL", "durability: fsync per commit vs group commit vs no fsync", runWAL},
	}
}

// runVEC measures the same scan-heavy queries through the Volcano tier and
// the vectorized tier (interpreted and compiled expressions), all serial so
// the comparison isolates execution style, and writes BENCH_VEC.json so the
// execution-engine trajectory is recorded across PRs.
func runVEC() error {
	cfg := workload.VecBenchConfig{Rows: *vecRows, Seed: 7, Iters: *vecIters}
	cat, err := workload.VecBenchCatalog(cfg)
	if err != nil {
		return err
	}
	mkSession := func(vec, compiled bool) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(workload.Epoch)
		s.SetParallelism(1)
		s.SetVectorized(vec)
		s.SetCompiledExprs(compiled)
		return s
	}
	report, err := workload.RunVecBench(cfg,
		mkSession(false, false), mkSession(true, false), mkSession(true, true))
	if err != nil {
		return err
	}
	fmt.Printf("%d-row customer table, no indexes; serial, batch size %d, %d iterations per query per mode, %d core(s)\n",
		report.Rows, report.BatchSize, report.Iters, report.Cores)
	fmt.Printf("%-24s %-10s %-12s %-12s %-12s %-9s %s\n",
		"case", "rows", "scalar p50", "vec p50", "vec+comp", "speedup", "clones s/v/c")
	for _, c := range report.Cases {
		fmt.Printf("%-24s %-10d %-12s %-12s %-12s %-9s %d/%d/%d\n",
			c.Name, c.Rows,
			time.Duration(c.Scalar.P50*1000).String(),
			time.Duration(c.Vectorized.P50*1000).String(),
			time.Duration(c.Compiled.P50*1000).String(),
			fmt.Sprintf("%.2fx", c.SpeedupCompiled),
			c.Scalar.ClonesPerQuery, c.Vectorized.ClonesPerQuery, c.Compiled.ClonesPerQuery)
	}
	if *vecOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*vecOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *vecOut)
	}
	fmt.Println("shape:", report.Note)
	return nil
}

// runWAL ingests the same concurrent batched INSERT stream into three
// durable servers differing only in WAL fsync policy and writes the
// machine-readable BENCH_WAL.json so the durability-cost trajectory is
// recorded across PRs. The headline number is group commit's speedup over
// per-commit fsync at identical durability for acknowledged writes.
func runWAL() error {
	report, err := workload.RunWALBench(workload.WALBenchConfig{
		Rows: *walRows, Clients: *walClients, Batch: *walBatch,
		StartServer: func(l *wal.Log) (string, func() error, error) {
			srv := server.New(l.Catalog(), server.Config{
				Addr: "127.0.0.1:0", MaxConns: *walClients + 4, Now: workload.Epoch, WAL: l})
			if err := srv.Listen(); err != nil {
				return "", nil, err
			}
			go srv.Serve()
			stop := func() error {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				return srv.Shutdown(ctx)
			}
			return srv.Addr().String(), stop, nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d INSERTs per policy from %d connections, %d statements per batch commit, %d core(s)\n",
		report.Rows, report.Clients, report.Batch, report.Cores)
	fmt.Printf("%-14s %-10s %-10s %-10s %-10s %-10s %s\n",
		"mode", "stmts/s", "commits", "fsyncs", "grp max", "wal MiB", "errors")
	for _, m := range report.Modes {
		fmt.Printf("%-14s %-10.0f %-10d %-10d %-10d %-10.1f %d\n",
			m.Name, m.StmtsPerSec, m.Commits, m.Fsyncs, m.GroupMax,
			float64(m.WALBytes)/(1<<20), m.Errors)
	}
	fmt.Printf("speedup vs fsync-always: group %.2fx, off %.2fx\n",
		report.SpeedupGroupVsAlways, report.SpeedupOffVsAlways)
	if *walOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*walOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *walOut)
	}
	fmt.Println("shape:", report.Note)
	return nil
}

// runCACHE measures one hot indexed SELECT under the three cache
// configurations — no cache, AST tier only, AST + bound-plan tiers — and
// writes the machine-readable BENCH_CACHE.json so the compile-path
// trajectory is recorded across PRs.
func runCACHE() error {
	cfg := workload.CacheBenchConfig{Rows: *cacheRows, Iters: *cacheIters}
	cat, query, err := workload.CacheBenchCatalog(cfg)
	if err != nil {
		return err
	}
	mkSession := func(cache *qql.PlanCache) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(workload.Epoch)
		if cache != nil {
			s.SetPlanCache(cache)
		}
		return s
	}
	hits := func(c *qql.PlanCache) func() (uint64, uint64) {
		return func() (uint64, uint64) {
			st := c.Stats()
			return st.Hits, st.PlanHits
		}
	}
	astCache := qql.NewPlanCache(qql.DefaultCacheSize)
	astCache.SetPlanTier(false)
	planCache := qql.NewPlanCache(qql.DefaultCacheSize)
	report, err := workload.RunCacheBench(cfg, query, []workload.CacheBenchMode{
		{Name: "cold", Q: mkSession(nil)},
		{Name: "ast-cached", Q: mkSession(astCache), CacheHits: hits(astCache)},
		{Name: "plan-cached", Q: mkSession(planCache), CacheHits: hits(planCache)},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d-row customer table, hash index on co_name; %d iterations per mode, %d core(s)\n",
		report.Rows, report.Iters, report.Cores)
	fmt.Printf("%-14s %-10s %-11s %-11s %-11s %-9s %s\n",
		"mode", "q/s", "p50", "p95", "p99", "ast hits", "plan hits")
	for _, m := range report.Modes {
		fmt.Printf("%-14s %-10.0f %-11s %-11s %-11s %-9d %d\n",
			m.Name, m.QPS,
			time.Duration(m.P50MS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(m.P95MS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(m.P99MS*float64(time.Millisecond)).Round(time.Microsecond),
			m.ASTHits, m.PlanHits)
	}
	fmt.Printf("speedups: ast/cold %.2fx, plan/cold %.2fx, plan/ast %.2fx\n",
		report.SpeedupASTVsCold, report.SpeedupPlanVsCold, report.SpeedupPlanVsAST)
	if *cacheOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*cacheOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *cacheOut)
	}
	fmt.Println("shape:", report.Note)
	return nil
}

// runPIPE measures the same INSERT stream over wire v1 (one round-trip per
// statement), wire v2 pipelined (request IDs, N in flight) and wire v2
// batched (one multi-statement frame), and writes the machine-readable
// BENCH_PIPE.json so the ingest-path trajectory is recorded across PRs.
func runPIPE() error {
	srv := server.New(storage.NewCatalog(), server.Config{Addr: "127.0.0.1:0", MaxConns: 16, Now: workload.Epoch})
	if err := srv.Listen(); err != nil {
		return err
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: shutdown: %v\n", err)
		}
	}()

	report, err := workload.RunPipelineBench(workload.PipelineBenchConfig{
		Addr: srv.Addr().String(), Rows: *pipeRows, Depth: *pipeDepth, Batch: *pipeBatch,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d INSERTs per mode over one conn each; depth %d, batch %d, %d core(s)\n",
		report.Rows, report.Depth, report.Batch, report.Cores)
	fmt.Printf("%-14s %-10s %-10s %-11s %-11s %-11s %s\n",
		"mode", "requests", "stmts/s", "p50", "p95", "p99", "errors")
	for _, m := range report.Modes {
		fmt.Printf("%-14s %-10d %-10.0f %-11s %-11s %-11s %d\n",
			m.Name, m.Requests, m.StmtsPerSec,
			time.Duration(m.P50MS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(m.P95MS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(m.P99MS*float64(time.Millisecond)).Round(time.Microsecond),
			m.Errors)
	}
	fmt.Printf("speedup vs v1-serial: pipelined %.2fx, batched %.2fx\n",
		report.SpeedupPipelined, report.SpeedupBatched)
	if *pipeOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*pipeOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *pipeOut)
	}
	fmt.Println("shape:", report.Note)
	return nil
}

// runPAR measures serial vs parallel segmented heap scans over a large
// unindexed customer table — with and without a predicate fused into the
// scan workers — and writes the machine-readable BENCH_PAR.json so the
// perf trajectory is recorded across PRs.
func runPAR() error {
	cfg := workload.ParallelBenchConfig{Rows: *parRows, Seed: 7, Degree: *parDegree, Iters: *parIters}
	cat, err := workload.ParallelBenchCatalog(cfg)
	if err != nil {
		return err
	}
	mkSession := func(degree int) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(workload.Epoch)
		s.SetParallelism(degree)
		return s
	}
	report, err := workload.RunParallelBench(cfg, mkSession(1), mkSession(*parDegree))
	if err != nil {
		return err
	}
	fmt.Printf("%d-row customer table, no indexes; %d cores, fan-out ×%d (effective ×%d), segment size %d\n",
		report.Rows, report.Cores, report.Degree, report.EffectiveDegree, report.SegmentSize)
	if report.EffectiveDegree <= 1 {
		fmt.Println("note: parallel session degraded to a serial scan (one core or single-segment table); speedups are noise")
	}
	fmt.Printf("%-24s %-10s %-12s %-12s %-12s %s\n", "case", "rows", "serial p50", "par p50", "par p99", "speedup")
	for _, c := range report.Cases {
		fmt.Printf("%-24s %-10d %-12s %-12s %-12s %.2fx\n",
			c.Name, c.Rows,
			time.Duration(c.Serial.P50*1000).String(),
			time.Duration(c.Parallel.P50*1000).String(),
			time.Duration(c.Parallel.P99*1000).String(),
			c.Speedup)
	}
	if *parOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*parOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *parOut)
	}
	fmt.Println("shape: fan-out wins when segments outnumber workers and cores are real; on one core the merge overhead shows")
	return nil
}

// runSRV starts an in-process qqld over a generated customer table and
// drives it with concurrent client connections, reporting throughput,
// latency percentiles and plan-cache effectiveness — the serving-layer
// counterpart of X1's in-process quality filtering.
func runSRV() error {
	cat := storage.NewCatalog()
	rel := workload.Customers(workload.CustomerConfig{N: 20000, Seed: 11})
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		return err
	}
	if err := tbl.Load(rel); err != nil {
		return err
	}
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "employees"}, storage.IndexBTree); err != nil {
		return err
	}
	srv := server.New(cat, server.Config{Addr: "127.0.0.1:0", MaxConns: 128, Now: workload.Epoch})
	if err := srv.Listen(); err != nil {
		return err
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: shutdown: %v\n", err)
		}
	}()

	fmt.Printf("20000-row customer table behind qqld at %s\n", srv.Addr())
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %s\n", "clients", "q/s", "p50", "p95", "p99", "cache hit%")
	prev := srv.Cache().Stats()
	for _, nClients := range []int{1, 8, 32} {
		res, err := workload.RunServerBench(workload.ServerBenchConfig{
			Addr:       srv.Addr().String(),
			Clients:    nClients,
			Requests:   200,
			Statements: workload.ServerStatements(),
		})
		if err != nil {
			return err
		}
		if res.Errors > 0 {
			return fmt.Errorf("server bench: %d statement errors", res.Errors)
		}
		// Per-round cache effectiveness across both tiers: delta against the
		// previous round (hot SELECTs land in the bound-plan tier, DML in
		// the AST tier).
		cs := srv.Cache().Stats()
		hits := (cs.Hits - prev.Hits) + (cs.PlanHits - prev.PlanHits)
		total := hits + (cs.Misses - prev.Misses) + (cs.PlanMisses - prev.PlanMisses)
		prev = cs
		rate := 0.0
		if total > 0 {
			rate = float64(hits) / float64(total)
		}
		fmt.Printf("%-8d %-10.0f %-10v %-10v %-10v %.1f%%\n",
			nClients, res.QPS, res.P50.Round(time.Microsecond),
			res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond),
			100*rate)
	}
	st := srv.Stats()
	fmt.Printf("server: %d conns accepted, %d queries, %d errors, mean latency %v\n",
		st.Accepted, st.Queries, st.Errors,
		(st.TotalLatency / time.Duration(max(st.Queries, 1))).Round(time.Microsecond))
	fmt.Println("shape: shared plan cache takes re-parsing off the hot path; throughput scales with connections until the catalog's write lock saturates")
	return nil
}

func runT1() error {
	fmt.Println("paper: 2 rows (Fruit Co / Nut Co), no quality information")
	fmt.Print(relation.Format(workload.PaperTable1(), false))
	return nil
}

func runT2() error {
	fmt.Println("paper: same rows, each cell tagged (creation time, source)")
	fmt.Print(relation.Format(workload.PaperTable2(), true))
	return nil
}

func runF1() error {
	fmt.Print(catalog.Taxonomy())
	return nil
}

func runF2() error {
	p, err := core.TradingPipeline()
	if err != nil {
		return err
	}
	res, err := p.Run()
	if err != nil {
		return err
	}
	fmt.Println("step 1 (application view):  ", p.App.Name, "-",
		len(p.App.Entities), "entities,", len(p.App.Relationships), "relationships")
	fmt.Println("step 2 (parameter view):    ", len(res.ParameterView.Annotations), "quality parameters")
	fmt.Println("step 3 (quality view):      ", len(res.QualityView.Indicators), "quality indicators")
	fmt.Println("step 4 (quality schema):    ", len(res.QualitySchema.Indicators), "indicators after integration,",
		len(res.QualitySchema.Decisions), "decisions,", len(res.QualitySchema.Conflicts), "conflicts")
	fmt.Println("compiled storage schemas:   ", len(res.Schemas))
	return nil
}

func runF3() error {
	fmt.Print(core.MustTradingResult().ParameterView.App.Render())
	return nil
}

func runF4() error {
	fmt.Print(core.MustTradingResult().ParameterView.Render())
	return nil
}

func runF5() error {
	fmt.Print(core.MustTradingResult().QualityView.Render())
	return nil
}

func runA() error {
	cands := catalog.Candidates()
	fmt.Printf("%d candidate quality attributes (%d parameters, %d indicators)\n",
		len(cands), len(catalog.Parameters()), len(catalog.Indicators()))
	group := ""
	for _, c := range cands {
		if c.Group != group {
			group = c.Group
			fmt.Printf("[%s]\n", group)
		}
		fmt.Printf("  %-22s %s\n", c.Name, c.Class)
	}
	return nil
}

func runX1() error {
	cat := storage.NewCatalog()
	sess := qql.NewSession(cat)
	sess.SetNow(workload.Epoch)
	rel := workload.Customers(workload.CustomerConfig{N: 10000, Seed: 1})
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		return err
	}
	if err := tbl.Load(rel); err != nil {
		return err
	}
	for _, q := range []string{
		`SELECT COUNT(*) AS n FROM customer`,
		`SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@source != 'estimate'`,
		`SELECT COUNT(*) AS n FROM customer WITH QUALITY AGE(employees@creation_time) <= d'720h'`,
		`SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@source = 'Nexis' AND AGE(employees@creation_time) <= d'720h'`,
	} {
		out, err := sess.Query(q)
		if err != nil {
			return err
		}
		fmt.Printf("%6d rows  <- %s\n", out.Tuples[0].Cells[0].V.AsInt(), q)
	}
	fmt.Println("shape: each added quality requirement strictly narrows the result (paper §1.2)")
	return nil
}

func runX2() error {
	res := core.MustTradingResult()
	for _, d := range res.QualitySchema.Decisions {
		if d.Kind == "subsume" {
			fmt.Println("integration decision:", d.Text)
		}
	}
	fmt.Println("paper: 'the design team may choose creation time ... because age can be")
	fmt.Println("computed given current time and creation time' — reproduced")
	return nil
}

func runX3() error {
	rel := workload.Addresses(workload.AddressConfig{N: 20000, Seed: 42, FreshFraction: 0.4, VerifiedFraction: 0.35})
	ev := &quality.Evaluator{Registry: derive.StandardRegistry(), Now: workload.Epoch}
	fund := &quality.Profile{Name: "fund_raising", Constraints: []quality.IndicatorConstraint{
		{Attr: "address", Indicator: "source", Op: quality.OpEq, Bound: value.Str("registry")},
		{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
			Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
	}}
	classes := []quality.GradeClass{
		{Name: "A", Profile: fund},
		{Name: "B", Profile: &quality.Profile{Constraints: []quality.IndicatorConstraint{
			{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
				Bound: value.Duration(365 * 24 * time.Hour), AgeOf: true}}}},
		{Name: "C", Profile: &quality.Profile{}},
	}
	_, counts, err := ev.Classify(rel, classes)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  class %-2s %6d addresses (%.1f%%)\n", k, counts[k], 100*float64(counts[k])/float64(rel.Len()))
	}
	fmt.Println("shape: mass mailing (C) sees everything, fund raising (A) a small verified-and-fresh subset")
	return nil
}

func runX4() error {
	trail := audit.NewTrail()
	quote := audit.CellRef{Table: "company_stock", Key: "IBM", Attr: "share_price"}
	pos := audit.CellRef{Table: "portfolio", Key: "acct_1001", Attr: "position_value"}
	stmt := audit.CellRef{Table: "statements", Key: "acct_1001", Attr: "total"}
	now := workload.Epoch
	trail.Record(audit.Step{Kind: audit.StepCollect, Actor: "feed", At: now.Add(-30 * time.Hour), Outputs: []audit.CellRef{quote}})
	trail.Record(audit.Step{Kind: audit.StepEnter, Actor: "teller_2", At: now.Add(-29 * time.Hour), Outputs: []audit.CellRef{quote}, Note: "erred entry"})
	trail.Record(audit.Step{Kind: audit.StepTransform, Actor: "eod", At: now.Add(-20 * time.Hour), Inputs: []audit.CellRef{quote}, Outputs: []audit.CellRef{pos}})
	trail.Record(audit.Step{Kind: audit.StepTransform, Actor: "stmt", At: now.Add(-10 * time.Hour), Inputs: []audit.CellRef{pos}, Outputs: []audit.CellRef{stmt}})
	fmt.Print(trail.Report(quote))
	return nil
}

func runAB1() error {
	const n = 50000
	fmt.Printf("relation of %d rows, 3 columns; tags: 2 indicators on 2 columns\n", n)
	plain := workload.Customers(workload.CustomerConfig{N: n, Seed: 3, Untagged: 1.0})
	tagged := workload.Customers(workload.CustomerConfig{N: n, Seed: 3, Untagged: 0.0})
	scan := func(rel *relation.Relation) time.Duration {
		start := time.Now()
		count := 0
		for _, t := range rel.Tuples {
			for _, c := range t.Cells {
				if c.Tags.Has("source") {
					count++
				}
			}
		}
		_ = count
		return time.Since(start)
	}
	fmt.Printf("  scan untagged: %v\n", scan(plain))
	fmt.Printf("  scan tagged:   %v\n", scan(tagged))
	fmt.Println("shape: tagging costs memory and a modest scan overhead; queries unaffected unless tags are read")
	return nil
}

func runAB2() error {
	const n = 100000
	rel := workload.Customers(workload.CustomerConfig{N: n, Seed: 5})
	mk := func(withIndex bool) (*qql.Session, error) {
		cat := storage.NewCatalog()
		sess := qql.NewSession(cat)
		sess.SetNow(workload.Epoch)
		tbl, err := cat.Create(rel.Schema, false)
		if err != nil {
			return nil, err
		}
		if err := tbl.Load(rel); err != nil {
			return nil, err
		}
		if withIndex {
			if err := tbl.CreateIndex(storage.IndexTarget{Attr: "employees", Indicator: "creation_time"}, storage.IndexBTree); err != nil {
				return nil, err
			}
		}
		return sess, nil
	}
	indexed, err := mk(true)
	if err != nil {
		return err
	}
	scanned, err := mk(false)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %-12s %s\n", "selectivity", "indexed", "tablescan", "rows")
	for _, hours := range []int{24, 168, 720, 4380, 8760} {
		q := fmt.Sprintf(`SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@creation_time >= t'%s'`,
			workload.Epoch.Add(-time.Duration(hours)*time.Hour).Format(time.RFC3339))
		t0 := time.Now()
		out, err := indexed.Query(q)
		if err != nil {
			return err
		}
		dIdx := time.Since(t0)
		t0 = time.Now()
		if _, err := scanned.Query(q); err != nil {
			return err
		}
		dScan := time.Since(t0)
		fmt.Printf("%-12s %-12v %-12v %d\n", fmt.Sprintf("<=%dh", hours), dIdx, dScan, out.Tuples[0].Cells[0].V.AsInt())
	}
	fmt.Println("shape: the indicator index wins at low selectivity; the gap narrows as the range widens")
	return nil
}

func runAB3() error {
	ctx := &algebra.EvalContext{Now: workload.Epoch}
	for _, n := range []int{1000, 5000, 20000} {
		data := workload.Trading(workload.TradingConfig{Clients: 100, Stocks: 16, Trades: n, Seed: 9})
		t0 := time.Now()
		j, err := algebra.NewHashJoin(
			algebra.NewRelationScan(data.Trades), algebra.NewRelationScan(data.Stocks),
			&algebra.ColRef{Name: "company_stock_ticker_symbol"}, &algebra.ColRef{Name: "ticker_symbol"},
			nil, ctx)
		if err != nil {
			return err
		}
		out, err := algebra.Collect(j)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		// Count rows whose joined price cell still carries its polygen source.
		withSrc := 0
		col := out.Schema.ColIndex("share_price")
		for _, t := range out.Tuples {
			if len(t.Cells[col].Sources) > 0 {
				withSrc++
			}
		}
		fmt.Printf("  join %6d trades x 16 stocks: %7d rows in %8v; %d carry polygen sources\n",
			n, out.Len(), elapsed, withSrc)
	}
	fmt.Println("shape: propagation is O(rows); source sets ride along without blowup on joins")
	return nil
}

func runAB4() error {
	app := core.ScalableModel(12)
	for _, nViews := range []int{1, 4, 16} {
		for _, nInds := range []int{4, 16} {
			views, err := core.ScalableViews(app, nViews, nInds)
			if err != nil {
				return err
			}
			ig := core.Integrator{Registry: derive.StandardRegistry()}
			t0 := time.Now()
			qs, err := ig.Integrate(views...)
			if err != nil {
				return err
			}
			fmt.Printf("  %2d views x %2d indicators: %4d integrated indicators in %v\n",
				nViews, nInds, len(qs.Indicators), time.Since(t0))
		}
	}
	fmt.Println("shape: integration is near-linear in total annotations; unions dominate")
	return nil
}

func runAB5() error {
	chart, err := inspect.NewPChart(0.01, 500)
	if err != nil {
		return err
	}
	ins := &inspect.Inspector{Rules: []inspect.Rule{
		inspect.NotNull{Attr: "address"}, inspect.NotNull{Attr: "employees"}}}
	base := workload.Customers(workload.CustomerConfig{N: 500, Seed: 100})
	detectedAt := -1
	for day := 0; day < 20; day++ {
		rate := 0.005
		if day >= 12 {
			rate = 0.05 // sustained process shift
		}
		batch, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: int64(day), NullRate: rate})
		res := ins.InspectRelation(batch)
		p, err := chart.AddSample(res.Defective)
		if err != nil {
			return err
		}
		if p.OutOfControl && detectedAt < 0 {
			detectedAt = day
		}
	}
	fmt.Printf("  shift injected at day 12; chart signalled at day %d (%d out-of-control points total)\n",
		detectedAt, len(chart.OutOfControl()))
	if detectedAt < 12 {
		return fmt.Errorf("false alarm before the shift")
	}
	return nil
}
