// qqlload batch-ingests synthetic quality-tagged rows into a running
// qqld over wire protocol v2, one batch frame per round trip. It exists
// for smoke tests and load experiments that need real network ingest
// from the shell (qqlsh is an in-memory REPL and never dials a server):
//
//	qqld -addr 127.0.0.1:7583 -data /var/lib/qqld &
//	qqlload -addr 127.0.0.1:7583 -table emp -rows 500 -batch 50
//
// Each row is tagged with a source quality attribute so per-source
// gauges (qqld_table_source_rows) are exercised, and the tool verifies
// the final COUNT(*) matches before exiting 0. Under a durable server
// every acknowledged batch has reached the write-ahead log, so a crash
// immediately after qqlload returns must lose nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/server/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7583", "qqld address to dial")
	table := flag.String("table", "ingest", "target table name")
	rows := flag.Int("rows", 1000, "INSERT statements to ship")
	batch := flag.Int("batch", 50, "statements per wire v2 batch frame")
	source := flag.String("source", "hr", "quality source tag on every row")
	create := flag.Bool("create", true, "CREATE TABLE first (fails if it exists)")
	flag.Parse()
	if err := run(*addr, *table, *source, *rows, *batch, *create); err != nil {
		fmt.Fprintln(os.Stderr, "qqlload:", err)
		os.Exit(1)
	}
}

func run(addr, table, source string, rows, batch int, create bool) error {
	if rows <= 0 || batch <= 0 {
		return fmt.Errorf("-rows and -batch must be positive")
	}
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if create {
		ddl := fmt.Sprintf(`CREATE TABLE %s (
			id int REQUIRED,
			name string QUALITY (source string)
		) KEY (id)`, table)
		if _, err := c.Exec(ddl); err != nil {
			return err
		}
	}
	start := time.Now()
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		qs := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			qs = append(qs, fmt.Sprintf(
				`INSERT INTO %s VALUES (%d, 'n%04d' @ {source: '%s'})`, table, i, i, source))
		}
		resps, err := c.ExecBatch(qs)
		if err != nil {
			return err
		}
		for i, r := range resps {
			if r.Err != "" {
				return fmt.Errorf("statement %d: %s", lo+i, r.Err)
			}
		}
	}
	elapsed := time.Since(start)
	n, err := c.QueryInt(fmt.Sprintf(`SELECT COUNT(*) AS n FROM %s`, table))
	if err != nil {
		return err
	}
	fmt.Printf("qqlload: %d rows into %q on %s in %v (%.0f stmts/s)\n",
		n, table, addr, elapsed.Round(time.Millisecond),
		float64(rows)/elapsed.Seconds())
	if n != int64(rows) {
		return fmt.Errorf("server reports %d rows, want %d", n, rows)
	}
	return nil
}
