// Command qqld serves QQL over TCP: the network daemon in front of the
// quality-tagged store. Clients speak the wire protocol of
// internal/server/wire — v2 length-prefixed frames with pipelined request
// IDs and JSON or binary payloads via internal/server/client, or the
// legacy v1 line-delimited JSON ({"q": "<qql>"} per line, auto-detected)
// via netcat or anything that can write a line of JSON.
//
//	qqld                                # listen on :7583
//	qqld -addr 127.0.0.1:9000           # custom address
//	qqld -seed demo.qql                 # run a script before serving
//	qqld -now 1992-01-01T00:00:00Z      # fix every session's clock
//	qqld -max-conns 256 -cache 1024     # scale knobs
//	qqld -inflight 64                   # per-conn pipeline depth bound
//	qqld -encoding json                 # force response payload encoding
//	qqld -metrics 127.0.0.1:7584        # /metrics, /stats, /debug/pprof/
//	qqld -slow-query 50ms               # log statements at or over 50ms
//	qqld -data /var/lib/qqld            # durable: WAL + checkpoints in dir
//	qqld -data d -fsync group           # group commit (default; also always, off)
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight statements finish,
// connections close, and the final serving stats are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/qql"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/wal"
)

func main() {
	addr := flag.String("addr", ":7583", "TCP listen address")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent connections")
	cacheSize := flag.Int("cache", qql.DefaultCacheSize, "shared plan cache entries per tier (0 disables caching)")
	nowFlag := flag.String("now", "", "fix the session clock (RFC3339); default wall clock")
	seedPath := flag.String("seed", "", "QQL script to execute before serving")
	parallel := flag.Int("parallel", 0, "scan fan-out degree for large unindexed scans (0 = GOMAXPROCS, 1 = serial)")
	inflight := flag.Int("inflight", 0, "per-connection pipeline depth: wire v2 frames read but not yet answered (0 = default 32)")
	encoding := flag.String("encoding", "auto", "wire v2 response payload encoding: auto (mirror request), json, binary")
	maxResult := flag.Int("max-result-bytes", 0, "per-response size cap; larger results become structured errors (0 = protocol cap)")
	metricsAddr := flag.String("metrics", "", "observability HTTP listen address serving /metrics, /stats and /debug/pprof/ (empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "log statements executing at least this long, e.g. 50ms (0 disables)")
	dataDir := flag.String("data", "", "durability directory: write-ahead log + snapshot checkpoints (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "group", "WAL commit mode with -data: group (coalesce concurrent commits into one fsync), always (fsync per commit), off (no fsync; crash may lose acknowledged writes)")
	flag.Parse()

	switch *encoding {
	case "auto", "json", "binary":
	default:
		fmt.Fprintf(os.Stderr, "qqld: bad -encoding %q (want auto, json or binary)\n", *encoding)
		os.Exit(2)
	}
	cfg := server.Config{
		Addr: *addr, MaxConns: *maxConns, CacheSize: *cacheSize, Parallelism: *parallel,
		MaxInFlight: *inflight, Encoding: *encoding, MaxResultBytes: *maxResult,
		SlowQuery: *slowQuery,
	}
	if *cacheSize <= 0 {
		// -cache 0 genuinely disables caching; Config reserves 0 for "the
		// default" (its zero value), so disabled travels as a negative.
		cfg.CacheSize = -1
	}
	if *nowFlag != "" {
		t, err := time.Parse(time.RFC3339, *nowFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qqld: bad -now: %v\n", err)
			os.Exit(2)
		}
		cfg.Now = t
	}

	cat := storage.NewCatalog()
	var wlog *wal.Log
	if *dataDir != "" {
		mode, err := wal.ParseFsyncMode(*fsyncMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qqld: bad -fsync: %v\n", err)
			os.Exit(2)
		}
		wlog, err = wal.Open(*dataDir, wal.Options{Fsync: mode})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qqld:", err)
			os.Exit(1)
		}
		cat = wlog.Catalog()
		cfg.WAL = wlog
		rs := wlog.RecoveryStats()
		fmt.Printf("qqld: recovered %s in %v: checkpoint seq %d, %d record(s) replayed, %d table(s), %d torn byte(s) truncated\n",
			*dataDir, rs.Duration.Round(time.Microsecond), rs.CheckpointSeq, rs.Replayed, rs.Tables, rs.TornBytes)
	} else if *fsyncMode != "group" {
		fmt.Fprintln(os.Stderr, "qqld: -fsync requires -data")
		os.Exit(2)
	}
	if *seedPath != "" {
		raw, err := os.ReadFile(*seedPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qqld:", err)
			os.Exit(1)
		}
		sess := qql.NewSession(cat)
		if wlog != nil {
			sess.SetDurability(wlog)
		}
		if !cfg.Now.IsZero() {
			sess.SetNow(cfg.Now)
		}
		if _, err := sess.Exec(string(raw)); err != nil {
			fmt.Fprintf(os.Stderr, "qqld: seed %s: %v\n", *seedPath, err)
			os.Exit(1)
		}
		fmt.Printf("qqld: seeded from %s (%d table(s))\n", *seedPath, len(cat.Names()))
	}

	srv := server.New(cat, cfg)
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "qqld:", err)
		os.Exit(1)
	}
	cacheDesc := fmt.Sprintf("cache %d entries/tier", *cacheSize)
	if *cacheSize <= 0 {
		cacheDesc = "cache disabled"
	}
	fmt.Printf("qqld: listening on %s (max %d conns, %s)\n", srv.Addr(), *maxConns, cacheDesc)

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qqld: metrics:", err)
			os.Exit(1)
		}
		msrv = &http.Server{Handler: srv.MetricsHandler()}
		go func() {
			if err := msrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "qqld: metrics:", err)
			}
		}()
		fmt.Printf("qqld: metrics on http://%s/metrics (also /stats, /debug/pprof/)\n", mln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	var err error
	select {
	case sig := <-sigc:
		fmt.Printf("qqld: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if serr := srv.Shutdown(ctx); serr != nil {
			fmt.Fprintln(os.Stderr, "qqld: shutdown:", serr)
		}
		cancel()
		err = <-serveErr
	case err = <-serveErr:
	}
	if msrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = msrv.Shutdown(ctx)
		cancel()
	}
	if wlog != nil {
		if werr := wlog.Close(); werr != nil {
			fmt.Fprintln(os.Stderr, "qqld: wal close:", werr)
		}
	}
	st := srv.Stats()
	if st.Cache.Disabled {
		fmt.Printf("qqld: served %d queries (%d errors) over %d connections; plan cache disabled\n",
			st.Queries, st.Errors, st.Accepted)
	} else {
		fmt.Printf("qqld: served %d queries (%d errors) over %d connections; AST cache %d/%d hits (%.0f%%), bound-plan cache %d/%d hits (%.0f%%, %d invalidations)\n",
			st.Queries, st.Errors, st.Accepted,
			st.Cache.Hits, st.Cache.Hits+st.Cache.Misses, 100*st.Cache.HitRate(),
			st.Cache.PlanHits, st.Cache.PlanHits+st.Cache.PlanMisses, 100*st.Cache.PlanHitRate(),
			st.Cache.PlanInvalidations)
	}
	// Serve wraps net.ErrClosed after a clean Shutdown; that's success.
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "qqld:", err)
		os.Exit(1)
	}
}
