// Executable coverage of the paper's premises (§2): each test demonstrates
// one premise as observable system behaviour, so the conceptual claims are
// pinned by code rather than prose.
package repro_test

import (
	"testing"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/quality"
	"repro/internal/value"
	"repro/internal/workload"
)

// Premise 1.1 — application and quality attributes may not be distinct: the
// integrator suggests promoting company_name from indicator to application
// attribute, and Promote performs the refinement.
func TestPremise11RelatednessOfApplicationAndQuality(t *testing.T) {
	res := core.MustTradingResult()
	if len(res.QualitySchema.PromoteSuggestions) == 0 {
		t.Fatal("no promotion suggestions")
	}
	sugg := res.QualitySchema.PromoteSuggestions[0]
	if err := res.QualitySchema.Promote(sugg); err != nil {
		t.Fatal(err)
	}
	ent, _ := res.QualitySchema.App.Entity(sugg.Element.Owner)
	if _, ok := ent.Attr(sugg.Indicator); !ok {
		t.Error("promoted indicator did not become an application attribute")
	}
}

// Premise 1.2 — quality attributes need not be orthogonal: the catalog's
// relatedness graph links timeliness and volatility symmetrically.
func TestPremise12NonOrthogonality(t *testing.T) {
	rel := catalog.Related("timeliness")
	found := false
	for _, p := range rel {
		if p == "volatility" {
			found = true
		}
	}
	if !found {
		t.Errorf("timeliness should relate to volatility: %v", rel)
	}
}

// Premise 1.3 — quality differs across entities, attributes, and instances:
// the same relation carries per-cell tags with different sources and ages,
// and filtering separates instances.
func TestPremise13Heterogeneity(t *testing.T) {
	rel := workload.PaperTable2()
	// Attribute-level: address and employees of the same tuple carry
	// different tags.
	fruit := rel.Tuples[0]
	aSrc, _ := fruit.Cells[1].Tags.Get("source")
	eSrc, _ := fruit.Cells[2].Tags.Get("source")
	if value.Equal(aSrc, eSrc) {
		t.Error("attribute-level heterogeneity missing")
	}
	// Instance-level: the two tuples' employee counts have different
	// credibility.
	reg := repro.StandardRegistry()
	ctx := &derive.Context{Now: workload.Epoch}
	g1, _ := reg.GradeCell("credibility", rel.Tuples[0].Cells[2], ctx)
	g2, _ := reg.GradeCell("credibility", rel.Tuples[1].Cells[2], ctx)
	if g1 == g2 {
		t.Error("instance-level heterogeneity missing")
	}
}

// Premise 1.4 — recursive quality: meta-tags on indicator values are stored
// and queryable one level deep.
func TestPremise14MetaQuality(t *testing.T) {
	db := repro.NewDatabase()
	db.Session.MustExec(`CREATE TABLE m (x int QUALITY (source string));
INSERT INTO m VALUES (1 @ {source: 'Nexis' @ {credibility: 'high'}})`)
	rel, err := db.Session.Query(`SELECT x FROM m WITH QUALITY x@source@credibility = 'high'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Error("meta-quality not queryable")
	}
}

// Premise 2.1 — quality attributes vary across users: two design teams over
// the same application elicit different indicators; integration unions them.
func TestPremise21UserSpecificAttributes(t *testing.T) {
	p, err := core.TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// View 1 asked for age (subsumed) and analyst_name; view 2 asked for
	// creation_time and source. The integrated schema carries both users'
	// surviving requirements on share_price.
	wantBoth := map[string]bool{"creation_time": false, "source": false}
	for _, a := range res.QualitySchema.Indicators {
		if a.Element.String() == "company_stock.share_price" {
			if _, ok := wantBoth[a.Indicator]; ok {
				wantBoth[a.Indicator] = true
			}
		}
	}
	for ind, ok := range wantBoth {
		if !ok {
			t.Errorf("integrated schema missing %s from the second user", ind)
		}
	}
}

// Premise 2.2 — users have different quality standards: two freshness
// thresholds over the same data give nested result sets.
func TestPremise22UserSpecificStandards(t *testing.T) {
	db := repro.NewDatabase().At(workload.Epoch)
	data := workload.Trading(workload.TradingConfig{Clients: 5, Stocks: 12, Trades: 10, Seed: 4})
	tbl, err := db.Catalog.Create(data.Stocks.Schema, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(data.Stocks); err != nil {
		t.Fatal(err)
	}
	count := func(window string) int64 {
		rel, err := db.Session.Query(
			`SELECT COUNT(*) AS n FROM company_stock WITH QUALITY AGE(share_price@creation_time) <= d'` + window + `'`)
		if err != nil {
			t.Fatal(err)
		}
		return rel.Tuples[0].Cells[0].V.AsInt()
	}
	strict, loose := count("12h"), count("72h")
	if strict > loose {
		t.Errorf("stricter standard returned more rows: %d > %d", strict, loose)
	}
	if loose == 0 {
		t.Error("loose standard degenerated")
	}
}

// Premise 3 — one user, non-uniform standards across attributes: a single
// profile may demand high quality for address but none for employees.
func TestPremise3NonUniformStandardsWithinUser(t *testing.T) {
	rel := workload.PaperTable2()
	ev := &repro.Evaluator{Registry: repro.StandardRegistry(), Now: workload.Epoch}
	p := &repro.Profile{Name: "analyst",
		Constraints: []quality.IndicatorConstraint{
			// Strict on address freshness only; employees unconstrained.
			{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
				Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
		}}
	out, _, err := ev.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	// Nut Co's address is fresh but its employee count is an estimate —
	// and it still passes, because this user does not constrain it.
	if out.Len() != 1 || out.Tuples[0].Cells[0].V.AsString() != "Nut Co" {
		t.Fatalf("non-uniform standard result = %v", out.Tuples)
	}
}

// The §1.3 definitions — quality indicator values are objective
// measurements; quality parameter values derive from them via user-defined
// functions (source = Wall Street Journal => credibility high).
func TestDefinitionParameterValueDerivation(t *testing.T) {
	reg := repro.StandardRegistry()
	cell := repro.Cell{V: value.Str("report")}
	cell.Tags = cell.Tags.With("source", value.Str("Wall Street Journal"))
	g, err := reg.GradeCell("credibility", cell, &derive.Context{Now: workload.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if g != derive.VeryHigh {
		t.Errorf("WSJ credibility = %v", g)
	}
}

// Figure 2's documentation requirement: every intermediate view is part of
// the quality requirements specification.
func TestFigure2DocumentationBundle(t *testing.T) {
	res := core.MustTradingResult()
	if res.ParameterView == nil || res.QualityView == nil || res.QualitySchema == nil {
		t.Fatal("missing methodology documents")
	}
	if len(res.Schemas) == 0 {
		t.Fatal("missing compiled schemas")
	}
	_ = er.TradingModel()
}
