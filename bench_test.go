// Benchmarks, one per reproduced artifact and ablation (see EXPERIMENTS.md
// for the experiment index). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/inspect"
	"repro/internal/qql"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// BenchmarkTable1 regenerates the paper's Table 1 (untagged relation).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rel := workload.PaperTable1()
		if rel.Len() != 2 {
			b.Fatal("wrong table")
		}
		_ = relation.Format(rel, false)
	}
}

// BenchmarkTable2 regenerates Table 2 (cell-level quality tags).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rel := workload.PaperTable2()
		if rel.Len() != 2 {
			b.Fatal("wrong table")
		}
		_ = relation.Format(rel, true)
	}
}

// BenchmarkMethodology runs the full Figure 2 pipeline (Steps 2-4 plus
// compilation) for the trading application.
func BenchmarkMethodology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.TradingPipeline()
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Schemas) != 3 {
			b.Fatal("wrong schema count")
		}
	}
}

// loadCustomers builds a session over n generated customers, optionally
// indexing the creation_time indicator.
func loadCustomers(b *testing.B, n int, index bool) *qql.Session {
	b.Helper()
	rel := workload.Customers(workload.CustomerConfig{N: n, Seed: 1})
	cat := storage.NewCatalog()
	sess := qql.NewSession(cat)
	sess.SetNow(workload.Epoch)
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Load(rel); err != nil {
		b.Fatal(err)
	}
	if index {
		if err := tbl.CreateIndex(storage.IndexTarget{Attr: "employees", Indicator: "creation_time"}, storage.IndexBTree); err != nil {
			b.Fatal(err)
		}
		if err := tbl.CreateIndex(storage.IndexTarget{Attr: "employees", Indicator: "source"}, storage.IndexHash); err != nil {
			b.Fatal(err)
		}
	}
	return sess
}

// BenchmarkQualityFilter measures the §1.2 scenario: query-time filtering
// over quality indicator tags (X1).
func BenchmarkQualityFilter(b *testing.B) {
	sess := loadCustomers(b, 20000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sess.Query(`SELECT COUNT(*) AS n FROM customer
WITH QUALITY employees@source != 'estimate' AND AGE(employees@creation_time) <= d'720h'`)
		if err != nil {
			b.Fatal(err)
		}
		if out.Tuples[0].Cells[0].V.AsInt() == 0 {
			b.Fatal("filter degenerated")
		}
	}
}

// BenchmarkIntegration measures Step 4 on the paper's two trading views,
// including the age/creation_time subsumption (X2).
func BenchmarkIntegration(b *testing.B) {
	p, err := core.TradingPipeline()
	if err != nil {
		b.Fatal(err)
	}
	pv, err := core.Step2(p.App, p.Step2)
	if err != nil {
		b.Fatal(err)
	}
	qv, err := core.Step3(pv, p.Step3)
	if err != nil {
		b.Fatal(err)
	}
	second := p.ExtraViews[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs, err := p.Integrator.Integrate(qv, second)
		if err != nil {
			b.Fatal(err)
		}
		if len(qs.Indicators) == 0 {
			b.Fatal("integration produced nothing")
		}
	}
}

// BenchmarkGrading measures §4 clearing-house classification (X3).
func BenchmarkGrading(b *testing.B) {
	rel := workload.Addresses(workload.AddressConfig{N: 10000, Seed: 42, FreshFraction: 0.4, VerifiedFraction: 0.35})
	ev := &quality.Evaluator{Registry: derive.StandardRegistry(), Now: workload.Epoch}
	classes := []quality.GradeClass{
		{Name: "A", Profile: &quality.Profile{Constraints: []quality.IndicatorConstraint{
			{Attr: "address", Indicator: "source", Op: quality.OpEq, Bound: value.Str("registry")},
			{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
				Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
		}}},
		{Name: "B", Profile: &quality.Profile{Constraints: []quality.IndicatorConstraint{
			{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
				Bound: value.Duration(365 * 24 * time.Hour), AgeOf: true},
		}}},
		{Name: "C", Profile: &quality.Profile{}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, counts, err := ev.Classify(rel, classes)
		if err != nil {
			b.Fatal(err)
		}
		if counts["A"] == 0 {
			b.Fatal("degenerate grading")
		}
	}
}

// BenchmarkAuditTrace measures lineage and contamination walks on a deep
// manufacturing trail (X4).
func BenchmarkAuditTrace(b *testing.B) {
	tr := audit.NewTrail()
	const depth = 200
	cells := make([]audit.CellRef, depth+1)
	for i := range cells {
		cells[i] = audit.CellRef{Table: "t", Key: fmt.Sprintf("k%d", i), Attr: "v"}
	}
	now := workload.Epoch
	tr.Record(audit.Step{Kind: audit.StepCollect, Actor: "feed", At: now, Outputs: []audit.CellRef{cells[0]}})
	for i := 0; i < depth; i++ {
		tr.Record(audit.Step{Kind: audit.StepTransform, Actor: "batch",
			At:     now.Add(time.Duration(i) * time.Minute),
			Inputs: []audit.CellRef{cells[i]}, Outputs: []audit.CellRef{cells[i+1]}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Lineage(cells[depth]); len(got) != depth+1 {
			b.Fatalf("lineage = %d steps", len(got))
		}
		if got := tr.Contaminated(cells[0]); len(got) != depth {
			b.Fatalf("contamination = %d cells", len(got))
		}
	}
}

// BenchmarkTaggingOverhead compares scanning tagged vs untagged relations
// (AB1).
func BenchmarkTaggingOverhead(b *testing.B) {
	for _, tagged := range []bool{false, true} {
		name := "untagged"
		untaggedFrac := 1.0
		if tagged {
			name = "tagged"
			untaggedFrac = 0.0
		}
		rel := workload.Customers(workload.CustomerConfig{N: 20000, Seed: 3, Untagged: untaggedFrac})
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hits := 0
				for _, t := range rel.Tuples {
					for _, c := range t.Cells {
						if c.Tags.Has("source") {
							hits++
						}
					}
				}
				if tagged && hits == 0 {
					b.Fatal("no tags found")
				}
			}
		})
	}
}

// BenchmarkSelectivitySweep compares indexed vs scanned quality-range
// queries at several selectivities (AB2).
func BenchmarkSelectivitySweep(b *testing.B) {
	for _, idx := range []bool{true, false} {
		sess := loadCustomers(b, 20000, idx)
		for _, hours := range []int{24, 720, 8760} {
			name := fmt.Sprintf("index=%v/window=%dh", idx, hours)
			q := fmt.Sprintf(`SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@creation_time >= t'%s'`,
				workload.Epoch.Add(-time.Duration(hours)*time.Hour).Format(time.RFC3339))
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPolygenJoin measures source-set propagation through hash joins
// (AB3).
func BenchmarkPolygenJoin(b *testing.B) {
	data := workload.Trading(workload.TradingConfig{Clients: 100, Stocks: 16, Trades: 10000, Seed: 9})
	ctx := &algebra.EvalContext{Now: workload.Epoch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := algebra.NewHashJoin(
			algebra.NewRelationScan(data.Trades), algebra.NewRelationScan(data.Stocks),
			&algebra.ColRef{Name: "company_stock_ticker_symbol"}, &algebra.ColRef{Name: "ticker_symbol"},
			nil, ctx)
		if err != nil {
			b.Fatal(err)
		}
		out, err := algebra.Collect(j)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != 10000 {
			b.Fatalf("join rows = %d", out.Len())
		}
	}
}

// BenchmarkIntegrationScale measures Step 4 at 16 views x 16 indicators
// (AB4).
func BenchmarkIntegrationScale(b *testing.B) {
	app := core.ScalableModel(12)
	views, err := core.ScalableViews(app, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	ig := core.Integrator{Registry: derive.StandardRegistry()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs, err := ig.Integrate(views...)
		if err != nil {
			b.Fatal(err)
		}
		if len(qs.Indicators) != 16 {
			b.Fatalf("integrated = %d", len(qs.Indicators))
		}
	}
}

// BenchmarkSPC measures p-chart maintenance over inspection samples (AB5).
func BenchmarkSPC(b *testing.B) {
	base := workload.Customers(workload.CustomerConfig{N: 500, Seed: 100})
	ins := &inspect.Inspector{Rules: []inspect.Rule{
		inspect.NotNull{Attr: "address"}, inspect.NotNull{Attr: "employees"}}}
	batches := make([]inspect.InspectionResult, 10)
	for day := range batches {
		rate := 0.005
		if day == 7 {
			rate = 0.08
		}
		rel, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: int64(day), NullRate: rate})
		batches[day] = ins.InspectRelation(rel)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chart, err := inspect.NewPChart(0.01, 500)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range batches {
			if _, err := chart.AddSample(res.Defective); err != nil {
				b.Fatal(err)
			}
		}
		if len(chart.OutOfControl()) == 0 {
			b.Fatal("burst not detected")
		}
	}
}

// BenchmarkQQLParse measures the DSL front end alone.
func BenchmarkQQLParse(b *testing.B) {
	src := `SELECT c.co_name, SUM(t.qty) AS total FROM customer c JOIN trades t ON c.co_name = t.co_name
WHERE t.qty > 10 WITH QUALITY c.employees@source != 'estimate' AND AGE(c.address@creation_time) <= d'720h'
GROUP BY c.co_name ORDER BY total DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := qql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertTagged measures strict-mode tagged inserts into an indexed
// table.
func BenchmarkInsertTagged(b *testing.B) {
	rel := workload.Customers(workload.CustomerConfig{N: 1000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := storage.NewTable(rel.Schema, false)
		if err := tbl.CreateIndex(storage.IndexTarget{Attr: "employees", Indicator: "source"}, storage.IndexHash); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Load(rel); err != nil {
			b.Fatal(err)
		}
	}
}
