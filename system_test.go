// End-to-end integration tests: methodology -> compiled schemas -> storage
// -> QQL -> profiles -> administration, on the paper's trading application.
package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestEndToEndTradingApplication walks the whole system: run the
// methodology, create tables from the compiled quality schema, insert
// tagged data through QQL, and retrieve data of specific quality.
func TestEndToEndTradingApplication(t *testing.T) {
	res := core.MustTradingResult()

	db := repro.NewDatabase().At(workload.Epoch)
	for _, sc := range res.Schemas {
		if _, err := db.Catalog.Create(sc, true); err != nil {
			t.Fatal(err)
		}
	}

	// The compiled company_stock schema demands creation_time+source on
	// share_price and analyst_name/media/price on research_report —
	// strict mode enforces exactly the quality requirements.
	_, err := db.Session.Exec(`
INSERT INTO company_stock VALUES (
  'IBM' @ {company_name: 'Intl Business Machines'},
  98.5  @ {creation_time: t'1991-12-31T16:00:00Z', source: 'reuters'},
  'q4 outlook' @ {analyst_name: 'a_smith', media: 'ascii', price: 250.0}
)`)
	if err != nil {
		t.Fatal(err)
	}
	// Missing a required indicator tag: rejected.
	_, err = db.Session.Exec(`
INSERT INTO company_stock VALUES (
  'DEC' @ {company_name: 'Digital Equipment'},
  22.0,
  'memo' @ {analyst_name: 'b_jones', media: 'ascii', price: 10.0}
)`)
	if err == nil || !strings.Contains(err.Error(), "missing required indicator") {
		t.Fatalf("untagged share_price should be rejected, got %v", err)
	}

	// Retrieve data of specific quality (paper §1.3 definition of
	// quality requirements).
	rel, err := db.Session.Query(`
SELECT ticker_symbol FROM company_stock
WITH QUALITY share_price@source = 'reuters' AND AGE(share_price@creation_time) <= d'24h'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "IBM" {
		t.Fatalf("quality query = %v", rel.Tuples)
	}
}

// TestWorkloadConformsToCompiledSchema loads the generated trading data
// into tables created from the methodology's compiled schemas (lenient
// mode, since the generator omits the promoted/extra indicators) and runs
// the paper's filtering scenarios.
func TestWorkloadConformsToCompiledSchema(t *testing.T) {
	data := workload.Trading(workload.TradingConfig{Clients: 30, Stocks: 12, Trades: 500, Seed: 21})
	db := repro.NewDatabase().At(workload.Epoch)
	for _, rel := range []*relation.Relation{data.Clients, data.Stocks, data.Trades} {
		tbl, err := db.Catalog.Create(rel.Schema, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Load(rel); err != nil {
			t.Fatal(err)
		}
	}
	// Premise 2.2: two users, two standards, nested results.
	loose, err := db.Session.Query(`SELECT COUNT(*) AS n FROM company_stock
WITH QUALITY AGE(share_price@creation_time) <= d'72h'`)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := db.Session.Query(`SELECT COUNT(*) AS n FROM company_stock
WITH QUALITY AGE(share_price@creation_time) <= d'24h'`)
	if err != nil {
		t.Fatal(err)
	}
	nLoose, nStrict := loose.Tuples[0].Cells[0].V.AsInt(), strict.Tuples[0].Cells[0].V.AsInt()
	if nStrict > nLoose {
		t.Fatalf("strict user sees more than loose user: %d > %d", nStrict, nLoose)
	}
	if nLoose != int64(data.Stocks.Len()) {
		t.Fatalf("72h window should cover all generated quotes: %d != %d", nLoose, data.Stocks.Len())
	}

	// Join + aggregate with a quality clause over the joined stream.
	top, err := db.Session.Query(`
SELECT t.company_stock_ticker_symbol, SUM(quantity) AS total
FROM trade t JOIN company_stock s ON t.company_stock_ticker_symbol = s.ticker_symbol
WITH QUALITY s.share_price@source != 'telerate'
GROUP BY t.company_stock_ticker_symbol ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() == 0 {
		t.Fatal("no positions survived the quality clause")
	}
	// None of the surviving tickers is telerate-sourced.
	telerate := map[string]bool{}
	for _, tup := range data.Stocks.Tuples {
		if src, _ := tup.Cells[1].Tags.Get("source"); src.AsString() == "telerate" {
			telerate[tup.Cells[0].V.AsString()] = true
		}
	}
	for _, tup := range top.Tuples {
		if telerate[tup.Cells[0].V.AsString()] {
			t.Errorf("telerate-sourced ticker %s leaked through", tup.Cells[0].V)
		}
	}
}

// TestProfilesOverQQLResults chains the two filtering mechanisms: a QQL
// query narrows the data, then a user profile grades what remains.
func TestProfilesOverQQLResults(t *testing.T) {
	db := repro.NewDatabase().At(workload.Epoch)
	rel := workload.Customers(workload.CustomerConfig{N: 5000, Seed: 13})
	tbl, err := db.Catalog.Create(rel.Schema, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(rel); err != nil {
		t.Fatal(err)
	}
	big, err := db.Session.Query(`SELECT * FROM customer WHERE employees >= 5000`)
	if err != nil {
		t.Fatal(err)
	}
	ev := &repro.Evaluator{Registry: repro.StandardRegistry(), Now: workload.Epoch}
	profile := &repro.Profile{Name: "analyst",
		Requirements: []quality.ParameterRequirement{
			{Attr: "employees", Parameter: "credibility", Min: derive.Medium},
		}}
	kept, rep, err := ev.Filter(big, profile)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != big.Len() || kept.Len()+len(rep.Rejections) != rep.Total {
		t.Fatalf("report does not balance: %+v", rep)
	}
	if kept.Len() == 0 || kept.Len() == big.Len() {
		t.Fatalf("profile should be selective: kept %d of %d", kept.Len(), big.Len())
	}
	// Every kept row's employees source grades at least Medium.
	ctx := &derive.Context{Now: workload.Epoch}
	col := kept.Schema.ColIndex("employees")
	for _, tup := range kept.Tuples {
		g, err := ev.Registry.GradeCell("credibility", tup.Cells[col], ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !g.AtLeast(derive.Medium) {
			t.Fatalf("kept row grades %v", g)
		}
	}
}

// TestPolygenSourcesThroughQQL checks that SOURCE() predicates and polygen
// propagation survive a full QQL round trip.
func TestPolygenSourcesThroughQQL(t *testing.T) {
	db := repro.NewDatabase().At(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	db.Session.MustExec(`
CREATE TABLE quotes (sym string, px float);
INSERT INTO quotes VALUES ('IBM', 98.5 SOURCE ('reuters', 'exchange')),
                          ('DEC', 22.0 SOURCE 'telerate');`)
	rel, err := db.Session.Query(`SELECT sym, px * 2 AS dbl FROM quotes WHERE SOURCE(px, 'reuters')`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "IBM" {
		t.Fatalf("SOURCE predicate = %v", rel.Tuples)
	}
	// The derived cell keeps the polygen union.
	if !rel.Tuples[0].Cells[1].Sources.Equal(tag.NewSources("exchange", "reuters")) {
		t.Errorf("derived sources = %v", rel.Tuples[0].Cells[1].Sources)
	}
}

// TestSchemaRoundTripThroughStorage compiles the quality schema, creates
// strict tables for every relation, and confirms the required indicators
// appear in DESCRIBE output.
func TestSchemaRoundTripThroughStorage(t *testing.T) {
	res := core.MustTradingResult()
	db := repro.NewDatabase()
	for _, sc := range res.Schemas {
		if _, err := db.Catalog.Create(sc, true); err != nil {
			t.Fatal(err)
		}
	}
	out := db.Session.MustExec(`DESCRIBE company_stock`)
	found := false
	for _, tup := range out[0].Rel.Tuples {
		if tup.Cells[0].V.AsString() == "share_price" &&
			strings.Contains(tup.Cells[3].V.AsString(), "creation_time time") &&
			strings.Contains(tup.Cells[3].V.AsString(), "source string") {
			found = true
		}
	}
	if !found {
		t.Error("compiled indicators not visible through DESCRIBE")
	}
	// Indicator indexes can be created on compiled quality columns.
	tbl, _ := db.Catalog.Get("trade")
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "quantity", Indicator: "entered_by"}, storage.IndexHash); err != nil {
		t.Fatal(err)
	}
}

// TestValuePublicAliases sanity-checks the facade's re-exports.
func TestValuePublicAliases(t *testing.T) {
	var v repro.Value = value.Int(3)
	if v.AsInt() != 3 {
		t.Error("Value alias broken")
	}
	var c repro.Cell
	c.V = value.Str("x")
	if c.V.AsString() != "x" {
		t.Error("Cell alias broken")
	}
	if repro.TradingModel().Name != "trading" {
		t.Error("TradingModel broken")
	}
}
