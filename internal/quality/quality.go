// Package quality implements per-user data quality requirements: the
// acceptability filtering and grading the paper sketches in §4.
//
// Premises 2.1, 2.2 and 3: different users have different quality
// attributes and standards, and a single user applies different standards
// to different data. A Profile captures one user's requirements as (a)
// constraints over quality indicator values and (b) minimum grades for
// derived quality parameters. Filtering evaluates a relation against a
// profile and reports, per rejected tuple, which requirement failed —
// the accounting a data quality administrator needs.
//
// The clearing-house scenario (§4) is expressed with graded profiles: a
// mass-mailing application accepts everything (no constraints), while fund
// raising constrains accuracy and timeliness.
package quality

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/derive"
	"repro/internal/relation"
	"repro/internal/value"
)

// Op is a comparison operator for indicator constraints.
type Op uint8

// Operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPresent // the indicator must be tagged, any value
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "present"}

// String renders the operator.
func (o Op) String() string { return opNames[o] }

// IndicatorConstraint requires an indicator on an attribute's cells to
// satisfy op against a bound. MaxAge-style requirements use the special
// AgeOf form: when AgeOf is true the constraint compares now-minus-value
// (the indicator must be a time) against the bound duration.
type IndicatorConstraint struct {
	// Attr is the attribute whose cells are checked.
	Attr string
	// Indicator is the indicator name on those cells.
	Indicator string
	// Op compares the tagged value against Bound.
	Op Op
	// Bound is the comparison bound (unused for OpPresent).
	Bound value.Value
	// AgeOf interprets the tagged time value as an age relative to the
	// evaluation instant before comparing.
	AgeOf bool
}

// String renders e.g. "address@source = 'registry'" or
// "age(address@creation_time) <= 720h".
func (c IndicatorConstraint) String() string {
	ref := c.Attr + "@" + c.Indicator
	if c.AgeOf {
		ref = "age(" + ref + ")"
	}
	if c.Op == OpPresent {
		return ref + " present"
	}
	return ref + " " + c.Op.String() + " " + c.Bound.Literal()
}

// ParameterRequirement requires a derived parameter grade on an attribute's
// cells to meet a minimum.
type ParameterRequirement struct {
	Attr      string
	Parameter string
	Min       derive.Grade
}

// String renders e.g. "credibility(employees) >= high".
func (r ParameterRequirement) String() string {
	return r.Parameter + "(" + r.Attr + ") >= " + r.Min.String()
}

// Profile is one user's (or application's) quality requirements (Premise
// 2.1/2.2: quality attributes and standards vary across users).
type Profile struct {
	// Name identifies the profile ("mass_mailing", "fund_raising").
	Name string
	// Doc describes the application the profile serves.
	Doc string
	// Constraints are hard indicator requirements.
	Constraints []IndicatorConstraint
	// Requirements are minimum parameter grades, evaluated through a
	// derivation registry.
	Requirements []ParameterRequirement
}

// Rejection explains why a tuple failed a profile.
type Rejection struct {
	// Row is the tuple index within the filtered relation.
	Row int
	// Reason is the first failed constraint or requirement, rendered.
	Reason string
}

// Report is the outcome of filtering a relation through a profile.
type Report struct {
	Profile  string
	Total    int
	Accepted int
	// Rejections lists each rejected row with its first failing reason.
	Rejections []Rejection
	// ByReason counts rejections per requirement string.
	ByReason map[string]int
}

// String renders a one-line summary plus per-reason counts.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: accepted %d/%d", r.Profile, r.Accepted, r.Total)
	if len(r.ByReason) > 0 {
		reasons := make([]string, 0, len(r.ByReason))
		for reason := range r.ByReason {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Fprintf(&b, "\n  %4d rejected by %s", r.ByReason[reason], reason)
		}
	}
	return b.String()
}

// Evaluator filters relations through profiles.
type Evaluator struct {
	// Registry supplies parameter derivation functions; required when
	// profiles carry ParameterRequirements.
	Registry *derive.Registry
	// Now anchors age computations.
	Now time.Time
}

// checkConstraint evaluates one indicator constraint over a tuple.
func (e *Evaluator) checkConstraint(c IndicatorConstraint, rel *relation.Relation, t relation.Tuple) (bool, error) {
	col := rel.Schema.ColIndex(c.Attr)
	if col < 0 {
		return false, fmt.Errorf("quality: profile references unknown attribute %q", c.Attr)
	}
	v, ok := t.Cells[col].Tags.Get(c.Indicator)
	if c.Op == OpPresent {
		return ok, nil
	}
	if !ok || v.IsNull() {
		return false, nil // unknown quality never satisfies a requirement
	}
	if c.AgeOf {
		if v.Kind() != value.KindTime {
			return false, fmt.Errorf("quality: age() constraint on non-time indicator %s@%s", c.Attr, c.Indicator)
		}
		v = value.Duration(e.Now.Sub(v.AsTime()))
	}
	cv := value.Compare(v, c.Bound)
	switch c.Op {
	case OpEq:
		return cv == 0, nil
	case OpNe:
		return cv != 0, nil
	case OpLt:
		return cv < 0, nil
	case OpLe:
		return cv <= 0, nil
	case OpGt:
		return cv > 0, nil
	case OpGe:
		return cv >= 0, nil
	default:
		// OpPresent was answered before the bound comparison; anything
		// else here is a constraint the evaluator does not know.
		return false, fmt.Errorf("quality: unknown operator %d", c.Op)
	}
}

// checkRequirement evaluates one parameter requirement over a tuple.
func (e *Evaluator) checkRequirement(r ParameterRequirement, rel *relation.Relation, t relation.Tuple) (bool, error) {
	if e.Registry == nil {
		return false, fmt.Errorf("quality: parameter requirement %s needs a derivation registry", r.String())
	}
	col := rel.Schema.ColIndex(r.Attr)
	if col < 0 {
		return false, fmt.Errorf("quality: profile references unknown attribute %q", r.Attr)
	}
	g, err := e.Registry.GradeCell(r.Parameter, t.Cells[col], &derive.Context{Now: e.Now})
	if err != nil {
		return false, err
	}
	return g.AtLeast(r.Min), nil
}

// Filter returns the accepted sub-relation and the rejection report. The
// input relation is not modified; accepted tuples are shared, not copied.
func (e *Evaluator) Filter(rel *relation.Relation, p *Profile) (*relation.Relation, Report, error) {
	out := relation.New(rel.Schema)
	out.TableTags = rel.TableTags
	report := Report{Profile: p.Name, Total: rel.Len(), ByReason: map[string]int{}}
	for i, t := range rel.Tuples {
		reason := ""
		for _, c := range p.Constraints {
			ok, err := e.checkConstraint(c, rel, t)
			if err != nil {
				return nil, report, err
			}
			if !ok {
				reason = c.String()
				break
			}
		}
		if reason == "" {
			for _, r := range p.Requirements {
				ok, err := e.checkRequirement(r, rel, t)
				if err != nil {
					return nil, report, err
				}
				if !ok {
					reason = r.String()
					break
				}
			}
		}
		if reason == "" {
			out.Tuples = append(out.Tuples, t)
			report.Accepted++
		} else {
			report.Rejections = append(report.Rejections, Rejection{Row: i, Reason: reason})
			report.ByReason[reason]++
		}
	}
	return out, report, nil
}

// TableGrade derives a parameter grade from a relation's table-level tags
// (e.g. completeness from a null_rate tag recorded by the administrator).
// The paper notes that tagging higher aggregations such as the table level
// can carry quality concepts not amenable to cell tags (§1.2).
func (e *Evaluator) TableGrade(rel *relation.Relation, parameter string) (derive.Grade, error) {
	if e.Registry == nil {
		return derive.Unknown, fmt.Errorf("quality: TableGrade needs a derivation registry")
	}
	pseudo := relation.Cell{Tags: rel.TableTags}
	return e.Registry.GradeCell(parameter, pseudo, &derive.Context{Now: e.Now})
}

// MeasureNullRate computes the fraction of null application cells and
// records it as the relation's null_rate table tag, returning the rate.
// This is the administrator's measurement step feeding TableGrade.
func MeasureNullRate(rel *relation.Relation) float64 {
	total, nulls := 0, 0
	for _, t := range rel.Tuples {
		for _, c := range t.Cells {
			total++
			if c.V.IsNull() {
				nulls++
			}
		}
	}
	rate := 0.0
	if total > 0 {
		rate = float64(nulls) / float64(total)
	}
	rel.TableTags = rel.TableTags.With("null_rate", value.Float(rate))
	return rate
}

// GradeClass buckets tuples into named classes by the best profile they
// satisfy — the §4 information clearing house's "several classes of data".
type GradeClass struct {
	// Name is the class label ("A", "B", ...).
	Name string
	// Profile is the requirement set for the class.
	Profile *Profile
}

// Classify assigns each tuple the first class whose profile it satisfies
// (classes ordered strictest first); tuples failing all classes land in
// the fallback class "". It returns the class name per tuple index and
// per-class counts.
func (e *Evaluator) Classify(rel *relation.Relation, classes []GradeClass) ([]string, map[string]int, error) {
	assign := make([]string, rel.Len())
	counts := map[string]int{}
	for i, t := range rel.Tuples {
		assigned := ""
		for _, cl := range classes {
			pass := true
			for _, c := range cl.Profile.Constraints {
				ok, err := e.checkConstraint(c, rel, t)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					pass = false
					break
				}
			}
			if pass {
				for _, r := range cl.Profile.Requirements {
					ok, err := e.checkRequirement(r, rel, t)
					if err != nil {
						return nil, nil, err
					}
					if !ok {
						pass = false
						break
					}
				}
			}
			if pass {
				assigned = cl.Name
				break
			}
		}
		assign[i] = assigned
		counts[assigned]++
	}
	return assign, counts, nil
}
