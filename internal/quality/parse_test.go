package quality

import (
	"strings"
	"testing"
	"time"

	"repro/internal/derive"
	"repro/internal/value"
	"repro/internal/workload"
)

func TestParseProfileFundRaising(t *testing.T) {
	src := `
# fund raising: sensitive application
address@source = 'registry'
age(address@creation_time) <= 2160h
accuracy(address) >= high
`
	p, err := ParseProfile("fund_raising", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints) != 2 || len(p.Requirements) != 1 {
		t.Fatalf("parsed %d constraints, %d requirements", len(p.Constraints), len(p.Requirements))
	}
	c0 := p.Constraints[0]
	if c0.Attr != "address" || c0.Indicator != "source" || c0.Op != OpEq || c0.Bound.AsString() != "registry" {
		t.Errorf("c0 = %+v", c0)
	}
	c1 := p.Constraints[1]
	if !c1.AgeOf || c1.Op != OpLe || c1.Bound.AsDuration() != 2160*time.Hour {
		t.Errorf("c1 = %+v", c1)
	}
	r0 := p.Requirements[0]
	if r0.Parameter != "accuracy" || r0.Attr != "address" || r0.Min != derive.High {
		t.Errorf("r0 = %+v", r0)
	}

	// The parsed profile filters identically to the hand-built one.
	rel := workload.Addresses(workload.AddressConfig{N: 2000, Seed: 5, FreshFraction: 0.3, VerifiedFraction: 0.3})
	ev := &Evaluator{Registry: derive.StandardRegistry(), Now: workload.Epoch}
	manual := &Profile{Name: "manual",
		Constraints: []IndicatorConstraint{
			{Attr: "address", Indicator: "source", Op: OpEq, Bound: value.Str("registry")},
			{Attr: "address", Indicator: "creation_time", Op: OpLe,
				Bound: value.Duration(2160 * time.Hour), AgeOf: true},
		},
		Requirements: []ParameterRequirement{
			{Attr: "address", Parameter: "accuracy", Min: derive.High},
		}}
	_, repA, err := ev.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := ev.Filter(rel, manual)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Accepted != repB.Accepted {
		t.Fatalf("parsed vs manual differ: %d vs %d accepted", repA.Accepted, repB.Accepted)
	}
}

func TestParseProfileForms(t *testing.T) {
	p, err := ParseProfile("t", `
a@src present; b@n >= 10 ; c@rate < 0.5
d@flag != true
e@when >= 1991-10-03T00:00:00Z
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints) != 5 {
		t.Fatalf("constraints = %d", len(p.Constraints))
	}
	if p.Constraints[0].Op != OpPresent {
		t.Error("present form broken")
	}
	if !value.Equal(p.Constraints[1].Bound, value.Int(10)) {
		t.Error("int literal broken")
	}
	if p.Constraints[2].Bound.AsFloat() != 0.5 {
		t.Error("float literal broken")
	}
	if p.Constraints[3].Bound.Kind() != value.KindBool {
		t.Error("bool literal broken")
	}
	if p.Constraints[4].Bound.Kind() != value.KindTime {
		t.Error("time literal broken")
	}
}

func TestParseProfileErrors(t *testing.T) {
	bad := []string{
		`a@src ~ 'x'`,                 // unknown operator
		`noref = 'x'`,                 // no @
		`a@src = `,                    // missing literal (2 fields)
		`age(a@src) <= fast`,          // bad duration
		`age(nope) <= 1h`,             // bad age ref
		`credibility(a) > high`,       // parameter requirements must use >=
		`credibility(a) >= excellent`, // unknown grade
		`a@src = what`,                // unparseable literal
		`a@ = 'x'`,                    // empty indicator
	}
	for _, src := range bad {
		if _, err := ParseProfile("t", src); err == nil {
			t.Errorf("ParseProfile(%q) should fail", src)
		}
	}
	// Empty and comment-only profiles are fine (mass mailing).
	p, err := ParseProfile("mass", "# no requirements\n")
	if err != nil || len(p.Constraints)+len(p.Requirements) != 0 {
		t.Errorf("empty profile: %+v, %v", p, err)
	}
}

func TestProfileRenderRoundTrip(t *testing.T) {
	src := `address@source = 'registry'
age(address@creation_time) <= 2160h0m0s
address@collection_method present
accuracy(address) >= high
`
	p, err := ParseProfile("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := p.Render()
	p2, err := ParseProfile("rt", rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if len(p2.Constraints) != len(p.Constraints) || len(p2.Requirements) != len(p.Requirements) {
		t.Fatalf("roundtrip changed shape:\n%s\nvs\n%s", rendered, p2.Render())
	}
	if !strings.Contains(rendered, "present") || !strings.Contains(rendered, ">= high") {
		t.Errorf("rendered = %q", rendered)
	}
}
