package quality

import (
	"strings"
	"testing"
	"time"

	"repro/internal/derive"
	"repro/internal/value"
	"repro/internal/workload"
)

func evaluator() *Evaluator {
	return &Evaluator{Registry: derive.StandardRegistry(), Now: workload.Epoch}
}

func TestFilterByIndicator(t *testing.T) {
	rel := workload.PaperTable2()
	e := evaluator()
	p := &Profile{
		Name: "no_estimates",
		Constraints: []IndicatorConstraint{
			{Attr: "employees", Indicator: "source", Op: OpNe, Bound: value.Str("estimate")},
		},
	}
	out, rep, err := e.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("filter kept %v", out.Tuples)
	}
	if rep.Total != 2 || rep.Accepted != 1 || len(rep.Rejections) != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Rejections[0].Row != 1 || !strings.Contains(rep.Rejections[0].Reason, "source != 'estimate'") {
		t.Errorf("rejection = %+v", rep.Rejections[0])
	}
	if !strings.Contains(rep.String(), "accepted 1/2") {
		t.Errorf("report string = %q", rep.String())
	}
}

func TestFilterByAge(t *testing.T) {
	rel := workload.PaperTable2()
	e := evaluator()
	p := &Profile{
		Name: "fresh_addresses",
		Constraints: []IndicatorConstraint{
			{Attr: "address", Indicator: "creation_time", Op: OpLe,
				Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
		},
	}
	out, _, err := e.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	// As of Epoch (1992-01-01): Fruit Co address from 1991-01-02 (~364d),
	// Nut Co from 1991-10-24 (~69d).
	if out.Len() != 1 || out.Tuples[0].Cells[0].V.AsString() != "Nut Co" {
		t.Fatalf("age filter kept %v", out.Tuples)
	}
}

func TestFilterByParameterGrade(t *testing.T) {
	rel := workload.PaperTable2()
	e := evaluator()
	p := &Profile{
		Name: "credible_only",
		Requirements: []ParameterRequirement{
			{Attr: "employees", Parameter: "credibility", Min: derive.High},
		},
	}
	out, rep, err := e.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fruit Co employees from Nexis (High); Nut Co from estimate (Low).
	if out.Len() != 1 || out.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("grade filter kept %v", out.Tuples)
	}
	if rep.ByReason["credibility(employees) >= high"] != 1 {
		t.Errorf("by-reason = %v", rep.ByReason)
	}
}

func TestUnknownQualityNeverSatisfies(t *testing.T) {
	rel := workload.Customers(workload.CustomerConfig{N: 50, Seed: 3, Untagged: 1.0})
	e := evaluator()
	p := &Profile{
		Name: "anything_tagged",
		Constraints: []IndicatorConstraint{
			{Attr: "address", Indicator: "source", Op: OpPresent},
		},
	}
	out, _, err := e.Filter(rel, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("fully untagged relation passed %d rows", out.Len())
	}
}

func TestOpPresentAndOps(t *testing.T) {
	rel := workload.PaperTable2()
	e := evaluator()
	ops := []struct {
		op   Op
		b    value.Value
		want int // accepted rows on employees@source
	}{
		{OpPresent, value.Null, 2},
		{OpEq, value.Str("Nexis"), 1},
		{OpNe, value.Str("Nexis"), 1},
		{OpLt, value.Str("Nexis"), 0}, // "Nexis" sorts after "estimate"? 'N' < 'e' in ASCII: estimate > Nexis
		{OpGe, value.Str("Nexis"), 2}, // both >= "Nexis"
	}
	for _, tc := range ops {
		p := &Profile{Name: "t", Constraints: []IndicatorConstraint{
			{Attr: "employees", Indicator: "source", Op: tc.op, Bound: tc.b},
		}}
		out, _, err := e.Filter(rel, p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != tc.want {
			t.Errorf("op %v: accepted %d, want %d", tc.op, out.Len(), tc.want)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	rel := workload.PaperTable2()
	e := evaluator()
	if _, _, err := e.Filter(rel, &Profile{Name: "x", Constraints: []IndicatorConstraint{
		{Attr: "ghost", Indicator: "source", Op: OpPresent}}}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, _, err := e.Filter(rel, &Profile{Name: "x", Constraints: []IndicatorConstraint{
		{Attr: "employees", Indicator: "source", Op: OpLe, Bound: value.Duration(time.Hour), AgeOf: true}}}); err == nil {
		t.Error("age() over non-time indicator should fail")
	}
	noReg := &Evaluator{Now: workload.Epoch}
	if _, _, err := noReg.Filter(rel, &Profile{Name: "x", Requirements: []ParameterRequirement{
		{Attr: "employees", Parameter: "credibility", Min: derive.Low}}}); err == nil {
		t.Error("requirement without registry should fail")
	}
}

func TestClearingHouseClassification(t *testing.T) {
	rel := workload.Addresses(workload.AddressConfig{
		N: 2000, Seed: 11, FreshFraction: 0.5, VerifiedFraction: 0.4,
	})
	e := evaluator()
	classes := []GradeClass{
		{Name: "A", Profile: &Profile{ // fund raising grade: fresh AND verified
			Constraints: []IndicatorConstraint{
				{Attr: "address", Indicator: "creation_time", Op: OpLe,
					Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
				{Attr: "address", Indicator: "source", Op: OpEq, Bound: value.Str("registry")},
			},
		}},
		{Name: "B", Profile: &Profile{ // direct marketing: fresh OR verified
			Constraints: []IndicatorConstraint{
				{Attr: "address", Indicator: "creation_time", Op: OpLe,
					Bound: value.Duration(365 * 24 * time.Hour), AgeOf: true},
			},
		}},
		{Name: "C", Profile: &Profile{}}, // mass mailing accepts everything
	}
	assign, counts, err := e.Classify(rel, classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != rel.Len() {
		t.Fatalf("assignment length %d", len(assign))
	}
	if counts[""] != 0 {
		t.Errorf("fallback class should be empty when C accepts all; counts = %v", counts)
	}
	// Shape: A ≈ 0.5*0.4 = 20%, strictly fewer than B, C nonzero.
	if counts["A"] == 0 || counts["B"] == 0 || counts["C"] == 0 {
		t.Fatalf("degenerate classification: %v", counts)
	}
	frac := float64(counts["A"]) / float64(rel.Len())
	if frac < 0.12 || frac > 0.30 {
		t.Errorf("class A fraction = %.3f, want ~0.20", frac)
	}
	if counts["A"] >= counts["B"]+counts["C"] {
		t.Errorf("stricter class should be smaller: %v", counts)
	}
}

func TestMassMailingVsFundRaisingReports(t *testing.T) {
	// §4: mass mailing uses no quality constraints; fund raising
	// constrains indicators, accepting fewer but better rows.
	rel := workload.Addresses(workload.AddressConfig{
		N: 1000, Seed: 5, FreshFraction: 0.3, VerifiedFraction: 0.3,
	})
	e := evaluator()
	mass := &Profile{Name: "mass_mailing"}
	fund := &Profile{Name: "fund_raising",
		Constraints: []IndicatorConstraint{
			{Attr: "address", Indicator: "source", Op: OpEq, Bound: value.Str("registry")},
			{Attr: "address", Indicator: "creation_time", Op: OpLe,
				Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
		}}
	_, mrep, err := e.Filter(rel, mass)
	if err != nil {
		t.Fatal(err)
	}
	_, frep, err := e.Filter(rel, fund)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Accepted != rel.Len() {
		t.Errorf("mass mailing should accept everything: %d/%d", mrep.Accepted, rel.Len())
	}
	if frep.Accepted == 0 || frep.Accepted >= mrep.Accepted {
		t.Errorf("fund raising should accept a strict, nonzero subset: %d vs %d", frep.Accepted, mrep.Accepted)
	}
}

func TestTableGradeCompleteness(t *testing.T) {
	e := evaluator()
	rel := workload.Customers(workload.CustomerConfig{N: 500, Seed: 21})
	// Pristine relation: zero nulls -> very high completeness.
	if rate := MeasureNullRate(rel); rate != 0 {
		t.Fatalf("pristine null rate = %f", rate)
	}
	g, err := e.TableGrade(rel, "completeness")
	if err != nil {
		t.Fatal(err)
	}
	if g != derive.VeryHigh {
		t.Errorf("pristine completeness = %v", g)
	}
	// Degraded copy: ~8% nulls -> medium-or-low completeness.
	broken, _ := workload.InjectErrors(rel, workload.ErrorConfig{Seed: 22, NullRate: 0.08})
	rate := MeasureNullRate(broken)
	if rate < 0.04 || rate > 0.15 {
		t.Fatalf("degraded null rate = %f", rate)
	}
	g, err = e.TableGrade(broken, "completeness")
	if err != nil {
		t.Fatal(err)
	}
	if g != derive.Low && g != derive.Medium {
		t.Errorf("degraded completeness = %v (rate %f)", g, rate)
	}
	// Untagged relation: unknown.
	fresh := workload.Customers(workload.CustomerConfig{N: 10, Seed: 1})
	g, err = e.TableGrade(fresh, "completeness")
	if err != nil || g != derive.Unknown {
		t.Errorf("unmeasured completeness = %v, %v", g, err)
	}
	// No registry.
	noReg := &Evaluator{Now: workload.Epoch}
	if _, err := noReg.TableGrade(rel, "completeness"); err == nil {
		t.Error("TableGrade without registry should fail")
	}
}
