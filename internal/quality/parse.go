package quality

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/derive"
	"repro/internal/value"
)

// ParseProfile builds a Profile from a compact requirements text — the
// notation a data quality administrator would keep in an application's
// quality profile store (§4: "data quality profiles may be stored for
// different applications"). One requirement per line (or ';'-separated);
// '#' starts a comment. Three forms:
//
//	attr@indicator <op> <literal>     indicator constraint
//	age(attr@indicator) <= <duration> age constraint over a time indicator
//	parameter(attr) >= <grade>        minimum derived-parameter grade
//
// Operators: = != < <= > >= present (present takes no literal). Literals:
// 'strings', integers, floats, durations like 720h/30m, RFC3339 times.
// Grades: very-low, low, medium, high, very-high.
//
// Example:
//
//	# fund raising
//	address@source = 'registry'
//	age(address@creation_time) <= 2160h
//	accuracy(address) >= high
func ParseProfile(name, src string) (*Profile, error) {
	p := &Profile{Name: name}
	lines := strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' })
	for _, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return nil, fmt.Errorf("quality: profile %s: %w", name, err)
		}
	}
	return p, nil
}

// MustParseProfile is ParseProfile that panics on error; for fixtures.
func MustParseProfile(name, src string) *Profile {
	p, err := ParseProfile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

var opsByToken = map[string]Op{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

var gradesByName = map[string]derive.Grade{
	"very-low": derive.VeryLow, "low": derive.Low, "medium": derive.Medium,
	"high": derive.High, "very-high": derive.VeryHigh,
}

func (p *Profile) parseLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	ref := fields[0]

	// Form: attr@indicator present
	if len(fields) == 2 && strings.EqualFold(fields[1], "present") {
		attr, ind, ok := splitIndicatorRef(ref)
		if !ok {
			return fmt.Errorf("bad indicator reference %q", ref)
		}
		p.Constraints = append(p.Constraints, IndicatorConstraint{
			Attr: attr, Indicator: ind, Op: OpPresent,
		})
		return nil
	}
	if len(fields) != 3 {
		return fmt.Errorf("requirement %q: want '<ref> <op> <literal>'", line)
	}
	op, ok := opsByToken[fields[1]]
	if !ok {
		return fmt.Errorf("unknown operator %q", fields[1])
	}

	// Form: age(attr@indicator) <= duration
	if strings.HasPrefix(ref, "age(") && strings.HasSuffix(ref, ")") {
		attr, ind, ok := splitIndicatorRef(ref[4 : len(ref)-1])
		if !ok {
			return fmt.Errorf("bad age() reference %q", ref)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", fields[2], err)
		}
		p.Constraints = append(p.Constraints, IndicatorConstraint{
			Attr: attr, Indicator: ind, Op: op, Bound: value.Duration(d), AgeOf: true,
		})
		return nil
	}

	// Form: parameter(attr) >= grade
	if i := strings.IndexByte(ref, '('); i > 0 && strings.HasSuffix(ref, ")") {
		param, attr := ref[:i], ref[i+1:len(ref)-1]
		g, ok := gradesByName[strings.ToLower(fields[2])]
		if !ok {
			return fmt.Errorf("unknown grade %q", fields[2])
		}
		if op != OpGe {
			return fmt.Errorf("parameter requirements use >=, got %q", fields[1])
		}
		p.Requirements = append(p.Requirements, ParameterRequirement{
			Attr: attr, Parameter: param, Min: g,
		})
		return nil
	}

	// Form: attr@indicator <op> literal
	attr, ind, ok := splitIndicatorRef(ref)
	if !ok {
		return fmt.Errorf("bad indicator reference %q", ref)
	}
	bound, err := parseLiteral(fields[2])
	if err != nil {
		return err
	}
	p.Constraints = append(p.Constraints, IndicatorConstraint{
		Attr: attr, Indicator: ind, Op: op, Bound: bound,
	})
	return nil
}

func splitIndicatorRef(s string) (attr, indicator string, ok bool) {
	i := strings.IndexByte(s, '@')
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// parseLiteral accepts 'strings', integers, floats, durations, RFC3339
// times, and the booleans true/false.
func parseLiteral(s string) (value.Value, error) {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return value.Str(strings.ReplaceAll(s[1:len(s)-1], "''", "'")), nil
	}
	if s == "true" || s == "false" {
		return value.Bool(s == "true"), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f), nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return value.Duration(d), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return value.Time(t), nil
	}
	return value.Null, fmt.Errorf("cannot parse literal %q", s)
}

// Render prints the profile back in the ParseProfile notation, so stored
// profiles round-trip.
func (p *Profile) Render() string {
	var b strings.Builder
	if p.Doc != "" {
		fmt.Fprintf(&b, "# %s\n", p.Doc)
	}
	for _, c := range p.Constraints {
		ref := c.Attr + "@" + c.Indicator
		switch {
		case c.Op == OpPresent:
			fmt.Fprintf(&b, "%s present\n", ref)
		case c.AgeOf:
			fmt.Fprintf(&b, "age(%s) %s %s\n", ref, c.Op, c.Bound.String())
		default:
			fmt.Fprintf(&b, "%s %s %s\n", ref, c.Op, c.Bound.Literal())
		}
	}
	for _, r := range p.Requirements {
		fmt.Fprintf(&b, "%s(%s) >= %s\n", r.Parameter, r.Attr, r.Min)
	}
	return b.String()
}
