package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("kind", "select"))
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", L("kind", "select")); again != c {
		t.Error("same name+labels did not return the same counter")
	}
	if other := r.Counter("reqs_total", L("kind", "insert")); other == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("temp")
	g.Set(36.6)
	if got := g.Load(); math.Abs(got-36.6) > 1e-9 {
		t.Errorf("gauge = %v, want 36.6", got)
	}
	g.SetInt(-3)
	if got := g.Load(); got != -3 {
		t.Errorf("gauge = %v, want -3", got)
	}
}

func TestRegistryKindConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms uniform: quantiles should land within the ~9% bucket
	// resolution of the true values.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 1000*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	checks := []struct {
		p    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := s.Quantile(c.p)
		if rel := math.Abs(float64(got-c.want)) / float64(c.want); rel > 0.10 {
			t.Errorf("p%v = %v, want %v +/- 10%%", c.p*100, got, c.want)
		}
	}
	if mean := s.Mean(); mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v", got)
	}
	h.Observe(42 * time.Microsecond)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Quantile(p); got != 42*time.Microsecond {
			t.Errorf("single-sample p%v = %v", p*100, got)
		}
	}
	h2 := NewHistogram()
	h2.Observe(-time.Second) // clamps to zero, must not panic or underflow
	if s := h2.Snapshot(); s.Count != 1 || s.Max != 0 {
		t.Errorf("negative observation: %+v", s)
	}
	h3 := NewHistogram()
	h3.Observe(200 * time.Hour) // beyond the last bound: clamps to last bucket
	if got := h3.Quantile(0.5); got != 200*time.Hour {
		t.Errorf("overflow p50 = %v (clamped to max?)", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("reqs_total", "Requests served.")
	r.Counter("reqs_total", L("kind", "select")).Add(7)
	r.Counter("reqs_total", L("kind", "insert")).Add(2)
	r.Gauge("table_rows", L("table", "customer")).SetInt(50)
	r.Histogram("latency_seconds").Observe(10 * time.Millisecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total Requests served.",
		"# TYPE reqs_total counter",
		`reqs_total{kind="insert"} 2`,
		`reqs_total{kind="select"} 7`,
		`table_rows{table="customer"} 50`,
		"# TYPE latency_seconds summary",
		`latency_seconds{quantile="0.5"}`,
		`latency_seconds{quantile="0.99"}`,
		"latency_seconds_sum",
		"latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic output: two renders agree.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if out != b2.String() {
		t.Error("exposition is not deterministic")
	}
}

func TestDropPrefix(t *testing.T) {
	r := NewRegistry()
	r.Gauge("table_rows", L("table", "a")).SetInt(1)
	r.Gauge("table_rows", L("table", "b")).SetInt(2)
	r.Counter("other_total").Inc()
	r.DropPrefix("table_")
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "table_rows") {
		t.Errorf("dropped series still exposed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "other_total 1") {
		t.Errorf("unrelated series lost:\n%s", b.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(3)
	r.Histogram("lat").Observe(time.Millisecond)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("bad JSON %s: %v", raw, err)
	}
	if len(got) != 2 {
		t.Fatalf("series = %d, want 2: %s", len(got), raw)
	}
}
