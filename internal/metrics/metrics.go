// Package metrics implements the process-local metric primitives behind
// qqld's observability endpoint: atomic counters and gauges, fixed-bucket
// latency histograms from which p50/p95/p99 are derivable, and a registry
// that renders everything as Prometheus text exposition format or as a JSON
// snapshot. The package has no dependencies beyond the standard library and
// is safe for concurrent use: all hot-path operations (Add, Set, Observe)
// are single atomic instructions plus, for histograms, a short branch-free
// bucket search.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. It stores float64 bits so both
// integer counts and ratios (completeness fractions) fit.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// SetInt replaces the gauge value with an integer.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Load returns the current gauge value.
func (g *Gauge) Load() float64 { return floatFromBits(g.bits.Load()) }

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type series struct {
	name   string
	labels []Label
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

func (s *series) key() string { return seriesKey(s.name, s.labels) }

// checkKind guards against registering one series name as two metric types
// — a programming error that would otherwise surface as a nil dereference
// far from the offending call.
func (s *series) checkKind(kind metricKind) *series {
	if s.kind != kind {
		panic(fmt.Sprintf("metrics: series %q already registered with a different kind", s.name))
	}
	return s
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds named metric series and renders them. Series are created
// lazily and cached: looking up an existing series takes one RLock'd map
// read, so per-request code may call Counter/Gauge/Histogram directly,
// though hot paths should capture the returned pointer once.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*series
	order []*series
	help  map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series), help: make(map[string]string)}
}

// Help records the help string rendered above the first series of a metric
// name. Calling it again for the same name overwrites the text.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

func (r *Registry) lookup(name string, labels []Label, kind metricKind) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s := r.byKey[key]
	r.mu.RUnlock()
	if s != nil {
		return s.checkKind(kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.byKey[key]; s != nil {
		return s.checkKind(kind)
	}
	s = &series{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = NewHistogram()
	}
	r.byKey[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns (creating if needed) the counter series for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, kindCounter).ctr
}

// Gauge returns (creating if needed) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, kindGauge).gauge
}

// Histogram returns (creating if needed) the histogram series for
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, kindHistogram).hist
}

// DropPrefix removes every series whose metric name starts with prefix.
// Used by collectors that rebuild label sets wholesale (e.g. per-table
// quality gauges after a DROP TABLE).
func (r *Registry) DropPrefix(prefix string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.order[:0]
	for _, s := range r.order {
		if strings.HasPrefix(s.name, prefix) {
			delete(r.byKey, s.key())
			continue
		}
		kept = append(kept, s)
	}
	r.order = kept
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every series in text exposition format. Series
// are grouped and sorted by metric name (then by label values) so the
// output is deterministic; histograms render as summaries with
// quantile="0.5|0.95|0.99" plus _sum, _count and _max series.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	snap := append([]*series(nil), r.order...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	sort.SliceStable(snap, func(i, j int) bool {
		if snap[i].name != snap[j].name {
			return snap[i].name < snap[j].name
		}
		return snap[i].key() < snap[j].key()
	})

	lastName := ""
	for _, s := range snap {
		if s.name != lastName {
			if h := help[s.name]; h != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, h)
			}
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(w, "# TYPE %s counter\n", s.name)
			case kindGauge:
				fmt.Fprintf(w, "# TYPE %s gauge\n", s.name)
			case kindHistogram:
				fmt.Fprintf(w, "# TYPE %s summary\n", s.name)
			}
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", s.name, formatLabels(s.labels), s.ctr.Load())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", s.name, formatLabels(s.labels), formatFloat(s.gauge.Load()))
		case kindHistogram:
			hs := s.hist.Snapshot()
			for _, q := range [...]float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "%s%s %.9f\n", s.name,
					formatLabels(s.labels, L("quantile", formatFloat(q))),
					hs.Quantile(q).Seconds())
			}
			fmt.Fprintf(w, "%s_sum%s %.9f\n", s.name, formatLabels(s.labels), hs.Sum.Seconds())
			fmt.Fprintf(w, "%s_count%s %d\n", s.name, formatLabels(s.labels), hs.Count)
			fmt.Fprintf(w, "%s_max%s %.9f\n", s.name, formatLabels(s.labels), hs.Max.Seconds())
		}
	}
}

// SeriesSnapshot is one series' state in a JSON snapshot.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value,omitempty"`
	Hist   *HistSummary      `json:"histogram,omitempty"`
}

// HistSummary is the JSON form of a histogram snapshot.
type HistSummary struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// Snapshot returns a deterministic JSON-marshalable view of every series.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.RLock()
	snap := append([]*series(nil), r.order...)
	r.mu.RUnlock()
	sort.SliceStable(snap, func(i, j int) bool { return snap[i].key() < snap[j].key() })

	out := make([]SeriesSnapshot, 0, len(snap))
	for _, s := range snap {
		ss := SeriesSnapshot{Name: s.name}
		if len(s.labels) > 0 {
			ss.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				ss.Labels[l.Name] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			ss.Kind = "counter"
			ss.Value = float64(s.ctr.Load())
		case kindGauge:
			ss.Kind = "gauge"
			ss.Value = s.gauge.Load()
		case kindHistogram:
			ss.Kind = "histogram"
			hs := s.hist.Snapshot()
			ss.Hist = &HistSummary{
				Count: hs.Count,
				SumMS: float64(hs.Sum.Microseconds()) / 1e3,
				P50MS: float64(hs.Quantile(0.50).Microseconds()) / 1e3,
				P95MS: float64(hs.Quantile(0.95).Microseconds()) / 1e3,
				P99MS: float64(hs.Quantile(0.99).Microseconds()) / 1e3,
				MaxMS: float64(hs.Max.Microseconds()) / 1e3,
			}
		}
		out = append(out, ss)
	}
	return out
}

// MarshalJSON renders the registry as the JSON array of its snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
