package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Histogram bucket layout: numBuckets exponential buckets whose upper
// bounds grow by a factor of 2^(1/bucketsPerOctave) starting at
// firstBucketNS nanoseconds. With 8 buckets per octave the relative
// resolution is ~9%, and 256 buckets span 1µs..~76min — wide enough for any
// statement latency the engine can produce while keeping the whole
// histogram a fixed 2KiB of atomics (allocation-free to observe).
const (
	numBuckets       = 256
	bucketsPerOctave = 8
	firstBucketNS    = 1000 // 1µs
)

// bucketBounds[i] is the inclusive upper bound (in ns) of bucket i.
var bucketBounds = func() [numBuckets]int64 {
	var b [numBuckets]int64
	for i := range b {
		b[i] = int64(math.Round(firstBucketNS * math.Pow(2, float64(i)/bucketsPerOctave)))
		if i > 0 && b[i] <= b[i-1] {
			b[i] = b[i-1] + 1
		}
	}
	return b
}()

// bucketFor returns the index of the first bucket whose upper bound is >= n.
// Observations beyond the last bound clamp into the last bucket.
func bucketFor(n int64) int {
	if n <= firstBucketNS {
		return 0
	}
	// Binary search over the fixed bounds: 8 iterations, no allocation.
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free: one
// atomic add into the matched bucket plus count/sum updates and CAS loops
// for min/max. Quantiles are derived from a Snapshot by accumulating bucket
// counts and interpolating inside the matched bucket, clamped to the exact
// observed min/max, which keeps small-sample p50/p95/p99 honest.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // ns
	min     atomic.Int64 // ns; math.MaxInt64 until first observation
	max     atomic.Int64 // ns
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.buckets[bucketFor(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		cur := h.min.Load()
		if n >= cur || h.min.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state. Buckets are
// copied individually (not under a lock), so a snapshot taken during
// concurrent observation may be off by the few in-flight observations —
// fine for monitoring, and it keeps Observe wait-free.
type HistSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	mn := h.min.Load()
	if mn == math.MaxInt64 {
		mn = 0
	}
	s.Min = time.Duration(mn)
	s.Max = time.Duration(h.max.Load())
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the arithmetic mean of all observations.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the p-quantile (0 <= p <= 1) estimated from the bucket
// counts: the matched bucket's range is linearly interpolated by the rank's
// position within it, and the result is clamped to the observed [Min, Max].
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		frac := (rank - float64(prev)) / float64(c)
		est := time.Duration(float64(lo) + frac*float64(hi-lo))
		if est < s.Min {
			est = s.Min
		}
		if est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// Quantile is a convenience that snapshots and reads one quantile.
func (h *Histogram) Quantile(p float64) time.Duration {
	return h.Snapshot().Quantile(p)
}
