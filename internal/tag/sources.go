package tag

import (
	"sort"
	"strings"
)

// Sources is a polygen source set: the sorted, duplicate-free set of data
// source names a cell's value originated from (Wang & Madnick, VLDB 1990).
// The polygen model propagates these through relational operators by set
// union: a derived value is attributed to every source that contributed to
// it. The nil slice is the empty set.
type Sources []string

// NewSources builds a normalized source set from the given names.
func NewSources(names ...string) Sources {
	if len(names) == 0 {
		return nil
	}
	out := append(Sources(nil), names...)
	sort.Strings(out)
	return dedupSorted(out)
}

func dedupSorted(s Sources) Sources {
	w := 0
	for i, name := range s {
		if i == 0 || name != s[w-1] {
			s[w] = name
			w++
		}
	}
	return s[:w]
}

// Contains reports whether the set includes the named source.
func (s Sources) Contains(name string) bool {
	i := sort.SearchStrings(s, name)
	return i < len(s) && s[i] == name
}

// Union returns the set union of s and o, per the polygen propagation rule
// for derived cells.
func (s Sources) Union(o Sources) Sources {
	if len(s) == 0 {
		return append(Sources(nil), o...)
	}
	if len(o) == 0 {
		return append(Sources(nil), s...)
	}
	out := make(Sources, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Intersect returns the set intersection of s and o. The polygen model uses
// intersection for the "originated jointly" credibility analysis.
func (s Sources) Intersect(o Sources) Sources {
	var out Sources
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Equal reports whether the two sets contain the same sources.
func (s Sources) Equal(o Sources) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Sources) Clone() Sources {
	if s == nil {
		return nil
	}
	return append(Sources(nil), s...)
}

// String renders the set as "<a, b>"; the empty set renders as "<>".
func (s Sources) String() string {
	return "<" + strings.Join(s, ", ") + ">"
}
