// Package tag implements the two provenance mechanisms the paper relies on:
//
//   - quality indicator tags from the attribute-based model (ref [28] of the
//     paper): a small set of named, single-valued, objective measurements
//     attached to each data cell — e.g. source = 'Nexis',
//     creation_time = 1991-10-03, collection_method = 'estimate'; and
//   - polygen source sets (refs [24][25]): the set of originating data
//     sources a cell's value was derived from, propagated through relational
//     operators by set union.
//
// Tag sets are kept sorted by indicator name so that rendering, hashing and
// comparison are deterministic. They are value types: mutating operations
// return a new Set and never alias the receiver's backing array in a way
// visible to the caller.
package tag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Indicator describes a quality indicator: an objective, measurable
// dimension of the data manufacturing process (paper §1.3). Indicators are
// declared once (in a catalog or a schema) and referenced by name from tags.
type Indicator struct {
	// Name is the indicator identifier, lower_snake_case by convention
	// (e.g. "creation_time", "collection_method").
	Name string
	// Kind is the value kind of the indicator's measured values.
	Kind value.Kind
	// Doc describes what the indicator measures.
	Doc string
}

// Validate reports whether the indicator declaration is well formed.
func (ind Indicator) Validate() error {
	if ind.Name == "" {
		return fmt.Errorf("tag: indicator has empty name")
	}
	if strings.ContainsAny(ind.Name, " \t\n@.'\"") {
		return fmt.Errorf("tag: indicator name %q contains forbidden characters", ind.Name)
	}
	return nil
}

// Tag is a single quality indicator value attached to a cell.
type Tag struct {
	// Indicator is the indicator name.
	Indicator string
	// Value is the measured indicator value.
	Value value.Value
}

// String renders the tag as "indicator=value".
func (t Tag) String() string { return t.Indicator + "=" + t.Value.String() }

// Set is an immutable collection of tags, sorted by indicator name, with at
// most one tag per indicator.
type Set struct {
	tags []Tag
}

// EmptySet is the set with no tags.
var EmptySet = Set{}

// NewSet builds a set from the given tags. Later duplicates of the same
// indicator override earlier ones.
func NewSet(tags ...Tag) Set {
	if len(tags) == 0 {
		return Set{}
	}
	m := make(map[string]value.Value, len(tags))
	for _, t := range tags {
		m[t.Indicator] = t.Value
	}
	out := make([]Tag, 0, len(m))
	for k, v := range m {
		out = append(out, Tag{Indicator: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Indicator < out[j].Indicator })
	return Set{tags: out}
}

// Len reports the number of tags in the set.
func (s Set) Len() int { return len(s.tags) }

// IsEmpty reports whether the set has no tags.
func (s Set) IsEmpty() bool { return len(s.tags) == 0 }

// Get returns the value tagged for the indicator and whether it is present.
func (s Set) Get(indicator string) (value.Value, bool) {
	i := sort.Search(len(s.tags), func(i int) bool { return s.tags[i].Indicator >= indicator })
	if i < len(s.tags) && s.tags[i].Indicator == indicator {
		return s.tags[i].Value, true
	}
	return value.Null, false
}

// Has reports whether the set carries a tag for the indicator.
func (s Set) Has(indicator string) bool {
	_, ok := s.Get(indicator)
	return ok
}

// With returns a copy of the set with the indicator set to v, replacing any
// existing tag for the same indicator.
func (s Set) With(indicator string, v value.Value) Set {
	i := sort.Search(len(s.tags), func(i int) bool { return s.tags[i].Indicator >= indicator })
	out := make([]Tag, 0, len(s.tags)+1)
	out = append(out, s.tags[:i]...)
	if i < len(s.tags) && s.tags[i].Indicator == indicator {
		out = append(out, Tag{Indicator: indicator, Value: v})
		out = append(out, s.tags[i+1:]...)
	} else {
		out = append(out, Tag{Indicator: indicator, Value: v})
		out = append(out, s.tags[i:]...)
	}
	return Set{tags: out}
}

// Without returns a copy of the set with the indicator's tag removed.
func (s Set) Without(indicator string) Set {
	i := sort.Search(len(s.tags), func(i int) bool { return s.tags[i].Indicator >= indicator })
	if i >= len(s.tags) || s.tags[i].Indicator != indicator {
		return s
	}
	out := make([]Tag, 0, len(s.tags)-1)
	out = append(out, s.tags[:i]...)
	out = append(out, s.tags[i+1:]...)
	return Set{tags: out}
}

// Tags returns the tags in indicator-name order. The returned slice must not
// be modified.
func (s Set) Tags() []Tag { return s.tags }

// MergePolicy controls how Merge resolves an indicator present in both sets
// with different values.
type MergePolicy uint8

const (
	// MergePreferLeft keeps the left set's value on conflict.
	MergePreferLeft MergePolicy = iota
	// MergePreferRight keeps the right set's value on conflict.
	MergePreferRight
	// MergeDrop removes conflicting indicators entirely. This is the
	// propagation rule for derived cells: a tag survives derivation only
	// if every contributing cell agrees on it.
	MergeDrop
)

// Merge combines two tag sets under the given policy. Indicators present in
// only one set are always kept; indicators present in both with Equal values
// are kept; conflicts resolve per the policy.
func Merge(a, b Set, policy MergePolicy) Set {
	out := make([]Tag, 0, len(a.tags)+len(b.tags))
	i, j := 0, 0
	for i < len(a.tags) && j < len(b.tags) {
		switch {
		case a.tags[i].Indicator < b.tags[j].Indicator:
			out = append(out, a.tags[i])
			i++
		case a.tags[i].Indicator > b.tags[j].Indicator:
			out = append(out, b.tags[j])
			j++
		default:
			if value.Equal(a.tags[i].Value, b.tags[j].Value) {
				out = append(out, a.tags[i])
			} else {
				switch policy {
				case MergePreferLeft:
					out = append(out, a.tags[i])
				case MergePreferRight:
					out = append(out, b.tags[j])
				case MergeDrop:
					// skip both
				}
			}
			i++
			j++
		}
	}
	out = append(out, a.tags[i:]...)
	out = append(out, b.tags[j:]...)
	return Set{tags: out}
}

// Intersect returns the tags present in both sets with Equal values. This
// is the unanimity fold used for derived-cell provenance: folding a list of
// tag sets with Intersect keeps exactly the tags every set agrees on
// (Intersect is associative and commutative, unlike Merge with MergeDrop,
// which keeps one-sided tags).
func Intersect(a, b Set) Set {
	var out []Tag
	i, j := 0, 0
	for i < len(a.tags) && j < len(b.tags) {
		switch {
		case a.tags[i].Indicator < b.tags[j].Indicator:
			i++
		case a.tags[i].Indicator > b.tags[j].Indicator:
			j++
		default:
			if value.Equal(a.tags[i].Value, b.tags[j].Value) {
				out = append(out, a.tags[i])
			}
			i++
			j++
		}
	}
	return Set{tags: out}
}

// Equal reports whether two sets carry the same indicators with Equal values.
func (s Set) Equal(o Set) bool {
	if len(s.tags) != len(o.tags) {
		return false
	}
	for i := range s.tags {
		if s.tags[i].Indicator != o.tags[i].Indicator || !value.Equal(s.tags[i].Value, o.tags[i].Value) {
			return false
		}
	}
	return true
}

// String renders the set as "{a=1, b=x}"; the empty set renders as "{}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.tags {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
