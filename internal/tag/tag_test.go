package tag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/value"
)

func TestIndicatorValidate(t *testing.T) {
	good := Indicator{Name: "creation_time", Kind: value.KindTime}
	if err := good.Validate(); err != nil {
		t.Errorf("good indicator rejected: %v", err)
	}
	for _, name := range []string{"", "has space", "a@b", "a.b", "a'b"} {
		if err := (Indicator{Name: name}).Validate(); err == nil {
			t.Errorf("indicator %q should be rejected", name)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(
		Tag{"source", value.Str("Nexis")},
		Tag{"creation_time", value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC))},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Get("source"); !ok || v.AsString() != "Nexis" {
		t.Errorf("Get(source) = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) should report absent")
	}
	if !s.Has("creation_time") || s.Has("nope") {
		t.Error("Has broken")
	}
	// Sorted order by indicator name.
	tags := s.Tags()
	if tags[0].Indicator != "creation_time" || tags[1].Indicator != "source" {
		t.Errorf("tags not sorted: %v", tags)
	}
}

func TestNewSetDuplicatesLastWins(t *testing.T) {
	s := NewSet(Tag{"a", value.Int(1)}, Tag{"a", value.Int(2)})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, _ := s.Get("a"); !value.Equal(v, value.Int(2)) {
		t.Errorf("last write should win, got %v", v)
	}
}

func TestWithWithoutImmutability(t *testing.T) {
	s0 := NewSet(Tag{"b", value.Int(1)})
	s1 := s0.With("a", value.Int(2))
	s2 := s1.With("b", value.Int(9))
	s3 := s2.Without("a")

	if s0.Len() != 1 || s1.Len() != 2 || s2.Len() != 2 || s3.Len() != 1 {
		t.Fatalf("lengths: %d %d %d %d", s0.Len(), s1.Len(), s2.Len(), s3.Len())
	}
	if v, _ := s0.Get("b"); !value.Equal(v, value.Int(1)) {
		t.Error("original set mutated by With")
	}
	if v, _ := s2.Get("b"); !value.Equal(v, value.Int(9)) {
		t.Error("With replace failed")
	}
	if s3.Has("a") {
		t.Error("Without failed")
	}
	if got := s3.Without("zz"); !got.Equal(s3) {
		t.Error("Without of absent indicator should be identity")
	}
}

func TestMergePolicies(t *testing.T) {
	a := NewSet(Tag{"x", value.Int(1)}, Tag{"shared", value.Str("same")}, Tag{"conflict", value.Int(10)})
	b := NewSet(Tag{"y", value.Int(2)}, Tag{"shared", value.Str("same")}, Tag{"conflict", value.Int(20)})

	left := Merge(a, b, MergePreferLeft)
	if v, _ := left.Get("conflict"); !value.Equal(v, value.Int(10)) {
		t.Errorf("MergePreferLeft conflict = %v", v)
	}
	right := Merge(a, b, MergePreferRight)
	if v, _ := right.Get("conflict"); !value.Equal(v, value.Int(20)) {
		t.Errorf("MergePreferRight conflict = %v", v)
	}
	drop := Merge(a, b, MergeDrop)
	if drop.Has("conflict") {
		t.Error("MergeDrop should remove conflicting indicator")
	}
	for _, m := range []Set{left, right, drop} {
		if !m.Has("x") || !m.Has("y") {
			t.Error("merge must keep one-sided indicators")
		}
		if v, _ := m.Get("shared"); !value.Equal(v, value.Str("same")) {
			t.Error("merge must keep agreeing indicators")
		}
	}
}

func TestSetString(t *testing.T) {
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("empty set string = %q", got)
	}
	s := NewSet(Tag{"a", value.Int(1)}, Tag{"b", value.Str("x")})
	if got := s.String(); got != "{a=1, b=x}" {
		t.Errorf("set string = %q", got)
	}
}

type setGen struct{ S Set }

func (setGen) Generate(r *rand.Rand, _ int) reflect.Value {
	names := []string{"a", "b", "c", "d", "e"}
	n := r.Intn(5)
	var tags []Tag
	for i := 0; i < n; i++ {
		tags = append(tags, Tag{names[r.Intn(len(names))], value.Int(r.Int63n(5))})
	}
	return reflect.ValueOf(setGen{S: NewSet(tags...)})
}

func TestMergeProperties(t *testing.T) {
	// Idempotence: Merge(s, s) == s under every policy.
	idem := func(g setGen) bool {
		for _, p := range []MergePolicy{MergePreferLeft, MergePreferRight, MergeDrop} {
			if !Merge(g.S, g.S, p).Equal(g.S) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(idem, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// MergeDrop is commutative.
	comm := func(a, b setGen) bool {
		return Merge(a.S, b.S, MergeDrop).Equal(Merge(b.S, a.S, MergeDrop))
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// PreferLeft(a,b) == PreferRight(b,a).
	dual := func(a, b setGen) bool {
		return Merge(a.S, b.S, MergePreferLeft).Equal(Merge(b.S, a.S, MergePreferRight))
	}
	if err := quick.Check(dual, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Merge with empty set is identity.
	unit := func(a setGen) bool {
		return Merge(a.S, EmptySet, MergeDrop).Equal(a.S) && Merge(EmptySet, a.S, MergeDrop).Equal(a.S)
	}
	if err := quick.Check(unit, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSourcesBasics(t *testing.T) {
	s := NewSources("wsj", "nexis", "wsj")
	if len(s) != 2 || s[0] != "nexis" || s[1] != "wsj" {
		t.Fatalf("NewSources dedup/sort broken: %v", s)
	}
	if !s.Contains("wsj") || s.Contains("reuters") {
		t.Error("Contains broken")
	}
	u := s.Union(NewSources("reuters", "wsj"))
	if !u.Equal(NewSources("nexis", "reuters", "wsj")) {
		t.Errorf("Union = %v", u)
	}
	i := s.Intersect(NewSources("wsj", "ap"))
	if !i.Equal(NewSources("wsj")) {
		t.Errorf("Intersect = %v", i)
	}
	if got := s.String(); got != "<nexis, wsj>" {
		t.Errorf("String = %q", got)
	}
	if got := (Sources)(nil).String(); got != "<>" {
		t.Errorf("empty String = %q", got)
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Error("Clone broken")
	}
	c[0] = "mutated"
	if s[0] == "mutated" {
		t.Error("Clone aliases original")
	}
}

type srcGen struct{ S Sources }

func (srcGen) Generate(r *rand.Rand, _ int) reflect.Value {
	names := []string{"a", "b", "c", "d"}
	n := r.Intn(4)
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, names[r.Intn(len(names))])
	}
	return reflect.ValueOf(srcGen{S: NewSources(out...)})
}

func TestSourcesLattice(t *testing.T) {
	comm := func(a, b srcGen) bool {
		return a.S.Union(b.S).Equal(b.S.Union(a.S)) && a.S.Intersect(b.S).Equal(b.S.Intersect(a.S))
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c srcGen) bool {
		return a.S.Union(b.S).Union(c.S).Equal(a.S.Union(b.S.Union(c.S)))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	idem := func(a srcGen) bool {
		return a.S.Union(a.S).Equal(a.S) && a.S.Intersect(a.S).Equal(a.S)
	}
	if err := quick.Check(idem, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	absorb := func(a, b srcGen) bool {
		return a.S.Union(a.S.Intersect(b.S)).Equal(a.S)
	}
	if err := quick.Check(absorb, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
