// Package storage implements the in-memory storage substrate the quality
// engine runs on: heap tables addressed by row ID, hash indexes for
// equality lookups, and B-tree indexes for ordered range scans. Indexes can
// be built over attribute values or over the values of a quality indicator
// tagged on an attribute, which is what makes query-time filtering over
// tags (paper §1.2) efficient.
package storage

import (
	"sort"

	"repro/internal/value"
)

// RowID identifies a tuple within a Table's heap.
type RowID int64

// btreeDegree is the minimum degree t of the B-tree: every node except the
// root holds between t-1 and 2t-1 keys.
const btreeDegree = 32

// BTree is an ordered index from value.Value keys to posting lists of row
// IDs. Duplicate keys share one posting list. Deletions remove row IDs from
// posting lists; keys whose lists become empty are retained as tombstones
// and skipped by scans (tables in this workload grow far more than they
// shrink, and Compact rebuilds are available).
type BTree struct {
	root *btreeNode
	size int // number of live (key, rowID) pairs
}

type btreeNode struct {
	keys     []value.Value
	postings [][]RowID
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// NewBTree returns an empty B-tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{}}
}

// Len reports the number of live (key, rowID) entries.
func (t *BTree) Len() int { return t.size }

// search finds the position of key in node n: (index, found).
func (n *btreeNode) search(key value.Value) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return value.ComparePtr(&n.keys[i], &key) >= 0
	})
	if i < len(n.keys) && value.EqualPtr(&n.keys[i], &key) {
		return i, true
	}
	return i, false
}

// Insert adds (key, id) to the index.
func (t *BTree) Insert(key value.Value, id RowID) {
	r := t.root
	if len(r.keys) == 2*btreeDegree-1 {
		newRoot := &btreeNode{children: []*btreeNode{r}}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	t.root.insertNonFull(key, id)
	t.size++
}

// splitChild splits the full child at index i of n.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	midKey := child.keys[mid]
	midPost := child.postings[mid]

	right := &btreeNode{
		keys:     append([]value.Value(nil), child.keys[mid+1:]...),
		postings: append([][]RowID(nil), child.postings[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.postings = child.postings[:mid]

	n.keys = append(n.keys, value.Null)
	n.postings = append(n.postings, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.postings[i+1:], n.postings[i:])
	n.keys[i] = midKey
	n.postings[i] = midPost

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(key value.Value, id RowID) {
	i, found := n.search(key)
	if found {
		n.postings[i] = append(n.postings[i], id)
		return
	}
	if n.leaf() {
		n.keys = append(n.keys, value.Null)
		n.postings = append(n.postings, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.postings[i+1:], n.postings[i:])
		n.keys[i] = key
		n.postings[i] = []RowID{id}
		return
	}
	if len(n.children[i].keys) == 2*btreeDegree-1 {
		n.splitChild(i)
		if value.Compare(key, n.keys[i]) > 0 {
			i++
		} else if value.Equal(key, n.keys[i]) {
			n.postings[i] = append(n.postings[i], id)
			return
		}
	}
	n.children[i].insertNonFull(key, id)
}

// Delete removes (key, id) from the index. It reports whether the pair was
// present. The key itself remains as a tombstone if its posting list
// empties.
func (t *BTree) Delete(key value.Value, id RowID) bool {
	n := t.root
	for {
		i, found := n.search(key)
		if found {
			post := n.postings[i]
			for j, got := range post {
				if got == id {
					n.postings[i] = append(post[:j:j], post[j+1:]...)
					t.size--
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// Lookup returns the posting list for an exact key (copied).
func (t *BTree) Lookup(key value.Value) []RowID {
	n := t.root
	for {
		i, found := n.search(key)
		if found {
			return append([]RowID(nil), n.postings[i]...)
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Bound describes one end of a range scan.
type Bound struct {
	// Value is the bound key; ignored when Unbounded.
	Value value.Value
	// Inclusive includes keys equal to Value.
	Inclusive bool
	// Unbounded means no bound on this end.
	Unbounded bool
}

// Unbounded is the open bound.
var Unbounded = Bound{Unbounded: true}

// Incl returns an inclusive bound at v.
func Incl(v value.Value) Bound { return Bound{Value: v, Inclusive: true} }

// Excl returns an exclusive bound at v.
func Excl(v value.Value) Bound { return Bound{Value: v} }

func (b Bound) admitsLow(key value.Value) bool {
	if b.Unbounded {
		return true
	}
	c := value.Compare(key, b.Value)
	return c > 0 || (c == 0 && b.Inclusive)
}

func (b Bound) admitsHigh(key value.Value) bool {
	if b.Unbounded {
		return true
	}
	c := value.Compare(key, b.Value)
	return c < 0 || (c == 0 && b.Inclusive)
}

// Range visits all live (key, id) pairs with lo <= key <= hi (per bound
// inclusivity) in key order. The visit function returns false to stop.
func (t *BTree) Range(lo, hi Bound, visit func(key value.Value, id RowID) bool) {
	t.root.rangeScan(lo, hi, visit)
}

func (n *btreeNode) rangeScan(lo, hi Bound, visit func(value.Value, RowID) bool) bool {
	start := 0
	if !lo.Unbounded {
		start = sort.Search(len(n.keys), func(i int) bool {
			return lo.admitsLow(n.keys[i])
		})
	}
	for i := start; i <= len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].rangeScan(lo, hi, visit) {
				return false
			}
		}
		if i == len(n.keys) {
			break
		}
		key := n.keys[i]
		if !hi.admitsHigh(key) {
			return false
		}
		if lo.admitsLow(key) {
			for _, id := range n.postings[i] {
				if !visit(key, id) {
					return false
				}
			}
		}
	}
	return true
}

// Min returns the smallest live key, or ok=false when the tree is empty.
func (t *BTree) Min() (value.Value, bool) {
	var out value.Value
	ok := false
	t.Range(Unbounded, Unbounded, func(k value.Value, _ RowID) bool {
		out, ok = k, true
		return false
	})
	return out, ok
}

// Max returns the largest live key, or ok=false when the tree is empty.
func (t *BTree) Max() (value.Value, bool) {
	var out value.Value
	ok := false
	// Walk to the rightmost live posting.
	t.Range(Unbounded, Unbounded, func(k value.Value, _ RowID) bool {
		out, ok = k, true
		return true
	})
	return out, ok
}

// Compact rebuilds the tree without tombstoned keys.
func (t *BTree) Compact() {
	fresh := NewBTree()
	t.Range(Unbounded, Unbounded, func(k value.Value, id RowID) bool {
		fresh.Insert(k, id)
		return true
	})
	t.root = fresh.root
	t.size = fresh.size
}
