package storage

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(value.Int(int64(i%50)), RowID(i))
	}
	if bt.Len() != 500 {
		t.Fatalf("Len = %d", bt.Len())
	}
	ids := bt.Lookup(value.Int(7))
	if len(ids) != 10 {
		t.Fatalf("Lookup(7) returned %d ids", len(ids))
	}
	for _, id := range ids {
		if int(id)%50 != 7 {
			t.Errorf("Lookup(7) returned id %d", id)
		}
	}
	if got := bt.Lookup(value.Int(99)); got != nil {
		t.Errorf("Lookup(absent) = %v", got)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(value.Int(int64(i)), RowID(i))
	}
	if !bt.Delete(value.Int(42), 42) {
		t.Fatal("Delete existing failed")
	}
	if bt.Delete(value.Int(42), 42) {
		t.Fatal("Delete of removed pair should report false")
	}
	if bt.Delete(value.Int(9999), 1) {
		t.Fatal("Delete of absent key should report false")
	}
	if bt.Len() != 99 {
		t.Fatalf("Len after delete = %d", bt.Len())
	}
	if ids := bt.Lookup(value.Int(42)); len(ids) != 0 {
		t.Errorf("deleted key still has ids %v", ids)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 200; i++ {
		bt.Insert(value.Int(int64(i)), RowID(i))
	}
	var got []int64
	bt.Range(Incl(value.Int(10)), Excl(value.Int(15)), func(k value.Value, _ RowID) bool {
		got = append(got, k.AsInt())
		return true
	})
	want := []int64{10, 11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	bt.Range(Unbounded, Unbounded, func(value.Value, RowID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Unbounded covers everything in order.
	var all []int64
	bt.Range(Unbounded, Unbounded, func(k value.Value, _ RowID) bool {
		all = append(all, k.AsInt())
		return true
	})
	if len(all) != 200 || !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Errorf("unbounded range wrong: n=%d sorted=%v", len(all), sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }))
	}
}

func TestBTreeMinMaxCompact(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Min(); ok {
		t.Error("Min on empty should be !ok")
	}
	if _, ok := bt.Max(); ok {
		t.Error("Max on empty should be !ok")
	}
	for _, k := range []int64{5, 3, 9, 1, 7} {
		bt.Insert(value.Int(k), RowID(k))
	}
	if mn, _ := bt.Min(); mn.AsInt() != 1 {
		t.Errorf("Min = %v", mn)
	}
	if mx, _ := bt.Max(); mx.AsInt() != 9 {
		t.Errorf("Max = %v", mx)
	}
	bt.Delete(value.Int(1), 1)
	bt.Delete(value.Int(9), 9)
	if mn, _ := bt.Min(); mn.AsInt() != 3 {
		t.Errorf("Min after delete = %v", mn)
	}
	if mx, _ := bt.Max(); mx.AsInt() != 7 {
		t.Errorf("Max after delete = %v", mx)
	}
	bt.Compact()
	if bt.Len() != 3 {
		t.Errorf("Len after compact = %d", bt.Len())
	}
}

// TestBTreeVersusModel cross-checks the B-tree against a simple sorted-pairs
// model over a long random operation sequence, including range queries with
// all four bound combinations.
func TestBTreeVersusModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bt := NewBTree()
	type pair struct {
		k  int64
		id RowID
	}
	var model []pair

	modelRange := func(lo, hi int64, loIncl, hiIncl bool) []pair {
		var out []pair
		for _, p := range model {
			okLo := p.k > lo || (loIncl && p.k == lo)
			okHi := p.k < hi || (hiIncl && p.k == hi)
			if okLo && okHi {
				out = append(out, p)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].k != out[j].k {
				return out[i].k < out[j].k
			}
			return out[i].id < out[j].id
		})
		return out
	}

	for step := 0; step < 4000; step++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert
			k := r.Int63n(80)
			id := RowID(step)
			bt.Insert(value.Int(k), id)
			model = append(model, pair{k, id})
		case 6, 7: // delete random model element
			if len(model) > 0 {
				i := r.Intn(len(model))
				p := model[i]
				if !bt.Delete(value.Int(p.k), p.id) {
					t.Fatalf("step %d: Delete(%d,%d) failed", step, p.k, p.id)
				}
				model = append(model[:i], model[i+1:]...)
			}
		default: // range check
			lo, hi := r.Int63n(80), r.Int63n(80)
			if lo > hi {
				lo, hi = hi, lo
			}
			loIncl, hiIncl := r.Intn(2) == 0, r.Intn(2) == 0
			lb, hb := Bound{Value: value.Int(lo), Inclusive: loIncl}, Bound{Value: value.Int(hi), Inclusive: hiIncl}
			var got []pair
			bt.Range(lb, hb, func(k value.Value, id RowID) bool {
				got = append(got, pair{k.AsInt(), id})
				return true
			})
			sort.Slice(got, func(i, j int) bool {
				if got[i].k != got[j].k {
					return got[i].k < got[j].k
				}
				return got[i].id < got[j].id
			})
			want := modelRange(lo, hi, loIncl, hiIncl)
			if len(got) != len(want) {
				t.Fatalf("step %d: range[%d,%d] got %d pairs, want %d", step, lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: range mismatch at %d: %v vs %v", step, i, got[i], want[i])
				}
			}
		}
		if bt.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, bt.Len(), len(model))
		}
	}
}

func TestHashIndex(t *testing.T) {
	h := NewHashIndex()
	h.Insert(value.Str("a"), 1)
	h.Insert(value.Str("a"), 2)
	h.Insert(value.Str("b"), 3)
	h.Insert(value.Int(2), 4)
	h.Insert(value.Float(2.0), 5) // equal to Int(2)
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	if ids := h.Lookup(value.Str("a")); len(ids) != 2 {
		t.Errorf("Lookup(a) = %v", ids)
	}
	if ids := h.Lookup(value.Int(2)); len(ids) != 2 {
		t.Errorf("Lookup(2) should see Float(2.0) too: %v", ids)
	}
	if !h.Delete(value.Str("a"), 1) {
		t.Error("Delete existing failed")
	}
	if h.Delete(value.Str("a"), 1) {
		t.Error("Delete twice should fail")
	}
	if h.Delete(value.Str("zz"), 1) {
		t.Error("Delete absent key should fail")
	}
	if ids := h.Lookup(value.Str("a")); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("after delete Lookup(a) = %v", ids)
	}
	// Drain and verify bucket cleanup keeps lookups correct.
	h.Delete(value.Str("a"), 2)
	if ids := h.Lookup(value.Str("a")); ids != nil {
		t.Errorf("drained key lookup = %v", ids)
	}
}
