package storage

import (
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

func colsegTable(t *testing.T) *Table {
	t.Helper()
	s := schema.MustNew("c", []schema.Attr{
		{Name: "id", Kind: value.KindInt, Required: true},
		{Name: "name", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt, Indicators: []tag.Indicator{{Name: "source", Kind: value.KindString}}},
	}, "id")
	return NewTable(s, false)
}

func TestScanSegmentCols(t *testing.T) {
	tbl := colsegTable(t)
	for i := 0; i < 10; i++ {
		tup := relation.NewTuple(value.Int(int64(i)), value.Str("n"), value.Int(int64(100+i)))
		if i%3 == 0 {
			tup.Cells[2].Tags = tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str("sales")})
		}
		if i == 7 {
			tup.Cells[1] = relation.Cell{} // null name
		}
		if _, err := tbl.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	before := TupleClones()

	var cs ColSeg
	if !tbl.ScanSegmentCols(0, []int{0, 2}, &cs) {
		t.Fatal("segment 0 missing")
	}
	if cs.N != 10 || cs.Base != 0 || cs.Sel != nil || cs.Live() != 10 {
		t.Fatalf("view = N %d Base %d Sel %v Live %d", cs.N, cs.Base, cs.Sel, cs.Live())
	}
	if len(cs.Cols) != 2 || len(cs.Cols[0].Vals) != 10 {
		t.Fatalf("cols = %d, run len %d", len(cs.Cols), len(cs.Cols[0].Vals))
	}
	// Only the requested columns, in request order.
	if got := cs.Cols[1].Vals[4]; !value.EqualPtr(&got, ptr(value.Int(104))) {
		t.Fatalf("cols[1].vals[4] = %v", got)
	}
	// Tags ride the run; untagged runs stay nil.
	if cs.Cols[0].Tags != nil {
		t.Error("id run unexpectedly tagged")
	}
	if v, ok := cs.Cols[1].Tags[3].Get("source"); !ok || v.Literal() != "'sales'" {
		t.Errorf("qty tag at 3 = %v %v", v, ok)
	}
	// Min/max stats recorded during the build.
	st := cs.Cols[0].Stats
	if !st.OK || st.Min.Literal() != "0" || st.Max.Literal() != "9" {
		t.Errorf("id stats = %+v", st)
	}
	// Null bitmap tracks the null cell.
	if !tbl.ScanSegmentCols(0, []int{1}, &cs) {
		t.Fatal("refill failed")
	}
	if !cs.Cols[0].Null(7) || cs.Cols[0].Null(6) {
		t.Error("null bitmap wrong")
	}
	if c := cs.Cols[0].Cell(7); !c.V.IsNull() {
		t.Error("Cell(7) not null")
	}

	// Zero-clone: none of the above counted as a tuple clone.
	if d := TupleClones() - before; d != 0 {
		t.Errorf("ScanSegmentCols cloned %d tuples", d)
	}

	// Deletes surface through Sel; stats stay a conservative superset.
	if err := tbl.Delete(9); err != nil {
		t.Fatal(err)
	}
	if !tbl.ScanSegmentCols(0, []int{0}, &cs) {
		t.Fatal("refill failed")
	}
	if cs.Live() != 9 || len(cs.Sel) != 9 || cs.Sel[8] != 8 {
		t.Fatalf("after delete: Live %d Sel %v", cs.Live(), cs.Sel)
	}
	if st := cs.Cols[0].Stats; st.Max.Literal() != "9" {
		t.Errorf("stats narrowed after delete: %+v", st)
	}

	// Out of range.
	if tbl.ScanSegmentCols(1, []int{0}, &cs) || tbl.ScanSegmentCols(-1, []int{0}, &cs) {
		t.Error("out-of-range segment reported present")
	}
}

func TestColumnarUpdateCopyOnWrite(t *testing.T) {
	tbl := colsegTable(t)
	for i := 0; i < 4; i++ {
		if _, err := tbl.Insert(relation.NewTuple(value.Int(int64(i)), value.Str("n"), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	var cs ColSeg
	tbl.ScanSegmentCols(0, []int{2}, &cs)
	oldRun := cs.Cols[0]

	if err := tbl.Update(1, relation.NewTuple(value.Int(1), value.Str("n"), value.Int(77))); err != nil {
		t.Fatal(err)
	}
	// The captured view is frozen: the writer copy-on-wrote the segment.
	if got := oldRun.Vals[1]; !value.EqualPtr(&got, ptr(value.Int(1))) {
		t.Fatalf("published run mutated in place: %v", got)
	}
	var cs2 ColSeg
	tbl.ScanSegmentCols(0, []int{2}, &cs2)
	if got := cs2.Cols[0].Vals[1]; !value.EqualPtr(&got, ptr(value.Int(77))) {
		t.Fatalf("update not visible to new view: %v", got)
	}
	// Stats widened to admit the new value.
	if st := cs2.Cols[0].Stats; st.Max.Literal() != "77" {
		t.Errorf("stats after update = %+v", st)
	}
}

func TestColumnarRowRoundTrip(t *testing.T) {
	tbl := colsegTable(t)
	created := time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)
	tup := relation.Tuple{Cells: []relation.Cell{
		{V: value.Int(1)},
		{V: value.Str("Fruit Co")},
		{
			V:       value.Int(4004),
			Tags:    tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str("Nexis")}, tag.Tag{Indicator: "creation_time", Value: value.Time(created)}),
			Sources: tag.NewSources("nexis"),
			Meta:    map[string]tag.Set{"source": tag.NewSet(tag.Tag{Indicator: "collection", Value: value.Str("feed")})},
		},
	}}
	id, err := tbl.Insert(tup)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(id)
	if !ok {
		t.Fatal("row missing")
	}
	want := relation.Relation{Schema: tbl.Schema(), Tuples: []relation.Tuple{tup}}
	have := relation.Relation{Schema: tbl.Schema(), Tuples: []relation.Tuple{got}}
	if relation.Format(&want, true) != relation.Format(&have, true) {
		t.Fatalf("round trip mismatch:\nwant %s\nhave %s", relation.Format(&want, true), relation.Format(&have, true))
	}
	if got.Cells[2].Meta == nil || got.Cells[2].Sources.String() != tup.Cells[2].Sources.String() {
		t.Error("meta/sources dropped in round trip")
	}
}

func ptr(v value.Value) *value.Value { return &v }
