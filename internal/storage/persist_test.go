package storage

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// buildRichCatalog exercises every persisted feature: schemas with required
// indicators, strict mode, keys, indexes of both kinds, table tags, cell
// tags, polygen sources, meta-quality, nulls, and all value kinds.
func buildRichCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	sc := schema.MustNew("rich", []schema.Attr{
		{Name: "id", Kind: value.KindInt, Required: true},
		{Name: "name", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "source", Kind: value.KindString, Doc: "origin"}}},
		{Name: "score", Kind: value.KindFloat},
		{Name: "seen", Kind: value.KindTime},
		{Name: "ttl", Kind: value.KindDuration},
		{Name: "ok", Kind: value.KindBool},
	}, "id")
	sc.Doc = "persistence fixture"
	tbl, err := cat.Create(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "score"}, IndexBTree); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "name", Indicator: "source"}, IndexHash); err != nil {
		t.Fatal(err)
	}
	tbl.SetTableTag("population_method", value.Str("fixture"))
	tbl.SetTableTag("null_rate", value.Float(0.125))

	when := time.Date(1991, 10, 3, 12, 34, 56, 789000000, time.UTC)
	cell := relation.Cell{
		V:       value.Str("Fruit Co"),
		Tags:    tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str("Nexis")}),
		Sources: tag.NewSources("nexis", "wsj"),
	}
	cell = cell.WithMetaTag("source", "credibility", value.Str("high"))
	row := relation.Tuple{Cells: []relation.Cell{
		{V: value.Int(1)},
		cell,
		{V: value.Float(2.5)},
		{V: value.Time(when)},
		{V: value.Duration(90 * time.Minute)},
		{V: value.Bool(true)},
	}}
	if _, err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	// A row with nulls in optional columns.
	row2 := relation.Tuple{Cells: []relation.Cell{
		{V: value.Int(2)},
		{V: value.Str("Nut Co"), Tags: tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str("estimate")})},
		{V: value.Null},
		{V: value.Null},
		{V: value.Null},
		{V: value.Null},
	}}
	if _, err := tbl.Insert(row2); err != nil {
		t.Fatal(err)
	}
	// A second, plain table.
	sc2 := schema.MustNew("plain", []schema.Attr{{Name: "x", Kind: value.KindInt}})
	tbl2, _ := cat.Create(sc2, false)
	for i := 0; i < 5; i++ {
		if _, err := tbl2.Insert(relation.NewTuple(value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := buildRichCatalog(t)
	var buf bytes.Buffer
	if err := cat.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Names(), cat.Names(); len(got) != len(want) {
		t.Fatalf("tables = %v, want %v", got, want)
	}
	a, _ := cat.Get("rich")
	b, _ := loaded.Get("rich")
	if b.Len() != a.Len() {
		t.Fatalf("rows = %d, want %d", b.Len(), a.Len())
	}
	if !b.Strict() {
		t.Error("strict flag lost")
	}
	if b.Schema().Doc != "persistence fixture" {
		t.Error("schema doc lost")
	}
	// Rows identical, including tags, sources, meta, and nanosecond times.
	as, bs := a.Snapshot(), b.Snapshot()
	for i := range as.Tuples {
		if !as.Tuples[i].Equal(bs.Tuples[i]) {
			t.Fatalf("row %d differs:\n  %v\n  %v", i, as.Tuples[i], bs.Tuples[i])
		}
	}
	// Table tags survive.
	if v, ok := b.TableTags().Get("null_rate"); !ok || v.AsFloat() != 0.125 {
		t.Errorf("table tags = %v", b.TableTags())
	}
	// Indexes were rebuilt and answer queries.
	specs := b.IndexSpecs()
	if len(specs) != 2 {
		t.Fatalf("index specs = %v", specs)
	}
	ids, err := b.LookupEq(IndexTarget{Attr: "name", Indicator: "source"}, value.Str("Nexis"))
	if err != nil || len(ids) != 1 {
		t.Errorf("indicator index after load: %v, %v", ids, err)
	}
	// Keys enforced after load.
	if _, err := b.Insert(relation.Tuple{Cells: as.Tuples[0].Cells}); err == nil {
		t.Error("duplicate key accepted after load")
	}
	// Save(load(x)) is stable.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := cat.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Error("save is not a fixpoint of load∘save")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := LoadCatalog(strings.NewReader(`{"format":"something-else","tables":[]}`)); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := LoadCatalog(strings.NewReader(
		`{"format":"repro-dq-catalog/1","tables":[{"name":"t","attrs":[{"name":"x","kind":"blob"}],"rows":[]}]}`)); err == nil {
		t.Error("bad kind should fail")
	}
	if _, err := LoadCatalog(strings.NewReader(
		`{"format":"repro-dq-catalog/1","tables":[{"name":"t","attrs":[{"name":"x","kind":"int"}],"rows":[[{"k":"int","v":"1"},{"k":"int","v":"2"}]]}]}`)); err == nil {
		t.Error("arity mismatch should fail")
	}
}
