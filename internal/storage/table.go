package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// SegmentSize is the number of row slots per heap segment. Row IDs map to
// (segment, offset) as id/SegmentSize, id%SegmentSize; a table's heap is a
// sequence of fixed-size segments so readers can snapshot one segment at a
// time under a short read lock and scans can fan segments out across cores.
const SegmentSize = 4096

// tupleClones counts protective row copies handed out of tables (Get,
// ScanSegment, Snapshot) — materializations the caller may freely mutate
// and retain. It is process-wide instrumentation for tests and benchmarks
// asserting that lazy scan paths copy O(rows consumed), not O(table);
// zero-clone reads (ScanSegmentCols, the shared row scans) never bump it.
var tupleClones atomic.Int64

// TupleClones reports the process-wide count of tuples cloned out of
// tables; measure deltas around an operation.
func TupleClones() int64 { return tupleClones.Load() }

// IndexTarget names what an index is built over: an attribute's application
// values (Indicator == ""), or the values of one quality indicator tagged on
// that attribute (Indicator != ""). Indexing indicator values is what makes
// "retrieve data of specific quality" (paper §1.3) efficient at query time.
type IndexTarget struct {
	Attr      string
	Indicator string
}

// String renders "attr" or "attr@indicator".
func (t IndexTarget) String() string {
	if t.Indicator == "" {
		return t.Attr
	}
	return t.Attr + "@" + t.Indicator
}

// IndexKind selects the index structure.
type IndexKind uint8

const (
	// IndexHash supports equality lookups.
	IndexHash IndexKind = iota
	// IndexBTree supports equality and ordered range lookups.
	IndexBTree
)

type index struct {
	target IndexTarget
	kind   IndexKind
	col    int
	hash   *HashIndex
	btree  *BTree
}

func (ix *index) keyOf(t relation.Tuple) (value.Value, bool) {
	c := t.Cells[ix.col]
	if ix.target.Indicator == "" {
		return c.V, true
	}
	return c.Tags.Get(ix.target.Indicator)
}

func (ix *index) insertKey(key value.Value, id RowID) {
	if ix.kind == IndexHash {
		ix.hash.Insert(key, id)
	} else {
		ix.btree.Insert(key, id)
	}
}

func (ix *index) insert(t relation.Tuple, id RowID) {
	key, ok := ix.keyOf(t)
	if !ok {
		return // untagged cells are simply absent from indicator indexes
	}
	ix.insertKey(key, id)
}

func (ix *index) remove(t relation.Tuple, id RowID) {
	key, ok := ix.keyOf(t)
	if !ok {
		return
	}
	if ix.kind == IndexHash {
		ix.hash.Delete(key, id)
	} else {
		ix.btree.Delete(key, id)
	}
}

// segment is one fixed-size run of the heap: up to SegmentSize row slots
// stored column-major (one colRun per attribute — see colseg.go) plus the
// slots' liveness bits.
type segment struct {
	cols  []colRun
	live  []bool
	n     int // row slots appended (live + dead)
	nDead int
}

func newSegment(width int) *segment {
	return &segment{cols: make([]colRun, width), live: make([]bool, 0, SegmentSize)}
}

// rowAt materializes slot off as a fresh row; the caller must hold t.mu.
func (s *segment) rowAt(off int) relation.Tuple {
	cells := make([]relation.Cell, len(s.cols))
	s.rowInto(off, cells)
	return relation.Tuple{Cells: cells}
}

// rowInto materializes slot off into cells (len == len(s.cols)).
func (s *segment) rowInto(off int, cells []relation.Cell) {
	for j := range s.cols {
		cells[j] = s.cols[j].cell(off)
	}
}

// Table is a concurrent heap table with secondary indexes and primary-key
// enforcement. Row IDs are stable for the life of a row. The heap is a
// sequence of fixed-size segments (SegmentSize row slots each); readers may
// snapshot segments independently, so a scan never holds the table lock
// while its caller processes rows.
type Table struct {
	mu     sync.RWMutex
	schema *schema.Schema
	segs   []*segment
	nRows  int // total row slots allocated (live + dead) = next RowID
	nLive  int
	strict bool
	// owner is the catalog the table was created in (nil for standalone
	// tables); in-place DDL (CreateIndex, SetTableTag) bumps the owner's
	// schema version so plan caches re-validate — wherever the mutation
	// came from, QQL or the storage API directly.
	owner *Catalog

	indexes []*index
	pk      map[string]RowID // encoded key -> row, nil when schema has no key
	keyCols []int
	// tableTags holds table-level quality indicators (the paper's §1.2:
	// tagging higher aggregations, e.g. the population method of the
	// whole table, which hints at its completeness).
	tableTags tag.Set
	// dataVer advances on every row mutation (insert, update, delete).
	// Monitoring collectors use it to skip recomputing derived statistics
	// (quality gauges) for tables whose contents have not changed.
	dataVer atomic.Uint64
}

// DataVersion reports a counter that advances on every row mutation. Equal
// versions imply identical contents since the last read; the converse does
// not hold.
func (t *Table) DataVersion() uint64 { return t.dataVer.Load() }

// NewTable creates a table over the schema. When strict is true, inserts
// enforce required attributes and required indicator tags.
func NewTable(s *schema.Schema, strict bool) *Table {
	t := &Table{schema: s, strict: strict}
	if len(s.Key) > 0 {
		t.pk = make(map[string]RowID)
		t.keyCols = s.KeyIndexes()
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// bumpOwner advances the owning catalog's schema version for this table;
// no-op for standalone tables. Callers must not hold t.mu (the bump takes
// the catalog lock; keeping the two disjoint avoids ever nesting them).
func (t *Table) bumpOwner() {
	if t.owner != nil {
		t.owner.Bump(t.schema.Name)
	}
}

// SetTableTag sets one table-level quality indicator. Table-level tags are
// DDL-adjacent metadata: the owning catalog's schema version advances so
// version-validated plans never outlive a re-tag.
func (t *Table) SetTableTag(indicator string, v value.Value) {
	t.mu.Lock()
	t.tableTags = t.tableTags.With(indicator, v)
	t.mu.Unlock()
	t.bumpOwner()
}

// TableTags returns the table-level quality indicator set.
func (t *Table) TableTags() tag.Set {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tableTags
}

// Len reports the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nLive
}

// Segments reports the number of heap segments. Segment indexes
// 0..Segments()-1 are valid arguments to ScanSegment; rows with IDs in
// [i*SegmentSize, (i+1)*SegmentSize) live in segment i.
func (t *Table) Segments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// ScanSegment copies the live rows of segment i (ids and tuples, in
// ascending row-ID order) under a short read lock and returns them. An
// out-of-range segment yields empty slices. Concatenating ScanSegment(0..n)
// reproduces a full scan in row-ID order, one segment's consistency at a
// time — callers process the copies without holding any table lock.
func (t *Table) ScanSegment(i int) ([]RowID, []relation.Tuple) {
	return t.scanSegment(i, true, true)
}

// ScanSegmentRows is ScanSegment for callers that do not need the row IDs;
// it skips the per-segment ID slice allocation on the scan hot path.
func (t *Table) ScanSegmentRows(i int) []relation.Tuple {
	_, rows := t.scanSegment(i, false, true)
	return rows
}

// ScanSegmentRowsShared is ScanSegmentRows without the protective per-row
// clone: rows are materialized from the segment's column runs into one
// shared arena per segment rather than one heap allocation per row, and
// the materialization is not counted as a clone. Callers must treat the
// rows as read-only and rebuild the cell slice (projection, join
// concatenation, aggregation) before any row escapes to code that might
// mutate or retain it — mutating a shared row corrupts every other row in
// its arena's lifetime, and retaining one pins the whole arena. Query
// pipelines qualify; handing these tuples straight to an end user does
// not. Columnar consumers should prefer ScanSegmentCols, which skips row
// materialization entirely.
func (t *Table) ScanSegmentRowsShared(i int) []relation.Tuple {
	_, rows := t.scanSegment(i, false, false)
	return rows
}

// ScanSegmentRowsSharedInto is ScanSegmentRowsShared appending into buf
// (reset to length zero), so a streaming reader can recycle one segment
// buffer for a whole scan instead of allocating per segment — the returned
// slice is only valid until the next refill. Same zero-clone, read-only
// contract as ScanSegmentRowsShared.
func (t *Table) ScanSegmentRowsSharedInto(i int, buf []relation.Tuple) []relation.Tuple {
	if buf == nil {
		buf = []relation.Tuple{}
	}
	_, rows := t.scanSegmentInto(i, false, false, buf)
	return rows
}

func (t *Table) scanSegment(i int, withIDs, clone bool) ([]RowID, []relation.Tuple) {
	return t.scanSegmentInto(i, withIDs, clone, nil)
}

// scanSegmentInto is the one row-shaped segment-read core: every row scan
// variant — cloned or shared, with or without row IDs, allocating or
// recycling its buffer — funnels through this loop, so liveness and
// locking semantics cannot diverge between them. Rows are materialized
// from the segment's column runs: clone mode gives each row its own cell
// slice (callers may mutate and retain), shared mode packs the segment's
// rows into one arena (read-only, transient). A nil buf allocates a fresh
// row slice; a non-nil buf is reset and appended into.
func (t *Table) scanSegmentInto(i int, withIDs, clone bool, buf []relation.Tuple) ([]RowID, []relation.Tuple) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.segs) {
		return nil, buf[:0]
	}
	seg := t.segs[i]
	live := seg.n - seg.nDead
	var ids []RowID
	rows := buf[:0]
	if live > 0 {
		if withIDs {
			ids = make([]RowID, 0, live)
		}
		if buf == nil {
			rows = make([]relation.Tuple, 0, live)
		}
	}
	w := len(seg.cols)
	var arena []relation.Cell
	if !clone && live > 0 {
		arena = make([]relation.Cell, live*w)
	}
	for off := 0; off < seg.n; off++ {
		if !seg.live[off] {
			continue
		}
		var cells []relation.Cell
		if clone {
			cells = make([]relation.Cell, w)
		} else {
			k := len(rows) * w
			cells = arena[k : k+w : k+w]
		}
		seg.rowInto(off, cells)
		if withIDs {
			ids = append(ids, RowID(i*SegmentSize+off))
		}
		rows = append(rows, relation.Tuple{Cells: cells})
	}
	if clone {
		// One batched add per segment: a per-row atomic RMW would have every
		// parallel scan worker ping-ponging the counter's cache line.
		tupleClones.Add(int64(len(rows)))
	}
	return ids, rows
}

// locate returns the slot for id; the caller must hold t.mu. ok is false
// for out-of-range or dead rows.
func (t *Table) locate(id RowID) (seg *segment, off int, ok bool) {
	if id < 0 || int(id) >= t.nRows {
		return nil, 0, false
	}
	seg = t.segs[int(id)/SegmentSize]
	off = int(id) % SegmentSize
	return seg, off, seg.live[off]
}

// forEachLiveLocked visits live rows in row-ID order, materializing each
// row fresh from its segment's column runs; the caller must hold t.mu.
// Visited rows own their cells and may escape the lock. Single-column
// readers (index builds, unindexed lookups) should walk the column runs
// directly instead of paying whole-row materialization.
func (t *Table) forEachLiveLocked(fn func(id RowID, row relation.Tuple) bool) {
	for si, seg := range t.segs {
		for off := 0; off < seg.n; off++ {
			if !seg.live[off] {
				continue
			}
			if !fn(RowID(si*SegmentSize+off), seg.rowAt(off)) {
				return
			}
		}
	}
}

// appendLocked appends a row slot, copying the tuple's cells into the tail
// segment's column runs; the caller must hold t.mu for writing.
func (t *Table) appendLocked(tup relation.Tuple) RowID {
	if len(t.segs) == 0 || t.segs[len(t.segs)-1].n == SegmentSize {
		t.segs = append(t.segs, newSegment(len(t.schema.Attrs)))
	}
	seg := t.segs[len(t.segs)-1]
	for j := range seg.cols {
		seg.cols[j].appendCell(tup.Cells[j], seg.n)
	}
	seg.live = append(seg.live, true)
	seg.n++
	t.dataVer.Add(1)
	id := RowID(t.nRows)
	t.nRows++
	t.nLive++
	return id
}

func (t *Table) encodeKey(tup relation.Tuple) string {
	var b strings.Builder
	for i, c := range t.keyCols {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(tup.Cells[c].V.Literal())
	}
	return b.String()
}

// CreateIndex builds an index of the given kind over the target, populating
// it from existing rows. The new index changes the table's plannable
// surface: the owning catalog's schema version advances so cached bound
// plans re-run the access-path choice.
func (t *Table) CreateIndex(target IndexTarget, kind IndexKind) error {
	if err := t.createIndex(target, kind); err != nil {
		return err
	}
	t.bumpOwner()
	return nil
}

func (t *Table) createIndex(target IndexTarget, kind IndexKind) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	for _, ix := range t.indexes {
		if ix.target == target {
			return fmt.Errorf("storage %s: index on %s already exists", t.schema.Name, target)
		}
	}
	ix := &index{target: target, kind: kind, col: col}
	if kind == IndexHash {
		ix.hash = NewHashIndex()
	} else {
		ix.btree = NewBTree()
	}
	// Populate from the one column run the index targets — no row
	// materialization.
	for si, seg := range t.segs {
		r := &seg.cols[col]
		for off := 0; off < seg.n; off++ {
			if !seg.live[off] {
				continue
			}
			var key value.Value
			ok := true
			if target.Indicator == "" {
				key = r.vals[off]
			} else if r.tags != nil {
				key, ok = r.tags[off].Get(target.Indicator)
			} else {
				ok = false
			}
			if ok {
				ix.insertKey(key, RowID(si*SegmentSize+off))
			}
		}
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

// IndexSpec describes one index: target plus structure kind.
type IndexSpec struct {
	Target IndexTarget
	Kind   IndexKind
}

// IndexSpecs lists all indexes with their kinds.
func (t *Table) IndexSpecs() []IndexSpec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexSpec, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = IndexSpec{Target: ix.target, Kind: ix.kind}
	}
	return out
}

// Strict reports whether the table enforces required indicators on insert.
func (t *Table) Strict() bool { return t.strict }

// Indexes lists the targets of all indexes on the table.
func (t *Table) Indexes() []IndexTarget {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexTarget, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = ix.target
	}
	return out
}

// Insert validates and appends a tuple, returning its row ID.
func (t *Table) Insert(tup relation.Tuple) (RowID, error) {
	if err := relation.CheckTuple(t.schema, tup, t.strict); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		k := t.encodeKey(tup)
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("storage %s: duplicate key %s", t.schema.Name, k)
		}
		t.pk[k] = RowID(t.nRows)
	}
	// No defensive clone: appendLocked copies the cells by value into the
	// segment's column runs, decoupling the heap from the caller's tuple.
	id := t.appendLocked(tup)
	for _, ix := range t.indexes {
		ix.insert(tup, id)
	}
	return id, nil
}

// Get returns a copy of the row and whether it is live.
func (t *Table) Get(id RowID) (relation.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seg, off, ok := t.locate(id)
	if !ok {
		return relation.Tuple{}, false
	}
	tupleClones.Add(1)
	return seg.rowAt(off), true
}

// Update replaces the row at id with tup, maintaining indexes and the
// primary key map.
func (t *Table) Update(id RowID, tup relation.Tuple) error {
	if err := relation.CheckTuple(t.schema, tup, t.strict); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, off, ok := t.locate(id)
	if !ok {
		return fmt.Errorf("storage %s: update of dead row %d", t.schema.Name, id)
	}
	old := seg.rowAt(off)
	if t.pk != nil {
		oldK, newK := t.encodeKey(old), t.encodeKey(tup)
		if oldK != newK {
			if _, dup := t.pk[newK]; dup {
				return fmt.Errorf("storage %s: duplicate key %s", t.schema.Name, newK)
			}
			delete(t.pk, oldK)
			t.pk[newK] = id
		}
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	// Copy-on-write: published column runs are immutable, so replace the
	// touched segment's runs wholesale rather than writing a slot in place.
	// Readers that captured the old runs keep a consistent view.
	ncols := make([]colRun, len(seg.cols))
	for j := range seg.cols {
		ncols[j] = seg.cols[j].cowReplace(off, tup.Cells[j])
	}
	seg.cols = ncols
	for _, ix := range t.indexes {
		ix.insert(tup, id)
	}
	t.dataVer.Add(1)
	return nil
}

// Delete tombstones the row at id.
func (t *Table) Delete(id RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, off, ok := t.locate(id)
	if !ok {
		return fmt.Errorf("storage %s: delete of dead row %d", t.schema.Name, id)
	}
	old := seg.rowAt(off)
	if t.pk != nil {
		delete(t.pk, t.encodeKey(old))
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	seg.live[off] = false
	seg.nDead++
	t.nLive--
	t.dataVer.Add(1)
	return nil
}

// LookupKey finds the row ID for the given primary key values.
func (t *Table) LookupKey(keyVals ...value.Value) (RowID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk == nil || len(keyVals) != len(t.keyCols) {
		return 0, false
	}
	var b strings.Builder
	for i, v := range keyVals {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(v.Literal())
	}
	id, ok := t.pk[b.String()]
	return id, ok
}

// Scan visits every live row in row-ID order. Visit receives a copy; it
// returns false to stop the scan.
//
// The scan snapshots one segment at a time and invokes visit with no table
// lock held, so a visitor may freely call back into the table (Get,
// LookupEq, even Insert) without deadlocking behind a queued writer — the
// sync.RWMutex hazard the old whole-scan lock had. The price is that a scan
// is consistent per segment, not across the whole table: rows written to
// segments not yet visited may or may not be seen.
func (t *Table) Scan(visit func(id RowID, tup relation.Tuple) bool) {
	n := t.Segments()
	for si := 0; si < n; si++ {
		ids, rows := t.ScanSegment(si)
		for i, id := range ids {
			if !visit(id, rows[i]) {
				return
			}
		}
	}
}

// findIndex returns an index usable for the target, preferring one whose
// kind satisfies needRange.
func (t *Table) findIndex(target IndexTarget, needRange bool) *index {
	for _, ix := range t.indexes {
		if ix.target == target {
			if needRange && ix.kind != IndexBTree {
				continue
			}
			return ix
		}
	}
	return nil
}

// HasIndex reports whether an index exists for the target, and whether it
// supports range scans.
func (t *Table) HasIndex(target IndexTarget) (exists, ranged bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if ix.target == target {
			exists = true
			if ix.kind == IndexBTree {
				ranged = true
			}
		}
	}
	return
}

// isLiveLocked reports liveness of id; the caller must hold t.mu.
func (t *Table) isLiveLocked(id RowID) bool {
	_, _, ok := t.locate(id)
	return ok
}

// LookupEq returns the row IDs whose target equals key, using an index when
// one exists, otherwise scanning. Results are in ascending row-ID order.
func (t *Table) LookupEq(target IndexTarget, key value.Value) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return nil, fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	if ix := t.findIndex(target, false); ix != nil {
		var ids []RowID
		if ix.kind == IndexHash {
			ids = ix.hash.Lookup(key)
		} else {
			ids = ix.btree.Lookup(key)
		}
		out := ids[:0]
		for _, id := range ids {
			if t.isLiveLocked(id) {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	// Unindexed fallback: walk the one targeted column run per segment,
	// skipping segments whose min/max summary excludes the key.
	var out []RowID
	for si, seg := range t.segs {
		r := &seg.cols[col]
		if target.Indicator == "" && r.mm.OK && !key.IsNull() {
			if value.ComparePtr(&key, &r.mm.Min) < 0 || value.ComparePtr(&key, &r.mm.Max) > 0 {
				continue
			}
		}
		for off := 0; off < seg.n; off++ {
			if !seg.live[off] {
				continue
			}
			got, ok := r.targetAt(off, target.Indicator)
			if ok && value.EqualPtr(&got, &key) {
				out = append(out, RowID(si*SegmentSize+off))
			}
		}
	}
	return out, nil
}

// targetAt reads slot off's lookup target: the value itself, or one
// indicator tagged on it.
func (r *colRun) targetAt(off int, indicator string) (value.Value, bool) {
	if indicator == "" {
		return r.vals[off], true
	}
	if r.tags == nil {
		return value.Value{}, false
	}
	return r.tags[off].Get(indicator)
}

// LookupRange returns row IDs whose target falls within [lo, hi] per bound
// inclusivity, using a B-tree index when available, otherwise scanning.
// Results are in ascending row-ID order.
func (t *Table) LookupRange(target IndexTarget, lo, hi Bound) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return nil, fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	var out []RowID
	if ix := t.findIndex(target, true); ix != nil {
		ix.btree.Range(lo, hi, func(_ value.Value, id RowID) bool {
			if t.isLiveLocked(id) {
				out = append(out, id)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	for si, seg := range t.segs {
		r := &seg.cols[col]
		for off := 0; off < seg.n; off++ {
			if !seg.live[off] {
				continue
			}
			got, ok := r.targetAt(off, target.Indicator)
			if ok && lo.admitsLow(got) && hi.admitsHigh(got) {
				out = append(out, RowID(si*SegmentSize+off))
			}
		}
	}
	return out, nil
}

// Snapshot copies the live rows into a relation.Relation, in row-ID order,
// under one read lock — a consistent point-in-time copy of the whole table.
// Query scans do not use it (they stream segment-wise); it remains for
// callers that need whole-table consistency, e.g. persistence.
func (t *Table) Snapshot() *relation.Relation {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := relation.New(t.schema)
	out.TableTags = t.tableTags
	t.forEachLiveLocked(func(_ RowID, row relation.Tuple) bool {
		out.Tuples = append(out.Tuples, row) // forEachLiveLocked rows are fresh copies
		return true
	})
	tupleClones.Add(int64(len(out.Tuples)))
	return out
}

// SnapshotRows copies the live rows and their IDs, in row-ID order, under
// one read lock — Snapshot for callers that need to address rows
// afterwards (DELETE/UPDATE collect-then-apply). Unlike segment-wise Scan,
// a row cannot appear at two IDs in one SnapshotRows (e.g. deleted and
// reinserted by a concurrent writer mid-scan).
func (t *Table) SnapshotRows() ([]RowID, []relation.Tuple) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]RowID, 0, t.nLive)
	rows := make([]relation.Tuple, 0, t.nLive)
	t.forEachLiveLocked(func(id RowID, row relation.Tuple) bool {
		ids = append(ids, id)
		rows = append(rows, row) // forEachLiveLocked rows are fresh copies
		return true
	})
	tupleClones.Add(int64(len(rows)))
	return ids, rows
}

// Load bulk-inserts all tuples of a relation, returning the first error.
func (t *Table) Load(r *relation.Relation) error {
	for i := range r.Tuples {
		if _, err := t.Insert(r.Tuples[i]); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Catalog is a named collection of tables: the "database" handed to the QQL
// engine and the examples.
//
// Each table name carries a monotonic schema version, bumped on every DDL
// that can change what a compiled plan assumed about the table — CREATE
// TABLE, DROP TABLE, CREATE INDEX, TAG TABLE. Versions belong to the name,
// not the Table object, and survive drop/recreate, so a plan compiled
// against a dropped table's schema can never validate against its
// same-named successor.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	versions map[string]uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), versions: make(map[string]uint64)}
}

// Create adds a new table for the schema; it fails if the name is taken.
func (c *Catalog) Create(s *schema.Schema, strict bool) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[s.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", s.Name)
	}
	t := NewTable(s, strict)
	t.owner = c
	c.tables[s.Name] = t
	c.versions[s.Name]++
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return false
	}
	delete(c.tables, name)
	c.versions[name]++
	return true
}

// Version reports the schema version of the named table; 0 means the name
// has never existed.
func (c *Catalog) Version(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions[name]
}

// Bump advances the schema version of the named table. DDL paths that
// mutate a Table in place (CREATE INDEX, TAG TABLE) call it after the
// mutation lands, so version-validated plan caches re-plan.
func (c *Catalog) Bump(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions[name]++
}

// Resolve fetches the named tables and their schema versions atomically
// under one read lock. It returns the first missing name, or "" when every
// table resolved. The pairing matters for plan caches: a version read any
// later than its table could tag a plan compiled against the old schema
// with the new version, making a stale plan validate.
func (c *Catalog) Resolve(names []string) (map[string]*Table, []uint64, string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tables := make(map[string]*Table, len(names))
	versions := make([]uint64, len(names))
	for i, n := range names {
		t, ok := c.tables[n]
		if !ok {
			return nil, nil, n
		}
		tables[n] = t
		versions[i] = c.versions[n]
	}
	return tables, versions, ""
}

// Names lists table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
