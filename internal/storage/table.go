package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// IndexTarget names what an index is built over: an attribute's application
// values (Indicator == ""), or the values of one quality indicator tagged on
// that attribute (Indicator != ""). Indexing indicator values is what makes
// "retrieve data of specific quality" (paper §1.3) efficient at query time.
type IndexTarget struct {
	Attr      string
	Indicator string
}

// String renders "attr" or "attr@indicator".
func (t IndexTarget) String() string {
	if t.Indicator == "" {
		return t.Attr
	}
	return t.Attr + "@" + t.Indicator
}

// IndexKind selects the index structure.
type IndexKind uint8

const (
	// IndexHash supports equality lookups.
	IndexHash IndexKind = iota
	// IndexBTree supports equality and ordered range lookups.
	IndexBTree
)

type index struct {
	target IndexTarget
	kind   IndexKind
	col    int
	hash   *HashIndex
	btree  *BTree
}

func (ix *index) keyOf(t relation.Tuple) (value.Value, bool) {
	c := t.Cells[ix.col]
	if ix.target.Indicator == "" {
		return c.V, true
	}
	return c.Tags.Get(ix.target.Indicator)
}

func (ix *index) insert(t relation.Tuple, id RowID) {
	key, ok := ix.keyOf(t)
	if !ok {
		return // untagged cells are simply absent from indicator indexes
	}
	if ix.kind == IndexHash {
		ix.hash.Insert(key, id)
	} else {
		ix.btree.Insert(key, id)
	}
}

func (ix *index) remove(t relation.Tuple, id RowID) {
	key, ok := ix.keyOf(t)
	if !ok {
		return
	}
	if ix.kind == IndexHash {
		ix.hash.Delete(key, id)
	} else {
		ix.btree.Delete(key, id)
	}
}

// Table is a concurrent heap table with secondary indexes and primary-key
// enforcement. Row IDs are stable for the life of a row.
type Table struct {
	mu      sync.RWMutex
	schema  *schema.Schema
	rows    []relation.Tuple
	live    []bool
	nLive   int
	strict  bool
	indexes []*index
	pk      map[string]RowID // encoded key -> row, nil when schema has no key
	keyCols []int
	// tableTags holds table-level quality indicators (the paper's §1.2:
	// tagging higher aggregations, e.g. the population method of the
	// whole table, which hints at its completeness).
	tableTags tag.Set
}

// NewTable creates a table over the schema. When strict is true, inserts
// enforce required attributes and required indicator tags.
func NewTable(s *schema.Schema, strict bool) *Table {
	t := &Table{schema: s, strict: strict}
	if len(s.Key) > 0 {
		t.pk = make(map[string]RowID)
		t.keyCols = s.KeyIndexes()
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// SetTableTag sets one table-level quality indicator.
func (t *Table) SetTableTag(indicator string, v value.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tableTags = t.tableTags.With(indicator, v)
}

// TableTags returns the table-level quality indicator set.
func (t *Table) TableTags() tag.Set {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tableTags
}

// Len reports the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nLive
}

func (t *Table) encodeKey(tup relation.Tuple) string {
	var b strings.Builder
	for i, c := range t.keyCols {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(tup.Cells[c].V.Literal())
	}
	return b.String()
}

// CreateIndex builds an index of the given kind over the target, populating
// it from existing rows.
func (t *Table) CreateIndex(target IndexTarget, kind IndexKind) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	for _, ix := range t.indexes {
		if ix.target == target {
			return fmt.Errorf("storage %s: index on %s already exists", t.schema.Name, target)
		}
	}
	ix := &index{target: target, kind: kind, col: col}
	if kind == IndexHash {
		ix.hash = NewHashIndex()
	} else {
		ix.btree = NewBTree()
	}
	for id, row := range t.rows {
		if t.live[id] {
			ix.insert(row, RowID(id))
		}
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

// IndexSpec describes one index: target plus structure kind.
type IndexSpec struct {
	Target IndexTarget
	Kind   IndexKind
}

// IndexSpecs lists all indexes with their kinds.
func (t *Table) IndexSpecs() []IndexSpec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexSpec, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = IndexSpec{Target: ix.target, Kind: ix.kind}
	}
	return out
}

// Strict reports whether the table enforces required indicators on insert.
func (t *Table) Strict() bool { return t.strict }

// Indexes lists the targets of all indexes on the table.
func (t *Table) Indexes() []IndexTarget {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexTarget, len(t.indexes))
	for i, ix := range t.indexes {
		out[i] = ix.target
	}
	return out
}

// Insert validates and appends a tuple, returning its row ID.
func (t *Table) Insert(tup relation.Tuple) (RowID, error) {
	if err := relation.CheckTuple(t.schema, tup, t.strict); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		k := t.encodeKey(tup)
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("storage %s: duplicate key %s", t.schema.Name, k)
		}
		t.pk[k] = RowID(len(t.rows))
	}
	id := RowID(len(t.rows))
	t.rows = append(t.rows, tup.Clone())
	t.live = append(t.live, true)
	t.nLive++
	for _, ix := range t.indexes {
		ix.insert(tup, id)
	}
	return id, nil
}

// Get returns a copy of the row and whether it is live.
func (t *Table) Get(id RowID) (relation.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.rows) || !t.live[id] {
		return relation.Tuple{}, false
	}
	return t.rows[id].Clone(), true
}

// Update replaces the row at id with tup, maintaining indexes and the
// primary key map.
func (t *Table) Update(id RowID, tup relation.Tuple) error {
	if err := relation.CheckTuple(t.schema, tup, t.strict); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || !t.live[id] {
		return fmt.Errorf("storage %s: update of dead row %d", t.schema.Name, id)
	}
	old := t.rows[id]
	if t.pk != nil {
		oldK, newK := t.encodeKey(old), t.encodeKey(tup)
		if oldK != newK {
			if _, dup := t.pk[newK]; dup {
				return fmt.Errorf("storage %s: duplicate key %s", t.schema.Name, newK)
			}
			delete(t.pk, oldK)
			t.pk[newK] = id
		}
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	t.rows[id] = tup.Clone()
	for _, ix := range t.indexes {
		ix.insert(tup, id)
	}
	return nil
}

// Delete tombstones the row at id.
func (t *Table) Delete(id RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || !t.live[id] {
		return fmt.Errorf("storage %s: delete of dead row %d", t.schema.Name, id)
	}
	old := t.rows[id]
	if t.pk != nil {
		delete(t.pk, t.encodeKey(old))
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	t.live[id] = false
	t.nLive--
	return nil
}

// LookupKey finds the row ID for the given primary key values.
func (t *Table) LookupKey(keyVals ...value.Value) (RowID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk == nil || len(keyVals) != len(t.keyCols) {
		return 0, false
	}
	var b strings.Builder
	for i, v := range keyVals {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(v.Literal())
	}
	id, ok := t.pk[b.String()]
	return id, ok
}

// Scan visits every live row in row-ID order. Visit receives a copy; it
// returns false to stop the scan.
func (t *Table) Scan(visit func(id RowID, tup relation.Tuple) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, row := range t.rows {
		if !t.live[id] {
			continue
		}
		if !visit(RowID(id), row.Clone()) {
			return
		}
	}
}

// findIndex returns an index usable for the target, preferring one whose
// kind satisfies needRange.
func (t *Table) findIndex(target IndexTarget, needRange bool) *index {
	for _, ix := range t.indexes {
		if ix.target == target {
			if needRange && ix.kind != IndexBTree {
				continue
			}
			return ix
		}
	}
	return nil
}

// HasIndex reports whether an index exists for the target, and whether it
// supports range scans.
func (t *Table) HasIndex(target IndexTarget) (exists, ranged bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if ix.target == target {
			exists = true
			if ix.kind == IndexBTree {
				ranged = true
			}
		}
	}
	return
}

// LookupEq returns the row IDs whose target equals key, using an index when
// one exists, otherwise scanning. Results are in ascending row-ID order.
func (t *Table) LookupEq(target IndexTarget, key value.Value) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return nil, fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	if ix := t.findIndex(target, false); ix != nil {
		var ids []RowID
		if ix.kind == IndexHash {
			ids = ix.hash.Lookup(key)
		} else {
			ids = ix.btree.Lookup(key)
		}
		out := ids[:0]
		for _, id := range ids {
			if t.live[id] {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	var out []RowID
	for id, row := range t.rows {
		if !t.live[id] {
			continue
		}
		got, ok := targetValue(row, col, target.Indicator)
		if ok && value.Equal(got, key) {
			out = append(out, RowID(id))
		}
	}
	return out, nil
}

// LookupRange returns row IDs whose target falls within [lo, hi] per bound
// inclusivity, using a B-tree index when available, otherwise scanning.
// Results are in ascending row-ID order.
func (t *Table) LookupRange(target IndexTarget, lo, hi Bound) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	col := t.schema.ColIndex(target.Attr)
	if col < 0 {
		return nil, fmt.Errorf("storage %s: unknown attribute %q", t.schema.Name, target.Attr)
	}
	var out []RowID
	if ix := t.findIndex(target, true); ix != nil {
		ix.btree.Range(lo, hi, func(_ value.Value, id RowID) bool {
			if t.live[id] {
				out = append(out, id)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	for id, row := range t.rows {
		if !t.live[id] {
			continue
		}
		got, ok := targetValue(row, col, target.Indicator)
		if ok && lo.admitsLow(got) && hi.admitsHigh(got) {
			out = append(out, RowID(id))
		}
	}
	return out, nil
}

func targetValue(row relation.Tuple, col int, indicator string) (value.Value, bool) {
	c := row.Cells[col]
	if indicator == "" {
		return c.V, true
	}
	return c.Tags.Get(indicator)
}

// Snapshot copies the live rows into a relation.Relation, in row-ID order.
func (t *Table) Snapshot() *relation.Relation {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := relation.New(t.schema)
	out.TableTags = t.tableTags
	for id, row := range t.rows {
		if t.live[id] {
			out.Tuples = append(out.Tuples, row.Clone())
		}
	}
	return out
}

// Load bulk-inserts all tuples of a relation, returning the first error.
func (t *Table) Load(r *relation.Relation) error {
	for i := range r.Tuples {
		if _, err := t.Insert(r.Tuples[i]); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Catalog is a named collection of tables: the "database" handed to the QQL
// engine and the examples.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create adds a new table for the schema; it fails if the name is taken.
func (c *Catalog) Create(s *schema.Schema, strict bool) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[s.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", s.Name)
	}
	t := NewTable(s, strict)
	c.tables[s.Name] = t
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return false
	}
	delete(c.tables, name)
	return true
}

// Names lists table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
