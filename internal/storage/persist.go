package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// JSON persistence for catalogs. The format is self-describing: every value
// carries its kind so the full tagged model — application values, indicator
// tags, polygen sources, meta-quality, table tags, schemas, and index
// definitions — round-trips losslessly through Save and Load.

type jsonValue struct {
	Kind string `json:"k"`
	Val  string `json:"v,omitempty"`
}

func encodeValue(v value.Value) jsonValue {
	// Times serialize at nanosecond precision; Value.String() renders
	// seconds only, which would corrupt generated timestamps.
	if v.Kind() == value.KindTime {
		return jsonValue{Kind: v.Kind().String(), Val: v.AsTime().Format(time.RFC3339Nano)}
	}
	return jsonValue{Kind: v.Kind().String(), Val: v.String()}
}

func decodeValue(jv jsonValue) (value.Value, error) {
	k, err := value.ParseKind(jv.Kind)
	if err != nil {
		return value.Null, err
	}
	if k == value.KindNull {
		return value.Null, nil
	}
	return value.Parse(k, jv.Val)
}

type jsonTagSet map[string]jsonValue

func encodeTagSet(s tag.Set) jsonTagSet {
	if s.IsEmpty() {
		return nil
	}
	out := make(jsonTagSet, s.Len())
	for _, t := range s.Tags() {
		out[t.Indicator] = encodeValue(t.Value)
	}
	return out
}

func decodeTagSet(m jsonTagSet) (tag.Set, error) {
	if len(m) == 0 {
		return tag.EmptySet, nil
	}
	tags := make([]tag.Tag, 0, len(m))
	for name, jv := range m {
		v, err := decodeValue(jv)
		if err != nil {
			return tag.EmptySet, fmt.Errorf("tag %s: %w", name, err)
		}
		tags = append(tags, tag.Tag{Indicator: name, Value: v})
	}
	return tag.NewSet(tags...), nil
}

type jsonCell struct {
	V       jsonValue             `json:"v"`
	Tags    jsonTagSet            `json:"t,omitempty"`
	Sources []string              `json:"s,omitempty"`
	Meta    map[string]jsonTagSet `json:"m,omitempty"`
}

type jsonIndicator struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Doc  string `json:"doc,omitempty"`
}

type jsonAttr struct {
	Name       string          `json:"name"`
	Kind       string          `json:"kind"`
	Required   bool            `json:"required,omitempty"`
	Indicators []jsonIndicator `json:"indicators,omitempty"`
	Doc        string          `json:"doc,omitempty"`
}

type jsonIndex struct {
	Attr      string `json:"attr"`
	Indicator string `json:"indicator,omitempty"`
	Kind      string `json:"kind"`
}

func encodeAttrs(sc *schema.Schema) []jsonAttr {
	out := make([]jsonAttr, 0, len(sc.Attrs))
	for _, a := range sc.Attrs {
		ja := jsonAttr{Name: a.Name, Kind: a.Kind.String(), Required: a.Required, Doc: a.Doc}
		for _, ind := range a.Indicators {
			ja.Indicators = append(ja.Indicators, jsonIndicator{
				Name: ind.Name, Kind: ind.Kind.String(), Doc: ind.Doc})
		}
		out = append(out, ja)
	}
	return out
}

func decodeAttrs(jas []jsonAttr) ([]schema.Attr, error) {
	attrs := make([]schema.Attr, len(jas))
	for i, ja := range jas {
		k, err := value.ParseKind(ja.Kind)
		if err != nil {
			return nil, err
		}
		a := schema.Attr{Name: ja.Name, Kind: k, Required: ja.Required, Doc: ja.Doc}
		for _, ji := range ja.Indicators {
			ik, err := value.ParseKind(ji.Kind)
			if err != nil {
				return nil, err
			}
			a.Indicators = append(a.Indicators, tag.Indicator{Name: ji.Name, Kind: ik, Doc: ji.Doc})
		}
		attrs[i] = a
	}
	return attrs, nil
}

// jsonTableDef is a schema-only table definition: what CREATE TABLE
// establishes, without rows, tags, or indexes. The WAL logs DDL as one of
// these so a replayed CreateTable record rebuilds the exact schema.
type jsonTableDef struct {
	Name   string     `json:"name"`
	Doc    string     `json:"doc,omitempty"`
	Attrs  []jsonAttr `json:"attrs"`
	Key    []string   `json:"key,omitempty"`
	Strict bool       `json:"strict,omitempty"`
}

// MarshalTableDef serializes a schema + strictness for a logical DDL
// record (the WAL's CreateTable payload).
func MarshalTableDef(sc *schema.Schema, strict bool) ([]byte, error) {
	def := jsonTableDef{Name: sc.Name, Doc: sc.Doc, Attrs: encodeAttrs(sc), Key: sc.Key, Strict: strict}
	return json.Marshal(def)
}

// UnmarshalTableDef reverses MarshalTableDef.
func UnmarshalTableDef(data []byte) (*schema.Schema, bool, error) {
	var def jsonTableDef
	if err := json.Unmarshal(data, &def); err != nil {
		return nil, false, fmt.Errorf("storage: table def: %w", err)
	}
	attrs, err := decodeAttrs(def.Attrs)
	if err != nil {
		return nil, false, fmt.Errorf("storage: table def %s: %w", def.Name, err)
	}
	sc, err := schema.New(def.Name, attrs, def.Key...)
	if err != nil {
		return nil, false, fmt.Errorf("storage: table def %s: %w", def.Name, err)
	}
	sc.Doc = def.Doc
	return sc, def.Strict, nil
}

type jsonTable struct {
	Name      string       `json:"name"`
	Doc       string       `json:"doc,omitempty"`
	Attrs     []jsonAttr   `json:"attrs"`
	Key       []string     `json:"key,omitempty"`
	Strict    bool         `json:"strict,omitempty"`
	TableTags jsonTagSet   `json:"table_tags,omitempty"`
	Indexes   []jsonIndex  `json:"indexes,omitempty"`
	Rows      [][]jsonCell `json:"rows"`
}

type jsonCatalog struct {
	Format string      `json:"format"`
	Tables []jsonTable `json:"tables"`
}

// formatName identifies the persistence format.
const formatName = "repro-dq-catalog/1"

// Save writes the whole catalog as JSON.
func (c *Catalog) Save(w io.Writer) error {
	doc := jsonCatalog{Format: formatName}
	for _, name := range c.Names() {
		tbl, _ := c.Get(name)
		jt := jsonTable{Name: name, Strict: tbl.Strict()}
		sc := tbl.Schema()
		jt.Doc = sc.Doc
		jt.Key = sc.Key
		jt.Attrs = encodeAttrs(sc)
		jt.TableTags = encodeTagSet(tbl.TableTags())
		for _, ix := range tbl.IndexSpecs() {
			kind := "btree"
			if ix.Kind == IndexHash {
				kind = "hash"
			}
			jt.Indexes = append(jt.Indexes, jsonIndex{
				Attr: ix.Target.Attr, Indicator: ix.Target.Indicator, Kind: kind})
		}
		jt.Rows = [][]jsonCell{}
		// Snapshot, not Scan: Scan streams segment-wise without a whole-table
		// lock, so a concurrent writer could make a saved file contain a
		// state (e.g. a deleted-and-reinserted key twice) no table ever had.
		for _, tup := range tbl.Snapshot().Tuples {
			row := make([]jsonCell, len(tup.Cells))
			for i, cell := range tup.Cells {
				jc := jsonCell{V: encodeValue(cell.V), Tags: encodeTagSet(cell.Tags), Sources: cell.Sources}
				if len(cell.Meta) > 0 {
					jc.Meta = make(map[string]jsonTagSet, len(cell.Meta))
					for ind, ms := range cell.Meta {
						jc.Meta[ind] = encodeTagSet(ms)
					}
				}
				row[i] = jc
			}
			jt.Rows = append(jt.Rows, row)
		}
		doc.Tables = append(doc.Tables, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// LoadCatalog reads a catalog written by Save.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	var doc jsonCatalog
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	if doc.Format != formatName {
		return nil, fmt.Errorf("storage: load: unknown format %q", doc.Format)
	}
	cat := NewCatalog()
	for _, jt := range doc.Tables {
		attrs, err := decodeAttrs(jt.Attrs)
		if err != nil {
			return nil, fmt.Errorf("storage: load table %s: %w", jt.Name, err)
		}
		sc, err := schema.New(jt.Name, attrs, jt.Key...)
		if err != nil {
			return nil, fmt.Errorf("storage: load table %s: %w", jt.Name, err)
		}
		sc.Doc = jt.Doc
		tbl, err := cat.Create(sc, jt.Strict)
		if err != nil {
			return nil, err
		}
		// Table tags.
		ts, err := decodeTagSet(jt.TableTags)
		if err != nil {
			return nil, fmt.Errorf("storage: load table %s: %w", jt.Name, err)
		}
		for _, tg := range ts.Tags() {
			tbl.SetTableTag(tg.Indicator, tg.Value)
		}
		// Indexes before rows so loads populate them incrementally.
		for _, ji := range jt.Indexes {
			kind := IndexBTree
			if ji.Kind == "hash" {
				kind = IndexHash
			}
			if err := tbl.CreateIndex(IndexTarget{Attr: ji.Attr, Indicator: ji.Indicator}, kind); err != nil {
				return nil, fmt.Errorf("storage: load table %s: %w", jt.Name, err)
			}
		}
		for rowNum, jr := range jt.Rows {
			if len(jr) != len(attrs) {
				return nil, fmt.Errorf("storage: load table %s row %d: arity %d, want %d",
					jt.Name, rowNum, len(jr), len(attrs))
			}
			cells := make([]relation.Cell, len(jr))
			for i, jc := range jr {
				v, err := decodeValue(jc.V)
				if err != nil {
					return nil, fmt.Errorf("storage: load table %s row %d: %w", jt.Name, rowNum, err)
				}
				tags, err := decodeTagSet(jc.Tags)
				if err != nil {
					return nil, fmt.Errorf("storage: load table %s row %d: %w", jt.Name, rowNum, err)
				}
				cell := relation.Cell{V: v, Tags: tags, Sources: tag.NewSources(jc.Sources...)}
				for ind, jm := range jc.Meta {
					ms, err := decodeTagSet(jm)
					if err != nil {
						return nil, fmt.Errorf("storage: load table %s row %d: %w", jt.Name, rowNum, err)
					}
					for _, tg := range ms.Tags() {
						cell = cell.WithMetaTag(ind, tg.Indicator, tg.Value)
					}
				}
				cells[i] = cell
			}
			if _, err := tbl.Insert(relation.Tuple{Cells: cells}); err != nil {
				return nil, fmt.Errorf("storage: load table %s row %d: %w", jt.Name, rowNum, err)
			}
		}
	}
	return cat, nil
}
