package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/storage"
)

// replay recovers the catalog: load the newest checkpoint, then apply
// every log record after its sequence, in order. A torn final record —
// the tail a crash cut mid-write — is truncated and recovery succeeds;
// a bad record with valid records after it is real corruption and
// refuses to open. Called from Open before the flusher starts, so no
// locking is needed.
func (l *Log) replay() error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: recover %s: %w", l.dir, err)
	}
	// A crash can strand a half-written checkpoint temp file; it was
	// never renamed, so it is garbage.
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			if err := l.fs.Remove(join(l.dir, name)); err != nil {
				return fmt.Errorf("wal: recover: remove %s: %w", name, err)
			}
		}
	}
	var ckpt uint64
	var stale []string
	var segs []uint64
	for _, name := range names {
		if seq, ok := parseSeqName(name, "checkpoint-", ".ckpt"); ok {
			if seq > ckpt {
				if ckpt > 0 {
					stale = append(stale, ckptName(ckpt))
				}
				ckpt = seq
			} else {
				stale = append(stale, name)
			}
			continue
		}
		if seq, ok := parseSeqName(name, "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
	}
	if ckpt > 0 {
		data, err := l.fs.ReadFile(join(l.dir, ckptName(ckpt)))
		if err != nil {
			return fmt.Errorf("wal: recover: read checkpoint %d: %w", ckpt, err)
		}
		cat, err := storage.LoadCatalog(bytes.NewReader(data))
		if err != nil {
			// The checkpoint was fsynced before its rename became
			// visible, so this is not a crash artifact.
			return fmt.Errorf("wal: recover: checkpoint %d corrupt: %w", ckpt, err)
		}
		l.cat = cat
		l.ckptSeq.Store(ckpt)
		l.recov.CheckpointSeq = ckpt
	}
	// Older checkpoints are superseded; a crash between rename and prune
	// leaves them behind.
	for _, name := range stale {
		if err := l.fs.Remove(join(l.dir, name)); err != nil && !notExist(err) {
			return fmt.Errorf("wal: recover: remove %s: %w", name, err)
		}
	}
	// Segments are named by their first sequence; ReadDir sorts names
	// and the fixed-width hex keeps that numeric. Segments fully covered
	// by the checkpoint may survive a crashed prune.
	expected := uint64(0)
	for i, first := range segs {
		last := uint64(0)
		if i+1 < len(segs) {
			last = segs[i+1] - 1
		}
		if last > 0 && last <= ckpt {
			if err := l.fs.Remove(join(l.dir, segName(first))); err != nil && !notExist(err) {
				return fmt.Errorf("wal: recover: remove %s: %w", segName(first), err)
			}
			continue
		}
		if expected == 0 {
			if first > ckpt+1 {
				return fmt.Errorf("wal: recover: missing records %d..%d between checkpoint and log", ckpt+1, first-1)
			}
			expected = first
		} else if first != expected {
			return fmt.Errorf("wal: recover: segment %s starts at seq %d, want %d (missing segment)", segName(first), first, expected)
		}
		if _, err := l.replaySegment(first, i == len(segs)-1, &expected); err != nil {
			return err
		}
		l.segFirsts = append(l.segFirsts, first)
	}
	// If any segments survive, the log tail must reach the checkpoint
	// sequence: a partial prune only ever removes fully-covered segments
	// oldest-first, so a tail ending short of the checkpoint means
	// records between them are gone.
	if len(l.segFirsts) > 0 && expected-1 < ckpt {
		return fmt.Errorf("wal: recover: missing records %d..%d between log tail and checkpoint", expected, ckpt)
	}
	if expected == 0 {
		expected = l.ckptSeq.Load() + 1
	}
	l.nextSeq = expected
	if expected > 1 {
		l.appended.Store(expected - 1)
		l.durable.Store(expected - 1)
	}
	l.segLast = expected - 1
	l.nSegments.Store(int64(len(l.segFirsts)))
	// Reopen the last surviving segment for appending.
	if len(l.segFirsts) > 0 {
		name := segName(l.segFirsts[len(l.segFirsts)-1])
		data, err := l.fs.ReadFile(join(l.dir, name))
		if err != nil {
			return fmt.Errorf("wal: recover: reopen %s: %w", name, err)
		}
		f, err := l.fs.OpenAppend(join(l.dir, name))
		if err != nil {
			return fmt.Errorf("wal: recover: reopen %s: %w", name, err)
		}
		l.seg = f
		l.segWritten = int64(len(data))
	}
	return nil
}

// replaySegment decodes and applies one segment's records, advancing
// *expected (the next sequence recovery requires). Only the final
// segment may end in a torn record; that tail is truncated in place.
func (l *Log) replaySegment(first uint64, final bool, expected *uint64) (int, error) {
	name := segName(first)
	data, err := l.fs.ReadFile(join(l.dir, name))
	if err != nil {
		return 0, fmt.Errorf("wal: recover: read %s: %w", name, err)
	}
	ckpt := l.ckptSeq.Load()
	applied := 0
	rest := data
	off := 0
	for len(rest) > 0 {
		rec, next, used, derr := decodeRecord(rest)
		if derr != nil {
			if final && !anyValidRecordAfter(rest) {
				// Torn tail: the crash cut the last record mid-write.
				// Truncate so the next append starts at a clean boundary.
				if err := l.fs.Truncate(join(l.dir, name), int64(off)); err != nil {
					return applied, fmt.Errorf("wal: recover: truncate torn tail of %s: %w", name, err)
				}
				l.recov.TornBytes = len(rest)
				return applied, nil
			}
			return applied, fmt.Errorf("wal: corrupt record at seq %d (%s offset %d): %v", *expected, name, off, derr)
		}
		if rec.Seq != *expected {
			return applied, fmt.Errorf("wal: corrupt record at seq %d (%s offset %d): found seq %d", *expected, name, off, rec.Seq)
		}
		if rec.Seq > ckpt {
			if err := l.applyRecord(rec); err != nil {
				return applied, fmt.Errorf("wal: recover: replay seq %d: %w", rec.Seq, err)
			}
			applied++
			l.recov.Replayed++
		}
		*expected = rec.Seq + 1
		rest = next
		off += used
	}
	return applied, nil
}

// anyValidRecordAfter reports whether any byte offset in b starts a
// record with a valid checksum. A torn tail — a single record cut by a
// crash — has none; mid-log corruption (bit rot, a truncated middle)
// leaves intact records after the damage, which must refuse recovery
// rather than silently dropping acknowledged writes.
//
// Only offsets whose 8-byte frame header is plausible (length within
// the record limit and the remaining bytes) pay for a CRC, so random
// damage scans in near-linear time instead of checksumming the whole
// remainder at every offset. Pathological data that keeps presenting
// plausible headers is bounded by a total-CRC-bytes budget; exhausting
// it classifies the tail as corrupt — the conservative direction
// (refuse to open rather than truncate possibly-acknowledged records).
func anyValidRecordAfter(b []byte) bool {
	budget := int64(256 << 20)
	for j := 1; j+frameHeader <= len(b); j++ {
		n := binary.LittleEndian.Uint32(b[j : j+4])
		if n > maxRecordBytes || int(n) > len(b)-j-frameHeader {
			continue
		}
		if budget -= int64(n) + frameHeader; budget < 0 {
			return true
		}
		if _, _, _, err := decodeRecord(b[j:]); err == nil {
			return true
		}
	}
	return false
}
