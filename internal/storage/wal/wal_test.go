package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// --- shared workload --------------------------------------------------

var testTime = time.Date(1993, 4, 19, 8, 30, 0, 123456789, time.UTC)

func customerSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sc, err := schema.New("customer", []schema.Attr{
		{Name: "id", Kind: value.KindInt, Required: true},
		{Name: "name", Kind: value.KindString,
			Indicators: []tag.Indicator{
				{Name: "source", Kind: value.KindString},
				{Name: "creation_time", Kind: value.KindTime},
			}},
	}, "id")
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return sc
}

// taggedRow builds a fully decorated tuple: value tags, polygen
// sources, and meta-quality, so the workload exercises the whole cell
// codec.
func taggedRow(id int64, name string) relation.Tuple {
	nameCell := relation.Cell{
		V: value.Str(name),
		Tags: tag.NewSet(
			tag.Tag{Indicator: "source", Value: value.Str("Nexis")},
			tag.Tag{Indicator: "creation_time", Value: value.Time(testTime)},
		),
		Sources: tag.NewSources("Nexis", "Lexis"),
	}
	nameCell = nameCell.WithMetaTag("source", "confidence", value.Float(0.75))
	return relation.Tuple{Cells: []relation.Cell{{V: value.Int(id)}, nameCell}}
}

// applier abstracts "something records can be applied to": the Log on
// the live path, a plain catalog for the expected mirror state.
type applier interface {
	Insert(table string, tup relation.Tuple) error
	Update(table string, id storage.RowID, tup relation.Tuple) error
	Delete(table string, id storage.RowID) error
	CreateTable(sc *schema.Schema, strict bool) error
	DropTable(table string) error
	CreateIndex(table string, target storage.IndexTarget, kind storage.IndexKind) error
	TagTable(table, indicator string, v value.Value) error
}

// mirror applies ops directly to a catalog, bypassing any log — the
// reference for what recovered state must equal.
type mirror struct{ cat *storage.Catalog }

func (m mirror) Insert(table string, tup relation.Tuple) error {
	tbl, ok := m.cat.Get(table)
	if !ok {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	_, err := tbl.Insert(tup)
	return err
}

func (m mirror) Update(table string, id storage.RowID, tup relation.Tuple) error {
	tbl, ok := m.cat.Get(table)
	if !ok {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	return tbl.Update(id, tup)
}

func (m mirror) Delete(table string, id storage.RowID) error {
	tbl, ok := m.cat.Get(table)
	if !ok {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	return tbl.Delete(id)
}

func (m mirror) CreateTable(sc *schema.Schema, strict bool) error {
	_, err := m.cat.Create(sc, strict)
	return err
}

func (m mirror) DropTable(table string) error {
	if !m.cat.Drop(table) {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	return nil
}

func (m mirror) CreateIndex(table string, target storage.IndexTarget, kind storage.IndexKind) error {
	tbl, ok := m.cat.Get(table)
	if !ok {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	return tbl.CreateIndex(target, kind)
}

func (m mirror) TagTable(table, indicator string, v value.Value) error {
	tbl, ok := m.cat.Get(table)
	if !ok {
		return fmt.Errorf("mirror: unknown table %s", table)
	}
	tbl.SetTableTag(indicator, v)
	return nil
}

// workloadOps is a mixed DDL/DML sequence; each op is one acknowledged
// unit (the Log path commits after each).
func workloadOps(t testing.TB) []func(applier) error {
	sc := customerSchema(t)
	return []func(applier) error{
		func(a applier) error { return a.CreateTable(sc, true) },
		func(a applier) error { return a.Insert("customer", taggedRow(1, "wang")) },
		func(a applier) error { return a.Insert("customer", taggedRow(2, "kon")) },
		func(a applier) error { return a.Insert("customer", taggedRow(3, "madnick")) },
		func(a applier) error {
			return a.CreateIndex("customer", storage.IndexTarget{Attr: "id"}, storage.IndexHash)
		},
		func(a applier) error { return a.TagTable("customer", "source", value.Str("ICDE")) },
		// RowIDs are assigned in insert order starting at 0: row 0 is
		// customer 1, row 1 is customer 2.
		func(a applier) error { return a.Update("customer", 0, taggedRow(1, "wang-renamed")) },
		func(a applier) error { return a.Delete("customer", 1) },
		func(a applier) error { return a.Insert("customer", taggedRow(4, "quality")) },
		func(a applier) error { return a.Insert("customer", taggedRow(5, "tagged")) },
	}
}

// runLogged runs ops against the log, committing each; returns how many
// were acknowledged (op applied AND committed) before the first error.
func runLogged(l *Log, ops []func(applier) error) int {
	acked := 0
	for _, op := range ops {
		if err := op(l); err != nil {
			return acked
		}
		if err := l.Commit(); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// expectedCatalog mirrors the first n acknowledged ops.
func expectedCatalog(t testing.TB, n int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	ops := workloadOps(t)
	for i := 0; i < n; i++ {
		if err := ops[i](mirror{cat}); err != nil {
			t.Fatalf("mirror op %d: %v", i, err)
		}
	}
	return cat
}

// catalogDump renders a catalog canonically (Save is deterministic:
// sorted table names, ordered rows, sorted JSON maps), so equality is a
// byte comparison.
func catalogDump(t testing.TB, cat *storage.Catalog) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cat.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.String()
}

func assertCatalogsEqual(t testing.TB, got, want *storage.Catalog, msg string) {
	t.Helper()
	g, w := catalogDump(t, got), catalogDump(t, want)
	if g != w {
		t.Fatalf("%s: recovered catalog differs\n--- got ---\n%s\n--- want ---\n%s", msg, g, w)
	}
}

// --- basic round-trips ------------------------------------------------

func TestRecordCodecRoundTrip(t *testing.T) {
	sc := customerSchema(t)
	def, err := storage.MarshalTableDef(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Seq: 1, Kind: KindCreateTable, Table: "customer", Def: def},
		{Seq: 2, Kind: KindInsert, Table: "customer", Tuple: taggedRow(7, "w")},
		{Seq: 3, Kind: KindUpdate, Table: "customer", Row: 4, Tuple: taggedRow(7, "x")},
		{Seq: 4, Kind: KindDelete, Table: "customer", Row: 9},
		{Seq: 5, Kind: KindDropTable, Table: "customer"},
		{Seq: 6, Kind: KindCreateIndex, Table: "customer",
			Target: storage.IndexTarget{Attr: "id", Indicator: "source"}, Index: storage.IndexBTree},
		{Seq: 7, Kind: KindTagTable, Table: "customer", Indicator: "source", TagValue: value.Str("Nexis")},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	for _, want := range recs {
		rec, rest, used, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decode seq %d: %v", want.Seq, err)
		}
		if used < frameHeader {
			t.Fatalf("seq %d: used %d", want.Seq, used)
		}
		if rec.Seq != want.Seq || rec.Kind != want.Kind || rec.Table != want.Table || rec.Row != want.Row {
			t.Fatalf("seq %d: got %+v", want.Seq, rec)
		}
		if rec.Kind == KindCreateIndex && (rec.Target != want.Target || rec.Index != want.Index) {
			t.Fatalf("index record mismatch: %+v", rec)
		}
		if rec.Kind == KindTagTable && (rec.Indicator != want.Indicator || !value.Equal(rec.TagValue, want.TagValue)) {
			t.Fatalf("tag record mismatch: %+v", rec)
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"": FsyncGroup, "group": FsyncGroup, "always": FsyncAlways, "off": FsyncOff} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

// TestReopenRoundTrip is the basic durability loop for every fsync
// mode: write, close cleanly, reopen, state identical.
func TestReopenRoundTrip(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncGroup, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: mode})
			if err != nil {
				t.Fatal(err)
			}
			ops := workloadOps(t)
			if n := runLogged(l, ops); n != len(ops) {
				t.Fatalf("acked %d of %d ops", n, len(ops))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{Fsync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if l2.RecoveryStats().Replayed != len(ops) {
				t.Fatalf("replayed %d, want %d", l2.RecoveryStats().Replayed, len(ops))
			}
			assertCatalogsEqual(t, l2.Catalog(), expectedCatalog(t, len(ops)), "reopen")
		})
	}
}

// TestRejectedStatementLeavesNoTrace: an apply failure (duplicate key)
// unwinds the framed record, so replay never sees it.
func TestRejectedStatementLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert("customer", taggedRow(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert("customer", taggedRow(1, "dup")); err == nil {
		t.Fatal("want duplicate-key error")
	}
	if err := l.Insert("customer", taggedRow(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	tbl, _ := l2.Catalog().Get("customer")
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.Len())
	}
}

// TestGroupCommitCoalesces: many records appended before one Commit are
// covered by a single fsync, and GroupMax records the batch.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := l.Insert("customer", taggedRow(i, "row")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Fsyncs != 1 {
		t.Fatalf("fsyncs = %d, want 1 (one group)", st.Fsyncs)
	}
	if st.GroupMax != 11 { // create + 10 inserts
		t.Fatalf("group max = %d, want 11", st.GroupMax)
	}
	if st.DurableSeq != st.AppendedSeq {
		t.Fatalf("durable %d != appended %d after commit", st.DurableSeq, st.AppendedSeq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentGroupCommit hammers the group path from many
// goroutines; every acknowledged insert must be durable on reopen.
func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(w*per + i + 1)
				if err := l.Insert("customer", taggedRow(id, "c")); err != nil {
					errs <- err
					return
				}
				if err := l.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Fsyncs > st.Commits {
		t.Fatalf("fsyncs %d > commits %d", st.Fsyncs, st.Commits)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	tbl, _ := l2.Catalog().Get("customer")
	if tbl.Len() != writers*per {
		t.Fatalf("rows = %d, want %d", tbl.Len(), writers*per)
	}
}

// TestSegmentRotationAndReplay: tiny segments force rotation; recovery
// must stitch the segments back in order.
func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d of %d", n, len(ops))
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("segments = %d, want rotation to have happened", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertCatalogsEqual(t, l2.Catalog(), expectedCatalog(t, len(ops)), "rotated replay")
}

// TestCheckpointTruncatesLog: a checkpoint supersedes the replayed
// prefix and prunes covered segments.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d of %d", n, len(ops))
	}
	before := l.Stats().Segments
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	if st.Segments >= before {
		t.Fatalf("segments %d not pruned (was %d)", st.Segments, before)
	}
	// More writes after the checkpoint land in fresh segments.
	if err := l.Insert("customer", taggedRow(100, "post-ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rs := l2.RecoveryStats()
	if rs.CheckpointSeq == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	if rs.Replayed != 1 {
		t.Fatalf("replayed %d records past the checkpoint, want 1", rs.Replayed)
	}
	want := expectedCatalog(t, len(ops))
	if err := (mirror{want}).Insert("customer", taggedRow(100, "post-ckpt")); err != nil {
		t.Fatal(err)
	}
	assertCatalogsEqual(t, l2.Catalog(), want, "checkpoint + tail")
}

// TestAutoCheckpoint: the flusher takes a checkpoint by itself once
// enough records accumulate.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncGroup, CheckpointRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d of %d", n, len(ops))
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if l.Stats().Checkpoints == 0 {
		t.Fatal("no automatic checkpoint")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertCatalogsEqual(t, l2.Catalog(), expectedCatalog(t, len(ops)), "auto checkpoint")
}

// TestCheckpointVsConcurrentDML races checkpoints against committing
// writers (run under -race in CI); afterwards recovery must see every
// acknowledged row exactly once.
func TestCheckpointVsConcurrentDML(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncGroup, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(w*per + i + 1)
				if err := l.Insert("customer", taggedRow(id, "c")); err != nil {
					errs <- err
					return
				}
				if err := l.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for i := 0; i < 10; i++ {
			if err := l.Checkpoint(); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-ckptDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	tbl, ok := l2.Catalog().Get("customer")
	if !ok {
		t.Fatal("customer table lost")
	}
	if tbl.Len() != writers*per {
		t.Fatalf("rows = %d, want %d", tbl.Len(), writers*per)
	}
}

// TestClosedLogRefusesWrites pins the fail-stop contract.
func TestClosedLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestInjectedWriteFailureIsSticky: after the FS fails once, the log
// refuses further work with the original cause.
func TestInjectedWriteFailureIsSticky(t *testing.T) {
	ffs := NewFaultFS()
	dir := "w"
	l, err := Open(dir, Options{FS: ffs, Fsync: FsyncAlways, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTable(customerSchema(t), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	ffs.FailAt(ffs.Ops() + 1)
	if err := l.Insert("customer", taggedRow(1, "x")); err != nil {
		t.Fatal(err) // append is in-memory; the write fails at commit
	}
	if err := l.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit error = %v, want injected", err)
	}
	if err := l.Insert("customer", taggedRow(2, "y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after failure = %v, want sticky injected error", err)
	}
}
