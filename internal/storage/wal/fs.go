// Package wal is the write-ahead log behind durable qqld: an append-only
// segmented log of logical DML/DDL records with group commit, periodic
// snapshot checkpoints, and crash recovery. Records are length-prefixed,
// CRC32C-checksummed, and monotonically sequenced; tagged cells reuse the
// wire v2 binary codec so quality tags round-trip losslessly. All file
// access goes through the FS seam so tests can inject faults (errors,
// short writes, crash-at-operation) and prove the recovery invariant:
// after any crash, exactly the acknowledged write prefix survives.
package wal

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is one open log or snapshot file. Append-only: the log never
// seeks, it only writes, syncs, and closes.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem seam the log runs on. OsFS is the real thing;
// FaultFS (fault injection) and crash simulation live behind the same
// interface so the recovery property test can crash the "machine" at
// every individual operation.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Truncate shortens name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir fsyncs the directory so renames and creates are durable.
	SyncDir(dir string) error
}

// OsFS is the production FS over the real filesystem.
type OsFS struct{}

func (OsFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OsFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OsFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OsFS) Remove(name string) error { return os.Remove(name) }

func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// notExist reports whether err means the file is absent, for any FS.
func notExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

// join builds an FS path; all FS implementations use / semantics via
// path/filepath so OsFS and FaultFS agree on names.
func join(dir, name string) string { return filepath.Join(dir, name) }
