package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the failure FaultFS injects at the configured
// operation.
var ErrInjected = errors.New("faultfs: injected fault")

// errStaleHandle guards against a recovered Log accidentally sharing
// file handles with its crashed predecessor.
var errStaleHandle = errors.New("faultfs: stale handle from before crash")

// ffile is one simulated file: data is what has been written, synced is
// the prefix guaranteed to survive a crash (advanced by Sync).
type ffile struct {
	data   []byte
	synced int
}

// FaultFS is an in-memory FS with fault injection and crash simulation,
// modeling the durability semantics the log depends on:
//
//   - file bytes survive a crash only up to the last Sync (plus, if the
//     caller asks, a few torn extra bytes the kernel happened to flush);
//   - namespace changes (create, rename, remove) survive only past a
//     SyncDir — before that, a crash reverts them;
//   - every operation is numbered, and FailAt makes exactly one of them
//     return an error (optionally writing a short prefix first), so a
//     test can crash the machine at every single step of a workload.
type FaultFS struct {
	mu  sync.Mutex
	gen int
	cur map[string]*ffile // live namespace
	dur map[string]*ffile // namespace as of the last SyncDir

	ops     int
	failAt  int  // 1-based operation to fail; 0 = never
	partial bool // a failing Write lands a prefix first (short write)
}

// NewFaultFS returns an empty fault-injecting filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{cur: map[string]*ffile{}, dur: map[string]*ffile{}}
}

// FailAt arms the injector: operation number op (1-based, counted
// across all FS and File calls) returns ErrInjected. 0 disarms.
func (f *FaultFS) FailAt(op int) {
	f.mu.Lock()
	f.failAt = op
	f.mu.Unlock()
}

// SetPartialWrites makes an injected Write failure a short write: half
// the buffer lands before the error, like a crash mid-pwrite.
func (f *FaultFS) SetPartialWrites(on bool) {
	f.mu.Lock()
	f.partial = on
	f.mu.Unlock()
}

// Ops returns the number of operations performed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crash simulates power loss: the namespace reverts to the last SyncDir
// and every file's content reverts to its synced prefix plus at most
// tearExtra unsynced bytes (torn write). Handles from before the crash
// go stale. The FaultFS itself survives, so a new Log can recover.
func (f *FaultFS) Crash(tearExtra int) {
	f.mu.Lock()
	f.gen++
	f.cur = make(map[string]*ffile, len(f.dur))
	for name, file := range f.dur {
		keep := file.synced + tearExtra
		if keep < len(file.data) {
			file.data = file.data[:keep]
		}
		f.cur[name] = file
	}
	f.mu.Unlock()
}

// step counts one operation and injects the armed failure.
func (f *FaultFS) step() error {
	f.ops++
	if f.failAt != 0 && f.ops == f.failAt {
		return fmt.Errorf("%w (op %d)", ErrInjected, f.ops)
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step()
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range f.cur {
		if strings.HasPrefix(name, prefix) {
			names = append(names, strings.TrimPrefix(name, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	file, ok := f.cur[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: read %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), file.data...), nil
}

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	file := &ffile{}
	f.cur[name] = file
	return &faultFile{fs: f, file: file, gen: f.gen}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	file, ok := f.cur[name]
	if !ok {
		file = &ffile{}
		f.cur[name] = file
	}
	return &faultFile{fs: f, file: file, gen: f.gen}, nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	file, ok := f.cur[name]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: %w", name, fs.ErrNotExist)
	}
	if int(size) < len(file.data) {
		file.data = file.data[:size]
	}
	if file.synced > int(size) {
		file.synced = int(size)
	}
	return nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	file, ok := f.cur[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, fs.ErrNotExist)
	}
	delete(f.cur, oldname)
	f.cur[newname] = file
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	if _, ok := f.cur[name]; !ok {
		return fmt.Errorf("faultfs: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(f.cur, name)
	return nil
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	f.dur = make(map[string]*ffile, len(f.cur))
	for name, file := range f.cur {
		f.dur[name] = file
	}
	return nil
}

// faultFile is an open handle on a FaultFS file.
type faultFile struct {
	fs   *FaultFS
	file *ffile
	gen  int
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return 0, errStaleHandle
	}
	if err := h.fs.step(); err != nil {
		if h.fs.partial && len(p) > 1 {
			n := len(p) / 2
			h.file.data = append(h.file.data, p[:n]...)
			return n, err
		}
		return 0, err
	}
	h.file.data = append(h.file.data, p...)
	return len(p), nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return errStaleHandle
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	h.file.synced = len(h.file.data)
	return nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return nil // closing a pre-crash handle is harmless
	}
	return h.fs.step()
}
