package wal

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// FsyncMode selects the durability/latency trade-off for Commit.
type FsyncMode int

const (
	// FsyncGroup (default): commits block until a background flusher has
	// fsynced their records; concurrently arriving commits — and every
	// record of a batch frame — coalesce into one fsync.
	FsyncGroup FsyncMode = iota
	// FsyncAlways: every Commit writes and fsyncs synchronously in the
	// committing goroutine. Strongest latency-to-durability mapping,
	// one fsync per commit.
	FsyncAlways
	// FsyncOff: Commit only kicks the background flusher; data reaches
	// the OS promptly but fsync happens only at rotation, checkpoint and
	// Close. A crash can lose recently acknowledged writes.
	FsyncOff
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncGroup:
		return "group"
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int(m))
	}
}

// ParseFsyncMode parses the -fsync flag value; "" means group.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "group":
		return FsyncGroup, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	default:
		return FsyncGroup, fmt.Errorf("wal: unknown fsync mode %q (want always, group or off)", s)
	}
}

// Options tunes Open. The zero value is production-ready: real
// filesystem, group commit, 64 MiB segments, checkpoint every 50k
// records.
type Options struct {
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// Fsync is the commit durability mode.
	Fsync FsyncMode
	// SegmentBytes rotates the active segment past this size. Default
	// 64 MiB.
	SegmentBytes int64
	// CheckpointRecords triggers an automatic snapshot checkpoint after
	// this many appended records. 0 means the 50000 default; negative
	// disables automatic checkpoints (Checkpoint can still be called).
	CheckpointRecords int
}

// RecoveryStats summarizes what Open found on disk.
type RecoveryStats struct {
	// CheckpointSeq is the sequence the loaded snapshot covers (0 = none).
	CheckpointSeq uint64
	// Replayed counts log records applied on top of the checkpoint.
	Replayed int
	// TornBytes counts trailing bytes truncated from the final segment
	// because the last record was torn by a crash.
	TornBytes int
	// Tables is the table count after recovery.
	Tables int
	// Duration is wall time spent recovering.
	Duration time.Duration
}

// Stats is a point-in-time counter snapshot for metrics.
type Stats struct {
	Appends     uint64 // records appended
	Commits     uint64 // Commit calls
	Fsyncs      uint64 // fsync syscalls issued on segments
	Bytes       uint64 // record bytes written to segments
	GroupMax    uint64 // largest record group flushed by one fsync
	Checkpoints uint64 // snapshot checkpoints taken
	CkptErrs    uint64 // failed checkpoint attempts (log still writable)
	DurableSeq  uint64 // highest fsynced (or checkpointed) sequence
	AppendedSeq uint64 // highest appended sequence
	Segments    int64  // live segment files
	SinceCkpt   uint64 // records appended since the last checkpoint
}

// ErrClosed is returned by appends and commits after Close.
var ErrClosed = errors.New("wal: closed")

type waiter struct {
	seq uint64
	ch  chan struct{}
}

// Log is a write-ahead log bound to a catalog. Every mutation goes
// through the log: the record is appended to the in-memory tail and
// applied to the catalog atomically (so replay order equals apply order
// and row IDs are reproduced exactly), then Commit makes the appended
// prefix durable per the fsync mode. A Log is safe for concurrent use.
type Log struct {
	dir       string
	fs        FS
	mode      FsyncMode
	segBytes  int64
	ckptEvery uint64 // 0 = automatic checkpoints disabled

	cat *storage.Catalog

	// appendMu orders record append+apply; the buffer tail is the
	// not-yet-written suffix of the log.
	appendMu     sync.Mutex
	buf          []byte
	pendingFirst uint64 // first seq in buf; 0 when empty
	nextSeq      uint64 // next sequence to assign

	// flushMu owns segment files and their counters.
	flushMu    sync.Mutex
	seg        File
	segWritten int64
	segLast    uint64   // last seq written to a segment
	segFirsts  []uint64 // first seq per live segment, ascending; last is active

	// ckptBusy serializes whole checkpoints (flush + snapshot + swap)
	// without a lock: a checkpoint spans several locked regions and must
	// not hold anything across them.
	ckptBusy atomic.Bool

	// waitMu owns group-commit waiters and the sticky error.
	waitMu  sync.Mutex
	errv    error
	waiters []waiter

	broken    atomic.Bool
	durable   atomic.Uint64
	appended  atomic.Uint64
	ckptSeq   atomic.Uint64
	sinceCkpt atomic.Uint64
	nSegments atomic.Int64

	nAppends atomic.Uint64
	nCommits atomic.Uint64
	nFsyncs  atomic.Uint64
	nBytes   atomic.Uint64
	nCkpts   atomic.Uint64
	nCkptErr atomic.Uint64
	groupMax atomic.Uint64

	kickCh    chan struct{}
	doneCh    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	recov RecoveryStats
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

func ckptName(seq uint64) string { return fmt.Sprintf("checkpoint-%016x.ckpt", seq) }

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the log in dir, recovers the catalog
// from the latest checkpoint plus the log tail, and starts the group
// flusher. A torn final record — a crash mid-write — is truncated; any
// other corruption refuses to open.
func Open(dir string, o Options) (*Log, error) {
	fsys := o.FS
	if fsys == nil {
		fsys = OsFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	every := uint64(50000)
	if o.CheckpointRecords > 0 {
		every = uint64(o.CheckpointRecords)
	} else if o.CheckpointRecords < 0 {
		every = 0
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{
		dir:       dir,
		fs:        fsys,
		mode:      o.Fsync,
		segBytes:  o.SegmentBytes,
		ckptEvery: every,
		cat:       storage.NewCatalog(),
		nextSeq:   1,
		kickCh:    make(chan struct{}, 1),
		doneCh:    make(chan struct{}),
	}
	start := time.Now()
	if err := l.replay(); err != nil {
		return nil, err
	}
	l.recov.Duration = time.Since(start)
	l.recov.Tables = len(l.cat.Names())
	l.wg.Add(1)
	go l.flusher()
	return l, nil
}

// Catalog returns the recovered catalog the log applies records to.
func (l *Log) Catalog() *storage.Catalog { return l.cat }

// Mode returns the commit fsync mode.
func (l *Log) Mode() FsyncMode { return l.mode }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// RecoveryStats reports what Open found.
func (l *Log) RecoveryStats() RecoveryStats { return l.recov }

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.nAppends.Load(),
		Commits:     l.nCommits.Load(),
		Fsyncs:      l.nFsyncs.Load(),
		Bytes:       l.nBytes.Load(),
		GroupMax:    l.groupMax.Load(),
		Checkpoints: l.nCkpts.Load(),
		CkptErrs:    l.nCkptErr.Load(),
		DurableSeq:  l.durable.Load(),
		AppendedSeq: l.appended.Load(),
		Segments:    l.nSegments.Load(),
		SinceCkpt:   l.sinceCkpt.Load(),
	}
}

// --- append + apply ---------------------------------------------------

// Insert logs and applies one row insert.
func (l *Log) Insert(table string, tup relation.Tuple) error {
	return l.append1(&Record{Kind: KindInsert, Table: table, Tuple: tup})
}

// Update logs and applies one row update.
func (l *Log) Update(table string, id storage.RowID, tup relation.Tuple) error {
	return l.append1(&Record{Kind: KindUpdate, Table: table, Row: id, Tuple: tup})
}

// Delete logs and applies one row delete.
func (l *Log) Delete(table string, id storage.RowID) error {
	return l.append1(&Record{Kind: KindDelete, Table: table, Row: id})
}

// CreateTable logs and applies a CREATE TABLE.
func (l *Log) CreateTable(sc *schema.Schema, strict bool) error {
	def, err := storage.MarshalTableDef(sc, strict)
	if err != nil {
		return err
	}
	return l.append1(&Record{Kind: KindCreateTable, Table: sc.Name, Def: def})
}

// DropTable logs and applies a DROP TABLE.
func (l *Log) DropTable(table string) error {
	return l.append1(&Record{Kind: KindDropTable, Table: table})
}

// CreateIndex logs and applies a CREATE INDEX.
func (l *Log) CreateIndex(table string, target storage.IndexTarget, kind storage.IndexKind) error {
	return l.append1(&Record{Kind: KindCreateIndex, Table: table, Target: target, Index: kind})
}

// TagTable logs and applies a table-level quality tag.
func (l *Log) TagTable(table, indicator string, v value.Value) error {
	return l.append1(&Record{Kind: KindTagTable, Table: table, Indicator: indicator, TagValue: v})
}

// append1 assigns the next sequence, frames rec into the buffer tail and
// applies it to the catalog — atomically under appendMu, so the log's
// record order is exactly the catalog's apply order (replay reproduces
// row IDs bit-for-bit). If apply fails the framed bytes are unwound: a
// rejected statement leaves no trace in the log.
func (l *Log) append1(rec *Record) error {
	if l.broken.Load() {
		return l.loadErr()
	}
	l.appendMu.Lock()
	rec.Seq = l.nextSeq
	mark := len(l.buf)
	l.buf = appendRecord(l.buf, rec)
	if err := l.applyRecord(rec); err != nil {
		l.buf = l.buf[:mark]
		l.appendMu.Unlock()
		return err
	}
	if l.pendingFirst == 0 {
		l.pendingFirst = rec.Seq
	}
	l.nextSeq++
	// Publish the watermark before releasing appendMu so it advances in
	// sequence order. Stored after the unlock, two appenders could race
	// (Store(6) then a late Store(5)) and a group-mode Commit reading the
	// regressed watermark would wait only for seq 5 — acknowledging a
	// commit whose own record is not yet fsynced.
	l.appended.Store(rec.Seq)
	l.appendMu.Unlock()
	l.nAppends.Add(1)
	l.sinceCkpt.Add(1)
	return nil
}

// applyRecord applies one logical record to the catalog. It is the only
// place table state changes: the live write path and crash replay share
// it, so recovered state cannot diverge from served state.
func (l *Log) applyRecord(rec *Record) error {
	switch rec.Kind {
	case KindInsert:
		tbl, ok := l.cat.Get(rec.Table)
		if !ok {
			return fmt.Errorf("wal: apply insert seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		_, err := tbl.Insert(rec.Tuple)
		return err
	case KindUpdate:
		tbl, ok := l.cat.Get(rec.Table)
		if !ok {
			return fmt.Errorf("wal: apply update seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		return tbl.Update(rec.Row, rec.Tuple)
	case KindDelete:
		tbl, ok := l.cat.Get(rec.Table)
		if !ok {
			return fmt.Errorf("wal: apply delete seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		return tbl.Delete(rec.Row)
	case KindCreateTable:
		sc, strict, err := storage.UnmarshalTableDef(rec.Def)
		if err != nil {
			return err
		}
		_, err = l.cat.Create(sc, strict)
		return err
	case KindDropTable:
		if !l.cat.Drop(rec.Table) {
			return fmt.Errorf("wal: apply drop seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		return nil
	case KindCreateIndex:
		tbl, ok := l.cat.Get(rec.Table)
		if !ok {
			return fmt.Errorf("wal: apply create-index seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		return tbl.CreateIndex(rec.Target, rec.Index)
	case KindTagTable:
		tbl, ok := l.cat.Get(rec.Table)
		if !ok {
			return fmt.Errorf("wal: apply tag seq %d: unknown table %s", rec.Seq, rec.Table)
		}
		tbl.SetTableTag(rec.Indicator, rec.TagValue)
		return nil
	default:
		return fmt.Errorf("wal: apply seq %d: unknown record kind %d", rec.Seq, byte(rec.Kind))
	}
}

// --- commit -----------------------------------------------------------

// Commit makes every record appended so far durable per the fsync mode.
// It must be called with no locks held; in group mode it blocks until a
// flusher fsync covers the caller's records.
func (l *Log) Commit() error {
	l.nCommits.Add(1)
	seq := l.appended.Load()
	if seq == 0 {
		return l.loadErr()
	}
	switch l.mode {
	case FsyncAlways:
		if err := l.flushOnce(true, true); err != nil {
			return err
		}
		if l.ckptEvery > 0 && l.sinceCkpt.Load() >= l.ckptEvery {
			l.kick()
		}
		return nil
	case FsyncOff:
		l.kick()
		return l.loadErr()
	default: // FsyncGroup
		if l.durable.Load() >= seq {
			return l.loadErr()
		}
		ch, err := l.enlist(seq)
		if err != nil {
			return err
		}
		if ch == nil {
			return nil
		}
		l.kick()
		<-ch
		return l.loadErr()
	}
}

// kick nudges the flusher without blocking (the channel holds one
// pending nudge; a second is redundant).
func (l *Log) kick() {
	select {
	case l.kickCh <- struct{}{}:
	default:
	}
}

// enlist registers a group-commit waiter for seq, unless seq is already
// durable or the log already failed.
func (l *Log) enlist(seq uint64) (chan struct{}, error) {
	l.waitMu.Lock()
	if l.errv != nil {
		err := l.errv
		l.waitMu.Unlock()
		return nil, err
	}
	if l.durable.Load() >= seq {
		l.waitMu.Unlock()
		return nil, nil
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, waiter{seq: seq, ch: ch})
	l.waitMu.Unlock()
	return ch, nil
}

// wake releases every waiter whose sequence is now durable.
func (l *Log) wake(durable uint64) {
	l.waitMu.Lock()
	var ready []chan struct{}
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.seq <= durable {
			ready = append(ready, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
	l.waitMu.Unlock()
	for _, ch := range ready {
		close(ch)
	}
}

// setErr records the first failure, marks the log broken (fail-stop:
// later appends and commits are refused) and releases every waiter.
func (l *Log) setErr(err error) {
	l.broken.Store(true)
	l.waitMu.Lock()
	if l.errv == nil {
		l.errv = err
	}
	ws := l.waiters
	l.waiters = nil
	l.waitMu.Unlock()
	for _, w := range ws {
		close(w.ch)
	}
}

func (l *Log) loadErr() error {
	l.waitMu.Lock()
	defer l.waitMu.Unlock()
	return l.errv
}

// --- flushing ---------------------------------------------------------

// flusher is the group-commit goroutine: each kick flushes the buffer
// tail, fsyncs (in group mode), wakes covered waiters, and takes an
// automatic checkpoint when due. It exits on Close after a final flush.
func (l *Log) flusher() {
	defer l.wg.Done()
	for {
		select {
		case <-l.kickCh:
			// Let the other runnable committers append and enlist before
			// the flush so one fsync covers them all — the point of group
			// commit. This matters most on few cores, where without the
			// yield the flusher runs after every single commit and
			// coalesces nothing. Keep yielding while appends are still
			// arriving, bounded so a steady trickle cannot postpone the
			// flush indefinitely.
			prev := l.appended.Load()
			for i := 0; i < 8; i++ {
				runtime.Gosched()
				cur := l.appended.Load()
				if cur == prev {
					break
				}
				prev = cur
			}
			select {
			case <-l.kickCh:
			default:
			}
		case <-l.doneCh:
			// Final flush: clean shutdown makes everything durable in
			// every mode.
			if err := l.flushOnce(true, false); err != nil {
				return
			}
			return
		}
		if err := l.flushOnce(l.mode != FsyncOff, false); err != nil {
			// Sticky failure already recorded and waiters released; keep
			// draining kicks so Close can complete.
			continue
		}
		l.maybeCheckpoint()
	}
}

// flushOnce drains the buffer tail to the active segment and, when
// syncing, advances the durable watermark and wakes covered waiters.
// Must be called with no locks held.
func (l *Log) flushOnce(doSync, force bool) error {
	synced, err := l.flushAndSync(doSync, force)
	if err != nil {
		l.setErr(fmt.Errorf("wal: flush: %w", err))
		return l.loadErr()
	}
	if synced > 0 {
		l.wake(synced)
	}
	return nil
}

// flushAndSync performs the locked half of a flush: swap out the buffer
// tail, write it to the active segment (rotating first if it would
// overflow), and optionally fsync. force issues the fsync even with an
// empty buffer — fsync=always commits pay for their own barrier
// unconditionally. Returns the highest durable sequence after a sync
// (0 if nothing was synced).
func (l *Log) flushAndSync(doSync, force bool) (uint64, error) {
	l.flushMu.Lock()
	l.appendMu.Lock()
	buf := l.buf
	first := l.pendingFirst
	last := l.nextSeq - 1
	l.buf = nil
	l.pendingFirst = 0
	l.appendMu.Unlock()
	if len(buf) > 0 {
		if l.seg != nil && l.segWritten > 0 && l.segWritten+int64(len(buf)) > l.segBytes {
			if err := l.rotateLocked(first); err != nil {
				l.flushMu.Unlock()
				return 0, err
			}
		}
		if l.seg == nil {
			if err := l.openSegmentLocked(first); err != nil {
				l.flushMu.Unlock()
				return 0, err
			}
		}
		if _, err := l.seg.Write(buf); err != nil {
			l.flushMu.Unlock()
			return 0, err
		}
		l.segWritten += int64(len(buf))
		l.segLast = last
		l.nBytes.Add(uint64(len(buf)))
		group := last - first + 1
		for {
			cur := l.groupMax.Load()
			if group <= cur || l.groupMax.CompareAndSwap(cur, group) {
				break
			}
		}
	}
	var synced uint64
	if doSync && l.seg != nil && (len(buf) > 0 || force || l.durable.Load() < l.segLast) {
		if err := l.seg.Sync(); err != nil {
			l.flushMu.Unlock()
			return 0, err
		}
		l.nFsyncs.Add(1)
		synced = l.segLast
		if l.durable.Load() < synced {
			l.durable.Store(synced)
		}
	}
	l.flushMu.Unlock()
	return synced, nil
}

// openSegmentLocked creates the segment whose first record is seq.
// Caller holds flushMu.
func (l *Log) openSegmentLocked(first uint64) error {
	f, err := l.fs.Create(join(l.dir, segName(first)))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.segWritten = 0
	l.segFirsts = append(l.segFirsts, first)
	l.nSegments.Store(int64(len(l.segFirsts)))
	return nil
}

// rotateLocked seals the active segment (sync so no later segment can
// be durable while this one is torn) and opens a fresh one. Caller
// holds flushMu.
func (l *Log) rotateLocked(nextFirst uint64) error {
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.nFsyncs.Add(1)
		if l.durable.Load() < l.segLast {
			l.durable.Store(l.segLast)
		}
		if err := l.seg.Close(); err != nil {
			return err
		}
		l.seg = nil
	}
	return l.openSegmentLocked(nextFirst)
}

// --- checkpoint -------------------------------------------------------

// maybeCheckpoint takes an automatic checkpoint when enough records
// accumulated since the last one.
func (l *Log) maybeCheckpoint() {
	if l.ckptEvery == 0 || l.sinceCkpt.Load() < l.ckptEvery {
		return
	}
	// A failed checkpoint is not fatal by itself (the log is still
	// authoritative) unless the flush phase already latched an error.
	_ = l.Checkpoint()
}

// Checkpoint writes an atomic snapshot of the catalog (temp file +
// fsync + rename + dir fsync), advances the durable watermark to the
// snapshot's sequence, and removes log segments the snapshot covers.
// If another checkpoint is already in progress it returns nil without
// taking a second one.
func (l *Log) Checkpoint() error {
	if !l.ckptBusy.CompareAndSwap(false, true) {
		return nil
	}
	defer l.ckptBusy.Store(false)
	if err := l.flushOnce(true, false); err != nil {
		return err
	}
	// Serialize the catalog under appendMu: every mutation flows through
	// append1, so holding appendMu yields a state exactly equal to
	// "replay through seq". Catalog.Save snapshots tables one at a time
	// and would otherwise interleave with concurrent DML.
	//
	// Known write stall: appendMu is held for the full snapshot-encode,
	// so every writer blocks for a duration that grows with database
	// size, once per CheckpointRecords. Moving to a copy-on-write or
	// sharded snapshot that only captures a consistent cut under the
	// lock is a ROADMAP item; until then, size CheckpointRecords (or
	// disable automatic checkpoints) to bound the stall frequency.
	var snap bytes.Buffer
	l.appendMu.Lock()
	seq := l.nextSeq - 1
	since := l.sinceCkpt.Load()
	err := l.cat.Save(&snap)
	l.appendMu.Unlock()
	if err != nil {
		l.nCkptErr.Add(1)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if seq == 0 || seq == l.ckptSeq.Load() {
		return nil // nothing new to cover
	}
	if err := l.swapCheckpoint(seq, snap.Bytes()); err != nil {
		// Not latched: the previous checkpoint plus the log segments
		// remain fully authoritative, so a failed swap (disk-full while
		// writing the temp file, a rename error) leaves nothing to
		// fail-stop over. The log stays writable, the failure is counted
		// for metrics, and the next due checkpoint retries. Only the
		// flush phase latches a sticky error.
		l.nCkptErr.Add(1)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.ckptSeq.Store(seq)
	l.sinceCkpt.Add(^(since - 1)) // subtract the records the snapshot covers
	l.nCkpts.Add(1)
	if l.durable.Load() < seq {
		// The snapshot itself is durable; records it covers no longer
		// need their segment fsync.
		l.durable.Store(seq)
	}
	l.wake(seq)
	return nil
}

// swapCheckpoint durably replaces the checkpoint file with one covering
// seq, then prunes fully covered segments. Replacement is atomic-rename
// only: the temp file is fsynced before the rename, and the directory
// after, so a crash leaves either the old or the new snapshot — never a
// partial one.
func (l *Log) swapCheckpoint(seq uint64, data []byte) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	name := ckptName(seq)
	tmp := name + ".tmp"
	f, err := l.fs.Create(join(l.dir, tmp))
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(join(l.dir, tmp), join(l.dir, name)); err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	// Drop the previous checkpoint and every segment whose records are
	// all covered by the new snapshot, oldest first so a crash mid-prune
	// leaves a contiguous suffix.
	if old := l.ckptSeq.Load(); old > 0 && old != seq {
		if err := l.fs.Remove(join(l.dir, ckptName(old))); err != nil && !notExist(err) {
			return err
		}
	}
	for len(l.segFirsts) > 0 {
		first := l.segFirsts[0]
		var segLast uint64
		active := len(l.segFirsts) == 1
		if active {
			segLast = l.segLast
		} else {
			segLast = l.segFirsts[1] - 1
		}
		if segLast > seq || (active && l.segWritten == 0) {
			break
		}
		if active {
			// The active segment is fully covered: seal and drop it; the
			// next flush starts a fresh segment.
			if l.seg != nil {
				if err := l.seg.Close(); err != nil {
					return err
				}
				l.seg = nil
			}
			l.segWritten = 0
		}
		if err := l.fs.Remove(join(l.dir, segName(first))); err != nil && !notExist(err) {
			return err
		}
		l.segFirsts = l.segFirsts[1:]
		l.nSegments.Store(int64(len(l.segFirsts)))
		if active {
			break
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	return nil
}

// --- close ------------------------------------------------------------

// Close flushes and fsyncs everything appended, stops the flusher and
// closes the active segment. Appends and commits after Close fail with
// ErrClosed.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.doneCh) })
	l.wg.Wait()
	err := l.loadErr()
	l.setErr(ErrClosed)
	l.flushMu.Lock()
	if l.seg != nil {
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	l.flushMu.Unlock()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}
