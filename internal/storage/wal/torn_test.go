package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildLogDir runs the workload against a real directory and returns
// the path of its single segment file.
func buildLogDir(t *testing.T) (dir, seg string) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d of %d", n, len(ops))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			if seg != "" {
				t.Fatalf("expected one segment, found %s and %s", seg, e.Name())
			}
			seg = e.Name()
		}
	}
	if seg == "" {
		t.Fatal("no segment file written")
	}
	return dir, seg
}

// recordOffsets decodes the segment and returns the byte offset where
// each record starts, plus the total length.
func recordOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	rest := data
	off := 0
	for len(rest) > 0 {
		_, next, used, err := decodeRecord(rest)
		if err != nil {
			t.Fatalf("clean segment fails to decode at offset %d: %v", off, err)
		}
		offs = append(offs, off)
		off += used
		rest = next
	}
	return offs
}

// TestTornTailEveryByte truncates the segment at every byte offset
// inside the final record and requires recovery to succeed with exactly
// the records before it, reporting the torn length.
func TestTornTailEveryByte(t *testing.T) {
	dir, seg := buildLogDir(t)
	data, err := os.ReadFile(filepath.Join(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	if len(offs) < 2 {
		t.Fatalf("need at least 2 records, got %d", len(offs))
	}
	lastStart := offs[len(offs)-1]
	want := expectedCatalog(t, len(workloadOps(t))-1) // all but the final op
	for cut := lastStart; cut < len(data); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, seg), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(sub, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		if got, wantTorn := l.RecoveryStats().TornBytes, cut-lastStart; got != wantTorn {
			t.Fatalf("cut=%d: TornBytes=%d, want %d", cut, got, wantTorn)
		}
		assertCatalogsEqual(t, l.Catalog(), want, fmt.Sprintf("truncated at byte %d", cut))
		// The torn tail was truncated away, so the log must accept and
		// persist new appends cleanly.
		if err := l.Insert("customer", taggedRow(900, "post-torn")); err != nil {
			t.Fatalf("cut=%d: append after torn recovery: %v", cut, err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("cut=%d: commit after torn recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(sub, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
		if err != nil {
			t.Fatalf("cut=%d: second recovery failed: %v", cut, err)
		}
		if got := int(l2.Stats().AppendedSeq); got != len(workloadOps(t)) {
			t.Fatalf("cut=%d: after reopen AppendedSeq=%d, want %d", cut, got, len(workloadOps(t)))
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMidLogCorruptionRefused flips one byte in every non-final record
// and requires recovery to refuse with a corrupt-record error rather
// than silently dropping acknowledged writes.
func TestMidLogCorruptionRefused(t *testing.T) {
	dir, seg := buildLogDir(t)
	data, err := os.ReadFile(filepath.Join(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	for i, start := range offs[:len(offs)-1] {
		sub := t.TempDir()
		mut := append([]byte(nil), data...)
		mut[start+frameHeader] ^= 0xff // corrupt the first body byte
		if err := os.WriteFile(filepath.Join(sub, seg), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(sub, Options{Fsync: FsyncAlways, CheckpointRecords: -1})
		if err == nil {
			t.Fatalf("record %d: recovery accepted mid-log corruption", i)
		}
		if !strings.Contains(err.Error(), "wal: corrupt record at seq") {
			t.Fatalf("record %d: error %q does not name the corrupt seq", i, err)
		}
	}
}

// TestMidSegmentTruncationRefused cuts the log in the middle — removing
// whole records before the tail — which must refuse recovery since
// later records prove the damage is not a torn tail.
func TestMidSegmentTruncationRefused(t *testing.T) {
	dir, seg := buildLogDir(t)
	data, err := os.ReadFile(filepath.Join(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	if len(offs) < 3 {
		t.Fatalf("need at least 3 records, got %d", len(offs))
	}
	// Splice record 1 out entirely: seq continuity must catch the hole.
	mut := append([]byte(nil), data[:offs[1]]...)
	mut = append(mut, data[offs[2]:]...)
	sub := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub, seg), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(sub, Options{Fsync: FsyncAlways, CheckpointRecords: -1}); err == nil {
		t.Fatal("recovery accepted a spliced-out record")
	} else if !strings.Contains(err.Error(), "wal: corrupt record at seq") {
		t.Fatalf("error %q does not name the corrupt seq", err)
	}
}

// TestMultiSegmentTornTail: with several segments, only the final one
// may be torn; the same cut inside an earlier segment must refuse.
func TestMultiSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 256, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	// Tearing the final segment's tail recovers.
	final := segs[len(segs)-1]
	data, err := os.ReadFile(filepath.Join(dir, final))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, data)
	cut := offs[len(offs)-1] + frameHeader/2
	if err := os.Truncate(filepath.Join(dir, final), int64(cut)); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 256, CheckpointRecords: -1})
	if err != nil {
		t.Fatalf("torn final segment should recover: %v", err)
	}
	if l2.RecoveryStats().TornBytes == 0 {
		t.Fatal("expected TornBytes > 0")
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Tearing an earlier segment the same way must refuse: the segments
	// after it prove records are missing.
	earlier := segs[0]
	st, err := os.Stat(filepath.Join(dir, earlier))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, earlier), st.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 256, CheckpointRecords: -1}); err == nil {
		t.Fatal("recovery accepted a torn non-final segment")
	} else if !strings.Contains(err.Error(), "wal: corrupt record at seq") {
		t.Fatalf("error %q does not name the corrupt seq", err)
	}
}
