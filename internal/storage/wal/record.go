package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/relation"
	"repro/internal/server/wire"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// Kind tags a logical record: one DML row mutation or one DDL statement.
type Kind byte

const (
	KindInsert Kind = iota + 1
	KindUpdate
	KindDelete
	KindCreateTable
	KindDropTable
	KindCreateIndex
	KindTagTable
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindCreateTable:
		return "create-table"
	case KindDropTable:
		return "drop-table"
	case KindCreateIndex:
		return "create-index"
	case KindTagTable:
		return "tag-table"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Record is one logical WAL entry. Which fields are meaningful depends on
// Kind: Insert/Update carry Tuple, Update/Delete carry Row, CreateTable
// carries Def (a storage.MarshalTableDef payload), CreateIndex carries
// Target+Index, TagTable carries Indicator+TagValue.
type Record struct {
	Seq   uint64
	Kind  Kind
	Table string

	Tuple relation.Tuple
	Row   storage.RowID

	Def []byte // CreateTable: schema + strictness

	Target storage.IndexTarget // CreateIndex
	Index  storage.IndexKind   // CreateIndex

	Indicator string      // TagTable
	TagValue  value.Value // TagTable
}

// castagnoli is the CRC32C table; the same polynomial iSCSI and ext4 use
// for data checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// On-disk frame: u32-LE body length | u32-LE CRC32C(body) | body.
// The body is: uvarint seq, kind byte, uvarint len(table), table,
// kind-specific payload. Values inside tuples use the wire v2 binary cell
// codec so tagged cells round-trip bit-exactly with the protocol.
const frameHeader = 8

// maxRecordBytes bounds a single record body so a corrupt length prefix
// cannot ask recovery to allocate gigabytes. It comfortably exceeds the
// server's max frame (a record is at most one statement's worth of data).
const maxRecordBytes = 64 << 20

func appendUvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncatedRecord
	}
	return x, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, errTruncatedRecord
	}
	return string(b[:n]), b[n:], nil
}

var errTruncatedRecord = fmt.Errorf("wal: truncated record body")

func appendValue(b []byte, v value.Value) []byte { return wire.AppendValue(b, v) }

func readValue(b []byte) (value.Value, []byte, error) {
	v, rest, err := wire.ReadValue(b)
	if err != nil {
		return value.Null, nil, err
	}
	return v, rest, nil
}

func appendTagSet(b []byte, s tag.Set) []byte {
	tags := s.Tags()
	b = appendUvarint(b, uint64(len(tags)))
	for _, t := range tags {
		b = appendString(b, t.Indicator)
		b = appendValue(b, t.Value)
	}
	return b
}

func readTagSet(b []byte) (tag.Set, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return tag.EmptySet, nil, err
	}
	if n == 0 {
		return tag.EmptySet, b, nil
	}
	if n > uint64(len(b)) { // each tag needs >= 1 byte
		return tag.EmptySet, nil, errTruncatedRecord
	}
	tags := make([]tag.Tag, 0, n)
	for i := uint64(0); i < n; i++ {
		var ind string
		var v value.Value
		ind, b, err = readString(b)
		if err != nil {
			return tag.EmptySet, nil, err
		}
		v, b, err = readValue(b)
		if err != nil {
			return tag.EmptySet, nil, err
		}
		tags = append(tags, tag.Tag{Indicator: ind, Value: v})
	}
	return tag.NewSet(tags...), b, nil
}

func appendCell(b []byte, c relation.Cell) []byte {
	b = appendValue(b, c.V)
	b = appendTagSet(b, c.Tags)
	b = appendUvarint(b, uint64(len(c.Sources)))
	for _, s := range c.Sources {
		b = appendString(b, s)
	}
	b = appendUvarint(b, uint64(len(c.Meta)))
	for ind, ms := range c.Meta {
		b = appendString(b, ind)
		b = appendTagSet(b, ms)
	}
	return b
}

func readCell(b []byte) (relation.Cell, []byte, error) {
	var c relation.Cell
	var err error
	c.V, b, err = readValue(b)
	if err != nil {
		return c, nil, err
	}
	c.Tags, b, err = readTagSet(b)
	if err != nil {
		return c, nil, err
	}
	nsrc, b, err := readUvarint(b)
	if err != nil {
		return c, nil, err
	}
	if nsrc > uint64(len(b)) {
		return c, nil, errTruncatedRecord
	}
	if nsrc > 0 {
		srcs := make([]string, 0, nsrc)
		for i := uint64(0); i < nsrc; i++ {
			var s string
			s, b, err = readString(b)
			if err != nil {
				return c, nil, err
			}
			srcs = append(srcs, s)
		}
		c.Sources = tag.NewSources(srcs...)
	}
	nmeta, b, err := readUvarint(b)
	if err != nil {
		return c, nil, err
	}
	if nmeta > uint64(len(b)) {
		return c, nil, errTruncatedRecord
	}
	for i := uint64(0); i < nmeta; i++ {
		var ind string
		var ms tag.Set
		ind, b, err = readString(b)
		if err != nil {
			return c, nil, err
		}
		ms, b, err = readTagSet(b)
		if err != nil {
			return c, nil, err
		}
		for _, t := range ms.Tags() {
			c = c.WithMetaTag(ind, t.Indicator, t.Value)
		}
	}
	return c, b, nil
}

func appendTuple(b []byte, t relation.Tuple) []byte {
	b = appendUvarint(b, uint64(len(t.Cells)))
	for _, c := range t.Cells {
		b = appendCell(b, c)
	}
	return b
}

func readTuple(b []byte) (relation.Tuple, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return relation.Tuple{}, nil, err
	}
	if n > uint64(len(b)) {
		return relation.Tuple{}, nil, errTruncatedRecord
	}
	cells := make([]relation.Cell, 0, n)
	for i := uint64(0); i < n; i++ {
		var c relation.Cell
		c, b, err = readCell(b)
		if err != nil {
			return relation.Tuple{}, nil, err
		}
		cells = append(cells, c)
	}
	return relation.Tuple{Cells: cells}, b, nil
}

// appendRecord frames rec onto b: length, CRC32C, body.
func appendRecord(b []byte, rec *Record) []byte {
	body := make([]byte, 0, 64)
	body = appendUvarint(body, rec.Seq)
	body = append(body, byte(rec.Kind))
	body = appendString(body, rec.Table)
	switch rec.Kind {
	case KindInsert:
		body = appendTuple(body, rec.Tuple)
	case KindUpdate:
		body = appendUvarint(body, uint64(rec.Row))
		body = appendTuple(body, rec.Tuple)
	case KindDelete:
		body = appendUvarint(body, uint64(rec.Row))
	case KindCreateTable:
		body = appendUvarint(body, uint64(len(rec.Def)))
		body = append(body, rec.Def...)
	case KindDropTable:
		// table name only
	case KindCreateIndex:
		body = appendString(body, rec.Target.Attr)
		body = appendString(body, rec.Target.Indicator)
		body = append(body, byte(rec.Index))
	case KindTagTable:
		body = appendString(body, rec.Indicator)
		body = appendValue(body, rec.TagValue)
	default:
		// Unreachable: records are built by Log methods with fixed kinds.
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, body...)
}

// decodeRecord parses one framed record from the front of b, returning
// the record, the remaining bytes, and the number of bytes consumed.
// A nil error with rec == nil never happens; an error distinguishes
// "frame damaged" (CRC/length) from "body malformed" only by message —
// recovery treats both as corruption at that offset.
func decodeRecord(b []byte) (*Record, []byte, int, error) {
	if len(b) < frameHeader {
		return nil, nil, 0, fmt.Errorf("wal: short frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > maxRecordBytes {
		return nil, nil, 0, fmt.Errorf("wal: record length %d exceeds limit", n)
	}
	if uint32(len(b)-frameHeader) < n {
		return nil, nil, 0, fmt.Errorf("wal: short record body (%d of %d bytes)", len(b)-frameHeader, n)
	}
	body := b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, nil, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	rec, err := decodeBody(body)
	if err != nil {
		return nil, nil, 0, err
	}
	used := frameHeader + int(n)
	return rec, b[used:], used, nil
}

func decodeBody(body []byte) (*Record, error) {
	rec := &Record{}
	var err error
	rec.Seq, body, err = readUvarint(body)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 {
		return nil, errTruncatedRecord
	}
	rec.Kind = Kind(body[0])
	body = body[1:]
	rec.Table, body, err = readString(body)
	if err != nil {
		return nil, err
	}
	switch rec.Kind {
	case KindInsert:
		rec.Tuple, body, err = readTuple(body)
	case KindUpdate:
		var row uint64
		row, body, err = readUvarint(body)
		if err == nil {
			rec.Row = storage.RowID(row)
			rec.Tuple, body, err = readTuple(body)
		}
	case KindDelete:
		var row uint64
		row, body, err = readUvarint(body)
		rec.Row = storage.RowID(row)
	case KindCreateTable:
		var n uint64
		n, body, err = readUvarint(body)
		if err == nil {
			if n > uint64(len(body)) {
				err = errTruncatedRecord
			} else {
				rec.Def = append([]byte(nil), body[:n]...)
				body = body[n:]
			}
		}
	case KindDropTable:
		// table name only
	case KindCreateIndex:
		rec.Target.Attr, body, err = readString(body)
		if err == nil {
			rec.Target.Indicator, body, err = readString(body)
		}
		if err == nil {
			if len(body) < 1 {
				err = errTruncatedRecord
			} else {
				rec.Index = storage.IndexKind(body[0])
				body = body[1:]
			}
		}
	case KindTagTable:
		rec.Indicator, body, err = readString(body)
		if err == nil {
			rec.TagValue, body, err = readValue(body)
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", byte(rec.Kind))
	}
	if err != nil {
		return nil, err
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %s record", len(body), rec.Kind)
	}
	return rec, nil
}
