package wal

import (
	"fmt"
	"testing"
)

// faultOpts pins the deterministic configuration the fault-injection
// tests rely on: fsync=always commits flush in the calling goroutine
// (so the FS operation sequence is reproducible run to run) and
// automatic checkpoints are off (the flusher goroutine stays idle).
func faultOpts(ffs *FaultFS) Options {
	return Options{FS: ffs, Fsync: FsyncAlways, CheckpointRecords: -1}
}

// TestCrashAtEveryOperation is the recovery property test: run a mixed
// DDL/DML workload, injecting a failure at every single filesystem
// operation in turn, crash the machine, recover — and require that
// exactly the acknowledged prefix of the workload survives: no
// acknowledged write lost, no unacknowledged write resurrected. Swept
// across clean and short (partial) failing writes, and across crashes
// that tear a few unsynced bytes onto the end of the file.
func TestCrashAtEveryOperation(t *testing.T) {
	// Clean run to learn the operation count.
	clean := NewFaultFS()
	l, err := Open("w", faultOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("clean run acked %d of %d", n, len(ops))
	}
	total := clean.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few FS ops (%d); is the workload running?", total)
	}
	for _, partial := range []bool{false, true} {
		for _, tear := range []int{0, 3} {
			for k := 1; k <= total; k++ {
				ffs := NewFaultFS()
				ffs.SetPartialWrites(partial)
				ffs.FailAt(k)
				acked := 0
				if l, err := Open("w", faultOpts(ffs)); err == nil {
					acked = runLogged(l, ops)
				}
				// Power loss; the injector is disarmed so recovery itself
				// runs on a healthy disk.
				ffs.FailAt(0)
				ffs.Crash(tear)
				l2, err := Open("w", faultOpts(ffs))
				if err != nil {
					t.Fatalf("k=%d partial=%v tear=%d: recovery failed: %v", k, partial, tear, err)
				}
				assertCatalogsEqual(t, l2.Catalog(), expectedCatalog(t, acked),
					fmt.Sprintf("crash at op %d (partial=%v, tear=%d, acked %d)", k, partial, tear, acked))
			}
		}
	}
}

// TestCrashDuringCheckpoint crashes at every operation of the
// checkpoint itself and proves snapshot replacement is atomic: whatever
// the crash point, recovery finds either the old state via the log or
// the new snapshot — never a partial one — and no acknowledged write is
// lost.
func TestCrashDuringCheckpoint(t *testing.T) {
	ops := workloadOps(t)
	// Learn the operation window of Checkpoint.
	clean := NewFaultFS()
	l, err := Open("w", faultOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("clean run acked %d", n)
	}
	before := clean.Ops()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := clean.Ops()
	if after <= before {
		t.Fatalf("checkpoint issued no FS ops (%d..%d)", before, after)
	}
	want := expectedCatalog(t, len(ops))
	for k := before + 1; k <= after; k++ {
		ffs := NewFaultFS()
		ffs.FailAt(k)
		l, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		if n := runLogged(l, ops); n != len(ops) {
			t.Fatalf("k=%d: workload acked %d (injection fired early?)", k, n)
		}
		ckptErr := l.Checkpoint()
		ffs.FailAt(0)
		ffs.Crash(0)
		l2, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d (ckptErr=%v): recovery failed: %v", k, ckptErr, err)
		}
		assertCatalogsEqual(t, l2.Catalog(), want, fmt.Sprintf("crash during checkpoint at op %d", k))
	}
}

// TestCheckpointFailureNotFatal: a failed snapshot swap must not brick
// the log. The previous checkpoint plus the segments remain fully
// authoritative, so after the error the log keeps accepting writes, a
// retried checkpoint succeeds, and recovery still yields every
// acknowledged write. Swept across every FS operation of the
// checkpoint.
func TestCheckpointFailureNotFatal(t *testing.T) {
	ops := workloadOps(t)
	clean := NewFaultFS()
	l, err := Open("w", faultOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("clean run acked %d", n)
	}
	before := clean.Ops()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := clean.Ops()
	want := expectedCatalog(t, len(ops))
	if err := (mirror{want}).Insert("customer", taggedRow(300, "post-failure")); err != nil {
		t.Fatal(err)
	}
	for k := before + 1; k <= after; k++ {
		ffs := NewFaultFS()
		ffs.FailAt(k)
		l, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		if n := runLogged(l, ops); n != len(ops) {
			t.Fatalf("k=%d: workload acked %d (injection fired early?)", k, n)
		}
		if err := l.Checkpoint(); err == nil {
			t.Fatalf("k=%d: checkpoint succeeded despite injected fault", k)
		}
		ffs.FailAt(0)
		if st := l.Stats(); st.CkptErrs == 0 {
			t.Fatalf("k=%d: CkptErrs = 0 after failed checkpoint", k)
		}
		// The log must still accept and acknowledge writes...
		if err := l.Insert("customer", taggedRow(300, "post-failure")); err != nil {
			t.Fatalf("k=%d: insert after failed checkpoint: %v", k, err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("k=%d: commit after failed checkpoint: %v", k, err)
		}
		// ...and a retried checkpoint must succeed.
		if err := l.Checkpoint(); err != nil {
			t.Fatalf("k=%d: retried checkpoint: %v", k, err)
		}
		ffs.Crash(0)
		l2, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d: recovery: %v", k, err)
		}
		assertCatalogsEqual(t, l2.Catalog(), want, fmt.Sprintf("checkpoint failure at op %d", k))
	}
}

// TestCrashDuringCheckpointWithLaterWrites: crash mid-checkpoint while
// more commits landed after it; both the pre-checkpoint and the
// post-checkpoint acknowledged writes must survive.
func TestCrashDuringCheckpointWithLaterWrites(t *testing.T) {
	ops := workloadOps(t)
	clean := NewFaultFS()
	l, err := Open("w", faultOpts(clean))
	if err != nil {
		t.Fatal(err)
	}
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("clean acked %d", n)
	}
	before := clean.Ops()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := clean.Ops()
	extra := func(a applier) error { return a.Insert("customer", taggedRow(200, "after-ckpt")) }
	want := expectedCatalog(t, len(ops))
	if err := extra(mirror{want}); err != nil {
		t.Fatal(err)
	}
	for k := before + 1; k <= after; k++ {
		ffs := NewFaultFS()
		ffs.FailAt(k)
		l, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		if n := runLogged(l, ops); n != len(ops) {
			t.Fatalf("k=%d: acked %d", k, n)
		}
		ckptErr := l.Checkpoint()
		acked := false
		if err := extra(l); err == nil {
			if err := l.Commit(); err == nil {
				acked = true
			}
		}
		ffs.FailAt(0)
		ffs.Crash(0)
		l2, err := Open("w", faultOpts(ffs))
		if err != nil {
			t.Fatalf("k=%d (ckptErr=%v): recovery failed: %v", k, ckptErr, err)
		}
		if acked {
			assertCatalogsEqual(t, l2.Catalog(), want, fmt.Sprintf("post-checkpoint write at op %d", k))
		} else {
			assertCatalogsEqual(t, l2.Catalog(), expectedCatalog(t, len(ops)), fmt.Sprintf("checkpoint crash at op %d", k))
		}
	}
}

// TestRecoveryRefusesGapAfterCheckpoint: a checkpoint pointing past the
// first log record means records are missing; recovery must refuse.
func TestRecoveryRefusesGapAfterCheckpoint(t *testing.T) {
	ffs := NewFaultFS()
	l, err := Open("w", faultOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	ops := workloadOps(t)
	if n := runLogged(l, ops); n != len(ops) {
		t.Fatalf("acked %d", n)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert("customer", taggedRow(300, "tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: replace the checkpoint name with one claiming a later
	// sequence than it covers, creating a gap to the log tail.
	names, err := ffs.ReadDir("w")
	if err != nil {
		t.Fatal(err)
	}
	renamed := false
	for _, name := range names {
		if seq, ok := parseSeqName(name, "checkpoint-", ".ckpt"); ok {
			if err := ffs.Rename(join("w", name), join("w", ckptName(seq+100))); err != nil {
				t.Fatal(err)
			}
			renamed = true
		}
	}
	if !renamed {
		t.Fatal("no checkpoint file found")
	}
	if _, err := Open("w", faultOpts(ffs)); err == nil {
		t.Fatal("recovery accepted a sequence gap")
	} else {
		t.Logf("refused as expected: %v", err)
	}
}
