package storage

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/value"
)

// fillRows inserts n distinct rows and returns their IDs.
func fillRows(t *testing.T, tbl *Table, n int) []RowID {
	t.Helper()
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := tbl.Insert(custTuple(fmt.Sprintf("co-%06d", i), "addr", int64(i), t0, "s"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestSegmentedHeapLayout(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	if tbl.Segments() != 0 {
		t.Errorf("empty table Segments = %d", tbl.Segments())
	}
	const n = SegmentSize + 100
	ids := fillRows(t, tbl, n)
	if got := tbl.Segments(); got != 2 {
		t.Fatalf("Segments = %d, want 2", got)
	}
	// Row IDs are dense and map to (segment, offset).
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("id[%d] = %d", i, id)
		}
	}
	gotIDs, rows := tbl.ScanSegment(0)
	if len(gotIDs) != SegmentSize || len(rows) != SegmentSize {
		t.Fatalf("segment 0 has %d rows, want %d", len(gotIDs), SegmentSize)
	}
	gotIDs, rows = tbl.ScanSegment(1)
	if len(gotIDs) != 100 {
		t.Fatalf("segment 1 has %d rows, want 100", len(gotIDs))
	}
	if gotIDs[0] != RowID(SegmentSize) || rows[0].Cells[2].V.AsInt() != SegmentSize {
		t.Errorf("segment 1 starts at id %d row %v", gotIDs[0], rows[0].Cells[0].V)
	}
	// Out-of-range segments are empty, not a panic.
	if ids2, rows2 := tbl.ScanSegment(2); ids2 != nil || rows2 != nil {
		t.Errorf("ScanSegment(2) = %v, %v", ids2, rows2)
	}
	if ids2, _ := tbl.ScanSegment(-1); ids2 != nil {
		t.Errorf("ScanSegment(-1) = %v", ids2)
	}
	// Deletions disappear from their segment; others keep row-ID order.
	if err := tbl.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	gotIDs, _ = tbl.ScanSegment(0)
	if len(gotIDs) != SegmentSize-1 || gotIDs[0] != ids[0] || gotIDs[1] != ids[2] {
		t.Errorf("after delete segment 0 starts %v", gotIDs[:3])
	}
	// ScanSegment returns copies: mutating them leaves the table intact.
	_, rows = tbl.ScanSegment(1)
	rows[0].Cells[0] = relation.Cell{V: value.Str("clobbered")}
	if got, _ := tbl.Get(RowID(SegmentSize)); got.Cells[0].V.AsString() == "clobbered" {
		t.Error("ScanSegment aliased table storage")
	}
	// Cross-segment Get/Update/Delete still address the right slots.
	last := ids[len(ids)-1]
	if got, ok := tbl.Get(last); !ok || got.Cells[2].V.AsInt() != int64(n-1) {
		t.Errorf("Get(%d) = %v, %v", last, got, ok)
	}
	if err := tbl.Update(last, custTuple("co-updated", "addr", 999999, t0, "s")); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.Get(last); got.Cells[0].V.AsString() != "co-updated" {
		t.Error("cross-segment update lost")
	}
	if tbl.Len() != n-1 {
		t.Errorf("Len = %d, want %d", tbl.Len(), n-1)
	}
}

// TestScanVisitorReentrancy is the regression test for the old
// lock-across-callback bug: Table.Scan used to hold t.mu.RLock() while
// invoking the visitor, so a visitor calling any other RLock-taking method
// while a writer was queued deadlocked (sync.RWMutex blocks new readers
// once a writer waits). The segment-wise scan runs the visitor lockless;
// this test deadlocks (and times out) on the old implementation. Run with
// -race.
func TestScanVisitorReentrancy(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	fillRows(t, tbl, 64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		writerStarted := make(chan struct{})
		writerDone := make(chan error, 1)
		first := true
		tbl.Scan(func(id RowID, tup relation.Tuple) bool {
			if first {
				first = false
				go func() {
					close(writerStarted)
					_, err := tbl.Insert(custTuple("queued-writer", "addr", 1, t0, "s"))
					writerDone <- err
				}()
				<-writerStarted
				// Give the writer time to queue on t.mu. With the old
				// whole-scan RLock the Get below would then deadlock.
				time.Sleep(20 * time.Millisecond)
				if _, ok := tbl.Get(id); !ok {
					t.Errorf("visitor Get(%d) failed", id)
				}
				if _, err := tbl.LookupEq(IndexTarget{Attr: "co_name"}, tup.Cells[0].V); err != nil {
					t.Errorf("visitor LookupEq: %v", err)
				}
			}
			return true
		})
		if err := <-writerDone; err != nil {
			t.Errorf("queued writer: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scan deadlocked: visitor re-entry blocked behind a queued writer")
	}
	if tbl.Len() != 65 {
		t.Errorf("Len = %d, want 65", tbl.Len())
	}
}

func TestScanSeesSegmentConsistentView(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	ids := fillRows(t, tbl, SegmentSize+10)
	// A visitor may mutate rows it has already been handed; the scan keeps
	// going over its segment copies.
	visited := 0
	tbl.Scan(func(id RowID, tup relation.Tuple) bool {
		visited++
		if id == ids[0] {
			if err := tbl.Delete(ids[2]); err != nil {
				t.Errorf("delete during scan: %v", err)
			}
		}
		return true
	})
	// ids[2] was deleted after segment 0 was snapshotted, so it was still
	// visited; the next scan omits it.
	if visited != SegmentSize+10 {
		t.Errorf("first scan visited %d", visited)
	}
	visited = 0
	tbl.Scan(func(RowID, relation.Tuple) bool { visited++; return true })
	if visited != SegmentSize+9 {
		t.Errorf("second scan visited %d", visited)
	}
}
