package storage

import (
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/value"
)

// The heap is column-major inside each segment: a segment holds one colRun
// per attribute instead of a slice of row tuples. Values, a packed null
// bitmap and the per-cell quality metadata (tags, polygen sources, tag
// metadata) live in parallel runs, so readers that touch one attribute — a
// comparison kernel, a tag predicate, a quality gauge — stream exactly one
// run instead of loading every cell of every row.
//
// Concurrency contract (the invariant the whole zero-clone tier leans on):
// column runs are immutable once published. Appends only ever write the
// slot one past every reader's view (or grow into a fresh backing array),
// and Update copy-on-writes the touched segment's runs wholesale, so a
// reader that captured run slices under the table's read lock can keep
// using them after releasing it. The one in-place exception would be
// setting a null bit mid-word; appendCell copy-on-writes the bitmap
// instead, keeping published words frozen.

// colRun is one column of one segment: up to SegmentSize values in slot
// order plus their quality metadata and a running min/max summary.
type colRun struct {
	vals []value.Value
	// nulls is a packed bitmap: bit off of word off/64 set means
	// vals[off] is null. Words are immutable once published; setting a
	// bit in an already-published word replaces the slice (see append).
	nulls []uint64
	// tags/srcs/meta are nil until the first cell in the run carries
	// that metadata; once allocated they stay slot-aligned with vals.
	tags []tag.Set
	srcs []tag.Sources
	meta []map[string]tag.Set
	mm   ColStats
}

// ColStats summarizes the non-null values of one column run. OK is false
// until a non-null value has been observed. Deletes and updates never
// narrow the bounds, so the summary is a conservative superset of the live
// values — safe for segment skipping, useless for exact answers.
type ColStats struct {
	Min, Max value.Value
	OK       bool
}

// widen grows the bounds to admit v (callers skip nulls).
func (s *ColStats) widen(v value.Value) {
	if !s.OK {
		s.Min, s.Max, s.OK = v, v, true
		return
	}
	if value.ComparePtr(&v, &s.Min) < 0 {
		s.Min = v
	}
	if value.ComparePtr(&v, &s.Max) > 0 {
		s.Max = v
	}
}

// appendCell writes c at slot off (== current run length). Only the
// mid-word null-bit set copies; everything else appends, which either
// writes past every published view or relocates to a fresh array — both
// invisible to concurrent readers holding older slices.
func (r *colRun) appendCell(c relation.Cell, off int) {
	r.vals = append(r.vals, c.V)
	null := c.V.IsNull()
	if off%64 == 0 {
		var w uint64
		if null {
			w = 1
		}
		r.nulls = append(r.nulls, w)
	} else if null {
		nw := make([]uint64, len(r.nulls))
		copy(nw, r.nulls)
		nw[off/64] |= 1 << uint(off%64)
		r.nulls = nw
	}
	if !null {
		r.mm.widen(c.V)
	}
	if r.tags != nil || !c.Tags.IsEmpty() {
		if r.tags == nil {
			r.tags = make([]tag.Set, off, cap(r.vals))
		}
		r.tags = append(r.tags, c.Tags)
	}
	if r.srcs != nil || len(c.Sources) > 0 {
		if r.srcs == nil {
			r.srcs = make([]tag.Sources, off, cap(r.vals))
		}
		r.srcs = append(r.srcs, c.Sources)
	}
	if r.meta != nil || len(c.Meta) > 0 {
		if r.meta == nil {
			r.meta = make([]map[string]tag.Set, off, cap(r.vals))
		}
		r.meta = append(r.meta, c.Meta)
	}
}

// cell materializes slot off as a relation.Cell.
func (r *colRun) cell(off int) relation.Cell {
	c := relation.Cell{V: r.vals[off]}
	if r.tags != nil {
		c.Tags = r.tags[off]
	}
	if r.srcs != nil {
		c.Sources = r.srcs[off]
	}
	if r.meta != nil {
		c.Meta = r.meta[off]
	}
	return c
}

// cowReplace returns a copy of the run with slot off replaced by c —
// Update's copy-on-write step. The min/max summary widens to admit the new
// value; the displaced value's contribution is not recomputed away.
func (r *colRun) cowReplace(off int, c relation.Cell) colRun {
	n := len(r.vals)
	out := colRun{mm: r.mm}
	out.vals = make([]value.Value, n)
	copy(out.vals, r.vals)
	out.vals[off] = c.V
	out.nulls = make([]uint64, len(r.nulls))
	copy(out.nulls, r.nulls)
	if c.V.IsNull() {
		out.nulls[off/64] |= 1 << uint(off%64)
	} else {
		out.nulls[off/64] &^= 1 << uint(off%64)
		out.mm.widen(c.V)
	}
	if r.tags != nil || !c.Tags.IsEmpty() {
		out.tags = make([]tag.Set, n)
		copy(out.tags, r.tags)
		out.tags[off] = c.Tags
	}
	if r.srcs != nil || len(c.Sources) > 0 {
		out.srcs = make([]tag.Sources, n)
		copy(out.srcs, r.srcs)
		out.srcs[off] = c.Sources
	}
	if r.meta != nil || len(c.Meta) > 0 {
		out.meta = make([]map[string]tag.Set, n)
		copy(out.meta, r.meta)
		out.meta[off] = c.Meta
	}
	return out
}

// ColRun is the zero-clone read view of one column of one segment: the
// value run, null bitmap and metadata runs alias heap storage (read-only —
// see the copy-on-write contract above), plus the run's min/max summary
// for segment skipping. Nils mean "no cell in this run carries that
// metadata". Runs cover row slots, live or dead; consult the owning
// ColSeg's selection for liveness.
type ColRun struct {
	Vals  []value.Value
	Nulls []uint64
	Tags  []tag.Set
	Srcs  []tag.Sources
	Meta  []map[string]tag.Set
	Stats ColStats
}

// Null reports whether slot off holds a null value.
func (r *ColRun) Null(off int) bool {
	return r.Nulls[off/64]&(1<<uint(off%64)) != 0
}

// Cell materializes slot off as a relation.Cell.
func (r *ColRun) Cell(off int) relation.Cell {
	c := relation.Cell{V: r.Vals[off]}
	if r.Tags != nil {
		c.Tags = r.Tags[off]
	}
	if r.Srcs != nil {
		c.Sources = r.Srcs[off]
	}
	if r.Meta != nil {
		c.Meta = r.Meta[off]
	}
	return c
}

// ColSeg is a zero-clone columnar view of one segment: N row slots, the
// live-slot selection, and one ColRun per requested column. Reuse one
// ColSeg across ScanSegmentCols calls to recycle its internal buffers.
type ColSeg struct {
	// N is the number of row slots in the view (live and dead).
	N int
	// Base is the row ID of slot 0.
	Base RowID
	// Sel lists the live slot offsets in ascending order; nil means every
	// slot in [0, N) is live. It aliases an internal buffer owned by the
	// ColSeg, valid until the next refill.
	Sel []int32
	// Cols holds one run per requested column, in request order.
	Cols []ColRun

	selBuf []int32
}

// Live reports the number of live rows in the view.
func (s *ColSeg) Live() int {
	if s.Sel != nil {
		return len(s.Sel)
	}
	return s.N
}

// ScanSegmentCols fills buf with a zero-clone columnar view of segment i,
// materializing only the requested columns (schema column indexes). It
// returns false for an out-of-range segment. The returned runs alias heap
// storage under the column-run immutability contract: treat them as
// read-only. No tuple is cloned and no per-row work is done beyond the
// live-slot selection (skipped entirely for segments with no deletes), so
// this is the batch tier's scan primitive.
func (t *Table) ScanSegmentCols(i int, colIdxs []int, buf *ColSeg) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.segs) {
		return false
	}
	seg := t.segs[i]
	buf.N = seg.n
	buf.Base = RowID(i * SegmentSize)
	buf.Cols = buf.Cols[:0]
	for _, c := range colIdxs {
		r := &seg.cols[c]
		buf.Cols = append(buf.Cols, ColRun{
			Vals:  r.vals[:seg.n],
			Nulls: r.nulls,
			Tags:  r.tags,
			Srcs:  r.srcs,
			Meta:  r.meta,
			Stats: r.mm,
		})
	}
	if seg.nDead == 0 {
		buf.Sel = nil
		return true
	}
	sel := buf.selBuf[:0]
	for off := 0; off < seg.n; off++ {
		if seg.live[off] {
			sel = append(sel, int32(off))
		}
	}
	buf.selBuf = sel
	buf.Sel = sel
	return true
}
