package storage

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

func custSchema() *schema.Schema {
	return schema.MustNew("customer", []schema.Attr{
		{Name: "co_name", Kind: value.KindString, Required: true},
		{Name: "address", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "creation_time", Kind: value.KindTime}, {Name: "source", Kind: value.KindString}}},
		{Name: "employees", Kind: value.KindInt,
			Indicators: []tag.Indicator{{Name: "creation_time", Kind: value.KindTime}, {Name: "source", Kind: value.KindString}}},
	}, "co_name")
}

func custTuple(name, addr string, emp int64, when time.Time, src string) relation.Tuple {
	tags := tag.NewSet(
		tag.Tag{Indicator: "creation_time", Value: value.Time(when)},
		tag.Tag{Indicator: "source", Value: value.Str(src)},
	)
	return relation.Tuple{Cells: []relation.Cell{
		{V: value.Str(name)},
		{V: value.Str(addr), Tags: tags},
		{V: value.Int(emp), Tags: tags},
	}}
}

var t0 = time.Date(1991, 1, 2, 0, 0, 0, 0, time.UTC)

func TestTableInsertGetUpdateDelete(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	id, err := tbl.Insert(custTuple("Fruit Co", "12 Jay St", 4004, t0, "sales"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got, ok := tbl.Get(id)
	if !ok || got.Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	// Duplicate key rejected.
	if _, err := tbl.Insert(custTuple("Fruit Co", "elsewhere", 1, t0, "x")); err == nil {
		t.Fatal("duplicate key should be rejected")
	}
	// Update.
	upd := custTuple("Fruit Co", "99 New Rd", 4100, t0.AddDate(0, 1, 0), "acct'g")
	if err := tbl.Update(id, upd); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Get(id)
	if got.Cells[1].V.AsString() != "99 New Rd" {
		t.Errorf("update not applied: %v", got)
	}
	// Key change via update.
	moved := custTuple("Fruit Corp", "99 New Rd", 4100, t0, "acct'g")
	if err := tbl.Update(id, moved); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.LookupKey(value.Str("Fruit Co")); ok {
		t.Error("old key should be gone after key-changing update")
	}
	if rid, ok := tbl.LookupKey(value.Str("Fruit Corp")); !ok || rid != id {
		t.Error("new key not found")
	}
	// Delete.
	if err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len after delete = %d", tbl.Len())
	}
	if _, ok := tbl.Get(id); ok {
		t.Error("Get of deleted row should fail")
	}
	if err := tbl.Delete(id); err == nil {
		t.Error("double delete should fail")
	}
	if err := tbl.Update(id, upd); err == nil {
		t.Error("update of dead row should fail")
	}
}

func TestTableStrictValidation(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	// Missing required indicator tags.
	bare := relation.NewTuple(value.Str("X"), value.Str("addr"), value.Int(1))
	if _, err := tbl.Insert(bare); err == nil {
		t.Fatal("strict table must reject untagged cells")
	}
	// Lenient table accepts.
	lenient := NewTable(custSchema(), false)
	if _, err := lenient.Insert(bare); err != nil {
		t.Fatalf("lenient insert failed: %v", err)
	}
	// Wrong arity and wrong kind.
	if _, err := lenient.Insert(relation.NewTuple(value.Str("X"))); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := lenient.Insert(relation.NewTuple(value.Int(1), value.Str("a"), value.Int(2))); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestTableIndexedLookups(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	names := []string{"A", "B", "C", "D", "E", "F"}
	srcs := []string{"sales", "nexis", "sales", "acctg", "nexis", "sales"}
	for i, n := range names {
		_, err := tbl.Insert(custTuple(n, "addr", int64(i*100), t0.AddDate(0, i, 0), srcs[i]))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "employees", Indicator: "source"}, IndexHash); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "employees", Indicator: "creation_time"}, IndexBTree); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "employees"}, IndexBTree); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "employees"}, IndexBTree); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := tbl.CreateIndex(IndexTarget{Attr: "nope"}, IndexHash); err == nil {
		t.Error("index on unknown attribute should fail")
	}
	if got := len(tbl.Indexes()); got != 3 {
		t.Errorf("Indexes() len = %d", got)
	}

	// Equality over an indicator, via hash index.
	ids, err := tbl.LookupEq(IndexTarget{Attr: "employees", Indicator: "source"}, value.Str("sales"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Errorf("source=sales ids = %v", ids)
	}
	// Range over indicator creation_time via btree: first three months.
	ids, err = tbl.LookupRange(IndexTarget{Attr: "employees", Indicator: "creation_time"},
		Incl(value.Time(t0)), Excl(value.Time(t0.AddDate(0, 3, 0))))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Errorf("creation_time range ids = %v", ids)
	}
	// Range over application values.
	ids, err = tbl.LookupRange(IndexTarget{Attr: "employees"}, Incl(value.Int(200)), Incl(value.Int(400)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Errorf("employees range ids = %v", ids)
	}
	// Same lookups must work without indexes (scan fallback).
	plain := NewTable(custSchema(), true)
	for i, n := range names {
		if _, err := plain.Insert(custTuple(n, "addr", int64(i*100), t0.AddDate(0, i, 0), srcs[i])); err != nil {
			t.Fatal(err)
		}
	}
	ids2, err := plain.LookupEq(IndexTarget{Attr: "employees", Indicator: "source"}, value.Str("sales"))
	if err != nil || len(ids2) != 3 {
		t.Fatalf("scan fallback eq = %v, %v", ids2, err)
	}
	ids3, err := plain.LookupRange(IndexTarget{Attr: "employees"}, Incl(value.Int(200)), Incl(value.Int(400)))
	if err != nil || len(ids3) != 3 {
		t.Errorf("scan fallback range = %v, %v", ids3, err)
	}
	// Deleted rows disappear from indexed lookups.
	delID, _ := tbl.LookupKey(value.Str("A"))
	if err := tbl.Delete(delID); err != nil {
		t.Fatal(err)
	}
	ids, _ = tbl.LookupEq(IndexTarget{Attr: "employees", Indicator: "source"}, value.Str("sales"))
	if len(ids) != 2 {
		t.Errorf("after delete source=sales ids = %v", ids)
	}
}

func TestTableScanAndSnapshot(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		if _, err := tbl.Insert(custTuple(name, "addr", int64(i), t0, "s")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	tbl.Scan(func(id RowID, tup relation.Tuple) bool {
		n++
		return true
	})
	if n != 10 {
		t.Errorf("scan visited %d", n)
	}
	n = 0
	tbl.Scan(func(RowID, relation.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early-stop scan visited %d", n)
	}
	snap := tbl.Snapshot()
	if snap.Len() != 10 {
		t.Errorf("snapshot len = %d", snap.Len())
	}
	// Snapshot isolation: mutating the table does not affect the snapshot.
	id, _ := tbl.LookupKey(value.Str("a"))
	if err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 10 {
		t.Error("snapshot aliased live table")
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tbl := NewTable(custSchema(), true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := string(rune('A'+g)) + "-" + string(rune('0'+i%10)) + string(rune('0'+i/10))
				_, err := tbl.Insert(custTuple(name, "addr", int64(i), t0, "s"))
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				tbl.Scan(func(RowID, relation.Tuple) bool { return false })
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 400 {
		t.Errorf("Len = %d, want 400", tbl.Len())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := custSchema()
	tbl, err := c.Create(s, true)
	if err != nil || tbl == nil {
		t.Fatal(err)
	}
	if _, err := c.Create(s, true); err == nil {
		t.Error("duplicate table should fail")
	}
	got, ok := c.Get("customer")
	if !ok || got != tbl {
		t.Error("Get broken")
	}
	if _, ok := c.Get("nope"); ok {
		t.Error("Get of absent table should fail")
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "customer" {
		t.Errorf("Names = %v", names)
	}
	if !c.Drop("customer") || c.Drop("customer") {
		t.Error("Drop semantics broken")
	}
}

func TestLoadFromRelation(t *testing.T) {
	rel := relation.New(custSchema())
	rel.MustAppend(custTuple("X", "a", 1, t0, "s"))
	rel.MustAppend(custTuple("Y", "b", 2, t0, "s"))
	tbl := NewTable(custSchema(), true)
	if err := tbl.Load(rel); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	// Loading again fails on duplicate keys and reports the row.
	if err := tbl.Load(rel); err == nil {
		t.Error("reload should fail on duplicate key")
	}
}
