package storage

import "repro/internal/value"

// HashIndex is an equality index from value.Value keys to row IDs. It
// buckets by the value hash and confirms with value.Equal, so distinct
// values that collide in hash space are still kept apart.
type HashIndex struct {
	buckets map[uint64][]hashEntry
	size    int
}

type hashEntry struct {
	key value.Value
	ids []RowID
}

// NewHashIndex returns an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{buckets: make(map[uint64][]hashEntry)}
}

// Len reports the number of live (key, rowID) entries.
func (h *HashIndex) Len() int { return h.size }

// Insert adds (key, id).
func (h *HashIndex) Insert(key value.Value, id RowID) {
	hv := key.Hash()
	bucket := h.buckets[hv]
	for i := range bucket {
		if value.EqualPtr(&bucket[i].key, &key) {
			bucket[i].ids = append(bucket[i].ids, id)
			h.size++
			return
		}
	}
	h.buckets[hv] = append(bucket, hashEntry{key: key, ids: []RowID{id}})
	h.size++
}

// Delete removes (key, id), reporting whether it was present.
func (h *HashIndex) Delete(key value.Value, id RowID) bool {
	hv := key.Hash()
	bucket := h.buckets[hv]
	for i := range bucket {
		if value.EqualPtr(&bucket[i].key, &key) {
			ids := bucket[i].ids
			for j, got := range ids {
				if got == id {
					bucket[i].ids = append(ids[:j:j], ids[j+1:]...)
					h.size--
					if len(bucket[i].ids) == 0 {
						h.buckets[hv] = append(bucket[:i:i], bucket[i+1:]...)
						if len(h.buckets[hv]) == 0 {
							delete(h.buckets, hv)
						}
					}
					return true
				}
			}
			return false
		}
	}
	return false
}

// Lookup returns the row IDs stored under key (copied).
func (h *HashIndex) Lookup(key value.Value) []RowID {
	for _, e := range h.buckets[key.Hash()] {
		if value.EqualPtr(&e.key, &key) {
			return append([]RowID(nil), e.ids...)
		}
	}
	return nil
}
