package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestPaperTable1Shape(t *testing.T) {
	rel := PaperTable1()
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	r0 := rel.Tuples[0]
	if r0.Cells[0].V.AsString() != "Fruit Co" || r0.Cells[1].V.AsString() != "12 Jay St" || r0.Cells[2].V.AsInt() != 4004 {
		t.Errorf("row 0 = %v", r0)
	}
	r1 := rel.Tuples[1]
	if r1.Cells[0].V.AsString() != "Nut Co" || r1.Cells[2].V.AsInt() != 700 {
		t.Errorf("row 1 = %v", r1)
	}
	// Untagged.
	for _, tup := range rel.Tuples {
		for _, c := range tup.Cells {
			if !c.Tags.IsEmpty() {
				t.Error("Table 1 must be untagged")
			}
		}
	}
	// Renders without tag lines.
	out := relation.Format(rel, false)
	if !strings.Contains(out, "Fruit Co") || strings.Contains(out, "(") {
		t.Errorf("Table 1 render:\n%s", out)
	}
}

func TestPaperTable2Tags(t *testing.T) {
	rel := PaperTable2()
	// 62 Lois Av tagged (10-24-91, acct'g) — the paper's §1.2 example.
	nut := rel.Tuples[1]
	addr := nut.Cells[1]
	ct, ok := addr.Tags.Get("creation_time")
	if !ok || !ct.AsTime().Equal(time.Date(1991, 10, 24, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Nut Co address creation_time = %v, %v", ct, ok)
	}
	src, _ := addr.Tags.Get("source")
	if src.AsString() != "acct'g" {
		t.Errorf("Nut Co address source = %v", src)
	}
	emp := nut.Cells[2]
	if src, _ := emp.Tags.Get("source"); src.AsString() != "estimate" {
		t.Errorf("Nut Co employees source = %v", src)
	}
	fruit := rel.Tuples[0]
	if src, _ := fruit.Cells[2].Tags.Get("source"); src.AsString() != "Nexis" {
		t.Errorf("Fruit Co employees source = %v", src)
	}
	// Rendered form shows the tags (Table 2 shape).
	out := rel.String()
	for _, want := range []string{"Nexis", "estimate", "acct'g", "sales", "1991-10-03"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q:\n%s", want, out)
		}
	}
}

func TestCustomersDeterministicAndScaled(t *testing.T) {
	a := Customers(CustomerConfig{N: 100, Seed: 42})
	b := Customers(CustomerConfig{N: 100, Seed: 42})
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatalf("not deterministic at row %d", i)
		}
	}
	c := Customers(CustomerConfig{N: 100, Seed: 43})
	same := 0
	for i := range a.Tuples {
		if a.Tuples[i].Equal(c.Tuples[i]) {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds should differ")
	}
	// Unique keys.
	seen := map[string]bool{}
	for _, tup := range a.Tuples {
		k := tup.Cells[0].V.AsString()
		if seen[k] {
			t.Errorf("duplicate co_name %q", k)
		}
		seen[k] = true
	}
}

func TestCustomersUntaggedFraction(t *testing.T) {
	rel := Customers(CustomerConfig{N: 1000, Seed: 7, Untagged: 0.3})
	untagged := 0
	for _, tup := range rel.Tuples {
		if tup.Cells[1].Tags.IsEmpty() {
			untagged++
		}
	}
	frac := float64(untagged) / 1000
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("untagged fraction = %.3f, want ~0.3", frac)
	}
}

func TestTradingWorkload(t *testing.T) {
	data := Trading(TradingConfig{Clients: 20, Stocks: 8, Trades: 200, Seed: 5})
	if data.Clients.Len() != 20 || data.Stocks.Len() != 8 || data.Trades.Len() != 200 {
		t.Fatalf("sizes = %d/%d/%d", data.Clients.Len(), data.Stocks.Len(), data.Trades.Len())
	}
	// Every stock price tagged with creation_time + source and polygen
	// source set.
	for _, tup := range data.Stocks.Tuples {
		price := tup.Cells[1]
		if !price.Tags.Has("creation_time") || !price.Tags.Has("source") {
			t.Error("stock price missing tags")
		}
		if len(price.Sources) == 0 {
			t.Error("stock price missing polygen sources")
		}
		report := tup.Cells[2]
		for _, ind := range []string{"analyst_name", "media", "price"} {
			if !report.Tags.Has(ind) {
				t.Errorf("report missing %s", ind)
			}
		}
	}
	// Trades reference existing clients and stocks.
	stockSet := map[string]bool{}
	for _, tup := range data.Stocks.Tuples {
		stockSet[tup.Cells[0].V.AsString()] = true
	}
	for _, tup := range data.Trades.Tuples {
		acct := tup.Cells[0].V.AsInt()
		if acct < 1000 || acct >= 1020 {
			t.Errorf("trade references unknown account %d", acct)
		}
		if !stockSet[tup.Cells[1].V.AsString()] {
			t.Errorf("trade references unknown ticker %s", tup.Cells[1].V)
		}
		if !tup.Cells[3].Tags.Has("entered_by") || !tup.Cells[3].Tags.Has("entry_time") {
			t.Error("trade quantity missing manufacturing tags")
		}
	}
}

func TestAddressesFractions(t *testing.T) {
	rel := Addresses(AddressConfig{N: 4000, Seed: 2, FreshFraction: 0.25, VerifiedFraction: 0.5})
	fresh, verified := 0, 0
	for _, tup := range rel.Tuples {
		c := tup.Cells[1]
		ct, _ := c.Tags.Get("creation_time")
		if Epoch.Sub(ct.AsTime()) < 90*24*time.Hour {
			fresh++
		}
		src, _ := c.Tags.Get("source")
		if src.AsString() == "registry" {
			verified++
			if m, _ := c.Tags.Get("collection_method"); m.AsString() != "double_entry" {
				t.Error("registry rows should be double-entry collected")
			}
		}
	}
	if f := float64(fresh) / 4000; f < 0.2 || f > 0.3 {
		t.Errorf("fresh fraction = %.3f", f)
	}
	if v := float64(verified) / 4000; v < 0.45 || v > 0.55 {
		t.Errorf("verified fraction = %.3f", v)
	}
}

func TestInjectErrors(t *testing.T) {
	rel := Customers(CustomerConfig{N: 300, Seed: 1})
	out, n := InjectErrors(rel, ErrorConfig{Seed: 2, NullRate: 0.1, TypoRate: 0.1, OutlierRate: 0.05, DropTagRate: 0.1})
	if n == 0 {
		t.Fatal("no errors injected")
	}
	if out.Len() != rel.Len() {
		t.Fatal("row count changed")
	}
	// Original untouched.
	for _, tup := range rel.Tuples {
		for _, c := range tup.Cells {
			if c.V.IsNull() && c.Tags.IsEmpty() {
				// generated rows are fully populated and tagged
				t.Fatal("original relation mutated")
			}
		}
	}
	// Count perturbation kinds present.
	nulls, outliers := 0, 0
	for i, tup := range out.Tuples {
		for j, c := range tup.Cells {
			orig := rel.Tuples[i].Cells[j]
			if c.V.IsNull() && !orig.V.IsNull() {
				nulls++
			}
			if c.V.Kind() == value.KindInt && !orig.V.IsNull() && !c.V.IsNull() &&
				c.V.AsInt() == orig.V.AsInt()*100 && orig.V.AsInt() != 0 {
				outliers++
			}
		}
	}
	if nulls == 0 || outliers == 0 {
		t.Errorf("perturbations missing: nulls=%d outliers=%d", nulls, outliers)
	}
	// Determinism.
	out2, n2 := InjectErrors(rel, ErrorConfig{Seed: 2, NullRate: 0.1, TypoRate: 0.1, OutlierRate: 0.05, DropTagRate: 0.1})
	if n != n2 {
		t.Errorf("injection not deterministic: %d vs %d", n, n2)
	}
	for i := range out.Tuples {
		if !out.Tuples[i].Equal(out2.Tuples[i]) {
			t.Fatalf("injection rows differ at %d", i)
		}
	}
}
