package workload

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/server/client"
	"repro/internal/storage/wal"
)

// WALBenchConfig drives the durability-cost comparison behind
// `benchrunner -exp WAL`: the same concurrent batched INSERT stream
// ingested by three servers whose write-ahead logs differ only in fsync
// policy — always (one fsync per commit), group (concurrent commits
// coalesce into one fsync), off (fsync left to the OS).
type WALBenchConfig struct {
	// Rows is the number of INSERT statements per mode. Default 4000.
	Rows int
	// Clients is the number of concurrent connections. Group commit's win
	// is coalescing across them; with one client there is nothing to
	// coalesce. Default 16.
	Clients int
	// Batch is the statements per batch frame (one durable commit each).
	// Default 1: per-statement commits are where fsync policy dominates;
	// larger batches amortize the fsync across more execution and the
	// three policies converge.
	Batch int
	// StartServer boots a durable server whose executor writes through l
	// (serving l.Catalog()) and returns its address plus a stop function.
	// Injected by the caller so this package does not import
	// internal/server, whose executor dependency would cycle with the
	// tests that drive workloads from inside the executor packages.
	StartServer func(l *wal.Log) (addr string, stop func() error, err error)
}

func (c *WALBenchConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 4000
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
}

// WALModeResult is one fsync policy's aggregate, including the log's own
// accounting so the coalescing is visible: in group mode Fsyncs should
// land well under Commits, in always mode they match.
type WALModeResult struct {
	Name        string  `json:"name"`
	Statements  int     `json:"statements"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	StmtsPerSec float64 `json:"stmts_per_sec"`
	Commits     uint64  `json:"commits"`
	Fsyncs      uint64  `json:"fsyncs"`
	// GroupMax is the largest number of commits one fsync covered.
	GroupMax uint64 `json:"group_max"`
	WALBytes uint64 `json:"wal_bytes"`
	Errors   int    `json:"errors"`
}

// WALReport is the machine-readable BENCH_WAL.json payload.
type WALReport struct {
	Rows    int `json:"rows"`
	Clients int `json:"clients"`
	Batch   int `json:"batch"`
	Cores   int `json:"cores"`
	// Modes: fsync-always, fsync-group, fsync-off.
	Modes []WALModeResult `json:"modes"`
	// Speedups are stmts/s ratios against the fsync-always baseline.
	SpeedupGroupVsAlways float64 `json:"speedup_group_vs_always"`
	SpeedupOffVsAlways   float64 `json:"speedup_off_vs_always"`
	Note                 string  `json:"note"`
}

// runWALMode boots a durable server over a fresh log directory, ingests
// cfg.Rows INSERTs from cfg.Clients concurrent batched connections, and
// reports throughput plus the log's commit/fsync accounting.
func runWALMode(cfg WALBenchConfig, name string, mode wal.FsyncMode) (WALModeResult, error) {
	res := WALModeResult{Name: name}
	dir, err := os.MkdirTemp("", "walbench-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Fsync: mode})
	if err != nil {
		return res, err
	}
	addr, stop, err := cfg.StartServer(l)
	if err != nil {
		return res, err
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "workload: wal bench shutdown: %v\n", err)
		}
		if err := l.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "workload: wal bench close: %v\n", err)
		}
	}()

	admin, err := client.Dial(addr)
	if err != nil {
		return res, err
	}
	defer admin.Close()
	if err := pipeTable(admin, "ingest_wal"); err != nil {
		return res, err
	}

	per := cfg.Rows / cfg.Clients
	var wg sync.WaitGroup
	errCounts := make([]int, cfg.Clients)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		lo := w * per
		hi := lo + per
		if w == cfg.Clients-1 {
			hi = cfg.Rows
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			for b := lo; b < hi; b += cfg.Batch {
				be := b + cfg.Batch
				if be > hi {
					be = hi
				}
				qs := make([]string, 0, be-b)
				for i := b; i < be; i++ {
					qs = append(qs, pipeInsert("ingest_wal", i))
				}
				resps, err := cl.ExecBatch(qs)
				if err != nil {
					errs[w] = err
					return
				}
				for _, r := range resps {
					if r.Err != "" {
						errCounts[w]++
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, fmt.Errorf("workload: wal bench %s: %w", name, err)
		}
	}
	n, err := admin.QueryInt(`SELECT COUNT(*) AS n FROM ingest_wal`)
	if err != nil {
		return res, err
	}
	if n != int64(cfg.Rows) {
		return res, fmt.Errorf("workload: wal bench %s ingested %d rows, want %d", name, n, cfg.Rows)
	}

	st := l.Stats()
	res.Statements = cfg.Rows
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	res.StmtsPerSec = float64(cfg.Rows) / elapsed.Seconds()
	res.Commits = st.Commits
	res.Fsyncs = st.Fsyncs
	res.GroupMax = st.GroupMax
	res.WALBytes = st.Bytes
	for _, e := range errCounts {
		res.Errors += e
	}
	return res, nil
}

// RunWALBench ingests the same workload under the three fsync policies
// and reports each policy's throughput and fsync accounting plus the
// group-commit and no-fsync speedups over per-commit fsync.
func RunWALBench(cfg WALBenchConfig) (*WALReport, error) {
	cfg.defaults()
	if cfg.StartServer == nil {
		return nil, fmt.Errorf("workload: wal bench needs a StartServer hook")
	}
	report := &WALReport{
		Rows: cfg.Rows, Clients: cfg.Clients, Batch: cfg.Batch, Cores: runtime.NumCPU()}
	modes := []struct {
		name string
		mode wal.FsyncMode
	}{
		{"fsync-always", wal.FsyncAlways},
		{"fsync-group", wal.FsyncGroup},
		{"fsync-off", wal.FsyncOff},
	}
	for _, m := range modes {
		res, err := runWALMode(cfg, m.name, m.mode)
		if err != nil {
			return nil, err
		}
		report.Modes = append(report.Modes, res)
	}
	base := report.Modes[0].StmtsPerSec
	if base > 0 {
		report.SpeedupGroupVsAlways = report.Modes[1].StmtsPerSec / base
		report.SpeedupOffVsAlways = report.Modes[2].StmtsPerSec / base
	}
	switch {
	case report.SpeedupGroupVsAlways >= 2:
		report.Note = "group commit coalesces concurrent batch commits into shared fsyncs: same durability for acknowledged writes, a fraction of the disk waits"
	case report.SpeedupOffVsAlways < 1.5:
		report.Note = "fsync is nearly free on this filesystem (likely tmpfs or a write-cached container volume), so all three policies converge"
	default:
		report.Note = "group commit beat per-commit fsync but under 2x; too few concurrent committers or a fast fsync path narrows the coalescing window"
	}
	return report, nil
}
