// Package workload builds the synthetic datasets the reproduction runs on:
// the paper's own Table 1/2 customer relation, scaled-up customer data with
// heterogeneous provenance, the Figure 3 trading application, and the §4
// address clearing house — all deterministic under an explicit seed, with
// configurable error injection so inspection and SPC have defects to find.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// Epoch anchors all generated timestamps; chosen to match the paper's
// running example (tags dated 1991, "today" in early 1992).
var Epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// CustomerSchema returns the Table 1/2 schema: company name, address and
// employee count, the latter two tagged with creation time and source.
func CustomerSchema() *schema.Schema {
	inds := []tag.Indicator{
		{Name: "creation_time", Kind: value.KindTime, Doc: "when the value was recorded"},
		{Name: "source", Kind: value.KindString, Doc: "department or service that supplied it"},
	}
	return schema.MustNew("customer", []schema.Attr{
		{Name: "co_name", Kind: value.KindString, Required: true},
		{Name: "address", Kind: value.KindString, Indicators: inds},
		{Name: "employees", Kind: value.KindInt, Indicators: inds},
	}, "co_name")
}

func taggedCell(v value.Value, created time.Time, source string, polygenSource string) relation.Cell {
	return relation.Cell{
		V: v,
		Tags: tag.NewSet(
			tag.Tag{Indicator: "creation_time", Value: value.Time(created)},
			tag.Tag{Indicator: "source", Value: value.Str(source)},
		),
		Sources: tag.NewSources(polygenSource),
	}
}

// PaperTable1 returns exactly the two rows of the paper's Table 1, untagged.
func PaperTable1() *relation.Relation {
	rel := relation.New(CustomerSchema())
	if err := rel.AppendLenient(relation.NewTuple(
		value.Str("Fruit Co"), value.Str("12 Jay St"), value.Int(4004))); err != nil {
		panic(err)
	}
	if err := rel.AppendLenient(relation.NewTuple(
		value.Str("Nut Co"), value.Str("62 Lois Av"), value.Int(700))); err != nil {
		panic(err)
	}
	return rel
}

// PaperTable2 returns exactly the paper's Table 2: the same rows with the
// published cell-level (creation time, source) tags.
func PaperTable2() *relation.Relation {
	rel := relation.New(CustomerSchema())
	d := func(m, day int) time.Time { return time.Date(1991, time.Month(m), day, 0, 0, 0, 0, time.UTC) }
	rel.MustAppend(relation.Tuple{Cells: []relation.Cell{
		{V: value.Str("Fruit Co")},
		taggedCell(value.Str("12 Jay St"), d(1, 2), "sales", "sales"),
		taggedCell(value.Int(4004), d(10, 3), "Nexis", "nexis"),
	}})
	rel.MustAppend(relation.Tuple{Cells: []relation.Cell{
		{V: value.Str("Nut Co")},
		taggedCell(value.Str("62 Lois Av"), d(10, 24), "acct'g", "acctg"),
		taggedCell(value.Int(700), d(10, 9), "estimate", "estimate"),
	}})
	return rel
}

// CustomerConfig scales the customer workload.
type CustomerConfig struct {
	// N is the number of companies.
	N int
	// Seed drives the deterministic generator.
	Seed int64
	// Sources are the departments/services values are attributed to;
	// defaults to the paper's four.
	Sources []string
	// MaxAge bounds how old creation times can be, back from Epoch.
	MaxAge time.Duration
	// Untagged is the fraction of cells left without tags (unknown
	// manufacturing circumstances, §1.2).
	Untagged float64
}

func (c *CustomerConfig) defaults() {
	if len(c.Sources) == 0 {
		c.Sources = []string{"sales", "acct'g", "Nexis", "estimate"}
	}
	if c.MaxAge == 0 {
		c.MaxAge = 365 * 24 * time.Hour
	}
}

var nameParts = struct{ first, second []string }{
	first:  []string{"Fruit", "Nut", "Seed", "Root", "Leaf", "Berry", "Grain", "Vine", "Palm", "Fern", "Moss", "Reed", "Pine", "Oak", "Elm", "Ash"},
	second: []string{"Co", "Corp", "Inc", "Ltd", "Group", "Partners", "Holdings", "Industries"},
}

var streets = []string{"Jay St", "Lois Av", "Main St", "Market St", "Oak Dr", "Hill Rd", "Bay Ct", "Mill Ln", "Park Pl", "Lake Vw"}

// Customers generates n tagged customer rows with heterogeneous sources and
// ages (Premise 1.3: quality differs across instances).
func Customers(cfg CustomerConfig) *relation.Relation {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	rel := relation.New(CustomerSchema())
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("%s %s %d", nameParts.first[r.Intn(len(nameParts.first))],
			nameParts.second[r.Intn(len(nameParts.second))], i)
		addr := fmt.Sprintf("%d %s", 1+r.Intn(999), streets[r.Intn(len(streets))])
		emp := int64(1 + r.Intn(10000))

		mkCell := func(v value.Value) relation.Cell {
			if r.Float64() < cfg.Untagged {
				return relation.Cell{V: v}
			}
			src := cfg.Sources[r.Intn(len(cfg.Sources))]
			created := Epoch.Add(-time.Duration(r.Int63n(int64(cfg.MaxAge))))
			return taggedCell(v, created, src, src)
		}
		tup := relation.Tuple{Cells: []relation.Cell{
			{V: value.Str(name)},
			mkCell(value.Str(addr)),
			mkCell(value.Int(emp)),
		}}
		if err := rel.AppendLenient(tup); err != nil {
			panic(err)
		}
	}
	return rel
}

// ---- Trading workload (Figure 3 application) ----

// TradingConfig scales the trading workload.
type TradingConfig struct {
	Clients int
	Stocks  int
	Trades  int
	Seed    int64
}

// TradingData bundles the three generated relations.
type TradingData struct {
	Clients *relation.Relation
	Stocks  *relation.Relation
	Trades  *relation.Relation
}

var tickers = []string{"IBM", "DEC", "HP", "SUN", "APL", "MSF", "ORC", "INT", "MOT", "TXN", "NCR", "CSC", "XER", "KOD", "GTE", "ATT"}
var feeds = []string{"reuters", "telerate", "knight_ridder", "exchange_direct"}
var analysts = []string{"a_smith", "b_jones", "c_wong", "d_garcia", "e_miller"}
var medias = []string{"ascii", "postscript", "bitmap"}
var collectionMethods = []string{"over_the_phone", "info_service", "double_entry"}

// Trading generates the trading application's data per the compiled quality
// schema: clients (telephone tagged with collection_method), stocks (share
// price tagged with creation_time and source; research report tagged with
// analyst_name, media and price), and trades (tagged with entered_by,
// entry_time, inspection).
func Trading(cfg TradingConfig) TradingData {
	r := rand.New(rand.NewSource(cfg.Seed))

	clientSchema := schema.MustNew("client", []schema.Attr{
		{Name: "account_number", Kind: value.KindInt, Required: true},
		{Name: "name", Kind: value.KindString},
		{Name: "address", Kind: value.KindString},
		{Name: "telephone", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "collection_method", Kind: value.KindString}}},
	}, "account_number")
	clients := relation.New(clientSchema)
	for i := 0; i < cfg.Clients; i++ {
		phone := fmt.Sprintf("617-%03d-%04d", r.Intn(1000), r.Intn(10000))
		method := collectionMethods[r.Intn(len(collectionMethods))]
		clients.MustAppend(relation.Tuple{Cells: []relation.Cell{
			{V: value.Int(int64(1000 + i))},
			{V: value.Str(fmt.Sprintf("Client %d", i))},
			{V: value.Str(fmt.Sprintf("%d %s", 1+r.Intn(999), streets[r.Intn(len(streets))]))},
			{V: value.Str(phone), Tags: tag.NewSet(tag.Tag{Indicator: "collection_method", Value: value.Str(method)})},
		}})
	}

	stockSchema := schema.MustNew("company_stock", []schema.Attr{
		{Name: "ticker_symbol", Kind: value.KindString, Required: true},
		{Name: "share_price", Kind: value.KindFloat,
			Indicators: []tag.Indicator{
				{Name: "creation_time", Kind: value.KindTime},
				{Name: "source", Kind: value.KindString},
			}},
		{Name: "research_report", Kind: value.KindString,
			Indicators: []tag.Indicator{
				{Name: "analyst_name", Kind: value.KindString},
				{Name: "media", Kind: value.KindString},
				{Name: "price", Kind: value.KindFloat},
			}},
	}, "ticker_symbol")
	stocks := relation.New(stockSchema)
	nStocks := cfg.Stocks
	if nStocks > len(tickers) {
		nStocks = len(tickers)
	}
	for i := 0; i < nStocks; i++ {
		feed := feeds[r.Intn(len(feeds))]
		quoted := Epoch.Add(-time.Duration(r.Int63n(int64(72 * time.Hour))))
		priceTags := tag.NewSet(
			tag.Tag{Indicator: "creation_time", Value: value.Time(quoted)},
			tag.Tag{Indicator: "source", Value: value.Str(feed)},
		)
		reportTags := tag.NewSet(
			tag.Tag{Indicator: "analyst_name", Value: value.Str(analysts[r.Intn(len(analysts))])},
			tag.Tag{Indicator: "media", Value: value.Str(medias[r.Intn(len(medias))])},
			tag.Tag{Indicator: "price", Value: value.Float(float64(50 + r.Intn(450)))},
		)
		stocks.MustAppend(relation.Tuple{Cells: []relation.Cell{
			{V: value.Str(tickers[i])},
			{V: value.Float(10 + 190*r.Float64()), Tags: priceTags, Sources: tag.NewSources(feed)},
			{V: value.Str(fmt.Sprintf("report-%s", tickers[i])), Tags: reportTags},
		}})
	}

	tradeSchema := schema.MustNew("trade", []schema.Attr{
		{Name: "client_account_number", Kind: value.KindInt, Required: true},
		{Name: "company_stock_ticker_symbol", Kind: value.KindString, Required: true},
		{Name: "date", Kind: value.KindTime},
		{Name: "quantity", Kind: value.KindInt,
			Indicators: []tag.Indicator{
				{Name: "entered_by", Kind: value.KindString},
				{Name: "entry_time", Kind: value.KindTime},
			}},
		{Name: "trade_price", Kind: value.KindFloat},
	})
	trades := relation.New(tradeSchema)
	enterers := []string{"teller_1", "teller_2", "teller_3", "batch_feed"}
	for i := 0; i < cfg.Trades; i++ {
		when := Epoch.Add(-time.Duration(r.Int63n(int64(90 * 24 * time.Hour))))
		entry := when.Add(time.Duration(r.Int63n(int64(4 * time.Hour))))
		qtyTags := tag.NewSet(
			tag.Tag{Indicator: "entered_by", Value: value.Str(enterers[r.Intn(len(enterers))])},
			tag.Tag{Indicator: "entry_time", Value: value.Time(entry)},
		)
		trades.MustAppend(relation.Tuple{Cells: []relation.Cell{
			{V: value.Int(int64(1000 + r.Intn(maxInt(cfg.Clients, 1))))},
			{V: value.Str(tickers[r.Intn(maxInt(nStocks, 1))])},
			{V: value.Time(when)},
			{V: value.Int(int64(1+r.Intn(100)) * 10), Tags: qtyTags},
			{V: value.Float(10 + 190*r.Float64())},
		}})
	}
	return TradingData{Clients: clients, Stocks: stocks, Trades: trades}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Address clearing house (§4) ----

// AddressSchema is the clearing house's relation: individuals with
// addresses tagged by creation time, source and collection method.
func AddressSchema() *schema.Schema {
	inds := []tag.Indicator{
		{Name: "creation_time", Kind: value.KindTime},
		{Name: "source", Kind: value.KindString},
		{Name: "collection_method", Kind: value.KindString},
	}
	return schema.MustNew("addresses", []schema.Attr{
		{Name: "person", Kind: value.KindString, Required: true},
		{Name: "address", Kind: value.KindString, Indicators: inds},
	}, "person")
}

// AddressConfig scales the clearing-house workload.
type AddressConfig struct {
	N    int
	Seed int64
	// FreshFraction of addresses are recent (< 90 days); the rest age up
	// to 3 years.
	FreshFraction float64
	// VerifiedFraction of addresses come from the registry with
	// double-entry collection; the rest are purchased lists and phone
	// collection.
	VerifiedFraction float64
}

// Addresses generates the clearing-house relation.
func Addresses(cfg AddressConfig) *relation.Relation {
	r := rand.New(rand.NewSource(cfg.Seed))
	rel := relation.New(AddressSchema())
	for i := 0; i < cfg.N; i++ {
		person := fmt.Sprintf("person_%05d", i)
		addr := fmt.Sprintf("%d %s", 1+r.Intn(999), streets[r.Intn(len(streets))])
		var created time.Time
		if r.Float64() < cfg.FreshFraction {
			created = Epoch.Add(-time.Duration(r.Int63n(int64(90 * 24 * time.Hour))))
		} else {
			created = Epoch.Add(-time.Duration(int64(90*24*time.Hour) + r.Int63n(int64(3*365*24*time.Hour))))
		}
		src, method := "purchased_list", "over_the_phone"
		if r.Float64() < cfg.VerifiedFraction {
			src, method = "registry", "double_entry"
		}
		rel.MustAppend(relation.Tuple{Cells: []relation.Cell{
			{V: value.Str(person)},
			{V: value.Str(addr), Tags: tag.NewSet(
				tag.Tag{Indicator: "creation_time", Value: value.Time(created)},
				tag.Tag{Indicator: "source", Value: value.Str(src)},
				tag.Tag{Indicator: "collection_method", Value: value.Str(method)},
			), Sources: tag.NewSources(src)},
		}})
	}
	return rel
}

// ---- Error injection ----

// ErrorConfig injects data-entry defects for inspection and SPC tests.
type ErrorConfig struct {
	Seed int64
	// NullRate blanks application values.
	NullRate float64
	// TypoRate perturbs string values (swap two bytes).
	TypoRate float64
	// OutlierRate multiplies numeric values by 100.
	OutlierRate float64
	// DropTagRate removes all tags from a cell.
	DropTagRate float64
}

// InjectErrors returns a defective copy of the relation (the original is
// untouched) along with the number of cells perturbed.
func InjectErrors(rel *relation.Relation, cfg ErrorConfig) (*relation.Relation, int) {
	r := rand.New(rand.NewSource(cfg.Seed))
	out := relation.New(rel.Schema)
	out.TableTags = rel.TableTags
	n := 0
	for _, t := range rel.Tuples {
		ct := t.Clone()
		for i := range ct.Cells {
			c := ct.Cells[i]
			switch {
			case r.Float64() < cfg.NullRate:
				c.V = value.Null
				n++
			case r.Float64() < cfg.TypoRate && c.V.Kind() == value.KindString && len(c.V.AsString()) > 2:
				s := []byte(c.V.AsString())
				j := r.Intn(len(s) - 1)
				s[j], s[j+1] = s[j+1], s[j]
				c.V = value.Str(string(s))
				n++
			case r.Float64() < cfg.OutlierRate && c.V.Kind() == value.KindInt:
				c.V = value.Int(c.V.AsInt() * 100)
				n++
			case r.Float64() < cfg.OutlierRate && c.V.Kind() == value.KindFloat:
				c.V = value.Float(c.V.AsFloat() * 100)
				n++
			}
			if r.Float64() < cfg.DropTagRate && !c.Tags.IsEmpty() {
				c.Tags = tag.EmptySet
				n++
			}
			ct.Cells[i] = c
		}
		out.Tuples = append(out.Tuples, ct)
	}
	return out, n
}
