package workload

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/storage"
)

// CacheBenchConfig drives the plan-cache comparison behind
// `benchrunner -exp CACHE`: the same hot single-SELECT executed three ways
// over one shared catalog — cold (no cache: lex + parse + resolve + build
// every time), AST-cached (parse skipped, resolution and planning redone),
// and bound-plan-cached (parse and name resolution skipped; the cached
// resolved plan is cloned, bound and executed).
type CacheBenchConfig struct {
	// Rows is the customer table size. Default 20000.
	Rows int
	// Iters is the measured executions per mode. Default 2000.
	Iters int
	// Seed drives the deterministic data generator. Default 17.
	Seed int64
}

func (c *CacheBenchConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 20000
	}
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
}

// CacheBenchMode is one cache configuration under test: a session over the
// shared bench catalog plus an optional probe into its cache counters.
// Sessions are built by the caller so this package stays independent of
// the query layer (whose tests use these workloads).
type CacheBenchMode struct {
	Name string
	Q    Querier
	// CacheHits reports (AST-tier hits, bound-plan-tier hits); nil for the
	// uncached mode.
	CacheHits func() (ast, plan uint64)
}

// CacheModeResult is one mode's aggregate over the hot query.
type CacheModeResult struct {
	Name   string  `json:"name"`
	Iters  int     `json:"iters"`
	QPS    float64 `json:"qps"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	Errors int     `json:"errors"`
	// ASTHits / PlanHits snapshot the mode's cache traffic, proving each
	// mode exercised the tier it claims to measure.
	ASTHits  uint64 `json:"ast_hits"`
	PlanHits uint64 `json:"plan_hits"`
}

// CacheReport is the machine-readable BENCH_CACHE.json payload.
type CacheReport struct {
	Rows  int    `json:"rows"`
	Iters int    `json:"iters"`
	Cores int    `json:"cores"`
	Query string `json:"query"`
	// Modes: cold, ast-cached, plan-cached.
	Modes []CacheModeResult `json:"modes"`
	// Speedups are q/s ratios.
	SpeedupASTVsCold  float64 `json:"speedup_ast_vs_cold"`
	SpeedupPlanVsCold float64 `json:"speedup_plan_vs_cold"`
	SpeedupPlanVsAST  float64 `json:"speedup_plan_vs_ast"`
	Note              string  `json:"note"`
}

// CacheBenchCatalog loads the bench's customer table, hash-indexes the
// lookup column, and returns the catalog with the hot query: an indexed
// point lookup wrapped in enough projection items and conjuncts that the
// per-execution compile cost (what the cache tiers differ on) is visible
// next to the small execution.
func CacheBenchCatalog(cfg CacheBenchConfig) (*storage.Catalog, string, error) {
	cfg.defaults()
	cat := storage.NewCatalog()
	rel := Customers(CustomerConfig{N: cfg.Rows, Seed: cfg.Seed})
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		return nil, "", err
	}
	if err := tbl.Load(rel); err != nil {
		return nil, "", err
	}
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "co_name"}, storage.IndexHash); err != nil {
		return nil, "", err
	}
	target := rel.Tuples[cfg.Rows/2].Cells[0].V.AsString()
	query := fmt.Sprintf(`SELECT co_name AS c, employees AS e, address AS a, `+
		`employees + 1 AS e1, employees * 2 AS e2, `+
		`employees@source AS s1, employees@creation_time AS t1, address@source AS s2 `+
		`FROM customer `+
		`WHERE co_name = '%s' AND employees >= 0 AND co_name LIKE '%% %%' AND employees <= 100000`,
		target)
	return cat, query, nil
}

// RunCacheBench measures the hot query under the given cache modes
// (conventionally cold, ast-cached, plan-cached — in that order, which the
// speedup fields assume).
func RunCacheBench(cfg CacheBenchConfig, query string, modes []CacheBenchMode) (*CacheReport, error) {
	cfg.defaults()
	report := &CacheReport{Rows: cfg.Rows, Iters: cfg.Iters, Cores: runtime.NumCPU(), Query: query}

	for _, m := range modes {
		// Warm: establish the expected result and fill the caches.
		want, err := m.Q.Query(query)
		if err != nil {
			return nil, fmt.Errorf("workload: cache bench %s: %w", m.Name, err)
		}
		if want.Len() != 1 {
			return nil, fmt.Errorf("workload: cache bench %s: %d rows, want 1", m.Name, want.Len())
		}
		expect := want.Tuples[0].Cells[0].V.AsString()
		lats := make([]time.Duration, 0, cfg.Iters)
		errors := 0
		start := time.Now()
		for i := 0; i < cfg.Iters; i++ {
			t0 := time.Now()
			got, err := m.Q.Query(query)
			if err != nil {
				return nil, fmt.Errorf("workload: cache bench %s: %w", m.Name, err)
			}
			lats = append(lats, time.Since(t0))
			if got.Len() != 1 || got.Tuples[0].Cells[0].V.AsString() != expect {
				errors++
			}
		}
		elapsed := time.Since(start)
		dig := latencyDigest(lats)
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		res := CacheModeResult{
			Name:   m.Name,
			Iters:  cfg.Iters,
			QPS:    float64(cfg.Iters) / elapsed.Seconds(),
			P50MS:  ms(dig.Quantile(0.50)),
			P95MS:  ms(dig.Quantile(0.95)),
			P99MS:  ms(dig.Quantile(0.99)),
			MaxMS:  ms(dig.Max),
			Errors: errors,
		}
		if m.CacheHits != nil {
			res.ASTHits, res.PlanHits = m.CacheHits()
		}
		report.Modes = append(report.Modes, res)
	}

	if len(report.Modes) == 3 {
		cold, ast, plan := report.Modes[0].QPS, report.Modes[1].QPS, report.Modes[2].QPS
		if cold > 0 {
			report.SpeedupASTVsCold = ast / cold
			report.SpeedupPlanVsCold = plan / cold
		}
		if ast > 0 {
			report.SpeedupPlanVsAST = plan / ast
		}
	}
	switch {
	case report.SpeedupPlanVsAST > 1:
		report.Note = "bound-plan tier skips name resolution and prepare on top of the AST tier's parse skip; remaining per-hit cost is normalize + clone + bind + execute"
	default:
		report.Note = "bound-plan tier did not beat AST tier on this run; execution cost may dominate at this table size, or the host is noisy"
	}
	return report, nil
}
