package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/server/client"
)

// ServerBenchConfig drives N concurrent client connections against a
// running qqld server: the server-mode workload, measuring the serving
// layer (wire protocol, per-connection sessions, shared plan cache) rather
// than in-process calls.
type ServerBenchConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Clients is the number of concurrent connections. Default 8.
	Clients int
	// Requests is the number of requests each client sends. Default 100.
	Requests int
	// Statements are cycled per request (client c, request i runs
	// Statements[(c+i) % len]). Default: a COUNT(*) over customer, matching
	// ServeCustomers.
	Statements []string
	// Warmup requests per client are executed but not measured; they prime
	// the plan cache and the connection. Default 2.
	Warmup int
}

func (c *ServerBenchConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if len(c.Statements) == 0 {
		c.Statements = []string{`SELECT COUNT(*) AS n FROM customer`}
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 2
	}
}

// ServerBenchResult aggregates a server-mode run.
type ServerBenchResult struct {
	Clients  int
	Requests int // measured requests completed across all clients
	Errors   int
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// String renders the result as one report line.
func (r *ServerBenchResult) String() string {
	return fmt.Sprintf("%d clients, %d requests in %v: %.0f q/s, p50 %v, p95 %v, p99 %v, max %v (%d errors)",
		r.Clients, r.Requests, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond), r.Errors)
}

// RunServerBench opens cfg.Clients connections and has each send
// cfg.Requests requests, reporting throughput and latency percentiles over
// the merged per-request latencies. The first transport error aborts that
// client and is returned; server-side statement errors only increment
// Errors.
func RunServerBench(cfg ServerBenchConfig) (*ServerBenchResult, error) {
	cfg.defaults()
	type clientOut struct {
		lats []time.Duration
		errs int
		err  error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := &outs[c]
			cl, err := client.Dial(cfg.Addr)
			if err != nil {
				out.err = err
				return
			}
			defer cl.Close()
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := cl.Do(cfg.Statements[(c+i)%len(cfg.Statements)]); err != nil {
					out.err = err
					return
				}
			}
			out.lats = make([]time.Duration, 0, cfg.Requests)
			for i := 0; i < cfg.Requests; i++ {
				stmt := cfg.Statements[(c+i)%len(cfg.Statements)]
				t0 := time.Now()
				resp, err := cl.Do(stmt)
				if err != nil {
					out.err = err
					return
				}
				out.lats = append(out.lats, time.Since(t0))
				if resp.Err != "" {
					out.errs++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	res := &ServerBenchResult{Clients: cfg.Clients, Elapsed: elapsed}
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("workload: server bench client %d: %w", i, outs[i].err)
		}
		all = append(all, outs[i].lats...)
		res.Errors += outs[i].errs
	}
	res.Requests = len(all)
	if res.Requests == 0 {
		return res, nil
	}
	dig := latencyDigest(all)
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	res.P50 = dig.Quantile(0.50)
	res.P95 = dig.Quantile(0.95)
	res.P99 = dig.Quantile(0.99)
	res.Max = dig.Max
	return res, nil
}

// ServerStatements returns a mixed read/write statement set over the
// customer table for server-mode benchmarking: point lookups through the
// quality predicate path, a COUNT, and an index-friendly range.
func ServerStatements() []string {
	return []string{
		`SELECT COUNT(*) AS n FROM customer`,
		`SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@source != 'estimate'`,
		`SELECT co_name FROM customer WHERE employees >= 9000 LIMIT 5`,
		`SELECT COUNT(*) AS n FROM customer WITH QUALITY AGE(employees@creation_time) <= d'720h'`,
	}
}
