package workload

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Querier is the query surface the parallel bench drives — satisfied by
// *qql.Session. The bench takes it as an interface so this package does not
// import the query layer (whose tests, in turn, use these workloads).
type Querier interface {
	Query(src string) (*relation.Relation, error)
}

// ParallelBenchConfig drives the PAR experiment: scan-heavy queries over a
// large unindexed customer table, executed serially (parallelism 1) and
// with segment fan-out, to measure what parallel scans buy.
type ParallelBenchConfig struct {
	// Rows is the customer table size. Default 100000.
	Rows int
	// Seed drives the deterministic generator.
	Seed int64
	// Degree records the parallel session's fan-out in the report; 0 means
	// one worker per core.
	Degree int
	// Iters is the number of measured runs per query per mode. Default 20.
	Iters int
	// Warmup runs per query per mode are executed unmeasured. Default 2.
	Warmup int
}

func (c *ParallelBenchConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 100000
	}
	if c.Degree <= 0 {
		c.Degree = runtime.GOMAXPROCS(0)
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
	if c.Warmup <= 0 {
		c.Warmup = 2
	}
}

// ParallelBenchCatalog builds the PAR dataset: a catalog holding one
// Rows-row customer table with no secondary indexes, so every benched query
// takes the heap-scan path.
func ParallelBenchCatalog(cfg ParallelBenchConfig) (*storage.Catalog, error) {
	cfg.defaults()
	cat := storage.NewCatalog()
	rel := Customers(CustomerConfig{N: cfg.Rows, Seed: cfg.Seed})
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		return nil, err
	}
	if err := tbl.Load(rel); err != nil {
		return nil, err
	}
	return cat, nil
}

// LatencySummary aggregates one mode's measured latencies.
type LatencySummary struct {
	QPS  float64 `json:"qps"`
	P50  int64   `json:"p50_us"`
	P95  int64   `json:"p95_us"`
	P99  int64   `json:"p99_us"`
	Mean int64   `json:"mean_us"`
}

// ParallelBenchCase is one query's serial-vs-parallel comparison.
type ParallelBenchCase struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// Rows is the result cardinality (sanity: identical in both modes).
	Rows     int            `json:"result_rows"`
	Serial   LatencySummary `json:"serial"`
	Parallel LatencySummary `json:"parallel"`
	// Speedup is serial p50 / parallel p50.
	Speedup float64 `json:"speedup"`
}

// ParallelBenchReport is the machine-readable PAR result (BENCH_PAR.json).
type ParallelBenchReport struct {
	Rows  int `json:"rows"`
	Cores int `json:"cores"`
	// Degree is the configured fan-out; EffectiveDegree is what the planner
	// actually runs after clamping to the table's segment count (1 = the
	// parallel session degraded to a serial scan — e.g. a one-core default
	// or a table that fits one segment). Speedups are only meaningful when
	// EffectiveDegree > 1.
	Degree          int                 `json:"degree"`
	EffectiveDegree int                 `json:"degree_effective"`
	SegmentSize     int                 `json:"segment_size"`
	Iters           int                 `json:"iters"`
	Cases           []ParallelBenchCase `json:"cases"`
}

// effectiveDegree mirrors the planner's clamp (qql.Session.parallelDegree):
// serial for tables within one segment, otherwise the configured degree
// capped at the segment count.
func effectiveDegree(rows, degree int) int {
	if degree <= 1 || rows <= storage.SegmentSize {
		return 1
	}
	if nSeg := (rows + storage.SegmentSize - 1) / storage.SegmentSize; degree > nSeg {
		return nSeg
	}
	return degree
}

// ParallelBenchQueries is the PAR workload: a pure scan (no predicate —
// fan-out parallelizes the copy alone), an unindexed WHERE filter, and an
// unindexed quality-tag filter (both fused into the scan workers).
func ParallelBenchQueries() []struct{ Name, Q string } {
	return []struct{ Name, Q string }{
		{"full_scan", `SELECT COUNT(*) AS n FROM customer`},
		{"filtered_scan", `SELECT COUNT(*) AS n FROM customer WHERE employees >= 5000`},
		{"quality_filtered_scan", `SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@source != 'estimate'`},
	}
}

// RunParallelBench times each PAR query under the serial and parallel
// sessions (both over the same ParallelBenchCatalog), verifying both modes
// return the same count.
func RunParallelBench(cfg ParallelBenchConfig, serial, parallel Querier) (*ParallelBenchReport, error) {
	cfg.defaults()
	report := &ParallelBenchReport{
		Rows:            cfg.Rows,
		Cores:           runtime.NumCPU(),
		Degree:          cfg.Degree,
		EffectiveDegree: effectiveDegree(cfg.Rows, cfg.Degree),
		SegmentSize:     storage.SegmentSize,
		Iters:           cfg.Iters,
	}
	for _, q := range ParallelBenchQueries() {
		sN, sLat, err := timeQuery(serial, q.Q, cfg.Warmup, cfg.Iters)
		if err != nil {
			return nil, fmt.Errorf("workload: PAR %s serial: %w", q.Name, err)
		}
		pN, pLat, err := timeQuery(parallel, q.Q, cfg.Warmup, cfg.Iters)
		if err != nil {
			return nil, fmt.Errorf("workload: PAR %s parallel: %w", q.Name, err)
		}
		if sN != pN {
			return nil, fmt.Errorf("workload: PAR %s: serial count %d != parallel count %d", q.Name, sN, pN)
		}
		c := ParallelBenchCase{
			Name:     q.Name,
			Query:    q.Q,
			Rows:     int(sN),
			Serial:   summarize(sLat),
			Parallel: summarize(pLat),
		}
		if c.Parallel.P50 > 0 {
			c.Speedup = float64(c.Serial.P50) / float64(c.Parallel.P50)
		}
		report.Cases = append(report.Cases, c)
	}
	return report, nil
}

// timeQuery runs a single-cell COUNT query warmup+iters times, returning
// the count and the measured latencies.
func timeQuery(sess Querier, q string, warmup, iters int) (int64, []time.Duration, error) {
	var n int64
	for i := 0; i < warmup; i++ {
		out, err := sess.Query(q)
		if err != nil {
			return 0, nil, err
		}
		n = out.Tuples[0].Cells[0].V.AsInt()
	}
	lats := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		out, err := sess.Query(q)
		if err != nil {
			return 0, nil, err
		}
		lats = append(lats, time.Since(t0))
		got := out.Tuples[0].Cells[0].V.AsInt()
		if i == 0 {
			n = got
		} else if got != n {
			return 0, nil, fmt.Errorf("unstable count: %d then %d", n, got)
		}
	}
	return n, lats, nil
}

func summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	dig := latencyDigest(lats)
	return LatencySummary{
		QPS:  float64(dig.Count) / dig.Sum.Seconds(),
		P50:  dig.Quantile(0.50).Microseconds(),
		P95:  dig.Quantile(0.95).Microseconds(),
		P99:  dig.Quantile(0.99).Microseconds(),
		Mean: dig.Mean().Microseconds(),
	}
}
