package workload

import (
	"testing"

	"repro/internal/qql"
)

func TestRunParallelBench(t *testing.T) {
	cfg := ParallelBenchConfig{Rows: 2000, Seed: 3, Degree: 4, Iters: 2, Warmup: 1}
	cat, err := ParallelBenchCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(degree int) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(Epoch)
		s.SetParallelism(degree)
		return s
	}
	report, err := RunParallelBench(cfg, mk(1), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if report.Rows != 2000 || report.Degree != 4 || report.SegmentSize <= 0 {
		t.Errorf("report header = %+v", report)
	}
	// 2000 rows fit one segment: the report must admit the parallel
	// session ran serially instead of claiming a ×4 run.
	if report.EffectiveDegree != 1 {
		t.Errorf("EffectiveDegree = %d, want 1 for a single-segment table", report.EffectiveDegree)
	}
	if d := effectiveDegree(3*4096, 8); d != 3 {
		t.Errorf("effectiveDegree(3 segs, 8) = %d", d)
	}
	if d := effectiveDegree(3*4096, 2); d != 2 {
		t.Errorf("effectiveDegree(3 segs, 2) = %d", d)
	}
	if len(report.Cases) != len(ParallelBenchQueries()) {
		t.Fatalf("cases = %d", len(report.Cases))
	}
	for _, c := range report.Cases {
		if c.Rows <= 0 || c.Rows > 2000 {
			t.Errorf("%s rows = %d", c.Name, c.Rows)
		}
		if c.Serial.P50 <= 0 || c.Parallel.P50 <= 0 {
			t.Errorf("%s missing latencies: %+v", c.Name, c)
		}
		if c.Speedup <= 0 {
			t.Errorf("%s speedup = %f", c.Name, c.Speedup)
		}
	}
	// full_scan counts everything.
	if report.Cases[0].Rows != 2000 {
		t.Errorf("full_scan rows = %d", report.Cases[0].Rows)
	}
}
