package workload

import (
	"encoding/json"
	"testing"

	"repro/internal/qql"
)

func TestRunCacheBench(t *testing.T) {
	cfg := CacheBenchConfig{Rows: 2000, Iters: 60}
	cat, query, err := CacheBenchCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkSession := func(cache *qql.PlanCache) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(Epoch)
		if cache != nil {
			s.SetPlanCache(cache)
		}
		return s
	}
	hits := func(c *qql.PlanCache) func() (uint64, uint64) {
		return func() (uint64, uint64) {
			st := c.Stats()
			return st.Hits, st.PlanHits
		}
	}
	astCache := qql.NewPlanCache(64)
	astCache.SetPlanTier(false)
	planCache := qql.NewPlanCache(64)
	report, err := RunCacheBench(cfg, query, []CacheBenchMode{
		{Name: "cold", Q: mkSession(nil)},
		{Name: "ast-cached", Q: mkSession(astCache), CacheHits: hits(astCache)},
		{Name: "plan-cached", Q: mkSession(planCache), CacheHits: hits(planCache)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Modes) != 3 {
		t.Fatalf("modes = %d, want 3", len(report.Modes))
	}
	names := []string{"cold", "ast-cached", "plan-cached"}
	for i, m := range report.Modes {
		if m.Name != names[i] {
			t.Errorf("mode %d = %q, want %q", i, m.Name, names[i])
		}
		if m.Errors != 0 {
			t.Errorf("mode %s: %d wrong results", m.Name, m.Errors)
		}
		if m.QPS <= 0 || m.P50MS <= 0 || m.P99MS < m.P50MS || m.MaxMS < m.P99MS {
			t.Errorf("mode %s: implausible latency profile %+v", m.Name, m)
		}
	}
	// Each cached mode must have exercised exactly its tier.
	if report.Modes[1].ASTHits == 0 {
		t.Errorf("ast-cached mode recorded no AST hits: %+v", report.Modes[1])
	}
	if report.Modes[1].PlanHits != 0 {
		t.Errorf("ast-cached mode hit the plan tier: %+v", report.Modes[1])
	}
	if report.Modes[2].PlanHits == 0 {
		t.Errorf("plan-cached mode recorded no plan hits: %+v", report.Modes[2])
	}
	if report.SpeedupPlanVsAST <= 0 || report.SpeedupASTVsCold <= 0 {
		t.Errorf("speedups unset: %+v", report)
	}
	if report.Note == "" {
		t.Error("empty note")
	}
	if _, err := json.Marshal(report); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}
