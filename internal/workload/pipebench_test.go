package workload

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
)

func TestRunPipelineBench(t *testing.T) {
	srv := server.New(storage.NewCatalog(), server.Config{Addr: "127.0.0.1:0", MaxConns: 16, Now: Epoch})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	report, err := RunPipelineBench(PipelineBenchConfig{
		Addr: srv.Addr().String(), Rows: 120, Depth: 8, Batch: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Modes) != 3 {
		t.Fatalf("modes = %d, want 3", len(report.Modes))
	}
	for _, m := range report.Modes {
		if m.Statements != 120 {
			t.Errorf("%s statements = %d, want 120", m.Name, m.Statements)
		}
		if m.Errors != 0 {
			t.Errorf("%s errors = %d", m.Name, m.Errors)
		}
		if m.StmtsPerSec <= 0 || m.P50MS < 0 || m.P99MS < m.P50MS {
			t.Errorf("%s implausible stats: %+v", m.Name, m)
		}
	}
	if report.Modes[0].Requests != 120 {
		t.Errorf("serial requests = %d, want 120", report.Modes[0].Requests)
	}
	if report.Modes[2].Requests != 4 {
		t.Errorf("batched requests = %d, want 4 (120/30)", report.Modes[2].Requests)
	}
	if report.Note == "" {
		t.Error("report note empty")
	}
	// The report is the BENCH_PIPE.json payload; it must marshal.
	if _, err := json.Marshal(report); err != nil {
		t.Errorf("report not JSON-marshalable: %v", err)
	}
	// The server saw exactly one batch frame per ExecBatch chunk.
	if got := srv.Stats().Batches; got != 4 {
		t.Errorf("server batches = %d, want 4", got)
	}
}
