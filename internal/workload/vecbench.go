package workload

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// VecBenchConfig drives the VEC experiment: the same scan-heavy queries as
// PAR, executed through the row-at-a-time Volcano tier and the vectorized
// tier (interpreted and compiled expressions), all serially, so the
// comparison isolates execution style from parallelism.
type VecBenchConfig struct {
	// Rows is the customer table size. Default 100000.
	Rows int
	// Seed drives the deterministic generator.
	Seed int64
	// Iters is the number of measured runs per query per mode. Default 20.
	Iters int
	// Warmup runs per query per mode are executed unmeasured. Default 2.
	Warmup int
}

func (c *VecBenchConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 100000
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
	if c.Warmup <= 0 {
		c.Warmup = 2
	}
}

// VecBenchCatalog builds the VEC dataset: one Rows-row customer table with
// no secondary indexes, so every benched query takes a heap-scan path,
// plus an emp_dim dimension table (one row per possible employee count,
// banded) that serves as the build side of the join workloads.
func VecBenchCatalog(cfg VecBenchConfig) (*storage.Catalog, error) {
	cfg.defaults()
	cat, err := ParallelBenchCatalog(ParallelBenchConfig{Rows: cfg.Rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dimSchema := schema.MustNew("emp_dim", []schema.Attr{
		{Name: "employees", Kind: value.KindInt, Required: true},
		{Name: "band", Kind: value.KindString},
	}, "employees")
	dim, err := cat.Create(dimSchema, false)
	if err != nil {
		return nil, err
	}
	// Customers generates employees in [1, 10000]; cover the whole range so
	// every probe row matches exactly one build row.
	for e := 1; e <= 10000; e++ {
		if _, err := dim.Insert(relation.NewTuple(
			value.Int(int64(e)), value.Str(fmt.Sprintf("b%02d", e/500)))); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// VecMode is one execution mode's measurements for one query.
type VecMode struct {
	QPS  float64 `json:"qps"`
	P50  int64   `json:"p50_us"`
	P95  int64   `json:"p95_us"`
	P99  int64   `json:"p99_us"`
	Mean int64   `json:"mean_us"`
	// RowsPerSec is table rows scanned per second (table size × q/s) — the
	// vectorized tier's headline number.
	RowsPerSec float64 `json:"rows_per_sec"`
	// ClonesPerQuery is the storage.TupleClones delta per execution: the
	// zero-clone scan paths must report 0 here.
	ClonesPerQuery int64 `json:"clones_per_query"`
}

// VecBenchCase is one query's three-way comparison.
type VecBenchCase struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// Rows is the result cardinality (identical across modes by assertion).
	Rows       int     `json:"result_rows"`
	Scalar     VecMode `json:"scalar"`
	Vectorized VecMode `json:"vectorized"`
	Compiled   VecMode `json:"compiled"`
	// SpeedupVectorized is vectorized q/s over scalar q/s;
	// SpeedupCompiled is vectorized+compiled q/s over scalar q/s.
	SpeedupVectorized float64 `json:"speedup_vectorized"`
	SpeedupCompiled   float64 `json:"speedup_compiled"`
}

// VecBenchReport is the machine-readable VEC result (BENCH_VEC.json).
type VecBenchReport struct {
	Rows      int            `json:"rows"`
	Cores     int            `json:"cores"`
	BatchSize int            `json:"batch_size"`
	Iters     int            `json:"iters"`
	Cases     []VecBenchCase `json:"cases"`
	Note      string         `json:"note"`
}

// VecBenchQueries is the VEC workload: a pure COUNT(*) scan (dispatch and
// clone overhead only), an unindexed WHERE filter, a quality-tag filter,
// a materializing projection, a hash equi-join, grouped aggregation, and
// a join feeding grouped aggregation — the shapes the batch tier routes.
func VecBenchQueries() []struct{ Name, Q string } {
	return []struct{ Name, Q string }{
		{"full_scan", `SELECT COUNT(*) AS n FROM customer`},
		{"filtered_scan", `SELECT COUNT(*) AS n FROM customer WHERE employees >= 5000`},
		{"quality_filtered_scan", `SELECT COUNT(*) AS n FROM customer WITH QUALITY employees@source != 'estimate'`},
		{"projected_scan", `SELECT co_name, employees FROM customer WHERE employees >= 9000`},
		{"hash_join", `SELECT COUNT(*) AS n FROM customer JOIN emp_dim ON customer.employees = emp_dim.employees`},
		{"grouped_agg", `SELECT employees@source AS src, COUNT(*) AS n, SUM(employees) AS s FROM customer GROUP BY employees@source`},
		{"join_grouped_agg", `SELECT band, COUNT(*) AS n FROM customer JOIN emp_dim ON customer.employees = emp_dim.employees GROUP BY band`},
	}
}

// vecTimeQuery measures one query: warmup, then Iters timed runs, tracking
// the result cardinality and the per-run clone-counter delta.
func vecTimeQuery(sess Querier, q string, warmup, iters int) (rows int, clones int64, lats []time.Duration, err error) {
	for i := 0; i < warmup; i++ {
		out, err := sess.Query(q)
		if err != nil {
			return 0, 0, nil, err
		}
		rows = out.Len()
	}
	lats = make([]time.Duration, 0, iters)
	beforeClones := storage.TupleClones()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		out, err := sess.Query(q)
		if err != nil {
			return 0, 0, nil, err
		}
		lats = append(lats, time.Since(t0))
		if i == 0 {
			rows = out.Len()
		} else if out.Len() != rows {
			return 0, 0, nil, fmt.Errorf("unstable cardinality: %d then %d", rows, out.Len())
		}
	}
	clones = (storage.TupleClones() - beforeClones) / int64(iters)
	return rows, clones, lats, nil
}

func vecSummarize(lats []time.Duration, tableRows int, clones int64) VecMode {
	s := summarize(lats)
	return VecMode{
		QPS: s.QPS, P50: s.P50, P95: s.P95, P99: s.P99, Mean: s.Mean,
		RowsPerSec:     s.QPS * float64(tableRows),
		ClonesPerQuery: clones,
	}
}

// RunVecBench times each VEC query under three sessions over one shared
// catalog — scalar (vectorization off), vectorized with interpreted
// expressions, and vectorized with compiled expressions — verifying all
// three return the same cardinality.
func RunVecBench(cfg VecBenchConfig, scalar, vectorized, compiled Querier) (*VecBenchReport, error) {
	cfg.defaults()
	report := &VecBenchReport{
		Rows:      cfg.Rows,
		Cores:     runtime.NumCPU(),
		BatchSize: algebra.DefaultBatchSize,
		Iters:     cfg.Iters,
		Note:      "batch-at-a-time execution amortizes iterator dispatch; compiled predicates drop the per-row AST walk; zero-clone shared segment reads kill copy traffic in both tiers",
	}
	for _, q := range VecBenchQueries() {
		sRows, sClones, sLat, err := vecTimeQuery(scalar, q.Q, cfg.Warmup, cfg.Iters)
		if err != nil {
			return nil, fmt.Errorf("workload: VEC %s scalar: %w", q.Name, err)
		}
		vRows, vClones, vLat, err := vecTimeQuery(vectorized, q.Q, cfg.Warmup, cfg.Iters)
		if err != nil {
			return nil, fmt.Errorf("workload: VEC %s vectorized: %w", q.Name, err)
		}
		cRows, cClones, cLat, err := vecTimeQuery(compiled, q.Q, cfg.Warmup, cfg.Iters)
		if err != nil {
			return nil, fmt.Errorf("workload: VEC %s compiled: %w", q.Name, err)
		}
		if sRows != vRows || sRows != cRows {
			return nil, fmt.Errorf("workload: VEC %s: cardinalities diverge: scalar %d, vectorized %d, compiled %d",
				q.Name, sRows, vRows, cRows)
		}
		c := VecBenchCase{
			Name:       q.Name,
			Query:      q.Q,
			Rows:       sRows,
			Scalar:     vecSummarize(sLat, cfg.Rows, sClones),
			Vectorized: vecSummarize(vLat, cfg.Rows, vClones),
			Compiled:   vecSummarize(cLat, cfg.Rows, cClones),
		}
		if c.Scalar.QPS > 0 {
			c.SpeedupVectorized = c.Vectorized.QPS / c.Scalar.QPS
			c.SpeedupCompiled = c.Compiled.QPS / c.Scalar.QPS
		}
		report.Cases = append(report.Cases, c)
	}
	return report, nil
}
