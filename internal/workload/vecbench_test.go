package workload

import (
	"testing"

	"repro/internal/qql"
)

// TestRunVecBenchSmall is a smoke run of the VEC experiment: all three
// modes agree on every cardinality, speedups are populated, and the scan
// paths report zero clone traffic in both tiers.
func TestRunVecBenchSmall(t *testing.T) {
	cfg := VecBenchConfig{Rows: 3000, Seed: 7, Iters: 3, Warmup: 1}
	cat, err := VecBenchCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vec, compiled bool) *qql.Session {
		s := qql.NewSession(cat)
		s.SetNow(Epoch)
		s.SetParallelism(1)
		s.SetVectorized(vec)
		s.SetCompiledExprs(compiled)
		return s
	}
	report, err := RunVecBench(cfg, mk(false, false), mk(true, false), mk(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != len(VecBenchQueries()) {
		t.Fatalf("report has %d cases, want %d", len(report.Cases), len(VecBenchQueries()))
	}
	for _, c := range report.Cases {
		if c.Scalar.QPS <= 0 || c.Vectorized.QPS <= 0 || c.Compiled.QPS <= 0 {
			t.Errorf("%s: zero q/s in a mode: %+v", c.Name, c)
		}
		if c.SpeedupVectorized <= 0 || c.SpeedupCompiled <= 0 {
			t.Errorf("%s: speedups not populated", c.Name)
		}
		// The zero-clone satellite: no mode clones on the scan paths.
		if c.Scalar.ClonesPerQuery != 0 || c.Vectorized.ClonesPerQuery != 0 || c.Compiled.ClonesPerQuery != 0 {
			t.Errorf("%s: clone traffic: scalar %d, vectorized %d, compiled %d",
				c.Name, c.Scalar.ClonesPerQuery, c.Vectorized.ClonesPerQuery, c.Compiled.ClonesPerQuery)
		}
	}
	if report.Cases[0].Name != "full_scan" || report.Cases[0].Rows != 1 {
		t.Errorf("full_scan case malformed: %+v", report.Cases[0])
	}
}
