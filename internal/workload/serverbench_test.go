package workload_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestRunServerBench(t *testing.T) {
	cat := storage.NewCatalog()
	rel := workload.Customers(workload.CustomerConfig{N: 2000, Seed: 7})
	tbl, err := cat.Create(rel.Schema, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(rel); err != nil {
		t.Fatal(err)
	}
	srv := server.New(cat, server.Config{Addr: "127.0.0.1:0", MaxConns: 32, Now: workload.Epoch})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	res, err := workload.RunServerBench(workload.ServerBenchConfig{
		Addr:       srv.Addr().String(),
		Clients:    4,
		Requests:   25,
		Statements: workload.ServerStatements(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*25 {
		t.Errorf("requests = %d, want 100", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.QPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("implausible latency profile: %+v", res)
	}
	// Identical statement texts across clients: the shared cache must hit.
	if st := srv.Cache().Stats(); st.Hits+st.PlanHits == 0 {
		t.Errorf("plan cache hits = 0, stats %+v", st)
	}
	if res.String() == "" {
		t.Error("empty report line")
	}
}
