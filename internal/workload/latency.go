package workload

import (
	"time"

	"repro/internal/metrics"
)

// latencyDigest folds a latency sample into the fixed-bucket histogram from
// internal/metrics — the same digest qqld exports at /metrics — replacing
// the per-bench sort-and-index percentile code. Bucket resolution is ~9%
// (8 buckets per octave), ample for benchmark reporting; quantiles are
// clamped to the exact observed min/max, and Max/Mean are exact.
func latencyDigest(lats []time.Duration) metrics.HistSnapshot {
	h := metrics.NewHistogram()
	for _, d := range lats {
		h.Observe(d)
	}
	return h.Snapshot()
}
