package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage/wal"
)

// startWALServer is the StartServer hook for tests: an in-process server
// writing through the given log.
func startWALServer(l *wal.Log) (string, func() error, error) {
	srv := server.New(l.Catalog(), server.Config{
		Addr: "127.0.0.1:0", MaxConns: 64, Now: Epoch, WAL: l})
	if err := srv.Listen(); err != nil {
		return "", nil, err
	}
	go srv.Serve()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return srv.Addr().String(), stop, nil
}

// TestWALBenchSmoke runs a miniature WAL bench end to end: three durable
// servers, concurrent batched ingest, verified row counts, and sane
// commit/fsync accounting per policy.
func TestWALBenchSmoke(t *testing.T) {
	report, err := RunWALBench(WALBenchConfig{
		Rows: 200, Clients: 4, Batch: 10, StartServer: startWALServer})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Modes) != 3 {
		t.Fatalf("want 3 modes, got %d", len(report.Modes))
	}
	for _, m := range report.Modes {
		if m.Statements != 200 || m.Errors != 0 {
			t.Fatalf("%s: statements=%d errors=%d", m.Name, m.Statements, m.Errors)
		}
		if m.Commits == 0 || m.WALBytes == 0 {
			t.Fatalf("%s: no commit accounting: %+v", m.Name, m)
		}
	}
	always, group := report.Modes[0], report.Modes[1]
	// Per-commit fsync means at least one fsync per commit; group commit
	// must never exceed that.
	if always.Fsyncs < always.Commits {
		t.Fatalf("fsync-always did %d fsyncs for %d commits", always.Fsyncs, always.Commits)
	}
	if group.Fsyncs > always.Fsyncs {
		t.Fatalf("group mode fsynced more (%d) than always mode (%d)", group.Fsyncs, always.Fsyncs)
	}
	if report.SpeedupGroupVsAlways <= 0 || report.SpeedupOffVsAlways <= 0 {
		t.Fatalf("speedups not computed: %+v", report)
	}
}
