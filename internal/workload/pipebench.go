package workload

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/server/client"
)

// PipelineBenchConfig drives the ingest-path comparison behind
// `benchrunner -exp PIPE`: the same INSERT stream shipped three ways over
// one connection each — wire v1 serial (one request, one round-trip), wire
// v2 pipelined (Depth requests in flight, binary encoding), and wire v2
// batched (Batch statements per frame).
type PipelineBenchConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Rows is the number of INSERT statements per mode. Default 5000.
	Rows int
	// Depth is the pipelined mode's in-flight window. Default 16.
	Depth int
	// Batch is the statements per ExecBatch frame. Default 50.
	Batch int
}

func (c *PipelineBenchConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 5000
	}
	if c.Depth <= 0 {
		c.Depth = 16
	}
	if c.Batch <= 0 {
		c.Batch = 50
	}
}

// PipeModeResult is one mode's aggregate. Latency percentiles are per
// request: a statement for the serial and pipelined modes, a whole batch
// frame for the batched mode.
type PipeModeResult struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	Statements int     `json:"statements"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// StmtsPerSec is the ingest throughput: statements / elapsed.
	StmtsPerSec float64 `json:"stmts_per_sec"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	Errors      int     `json:"errors"`
}

// PipeReport is the machine-readable BENCH_PIPE.json payload.
type PipeReport struct {
	Rows  int `json:"rows"`
	Depth int `json:"depth"`
	Batch int `json:"batch"`
	Cores int `json:"cores"`
	// Modes: v1-serial, v2-pipelined, v2-batched.
	Modes []PipeModeResult `json:"modes"`
	// Speedups are q/s ratios against the v1-serial baseline.
	SpeedupPipelined float64 `json:"speedup_pipelined"`
	SpeedupBatched   float64 `json:"speedup_batched"`
	// Note records why the numbers look the way they do (e.g. a
	// single-core container blunting the pipelining win).
	Note string `json:"note"`
}

// pipeTable creates one mode's private ingest table.
func pipeTable(cl *client.Client, tbl string) error {
	_, err := cl.Exec(fmt.Sprintf(`CREATE TABLE %s (
		id string REQUIRED,
		n int,
		note string QUALITY (source string)
	) KEY (id) STRICT`, tbl))
	return err
}

func pipeInsert(tbl string, i int) string {
	return fmt.Sprintf(`INSERT INTO %s VALUES ('r%07d', %d, 'x' @ {source: 'bench'})`, tbl, i, i)
}

func pipeMode(name string, lats []time.Duration, statements, errors int, elapsed time.Duration) PipeModeResult {
	dig := latencyDigest(lats)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	res := PipeModeResult{
		Name:        name,
		Requests:    len(lats),
		Statements:  statements,
		ElapsedMS:   ms(elapsed),
		StmtsPerSec: float64(statements) / elapsed.Seconds(),
		Errors:      errors,
	}
	if len(lats) > 0 {
		res.P50MS = ms(dig.Quantile(0.50))
		res.P95MS = ms(dig.Quantile(0.95))
		res.P99MS = ms(dig.Quantile(0.99))
		res.MaxMS = ms(dig.Max)
	}
	return res
}

// RunPipelineBench runs the three ingest modes against a running server,
// verifying row counts after each, and reports per-mode throughput and
// latency percentiles plus the speedups over the serial baseline.
func RunPipelineBench(cfg PipelineBenchConfig) (*PipeReport, error) {
	cfg.defaults()
	report := &PipeReport{Rows: cfg.Rows, Depth: cfg.Depth, Batch: cfg.Batch, Cores: runtime.NumCPU()}

	verify := func(cl *client.Client, tbl string) error {
		n, err := cl.QueryInt(fmt.Sprintf(`SELECT COUNT(*) AS n FROM %s`, tbl))
		if err != nil {
			return err
		}
		if n != int64(cfg.Rows) {
			return fmt.Errorf("workload: pipe bench %s holds %d rows, want %d", tbl, n, cfg.Rows)
		}
		return nil
	}

	// Mode 1: wire v1, one synchronous round-trip per INSERT.
	{
		cl, err := client.DialOptions(cfg.Addr, client.Options{Version: 1})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := pipeTable(cl, "ingest_v1"); err != nil {
			return nil, err
		}
		lats := make([]time.Duration, 0, cfg.Rows)
		errs := 0
		start := time.Now()
		for i := 0; i < cfg.Rows; i++ {
			t0 := time.Now()
			resp, err := cl.Do(pipeInsert("ingest_v1", i))
			if err != nil {
				return nil, fmt.Errorf("workload: pipe bench v1-serial: %w", err)
			}
			lats = append(lats, time.Since(t0))
			if resp.Err != "" {
				errs++
			}
		}
		elapsed := time.Since(start)
		if err := verify(cl, "ingest_v1"); err != nil {
			return nil, err
		}
		report.Modes = append(report.Modes, pipeMode("v1-serial", lats, cfg.Rows, errs, elapsed))
	}

	// Mode 2: wire v2 binary, Depth requests pipelined on one socket.
	{
		cl, err := client.DialOptions(cfg.Addr, client.Options{MaxInFlight: cfg.Depth})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := pipeTable(cl, "ingest_pipe"); err != nil {
			return nil, err
		}
		type tracked struct {
			p  *client.Pending
			t0 time.Time
		}
		lats := make([]time.Duration, 0, cfg.Rows)
		errs := 0
		window := make([]tracked, 0, cfg.Depth)
		drain := func() error {
			tr := window[0]
			window = window[1:]
			resp, err := tr.p.Wait()
			if err != nil {
				return err
			}
			lats = append(lats, time.Since(tr.t0))
			if resp.Err != "" {
				errs++
			}
			return nil
		}
		start := time.Now()
		for i := 0; i < cfg.Rows; i++ {
			if len(window) == cfg.Depth {
				if err := drain(); err != nil {
					return nil, fmt.Errorf("workload: pipe bench v2-pipelined: %w", err)
				}
			}
			t0 := time.Now()
			p, err := cl.DoAsync(pipeInsert("ingest_pipe", i))
			if err != nil {
				return nil, fmt.Errorf("workload: pipe bench v2-pipelined: %w", err)
			}
			window = append(window, tracked{p: p, t0: t0})
		}
		for len(window) > 0 {
			if err := drain(); err != nil {
				return nil, fmt.Errorf("workload: pipe bench v2-pipelined: %w", err)
			}
		}
		elapsed := time.Since(start)
		if err := verify(cl, "ingest_pipe"); err != nil {
			return nil, err
		}
		report.Modes = append(report.Modes, pipeMode("v2-pipelined", lats, cfg.Rows, errs, elapsed))
	}

	// Mode 3: wire v2 binary, Batch statements per frame.
	{
		cl, err := client.DialOptions(cfg.Addr, client.Options{})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := pipeTable(cl, "ingest_batch"); err != nil {
			return nil, err
		}
		lats := make([]time.Duration, 0, cfg.Rows/cfg.Batch+1)
		errs := 0
		start := time.Now()
		for lo := 0; lo < cfg.Rows; lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > cfg.Rows {
				hi = cfg.Rows
			}
			qs := make([]string, 0, hi-lo)
			for i := lo; i < hi; i++ {
				qs = append(qs, pipeInsert("ingest_batch", i))
			}
			t0 := time.Now()
			resps, err := cl.ExecBatch(qs)
			if err != nil {
				return nil, fmt.Errorf("workload: pipe bench v2-batched: %w", err)
			}
			lats = append(lats, time.Since(t0))
			for _, r := range resps {
				if r.Err != "" {
					errs++
				}
			}
		}
		elapsed := time.Since(start)
		if err := verify(cl, "ingest_batch"); err != nil {
			return nil, err
		}
		report.Modes = append(report.Modes, pipeMode("v2-batched", lats, cfg.Rows, errs, elapsed))
	}

	base := report.Modes[0].StmtsPerSec
	if base > 0 {
		report.SpeedupPipelined = report.Modes[1].StmtsPerSec / base
		report.SpeedupBatched = report.Modes[2].StmtsPerSec / base
	}
	switch {
	case report.SpeedupPipelined > 1 && report.SpeedupBatched > 1:
		report.Note = "pipelining removes the per-statement round-trip wait; batching additionally amortizes framing and flushes"
	case report.Cores <= 1:
		report.Note = fmt.Sprintf("speedups blunted on this host: %d schedulable core(s), so client, server reader and executor time-slice instead of overlapping", report.Cores)
	default:
		report.Note = "pipelined/batched q/s did not beat serial on this run; loopback round-trips are cheap and the catalog write lock serializes inserts"
	}
	return report, nil
}
