package inspect

import (
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func peopleSchema() *schema.Schema {
	return schema.MustNew("people", []schema.Attr{
		{Name: "name", Kind: value.KindString},
		{Name: "age", Kind: value.KindInt},
		{Name: "phone", Kind: value.KindString},
	})
}

func TestRules(t *testing.T) {
	s := peopleSchema()
	ins := &Inspector{Rules: []Rule{
		NotNull{Attr: "name"},
		Range{Attr: "age", Min: value.Int(0), Max: value.Int(120)},
		Pattern{Attr: "phone", Like: "___-____"},
		CrossField{RuleName: "adult_has_phone", Pred: func(sc *schema.Schema, tp relation.Tuple) string {
			age := tp.Cells[1].V
			phone := tp.Cells[2].V
			if !age.IsNull() && age.AsInt() >= 18 && phone.IsNull() {
				return "adult without phone"
			}
			return ""
		}},
	}}
	good := relation.NewTuple(value.Str("Ann"), value.Int(30), value.Str("555-1234"))
	if vs := ins.CheckTuple(s, good); len(vs) != 0 {
		t.Errorf("good tuple violations: %v", vs)
	}
	bad := relation.NewTuple(value.Null, value.Int(200), value.Str("bogus"))
	vs := ins.CheckTuple(s, bad)
	rules := map[string]bool{}
	for _, v := range vs {
		rules[v.Rule] = true
	}
	for _, want := range []string{"not_null", "range", "pattern"} {
		if !rules[want] {
			t.Errorf("missing violation %s in %v", want, vs)
		}
	}
	adult := relation.NewTuple(value.Str("Bob"), value.Int(40), value.Null)
	vs = ins.CheckTuple(s, adult)
	if len(vs) != 1 || vs[0].Rule != "adult_has_phone" {
		t.Errorf("cross-field violations: %v", vs)
	}
	// Below-range value.
	low := relation.NewTuple(value.Str("Kid"), value.Int(-1), value.Str("555-0000"))
	vs = ins.CheckTuple(s, low)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "below") {
		t.Errorf("below-range violations: %v", vs)
	}
	// Unknown attribute in a rule reports instead of panicking.
	ghost := &Inspector{Rules: []Rule{NotNull{Attr: "ghost"}}}
	if vs := ghost.CheckTuple(s, good); len(vs) != 1 || vs[0].Detail != "unknown attribute" {
		t.Errorf("ghost rule violations: %v", vs)
	}
}

func TestRequireTag(t *testing.T) {
	rel := workload.PaperTable2()
	ins := &Inspector{Rules: []Rule{
		RequireTag{Attr: "address", Indicator: "creation_time"},
		RequireTag{Attr: "employees", Indicator: "source"},
	}}
	res := ins.InspectRelation(rel)
	if res.Defective != 0 {
		t.Errorf("paper table should be fully tagged: %v", res)
	}
	// Strip tags and re-inspect.
	broken, n := workload.InjectErrors(rel, workload.ErrorConfig{Seed: 1, DropTagRate: 1.0})
	if n == 0 {
		t.Fatal("injection did nothing")
	}
	res = ins.InspectRelation(broken)
	if res.Defective != 2 {
		t.Errorf("defective = %d, want 2", res.Defective)
	}
	if res.DefectRate() != 1.0 {
		t.Errorf("defect rate = %f", res.DefectRate())
	}
}

func TestInspectRelationSummary(t *testing.T) {
	rel := workload.Customers(workload.CustomerConfig{N: 500, Seed: 9})
	defective, _ := workload.InjectErrors(rel, workload.ErrorConfig{Seed: 10, NullRate: 0.05})
	ins := &Inspector{Rules: []Rule{NotNull{Attr: "address"}, NotNull{Attr: "employees"}}}
	res := ins.InspectRelation(defective)
	if res.Total != 500 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Defective == 0 || res.DefectRate() < 0.02 || res.DefectRate() > 0.25 {
		t.Errorf("defect rate = %.3f, expected around 2*5%%", res.DefectRate())
	}
	out := res.String()
	if !strings.Contains(out, "not_null") || !strings.Contains(out, "defective") {
		t.Errorf("summary = %q", out)
	}
	// Violations point at real rows.
	for _, rv := range res.Violations {
		if rv.Row < 0 || rv.Row >= res.Total {
			t.Errorf("violation row out of range: %d", rv.Row)
		}
	}
}

func TestDoubleEntry(t *testing.T) {
	a := workload.Customers(workload.CustomerConfig{N: 200, Seed: 33})
	// Second entry of the same data with typos.
	b, n := workload.InjectErrors(a, workload.ErrorConfig{Seed: 34, TypoRate: 0.05})
	if n == 0 {
		t.Fatal("no typos injected")
	}
	res, err := DoubleEntry(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 200 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.Mismatched == 0 || res.Mismatched > 60 {
		t.Errorf("mismatched = %d, want roughly 200*typo exposure", res.Mismatched)
	}
	for _, m := range res.Mismatches {
		if m.Attr == "" {
			t.Errorf("in-range rows should carry attr names: %+v", m)
		}
	}
	// Identical entries: clean.
	res, _ = DoubleEntry(a, a)
	if res.Mismatched != 0 {
		t.Errorf("self comparison mismatched = %d", res.Mismatched)
	}
	// Length mismatch counts missing rows.
	short := relation.New(a.Schema)
	short.Tuples = a.Tuples[:100]
	res, _ = DoubleEntry(a, short)
	if res.Mismatched != 100 {
		t.Errorf("missing-row mismatches = %d", res.Mismatched)
	}
	// Schema mismatch.
	other := relation.New(peopleSchema())
	if _, err := DoubleEntry(a, other); err == nil {
		t.Error("different schemas should fail")
	}
}

func TestCertRegistry(t *testing.T) {
	r := NewCertRegistry()
	now := workload.Epoch
	r.Add(Certificate{Subject: "customer.address", CertifiedBy: "admin",
		At: now.Add(-time.Hour), Expires: now.Add(24 * time.Hour), Note: "spot check"})
	r.Add(Certificate{Subject: "customer.employees", CertifiedBy: "admin",
		At: now.Add(-48 * time.Hour), Expires: now.Add(-24 * time.Hour)})
	if !r.Valid("customer.address", now) {
		t.Error("fresh certificate should be valid")
	}
	if r.Valid("customer.employees", now) {
		t.Error("expired certificate should be invalid")
	}
	if r.Valid("ghost", now) {
		t.Error("unknown subject should be invalid")
	}
	exp := r.Expiring(now, 48*time.Hour)
	if len(exp) != 1 || exp[0] != "customer.address" {
		t.Errorf("expiring = %v", exp)
	}
	// A renewal pushes the subject out of the expiring window.
	r.Add(Certificate{Subject: "customer.address", CertifiedBy: "admin",
		At: now, Expires: now.Add(30 * 24 * time.Hour)})
	if got := r.Expiring(now, 48*time.Hour); len(got) != 0 {
		t.Errorf("renewed subject still expiring: %v", got)
	}
}

func TestXBarChart(t *testing.T) {
	c, err := NewXBarChart(10, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// In-control subgroups alternating around the center so the run
	// rule stays quiet.
	for i := 0; i < 10; i++ {
		sub := []float64{9.5, 10.2, 10.1, 9.9} // mean 9.925, below center
		if i%2 == 1 {
			sub = []float64{10.5, 9.8, 9.9, 10.1} // mean 10.075, above
		}
		p, err := c.AddSubgroup(sub)
		if err != nil {
			t.Fatal(err)
		}
		if p.OutOfControl {
			t.Errorf("in-control point flagged: %+v", p)
		}
	}
	// A shifted subgroup beyond 3 sigma (limits: 10 +- 3*2/2 = [7,13]).
	p, _ := c.AddSubgroup([]float64{14, 15, 14.5, 14.2})
	if !p.OutOfControl || p.Rule != "beyond_3_sigma" {
		t.Errorf("shift not detected: %+v", p)
	}
	// Wrong subgroup size.
	if _, err := c.AddSubgroup([]float64{1, 2}); err == nil {
		t.Error("wrong subgroup size should fail")
	}
	if _, err := NewXBarChart(0, -1, 4); err == nil {
		t.Error("negative sigma should fail")
	}
	if len(c.OutOfControl()) != 1 {
		t.Errorf("out-of-control points = %d", len(c.OutOfControl()))
	}
	if !strings.Contains(c.Render(), "beyond_3_sigma") {
		t.Error("render should flag violations")
	}
}

func TestXBarRunRule(t *testing.T) {
	c, _ := NewXBarChart(10, 2, 4)
	// Eight consecutive subgroups slightly above center: run rule fires.
	var last Point
	for i := 0; i < 8; i++ {
		last, _ = c.AddSubgroup([]float64{10.5, 10.4, 10.6, 10.5})
	}
	if !last.OutOfControl || last.Rule != "run_of_8" {
		t.Errorf("run rule not detected: %+v", last)
	}
	// A balanced point resets the run.
	c2, _ := NewXBarChart(10, 2, 4)
	for i := 0; i < 7; i++ {
		c2.AddSubgroup([]float64{10.5, 10.5, 10.5, 10.5})
	}
	c2.AddSubgroup([]float64{9.5, 9.5, 9.5, 9.5}) // below center: run resets
	p, _ := c2.AddSubgroup([]float64{10.5, 10.5, 10.5, 10.5})
	if p.OutOfControl {
		t.Errorf("reset run incorrectly flagged: %+v", p)
	}
}

func TestPChart(t *testing.T) {
	c, err := NewPChart(0.05, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.LCL <= 0 || c.LCL >= c.Center {
		t.Errorf("LCL = %f, want in (0, center)", c.LCL)
	}
	// With a low defect rate the LCL floors at zero.
	if lo, _ := NewPChart(0.01, 50); lo.LCL != 0 {
		t.Errorf("low-rate LCL should floor at 0, got %f", lo.LCL)
	}
	// In-control samples at the process defect rate.
	for _, d := range []int{10, 8, 12, 9, 11} {
		p, err := c.AddSample(d)
		if err != nil {
			t.Fatal(err)
		}
		if p.OutOfControl {
			t.Errorf("in-control sample flagged: %+v", p)
		}
	}
	// A defect burst: 30/200 = 0.15 > UCL = 0.05+3*sqrt(.05*.95/200) ~ 0.096.
	p, _ := c.AddSample(30)
	if !p.OutOfControl {
		t.Errorf("burst not detected: %+v (UCL %f)", p, c.UCL)
	}
	if _, err := c.AddSample(-1); err == nil {
		t.Error("negative defectives should fail")
	}
	if _, err := c.AddSample(500); err == nil {
		t.Error("defectives beyond sample should fail")
	}
	if _, err := NewPChart(1.5, 10); err == nil {
		t.Error("pBar > 1 should fail")
	}
}

func TestPChartDetectsInjectedBurst(t *testing.T) {
	// End-to-end: inspection defect rates charted; an error-injection
	// burst must go out of control.
	base := workload.Customers(workload.CustomerConfig{N: 200, Seed: 77})
	ins := &Inspector{Rules: []Rule{NotNull{Attr: "address"}, NotNull{Attr: "employees"}}}
	chart, _ := NewPChart(0.02, 200)
	sawOOC := false
	for sample := 0; sample < 12; sample++ {
		rate := 0.01
		if sample == 8 { // burst
			rate = 0.2
		}
		batch, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: int64(sample), NullRate: rate})
		res := ins.InspectRelation(batch)
		p, err := chart.AddSample(res.Defective)
		if err != nil {
			t.Fatal(err)
		}
		if p.OutOfControl && sample == 8 {
			sawOOC = true
		}
		if p.OutOfControl && p.Rule == "beyond_3_sigma" && sample != 8 {
			t.Errorf("false alarm at sample %d: %+v", sample, p)
		}
	}
	if !sawOOC {
		t.Error("burst at sample 8 not detected")
	}
}

func TestEstimateMeanSigma(t *testing.T) {
	m, s := EstimateMeanSigma([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("mean/sigma = %f/%f, want 5/2", m, s)
	}
	m, s = EstimateMeanSigma(nil)
	if m != 0 || s != 0 {
		t.Errorf("empty estimate = %f/%f", m, s)
	}
}
