package inspect

import (
	"fmt"
	"math"
	"strings"
)

// Statistical process control for the data manufacturing process. The paper
// (§4) lists "statistical process control" among the administrator's
// specifications; the charts here are the Shewhart charts its references
// build on (Shewhart 1925; Deming 1982): the x̄ chart for continuous
// measurements and the p chart for defect fractions, with 3σ control
// limits and the basic Western Electric run rules.

// Point is one charted sample.
type Point struct {
	// Index is the sample number.
	Index int
	// Value is the sample statistic (subgroup mean for XBar, defect
	// fraction for P).
	Value float64
	// OutOfControl is set when the point violates a control rule.
	OutOfControl bool
	// Rule names the violated rule ("beyond_3_sigma", "run_of_8").
	Rule string
}

// Chart is a control chart with fixed limits, fed one sample at a time.
type Chart struct {
	// Center is the center line; UCL/LCL the control limits.
	Center, UCL, LCL float64
	// Points are the charted samples.
	Points []Point
	// runSide tracks the current run length on one side of center:
	// positive counts above, negative below.
	runSide int
}

// runLength is the Western Electric "run of 8 on one side" rule bound.
const runLength = 8

// addPoint applies the control rules and appends the point.
func (c *Chart) addPoint(v float64) Point {
	p := Point{Index: len(c.Points) + 1, Value: v}
	switch {
	case v > c.UCL || v < c.LCL:
		p.OutOfControl = true
		p.Rule = "beyond_3_sigma"
	}
	if v > c.Center {
		if c.runSide > 0 {
			c.runSide++
		} else {
			c.runSide = 1
		}
	} else if v < c.Center {
		if c.runSide < 0 {
			c.runSide--
		} else {
			c.runSide = -1
		}
	} else {
		c.runSide = 0
	}
	if !p.OutOfControl && (c.runSide >= runLength || c.runSide <= -runLength) {
		p.OutOfControl = true
		p.Rule = "run_of_8"
	}
	c.Points = append(c.Points, p)
	return p
}

// OutOfControl lists the out-of-control points.
func (c *Chart) OutOfControl() []Point {
	var out []Point
	for _, p := range c.Points {
		if p.OutOfControl {
			out = append(out, p)
		}
	}
	return out
}

// Render draws a compact text control chart.
func (c *Chart) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "center=%.4f UCL=%.4f LCL=%.4f\n", c.Center, c.UCL, c.LCL)
	for _, p := range c.Points {
		marker := " "
		if p.OutOfControl {
			marker = "!"
		}
		fmt.Fprintf(&b, "%s %3d %.4f", marker, p.Index, p.Value)
		if p.Rule != "" {
			fmt.Fprintf(&b, " (%s)", p.Rule)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// XBarChart monitors subgroup means of a continuous measurement.
type XBarChart struct {
	Chart
	subgroup int
	sigma    float64
}

// NewXBarChart calibrates an x̄ chart from the process mean and standard
// deviation of individual measurements and the subgroup size: limits are
// mean ± 3σ/√n.
func NewXBarChart(mean, sigma float64, subgroup int) (*XBarChart, error) {
	if sigma < 0 || subgroup < 1 {
		return nil, fmt.Errorf("inspect: x-bar chart needs sigma >= 0 and subgroup >= 1")
	}
	se := sigma / math.Sqrt(float64(subgroup))
	return &XBarChart{
		Chart:    Chart{Center: mean, UCL: mean + 3*se, LCL: mean - 3*se},
		subgroup: subgroup,
		sigma:    sigma,
	}, nil
}

// AddSubgroup charts the mean of one subgroup of measurements. The subgroup
// size must match the calibration.
func (c *XBarChart) AddSubgroup(measurements []float64) (Point, error) {
	if len(measurements) != c.subgroup {
		return Point{}, fmt.Errorf("inspect: subgroup size %d, calibrated for %d", len(measurements), c.subgroup)
	}
	sum := 0.0
	for _, m := range measurements {
		sum += m
	}
	return c.addPoint(sum / float64(len(measurements))), nil
}

// PChart monitors defect fractions of fixed-size samples — the natural
// chart for data-entry error rates.
type PChart struct {
	Chart
	sampleSize int
}

// NewPChart calibrates a p chart from the process defect fraction pBar and
// the per-sample inspection count n: limits are p̄ ± 3·sqrt(p̄(1-p̄)/n),
// with the LCL floored at 0.
func NewPChart(pBar float64, n int) (*PChart, error) {
	if pBar < 0 || pBar > 1 || n < 1 {
		return nil, fmt.Errorf("inspect: p chart needs 0 <= pBar <= 1 and n >= 1")
	}
	se := math.Sqrt(pBar * (1 - pBar) / float64(n))
	lcl := pBar - 3*se
	if lcl < 0 {
		lcl = 0
	}
	return &PChart{
		Chart:      Chart{Center: pBar, UCL: pBar + 3*se, LCL: lcl},
		sampleSize: n,
	}, nil
}

// AddSample charts one sample: defective out of the calibrated sample size.
func (c *PChart) AddSample(defective int) (Point, error) {
	if defective < 0 || defective > c.sampleSize {
		return Point{}, fmt.Errorf("inspect: defective %d out of sample %d", defective, c.sampleSize)
	}
	return c.addPoint(float64(defective) / float64(c.sampleSize)), nil
}

// EstimateMeanSigma computes the sample mean and (population) standard
// deviation of measurements, for chart calibration from a base period.
func EstimateMeanSigma(xs []float64) (mean, sigma float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sigma += (x - mean) * (x - mean)
	}
	sigma = math.Sqrt(sigma / float64(len(xs)))
	return mean, sigma
}
