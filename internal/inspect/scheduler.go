package inspect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
)

// The paper (§4) asks for "process-based mechanisms such as prompting for
// data inspection on a periodic basis or in the event of peculiar data".
// Scheduler implements both triggers deterministically: the caller advances
// time explicitly with Tick (so tests and simulations control the clock)
// and feeds incoming data batches with Observe.

// Prompt is one inspection request emitted by the scheduler.
type Prompt struct {
	// At is the logical time the prompt fired.
	At time.Time
	// Subject names what should be inspected (table, attribute, cell).
	Subject string
	// Reason explains the trigger ("periodic", "certificate_expiring",
	// "peculiar_data").
	Reason string
	// Detail carries trigger-specific context.
	Detail string
}

// String renders the prompt.
func (p Prompt) String() string {
	out := fmt.Sprintf("[%s] inspect %s: %s", p.At.Format(time.RFC3339), p.Subject, p.Reason)
	if p.Detail != "" {
		out += " (" + p.Detail + ")"
	}
	return out
}

// SchedulerConfig tunes the triggers.
type SchedulerConfig struct {
	// Period is the periodic inspection interval per subject; zero
	// disables periodic prompts.
	Period time.Duration
	// CertHorizon prompts when a subject's certificate expires within
	// the horizon; requires Certs. Zero disables.
	CertHorizon time.Duration
	// Certs is the certificate registry consulted by CertHorizon.
	Certs *CertRegistry
	// PeculiarRate fires a peculiar-data prompt when an observed batch's
	// defect rate meets or exceeds it; requires Rules. Zero disables.
	PeculiarRate float64
	// Rules are the edit checks applied to observed batches.
	Rules []Rule
}

// Scheduler emits inspection prompts. Safe for concurrent use.
type Scheduler struct {
	mu       sync.Mutex
	cfg      SchedulerConfig
	lastRun  map[string]time.Time
	prompted map[string]time.Time // last cert prompt per subject
}

// NewScheduler builds a scheduler over the subjects it will be asked about.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	return &Scheduler{
		cfg:      cfg,
		lastRun:  map[string]time.Time{},
		prompted: map[string]time.Time{},
	}
}

// Track registers a subject for periodic inspection starting at now.
func (s *Scheduler) Track(subject string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.lastRun[subject]; !ok {
		s.lastRun[subject] = now
	}
}

// Tick advances the logical clock and returns the prompts due at now:
// periodic inspections whose period elapsed, and certificate-expiry
// warnings. Emitting a periodic prompt resets that subject's timer.
func (s *Scheduler) Tick(now time.Time) []Prompt {
	// The cert registry has its own mutex; query it before taking s.mu so
	// the two locks are never nested (s.cfg is immutable after New).
	var expiring []string
	if s.cfg.CertHorizon > 0 && s.cfg.Certs != nil {
		expiring = s.cfg.Certs.Expiring(now, s.cfg.CertHorizon)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Prompt
	if s.cfg.Period > 0 {
		subjects := make([]string, 0, len(s.lastRun))
		for subj := range s.lastRun {
			subjects = append(subjects, subj)
		}
		sort.Strings(subjects)
		for _, subj := range subjects {
			if now.Sub(s.lastRun[subj]) >= s.cfg.Period {
				out = append(out, Prompt{At: now, Subject: subj, Reason: "periodic",
					Detail: fmt.Sprintf("last inspected %s", s.lastRun[subj].Format(time.RFC3339))})
				s.lastRun[subj] = now
			}
		}
	}
	for _, subj := range expiring {
		// Prompt once per expiring certificate window.
		if last, ok := s.prompted[subj]; ok && now.Sub(last) < s.cfg.CertHorizon {
			continue
		}
		s.prompted[subj] = now
		out = append(out, Prompt{At: now, Subject: subj, Reason: "certificate_expiring"})
	}
	return out
}

// Observe inspects an incoming batch and returns a peculiar-data prompt
// when the defect rate crosses the configured threshold (the paper's
// "in the event of peculiar data"). The inspection result is returned for
// the caller's SPC charts either way.
func (s *Scheduler) Observe(subject string, batch *relation.Relation, now time.Time) (InspectionResult, *Prompt) {
	ins := &Inspector{Rules: s.cfg.Rules}
	res := ins.InspectRelation(batch)
	if s.cfg.PeculiarRate > 0 && res.Total > 0 && res.DefectRate() >= s.cfg.PeculiarRate {
		return res, &Prompt{
			At: now, Subject: subject, Reason: "peculiar_data",
			Detail: fmt.Sprintf("defect rate %.1f%% >= %.1f%% threshold",
				100*res.DefectRate(), 100*s.cfg.PeculiarRate),
		}
	}
	return res, nil
}
