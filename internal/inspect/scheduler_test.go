package inspect

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestSchedulerPeriodicPrompts(t *testing.T) {
	now := workload.Epoch
	s := NewScheduler(SchedulerConfig{Period: 24 * time.Hour})
	s.Track("customer.address", now)
	s.Track("customer.employees", now)

	if got := s.Tick(now.Add(12 * time.Hour)); len(got) != 0 {
		t.Fatalf("early tick prompted: %v", got)
	}
	got := s.Tick(now.Add(25 * time.Hour))
	if len(got) != 2 {
		t.Fatalf("due tick = %v", got)
	}
	for _, p := range got {
		if p.Reason != "periodic" {
			t.Errorf("reason = %q", p.Reason)
		}
	}
	// Prompts are sorted by subject for determinism.
	if got[0].Subject > got[1].Subject {
		t.Error("prompts not sorted")
	}
	// Timer reset: immediately after, nothing is due.
	if again := s.Tick(now.Add(26 * time.Hour)); len(again) != 0 {
		t.Errorf("timer did not reset: %v", again)
	}
	// And due again a period later.
	if later := s.Tick(now.Add(50 * time.Hour)); len(later) != 2 {
		t.Errorf("second period = %v", later)
	}
}

func TestSchedulerCertificateExpiry(t *testing.T) {
	now := workload.Epoch
	certs := NewCertRegistry()
	certs.Add(Certificate{Subject: "trade.quantity", CertifiedBy: "admin",
		At: now.Add(-10 * 24 * time.Hour), Expires: now.Add(24 * time.Hour)})
	s := NewScheduler(SchedulerConfig{CertHorizon: 48 * time.Hour, Certs: certs})

	got := s.Tick(now)
	if len(got) != 1 || got[0].Reason != "certificate_expiring" || got[0].Subject != "trade.quantity" {
		t.Fatalf("cert prompt = %v", got)
	}
	// Deduplicated within the horizon.
	if again := s.Tick(now.Add(time.Hour)); len(again) != 0 {
		t.Errorf("duplicate cert prompt: %v", again)
	}
}

func TestSchedulerPeculiarData(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		PeculiarRate: 0.05,
		Rules:        []Rule{NotNull{Attr: "address"}, NotNull{Attr: "employees"}},
	})
	base := workload.Customers(workload.CustomerConfig{N: 400, Seed: 50})
	now := workload.Epoch

	// Clean batch: no prompt.
	res, p := s.Observe("customer", base, now)
	if p != nil {
		t.Fatalf("clean batch prompted: %v", p)
	}
	if res.Defective != 0 {
		t.Fatalf("clean batch defective = %d", res.Defective)
	}
	// Defective batch: prompt fires with the rate in the detail.
	bad, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: 51, NullRate: 0.2})
	res, p = s.Observe("customer", bad, now)
	if p == nil {
		t.Fatalf("peculiar batch (rate %.3f) did not prompt", res.DefectRate())
	}
	if p.Reason != "peculiar_data" || !strings.Contains(p.Detail, "threshold") {
		t.Errorf("prompt = %v", p)
	}
	if !strings.Contains(p.String(), "inspect customer: peculiar_data") {
		t.Errorf("prompt string = %q", p.String())
	}
}

func TestSchedulerDisabledTriggers(t *testing.T) {
	s := NewScheduler(SchedulerConfig{}) // everything disabled
	s.Track("x", workload.Epoch)
	if got := s.Tick(workload.Epoch.Add(1000 * time.Hour)); len(got) != 0 {
		t.Errorf("disabled scheduler prompted: %v", got)
	}
	rel := workload.Customers(workload.CustomerConfig{N: 10, Seed: 1})
	if _, p := s.Observe("x", rel, workload.Epoch); p != nil {
		t.Errorf("disabled peculiar trigger prompted: %v", p)
	}
}

func TestSchedulerConcurrent(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Period: time.Hour})
	now := workload.Epoch
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			subj := string(rune('a' + g))
			s.Track(subj, now)
			for i := 0; i < 50; i++ {
				s.Tick(now.Add(time.Duration(i) * 2 * time.Hour))
			}
		}(g)
	}
	wg.Wait()
}
