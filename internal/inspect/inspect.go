// Package inspect implements the inspection and control mechanisms the
// paper assigns to the data quality administrator (§3.3, §4): declarative
// edit checks (front-end rules enforcing domain or update constraints),
// double entry of important data, and certification records. Statistical
// process control lives in spc.go.
package inspect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Violation is one failed check on one tuple.
type Violation struct {
	Rule   string
	Attr   string
	Detail string
}

// String renders "rule on attr: detail".
func (v Violation) String() string {
	out := v.Rule
	if v.Attr != "" {
		out += " on " + v.Attr
	}
	if v.Detail != "" {
		out += ": " + v.Detail
	}
	return out
}

// Rule is a declarative edit check over a tuple.
type Rule interface {
	// Name identifies the rule in violation reports.
	Name() string
	// Check returns the rule's violations for the tuple.
	Check(s *schema.Schema, t relation.Tuple) []Violation
}

// NotNull requires the attribute to be non-null.
type NotNull struct{ Attr string }

// Name implements Rule.
func (r NotNull) Name() string { return "not_null" }

// Check implements Rule.
func (r NotNull) Check(s *schema.Schema, t relation.Tuple) []Violation {
	col := s.ColIndex(r.Attr)
	if col < 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "unknown attribute"}}
	}
	if t.Cells[col].V.IsNull() {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "null value"}}
	}
	return nil
}

// Range requires Min <= value <= Max (either bound may be Null for open).
type Range struct {
	Attr     string
	Min, Max value.Value
}

// Name implements Rule.
func (r Range) Name() string { return "range" }

// Check implements Rule.
func (r Range) Check(s *schema.Schema, t relation.Tuple) []Violation {
	col := s.ColIndex(r.Attr)
	if col < 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "unknown attribute"}}
	}
	v := t.Cells[col].V
	if v.IsNull() {
		return nil // nullness is NotNull's business
	}
	if !r.Min.IsNull() && value.Compare(v, r.Min) < 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: fmt.Sprintf("%s below %s", v, r.Min)}}
	}
	if !r.Max.IsNull() && value.Compare(v, r.Max) > 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: fmt.Sprintf("%s above %s", v, r.Max)}}
	}
	return nil
}

// Pattern requires a string to match a LIKE-style pattern (% and _).
type Pattern struct {
	Attr string
	Like string
}

// Name implements Rule.
func (r Pattern) Name() string { return "pattern" }

// Check implements Rule.
func (r Pattern) Check(s *schema.Schema, t relation.Tuple) []Violation {
	col := s.ColIndex(r.Attr)
	if col < 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "unknown attribute"}}
	}
	v := t.Cells[col].V
	if v.IsNull() || v.Kind() != value.KindString {
		return nil
	}
	if !likeMatch(r.Like, v.AsString()) {
		return []Violation{{Rule: r.Name(), Attr: r.Attr,
			Detail: fmt.Sprintf("%q does not match %q", v.AsString(), r.Like)}}
	}
	return nil
}

// likeMatch is the same %/_ matcher the query engine uses.
func likeMatch(pattern, s string) bool {
	p, q := 0, 0
	starP, starQ := -1, 0
	for q < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[q]):
			p++
			q++
		case p < len(pattern) && pattern[p] == '%':
			starP, starQ = p, q
			p++
		case starP >= 0:
			starQ++
			p, q = starP+1, starQ
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

// RequireTag requires the attribute's cells to carry an indicator tag —
// the storage-independent form of the schema's required indicators.
type RequireTag struct {
	Attr      string
	Indicator string
}

// Name implements Rule.
func (r RequireTag) Name() string { return "require_tag" }

// Check implements Rule.
func (r RequireTag) Check(s *schema.Schema, t relation.Tuple) []Violation {
	col := s.ColIndex(r.Attr)
	if col < 0 {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "unknown attribute"}}
	}
	if !t.Cells[col].Tags.Has(r.Indicator) {
		return []Violation{{Rule: r.Name(), Attr: r.Attr, Detail: "missing indicator " + r.Indicator}}
	}
	return nil
}

// CrossField evaluates an arbitrary predicate across the whole tuple.
type CrossField struct {
	RuleName string
	// Pred returns a violation detail, or "" when the tuple passes.
	Pred func(s *schema.Schema, t relation.Tuple) string
}

// Name implements Rule.
func (r CrossField) Name() string { return r.RuleName }

// Check implements Rule.
func (r CrossField) Check(s *schema.Schema, t relation.Tuple) []Violation {
	if detail := r.Pred(s, t); detail != "" {
		return []Violation{{Rule: r.RuleName, Detail: detail}}
	}
	return nil
}

// Inspector runs a rule set over tuples and relations.
type Inspector struct {
	Rules []Rule
}

// CheckTuple returns all violations for one tuple.
func (ins *Inspector) CheckTuple(s *schema.Schema, t relation.Tuple) []Violation {
	var out []Violation
	for _, r := range ins.Rules {
		out = append(out, r.Check(s, t)...)
	}
	return out
}

// InspectionResult summarizes a relation-level inspection.
type InspectionResult struct {
	Total     int
	Defective int
	// ByRule counts violations per rule name.
	ByRule map[string]int
	// Violations lists (row, violation) pairs.
	Violations []RowViolation
}

// RowViolation ties a violation to its tuple index.
type RowViolation struct {
	Row int
	V   Violation
}

// DefectRate is Defective/Total (0 for an empty relation).
func (r InspectionResult) DefectRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Defective) / float64(r.Total)
}

// String renders a summary.
func (r InspectionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "inspected %d row(s): %d defective (%.1f%%)", r.Total, r.Defective, 100*r.DefectRate())
	rules := make([]string, 0, len(r.ByRule))
	for name := range r.ByRule {
		rules = append(rules, name)
	}
	sort.Strings(rules)
	for _, name := range rules {
		fmt.Fprintf(&b, "\n  %4d x %s", r.ByRule[name], name)
	}
	return b.String()
}

// InspectRelation checks every tuple of the relation.
func (ins *Inspector) InspectRelation(rel *relation.Relation) InspectionResult {
	res := InspectionResult{Total: rel.Len(), ByRule: map[string]int{}}
	for i, t := range rel.Tuples {
		vs := ins.CheckTuple(rel.Schema, t)
		if len(vs) > 0 {
			res.Defective++
		}
		for _, v := range vs {
			res.ByRule[v.Rule]++
			res.Violations = append(res.Violations, RowViolation{Row: i, V: v})
		}
	}
	return res
}

// ---- Double entry ----

// DoubleEntryResult compares two independent entries of the same data
// (§3.3: "double entry of important data").
type DoubleEntryResult struct {
	Rows       int
	Mismatched int
	// Mismatches lists (row, attr) pairs that disagreed.
	Mismatches []Mismatch
}

// Mismatch is one disagreeing cell between the two entries.
type Mismatch struct {
	Row  int
	Attr string
	A, B value.Value
}

// MismatchRate is Mismatched/Rows.
func (r DoubleEntryResult) MismatchRate() float64 {
	if r.Rows == 0 {
		return 0
	}
	return float64(r.Mismatched) / float64(r.Rows)
}

// DoubleEntry compares two same-schema relations row by row. Rows present
// in only one entry count as mismatched with attr "".
func DoubleEntry(a, b *relation.Relation) (DoubleEntryResult, error) {
	if len(a.Schema.Attrs) != len(b.Schema.Attrs) {
		return DoubleEntryResult{}, fmt.Errorf("inspect: double entry over different schemas")
	}
	for i := range a.Schema.Attrs {
		if a.Schema.Attrs[i].Name != b.Schema.Attrs[i].Name || a.Schema.Attrs[i].Kind != b.Schema.Attrs[i].Kind {
			return DoubleEntryResult{}, fmt.Errorf("inspect: double entry over different schemas: column %d is %s %v vs %s %v",
				i, a.Schema.Attrs[i].Name, a.Schema.Attrs[i].Kind, b.Schema.Attrs[i].Name, b.Schema.Attrs[i].Kind)
		}
	}
	res := DoubleEntryResult{}
	n := a.Len()
	if b.Len() > n {
		n = b.Len()
	}
	res.Rows = n
	for i := 0; i < n; i++ {
		if i >= a.Len() || i >= b.Len() {
			res.Mismatched++
			res.Mismatches = append(res.Mismatches, Mismatch{Row: i, Attr: ""})
			continue
		}
		rowBad := false
		for c := range a.Schema.Attrs {
			va, vb := a.Tuples[i].Cells[c].V, b.Tuples[i].Cells[c].V
			if !value.Equal(va, vb) {
				rowBad = true
				res.Mismatches = append(res.Mismatches, Mismatch{
					Row: i, Attr: a.Schema.Attrs[c].Name, A: va, B: vb})
			}
		}
		if rowBad {
			res.Mismatched++
		}
	}
	return res, nil
}

// ---- Certification ----

// Certificate records a manual or procedural certification of data (§4:
// "data inspection and certification").
type Certificate struct {
	// Subject names what was certified (table, attribute, or cell ref).
	Subject string
	// CertifiedBy is the administrator or process.
	CertifiedBy string
	// At is the certification instant; Expires is when it lapses.
	At      time.Time
	Expires time.Time
	// Note documents the procedure used.
	Note string
}

// CertRegistry stores certifications; safe for concurrent use.
type CertRegistry struct {
	mu    sync.RWMutex
	certs map[string][]Certificate
}

// NewCertRegistry returns an empty registry.
func NewCertRegistry() *CertRegistry {
	return &CertRegistry{certs: map[string][]Certificate{}}
}

// Add records a certificate.
func (r *CertRegistry) Add(c Certificate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.certs[c.Subject] = append(r.certs[c.Subject], c)
}

// Valid reports whether the subject holds an unexpired certificate at now.
func (r *CertRegistry) Valid(subject string, now time.Time) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.certs[subject] {
		if !now.Before(c.At) && now.Before(c.Expires) {
			return true
		}
	}
	return false
}

// Expiring returns subjects whose newest certificate expires within the
// horizon — the paper's "prompting for data inspection on a periodic
// basis".
func (r *CertRegistry) Expiring(now time.Time, horizon time.Duration) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for subject, certs := range r.certs {
		newest := certs[0]
		for _, c := range certs[1:] {
			if c.Expires.After(newest.Expires) {
				newest = c
			}
		}
		if newest.Expires.After(now) && newest.Expires.Before(now.Add(horizon)) {
			out = append(out, subject)
		}
	}
	sort.Strings(out)
	return out
}
