package derive

import (
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/value"
)

var now = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

func cellWith(tags ...tag.Tag) relation.Cell {
	return relation.Cell{V: value.Str("x"), Tags: tag.NewSet(tags...)}
}

func TestGradeOrdering(t *testing.T) {
	if !VeryHigh.AtLeast(High) || !High.AtLeast(High) || Low.AtLeast(High) {
		t.Error("AtLeast ordering broken")
	}
	if Unknown.AtLeast(VeryLow) {
		t.Error("Unknown must not satisfy any positive threshold")
	}
	if !Unknown.AtLeast(Unknown) {
		t.Error("Unknown satisfies Unknown")
	}
	if VeryHigh.String() != "very-high" || Unknown.String() != "unknown" {
		t.Error("grade names wrong")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Func{}); err == nil {
		t.Error("empty parameter should fail")
	}
	if err := r.Register(Func{Parameter: "x"}); err == nil {
		t.Error("nil Fn should fail")
	}
	f := CredibilityTable(map[string]Grade{"WSJ": VeryHigh}, Medium)
	if err := r.Register(f); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("credibility"); !ok {
		t.Error("Lookup after Register failed")
	}
	if got := r.Parameters(); len(got) != 1 || got[0] != "credibility" {
		t.Errorf("Parameters = %v", got)
	}
	if _, err := r.GradeCell("nope", cellWith(), &Context{Now: now}); err == nil {
		t.Error("GradeCell of unregistered parameter should fail")
	}
}

func TestCredibilityTable(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(CredibilityTable(map[string]Grade{
		"Wall Street Journal": VeryHigh, "estimate": Low,
	}, Medium)); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Now: now}
	cases := []struct {
		cell relation.Cell
		want Grade
	}{
		{cellWith(tag.Tag{Indicator: "source", Value: value.Str("Wall Street Journal")}), VeryHigh},
		{cellWith(tag.Tag{Indicator: "source", Value: value.Str("estimate")}), Low},
		{cellWith(tag.Tag{Indicator: "source", Value: value.Str("somewhere")}), Medium},
		{cellWith(), Unknown},
	}
	for i, tc := range cases {
		got, err := r.GradeCell("credibility", tc.cell, ctx)
		if err != nil || got != tc.want {
			t.Errorf("case %d: grade = %v (%v), want %v", i, got, err, tc.want)
		}
	}
}

func TestTimelinessThresholds(t *testing.T) {
	r := NewRegistry()
	day := 24 * time.Hour
	if err := r.Register(TimelinessThresholds(day, 7*day, 30*day, 90*day)); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Now: now}
	mk := func(age time.Duration) relation.Cell {
		return cellWith(tag.Tag{Indicator: "creation_time", Value: value.Time(now.Add(-age))})
	}
	cases := []struct {
		age  time.Duration
		want Grade
	}{
		{12 * time.Hour, VeryHigh},
		{3 * day, High},
		{20 * day, Medium},
		{60 * day, Low},
		{200 * day, VeryLow},
	}
	for _, tc := range cases {
		got, err := r.GradeCell("timeliness", mk(tc.age), ctx)
		if err != nil || got != tc.want {
			t.Errorf("age %v: grade = %v (%v), want %v", tc.age, got, err, tc.want)
		}
	}
	// Fallback to explicit age tag.
	c := cellWith(tag.Tag{Indicator: "age", Value: value.Duration(3 * day)})
	if got, _ := r.GradeCell("timeliness", c, ctx); got != High {
		t.Errorf("age-tag fallback = %v", got)
	}
	// No tags at all.
	if got, _ := r.GradeCell("timeliness", cellWith(), ctx); got != Unknown {
		t.Errorf("untagged = %v", got)
	}
}

func TestAccuracyAndInterpretability(t *testing.T) {
	r := StandardRegistry()
	ctx := &Context{Now: now}
	c := cellWith(tag.Tag{Indicator: "collection_method", Value: value.Str("bar_code_scanner")})
	if got, _ := r.GradeCell("accuracy", c, ctx); got != VeryHigh {
		t.Errorf("scanner accuracy = %v", got)
	}
	c = cellWith(tag.Tag{Indicator: "media", Value: value.Str("bitmap")})
	if got, _ := r.GradeCell("interpretability", c, ctx); got != Low {
		t.Errorf("bitmap interpretability = %v", got)
	}
}

func TestDerivability(t *testing.T) {
	r := StandardRegistry()
	if !r.DerivableFrom("age", "creation_time") {
		t.Error("age should be derivable from creation_time")
	}
	if r.DerivableFrom("creation_time", "age") {
		t.Error("derivability must not be symmetric")
	}
	if got := r.Bases("age"); len(got) != 1 || got[0] != "creation_time" {
		t.Errorf("Bases(age) = %v", got)
	}
	if got := r.Bases("nothing"); len(got) != 0 {
		t.Errorf("Bases(nothing) = %v", got)
	}
}
