// Package derive computes quality parameter values from quality indicator
// values. The paper defines a quality parameter value as "the value
// determined for a quality parameter (directly or indirectly) based on
// underlying quality indicator values", with user-defined functions doing
// the mapping — e.g. because source = Wall Street Journal, an investor
// concludes credibility is high (§1.3).
//
// The package also owns the derivability relation between indicators used
// by Step 4 view integration: age is derivable from creation_time and the
// query time, so an integrated schema needs to store only creation_time
// (§3.4).
package derive

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/relation"
	"repro/internal/value"
)

// Grade is an ordinal quality parameter value.
type Grade uint8

// Grades, from unknown (no basis to judge) to very high.
const (
	Unknown Grade = iota
	VeryLow
	Low
	Medium
	High
	VeryHigh
)

var gradeNames = [...]string{"unknown", "very-low", "low", "medium", "high", "very-high"}

// String renders the grade name.
func (g Grade) String() string {
	if int(g) < len(gradeNames) {
		return gradeNames[g]
	}
	return fmt.Sprintf("grade(%d)", uint8(g))
}

// AtLeast reports whether g meets the threshold t; Unknown meets nothing
// except Unknown.
func (g Grade) AtLeast(t Grade) bool {
	if g == Unknown {
		return t == Unknown
	}
	return g >= t
}

// Context carries evaluation state for derivation functions.
type Context struct {
	// Now anchors age computations.
	Now time.Time
}

// Func derives one parameter's grade from the indicator tags of a cell.
type Func struct {
	// Parameter is the quality parameter this function grades.
	Parameter string
	// Inputs lists the indicator names the function reads; used by the
	// integrator to check that a schema supports a parameter.
	Inputs []string
	// Fn computes the grade. Indicators absent from the cell arrive as
	// null values.
	Fn func(inputs map[string]value.Value, ctx *Context) Grade
	// Doc explains the mapping.
	Doc string
}

// Registry holds derivation functions by parameter name and the indicator
// derivability relation.
type Registry struct {
	funcs map[string]Func
	// derivable[a][b] means indicator a is computable from indicator b
	// (plus query-time context).
	derivable map[string]map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		funcs:     make(map[string]Func),
		derivable: make(map[string]map[string]bool),
	}
}

// Register adds or replaces the derivation function for a parameter.
func (r *Registry) Register(f Func) error {
	if f.Parameter == "" {
		return fmt.Errorf("derive: function with empty parameter name")
	}
	if f.Fn == nil {
		return fmt.Errorf("derive: function for %q has nil Fn", f.Parameter)
	}
	r.funcs[f.Parameter] = f
	return nil
}

// Lookup returns the derivation function for a parameter.
func (r *Registry) Lookup(parameter string) (Func, bool) {
	f, ok := r.funcs[parameter]
	return f, ok
}

// Parameters lists registered parameter names, sorted.
func (r *Registry) Parameters() []string {
	out := make([]string, 0, len(r.funcs))
	for p := range r.funcs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DeclareDerivable records that indicator derived is computable from
// indicator base (plus context). Used by Step 4: when two quality views
// bring age and creation_time, the integrator keeps creation_time and drops
// age because age ∈ derivable(creation_time).
func (r *Registry) DeclareDerivable(derived, base string) {
	m, ok := r.derivable[derived]
	if !ok {
		m = make(map[string]bool)
		r.derivable[derived] = m
	}
	m[base] = true
}

// DerivableFrom reports whether derived is computable from base.
func (r *Registry) DerivableFrom(derived, base string) bool {
	return r.derivable[derived][base]
}

// Bases returns the indicators from which derived can be computed, sorted.
func (r *Registry) Bases(derived string) []string {
	var out []string
	for b := range r.derivable[derived] {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// GradeCell evaluates the parameter's derivation function over one cell's
// tags.
func (r *Registry) GradeCell(parameter string, c relation.Cell, ctx *Context) (Grade, error) {
	f, ok := r.funcs[parameter]
	if !ok {
		return Unknown, fmt.Errorf("derive: no function for parameter %q", parameter)
	}
	inputs := make(map[string]value.Value, len(f.Inputs))
	for _, name := range f.Inputs {
		v, ok := c.Tags.Get(name)
		if !ok {
			v = value.Null
		}
		inputs[name] = v
	}
	return f.Fn(inputs, ctx), nil
}

// ---- Built-in derivation functions ----

// CredibilityTable builds a credibility function from a source→grade map
// with a default for unlisted sources.
func CredibilityTable(bySource map[string]Grade, dflt Grade) Func {
	return Func{
		Parameter: "credibility",
		Inputs:    []string{"source"},
		Doc:       "grade credibility by the source indicator (e.g. WSJ -> high)",
		Fn: func(in map[string]value.Value, _ *Context) Grade {
			src := in["source"]
			if src.IsNull() {
				return Unknown
			}
			if g, ok := bySource[src.AsString()]; ok {
				return g
			}
			return dflt
		},
	}
}

// TimelinessThresholds builds a timeliness function from age cut-offs: age
// <= fresh is VeryHigh, <= recent High, <= usable Medium, <= stale Low,
// beyond VeryLow. It reads creation_time and falls back to an explicit age
// tag when creation_time is untagged — the Step 4 example in reverse.
func TimelinessThresholds(fresh, recent, usable, stale time.Duration) Func {
	return Func{
		Parameter: "timeliness",
		Inputs:    []string{"creation_time", "age"},
		Doc:       "grade timeliness from the age of the data",
		Fn: func(in map[string]value.Value, ctx *Context) Grade {
			var age time.Duration
			switch {
			case !in["creation_time"].IsNull():
				age = ctx.Now.Sub(in["creation_time"].AsTime())
			case !in["age"].IsNull():
				age = in["age"].AsDuration()
			default:
				return Unknown
			}
			switch {
			case age <= fresh:
				return VeryHigh
			case age <= recent:
				return High
			case age <= usable:
				return Medium
			case age <= stale:
				return Low
			default:
				return VeryLow
			}
		},
	}
}

// AccuracyByCollectionMethod grades accuracy from the collection_method
// indicator: different capture devices have inherent accuracy implications
// (§3.3: bar code scanners, RF readers, voice decoders).
func AccuracyByCollectionMethod(byMethod map[string]Grade, dflt Grade) Func {
	return Func{
		Parameter: "accuracy",
		Inputs:    []string{"collection_method"},
		Doc:       "grade accuracy by the collection mechanism's error profile",
		Fn: func(in map[string]value.Value, _ *Context) Grade {
			m := in["collection_method"]
			if m.IsNull() {
				return Unknown
			}
			if g, ok := byMethod[m.AsString()]; ok {
				return g
			}
			return dflt
		},
	}
}

// InterpretabilityByMedia grades interpretability from the media indicator:
// ascii beats postscript beats bitmap for machine use.
func InterpretabilityByMedia(byMedia map[string]Grade, dflt Grade) Func {
	return Func{
		Parameter: "interpretability",
		Inputs:    []string{"media"},
		Doc:       "grade interpretability by stored document format",
		Fn: func(in map[string]value.Value, _ *Context) Grade {
			m := in["media"]
			if m.IsNull() {
				return Unknown
			}
			if g, ok := byMedia[m.AsString()]; ok {
				return g
			}
			return dflt
		},
	}
}

// CompletenessByNullRate grades completeness from the null_rate indicator
// (typically a table-level tag, §1.2: how a table was populated hints at
// its completeness): rate <= excellent is VeryHigh, <= good High,
// <= fair Medium, <= poor Low, beyond VeryLow.
func CompletenessByNullRate(excellent, good, fair, poor float64) Func {
	return Func{
		Parameter: "completeness",
		Inputs:    []string{"null_rate"},
		Doc:       "grade completeness from the measured fraction of missing cells",
		Fn: func(in map[string]value.Value, _ *Context) Grade {
			v := in["null_rate"]
			if v.IsNull() || !v.Numeric() {
				return Unknown
			}
			rate := v.AsFloat()
			switch {
			case rate <= excellent:
				return VeryHigh
			case rate <= good:
				return High
			case rate <= fair:
				return Medium
			case rate <= poor:
				return Low
			default:
				return VeryLow
			}
		},
	}
}

// StandardRegistry assembles the registry used throughout the examples and
// benches: built-in functions with sensible tables plus the canonical
// derivability facts (age from creation_time; update-recency from
// update_time).
func StandardRegistry() *Registry {
	r := NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Register(CredibilityTable(map[string]Grade{
		"Wall Street Journal": VeryHigh,
		"Nexis":               High,
		"sales":               Medium,
		"acct'g":              High,
		"estimate":            Low,
	}, Medium)))
	must(r.Register(TimelinessThresholds(24*time.Hour, 7*24*time.Hour, 30*24*time.Hour, 90*24*time.Hour)))
	must(r.Register(AccuracyByCollectionMethod(map[string]Grade{
		"bar_code_scanner": VeryHigh,
		"rf_reader":        High,
		"double_entry":     High,
		"over_the_phone":   Medium,
		"info_service":     Medium,
		"voice_decoder":    Low,
		"estimate":         Low,
	}, Medium)))
	must(r.Register(InterpretabilityByMedia(map[string]Grade{
		"ascii":      VeryHigh,
		"postscript": Medium,
		"bitmap":     Low,
	}, Medium)))
	must(r.Register(CompletenessByNullRate(0.001, 0.01, 0.05, 0.20)))
	r.DeclareDerivable("age", "creation_time")
	r.DeclareDerivable("currency", "update_time")
	return r
}
