package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// Conflict records an integration disagreement between quality views.
type Conflict struct {
	Element   er.ElementRef
	Indicator string
	// Kinds are the disagreeing value kinds.
	Kinds []value.Kind
	// Views names the views involved.
	Views []string
}

// String renders the conflict for the integration report.
func (c Conflict) String() string {
	parts := make([]string, len(c.Kinds))
	for i, k := range c.Kinds {
		parts[i] = k.String()
	}
	return fmt.Sprintf("indicator %s on %s declared as %s (views: %s)",
		c.Indicator, c.Element, strings.Join(parts, " vs "), strings.Join(c.Views, ", "))
}

// Decision records one automatic integration decision for the audit trail
// of the design process.
type Decision struct {
	Kind string // "union", "subsume", "promote-suggestion"
	Text string
}

// QualitySchema is the output of Step 4: the integrated quality view,
// conflicts surfaced for the design team, decisions taken, and refinement
// suggestions (Premise 1.1).
type QualitySchema struct {
	App        *er.Model
	Indicators []IndicatorAnnotation
	// Unoperationalized carries forward the parameters documented but
	// not tagged, across all component views.
	Unoperationalized []ParameterAnnotation
	Conflicts         []Conflict
	Decisions         []Decision
	// PromoteSuggestions lists indicators that look like application
	// attributes (Premise 1.1): the design team may call Promote on
	// them.
	PromoteSuggestions []IndicatorAnnotation
}

// Integrator performs Step 4. The derive registry supplies the indicator
// derivability relation used for subsumption (keep creation_time, drop age,
// because age is computable from creation_time at query time, §3.4).
type Integrator struct {
	Registry *derive.Registry
	// AppRelevant lists indicator names that plausibly belong in the
	// application view (the paper's example: company_name attached to
	// ticker_symbol for interpretability). Integration does not promote
	// automatically — it records suggestions for the design team.
	AppRelevant []string
}

// namedView pairs a view with a label for conflict reporting.
type namedView struct {
	name string
	view *QualityView
}

// Integrate merges one or more quality views over the same application view
// into a single quality schema (§3.4). Views must share the application
// view's name; the first view's model is used as the base.
func (ig *Integrator) Integrate(views ...*QualityView) (*QualitySchema, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("core: integrate needs at least one quality view")
	}
	named := make([]namedView, len(views))
	for i, v := range views {
		named[i] = namedView{name: fmt.Sprintf("view%d", i+1), view: v}
		if v.App.Name != views[0].App.Name {
			return nil, fmt.Errorf("core: integrate: views over different applications %q and %q",
				views[0].App.Name, v.App.Name)
		}
	}
	qs := &QualitySchema{App: views[0].App}

	// Union of indicators by (element, name); kind disagreement is a
	// conflict, and the indicator is excluded until the team resolves it.
	type slot struct {
		ann   IndicatorAnnotation
		kinds map[value.Kind][]string // kind -> view names
	}
	slots := map[string]*slot{}
	var order []string
	for _, nv := range named {
		for _, ann := range nv.view.Indicators {
			key := ann.Element.String() + "|" + ann.Indicator
			s, ok := slots[key]
			if !ok {
				s = &slot{ann: ann, kinds: map[value.Kind][]string{}}
				slots[key] = s
				order = append(order, key)
			}
			s.kinds[ann.Kind] = append(s.kinds[ann.Kind], nv.name)
		}
		qs.Unoperationalized = append(qs.Unoperationalized, nv.view.Unoperationalized...)
	}
	sort.Strings(order)

	for _, key := range order {
		s := slots[key]
		if len(s.kinds) > 1 {
			conflict := Conflict{Element: s.ann.Element, Indicator: s.ann.Indicator}
			kinds := make([]value.Kind, 0, len(s.kinds))
			for k := range s.kinds {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
			for _, k := range kinds {
				conflict.Kinds = append(conflict.Kinds, k)
				conflict.Views = append(conflict.Views, s.kinds[k]...)
			}
			qs.Conflicts = append(qs.Conflicts, conflict)
			continue
		}
		qs.Indicators = append(qs.Indicators, s.ann)
		if len(named) > 1 {
			qs.Decisions = append(qs.Decisions, Decision{Kind: "union",
				Text: fmt.Sprintf("kept %s", s.ann.String())})
		}
	}

	// Subsumption: within each element, drop indicators derivable from a
	// retained sibling (age from creation_time).
	if ig.Registry != nil {
		byElement := map[string][]IndicatorAnnotation{}
		var elems []string
		for _, ann := range qs.Indicators {
			k := ann.Element.String()
			if _, ok := byElement[k]; !ok {
				elems = append(elems, k)
			}
			byElement[k] = append(byElement[k], ann)
		}
		sort.Strings(elems)
		var kept []IndicatorAnnotation
		for _, ek := range elems {
			anns := byElement[ek]
			present := map[string]bool{}
			for _, a := range anns {
				present[a.Indicator] = true
			}
			for _, a := range anns {
				subsumedBy := ""
				for _, base := range ig.Registry.Bases(a.Indicator) {
					if present[base] {
						subsumedBy = base
						break
					}
				}
				if subsumedBy != "" {
					qs.Decisions = append(qs.Decisions, Decision{Kind: "subsume",
						Text: fmt.Sprintf("dropped %s on %s: derivable from %s at query time",
							a.Indicator, a.Element, subsumedBy)})
					continue
				}
				kept = append(kept, a)
			}
		}
		qs.Indicators = kept
	}

	// Refinement suggestions (Premise 1.1 / §3.4 structural
	// re-examination).
	for _, ann := range qs.Indicators {
		for _, name := range ig.AppRelevant {
			if ann.Indicator == name {
				qs.PromoteSuggestions = append(qs.PromoteSuggestions, ann)
				qs.Decisions = append(qs.Decisions, Decision{Kind: "promote-suggestion",
					Text: fmt.Sprintf("consider promoting %s on %s to an application attribute",
						ann.Indicator, ann.Element)})
			}
		}
	}
	sortAnnotations(qs.Indicators)
	return qs, nil
}

func sortAnnotations(anns []IndicatorAnnotation) {
	sort.Slice(anns, func(i, j int) bool {
		if anns[i].Element.String() != anns[j].Element.String() {
			return anns[i].Element.String() < anns[j].Element.String()
		}
		return anns[i].Indicator < anns[j].Indicator
	})
}

// Promote applies an application-view refinement: the indicator becomes a
// plain attribute of the owning entity (the paper's company_name example)
// and disappears from the indicator list. The quality schema's model is
// cloned; the original application view is untouched.
func (qs *QualitySchema) Promote(ann IndicatorAnnotation) error {
	if ann.Element.Kind != er.KindEntityAttr && ann.Element.Kind != er.KindEntity {
		return fmt.Errorf("core: promote: only entity indicators can become entity attributes")
	}
	found := -1
	for i, have := range qs.Indicators {
		if have.Element == ann.Element && have.Indicator == ann.Indicator {
			found = i
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("core: promote: %s on %s is not in the schema", ann.Indicator, ann.Element)
	}
	model := qs.App.Clone()
	ent, ok := model.Entity(ann.Element.Owner)
	if !ok {
		return fmt.Errorf("core: promote: unknown entity %q", ann.Element.Owner)
	}
	if _, exists := ent.Attr(ann.Indicator); exists {
		return fmt.Errorf("core: promote: entity %q already has attribute %q", ent.Name, ann.Indicator)
	}
	ent.Attrs = append(ent.Attrs, er.Attribute{
		Name: ann.Indicator, Kind: ann.Kind,
		Doc: "promoted from quality indicator (Premise 1.1)",
	})
	qs.App = model
	qs.Indicators = append(qs.Indicators[:found:found], qs.Indicators[found+1:]...)
	qs.Decisions = append(qs.Decisions, Decision{Kind: "promote",
		Text: fmt.Sprintf("promoted %s on %s to attribute of %s", ann.Indicator, ann.Element, ent.Name)})
	return nil
}

// Render draws the integrated quality schema with its decision log.
func (qs *QualitySchema) Render() string {
	var b strings.Builder
	b.WriteString("Integrated quality schema\n")
	b.WriteString("=========================\n")
	b.WriteString(qs.App.Render())
	b.WriteString("Required indicator tags:\n")
	for _, a := range qs.Indicators {
		fmt.Fprintf(&b, "  %s\n", a.String())
	}
	if len(qs.Unoperationalized) > 0 {
		b.WriteString("Documented, not tagged:\n")
		for _, p := range qs.Unoperationalized {
			fmt.Fprintf(&b, "  %s\n", p.String())
		}
	}
	if len(qs.Conflicts) > 0 {
		b.WriteString("Conflicts requiring design-team resolution:\n")
		for _, c := range qs.Conflicts {
			fmt.Fprintf(&b, "  %s\n", c.String())
		}
	}
	if len(qs.Decisions) > 0 {
		b.WriteString("Integration decisions:\n")
		for _, d := range qs.Decisions {
			fmt.Fprintf(&b, "  [%s] %s\n", d.Kind, d.Text)
		}
	}
	return b.String()
}

// Compile lowers the quality schema to storage schemas: one relation per
// entity (key = identifying attributes) and one per relationship (key =
// both endpoints' identifiers plus any identifying relationship attribute).
// Attribute-level indicators attach to their attribute; entity- and
// relationship-level indicators attach to every attribute of the owner, so
// that each stored cell carries the required tags.
func (qs *QualitySchema) Compile() ([]*schema.Schema, error) {
	if err := qs.App.Validate(); err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	// Index annotations.
	attrInds := map[string][]tag.Indicator{}  // "owner.attr" -> indicators
	ownerInds := map[string][]tag.Indicator{} // "owner" -> indicators for all attrs
	for _, ann := range qs.Indicators {
		ind := tag.Indicator{Name: ann.Indicator, Kind: ann.Kind, Doc: ann.Rationale}
		switch ann.Element.Kind {
		case er.KindEntityAttr, er.KindRelationshipAttr:
			k := ann.Element.Owner + "." + ann.Element.Attr
			attrInds[k] = append(attrInds[k], ind)
		case er.KindEntity, er.KindRelationship:
			ownerInds[ann.Element.Owner] = append(ownerInds[ann.Element.Owner], ind)
		}
	}
	indicatorsFor := func(owner, attr string) []tag.Indicator {
		var out []tag.Indicator
		out = append(out, attrInds[owner+"."+attr]...)
		for _, ind := range ownerInds[owner] {
			dup := false
			for _, have := range out {
				if have.Name == ind.Name {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, ind)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out
	}

	var schemas []*schema.Schema
	ents := append([]*er.Entity(nil), qs.App.Entities...)
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		attrs := make([]schema.Attr, len(e.Attrs))
		for i, a := range e.Attrs {
			attrs[i] = schema.Attr{
				Name: a.Name, Kind: a.Kind, Required: a.Identifying,
				Indicators: indicatorsFor(e.Name, a.Name), Doc: a.Doc,
			}
		}
		sc, err := schema.New(e.Name, attrs, e.Identifier()...)
		if err != nil {
			return nil, fmt.Errorf("core: compile entity %s: %w", e.Name, err)
		}
		sc.Doc = e.Doc
		schemas = append(schemas, sc)
	}
	rels := append([]*er.Relationship(nil), qs.App.Relationships...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	for _, r := range rels {
		var attrs []schema.Attr
		var key []string
		addEndpoint := func(entName string) error {
			ent, ok := qs.App.Entity(entName)
			if !ok {
				return fmt.Errorf("core: compile: unknown entity %q", entName)
			}
			for _, idAttr := range ent.Identifier() {
				a, _ := ent.Attr(idAttr)
				name := entName + "_" + idAttr
				attrs = append(attrs, schema.Attr{
					Name: name, Kind: a.Kind, Required: true,
					Doc: "identifier of " + entName,
				})
				key = append(key, name)
			}
			return nil
		}
		if err := addEndpoint(r.Left); err != nil {
			return nil, err
		}
		if err := addEndpoint(r.Right); err != nil {
			return nil, err
		}
		for _, a := range r.Attrs {
			attrs = append(attrs, schema.Attr{
				Name: a.Name, Kind: a.Kind,
				Indicators: indicatorsFor(r.Name, a.Name), Doc: a.Doc,
			})
			if a.Identifying {
				key = append(key, a.Name)
			}
		}
		sc, err := schema.New(r.Name, attrs, key...)
		if err != nil {
			return nil, fmt.Errorf("core: compile relationship %s: %w", r.Name, err)
		}
		sc.Doc = r.Doc
		schemas = append(schemas, sc)
	}
	return schemas, nil
}

// Pipeline runs the full methodology in one call: Step 1 is the caller's
// application view; Steps 2–4 run from the elicitation inputs; the result
// bundles every intermediate document, matching the paper's requirement
// that parameter views and quality views be part of the quality
// requirements specification documentation.
type Pipeline struct {
	App        *er.Model
	Step2      Step2Input
	Step3      Step3Input
	Integrator Integrator
	// ExtraViews are additional quality views (other user groups'
	// requirements) to integrate with this pipeline's own view.
	ExtraViews []*QualityView
}

// PipelineResult bundles all methodology outputs.
type PipelineResult struct {
	ParameterView *ParameterView
	QualityView   *QualityView
	QualitySchema *QualitySchema
	Schemas       []*schema.Schema
}

// Run executes Steps 2–4 and compilation.
func (p *Pipeline) Run() (*PipelineResult, error) {
	pv, err := Step2(p.App, p.Step2)
	if err != nil {
		return nil, err
	}
	qv, err := Step3(pv, p.Step3)
	if err != nil {
		return nil, err
	}
	views := append([]*QualityView{qv}, p.ExtraViews...)
	qs, err := p.Integrator.Integrate(views...)
	if err != nil {
		return nil, err
	}
	schemas, err := qs.Compile()
	if err != nil {
		return nil, err
	}
	return &PipelineResult{ParameterView: pv, QualityView: qv, QualitySchema: qs, Schemas: schemas}, nil
}

// Document renders the complete quality requirements specification.
func (r *PipelineResult) Document() string {
	var b strings.Builder
	b.WriteString("DATA QUALITY REQUIREMENTS SPECIFICATION\n")
	b.WriteString("=======================================\n\n")
	b.WriteString("-- Step 2: parameter view --\n")
	b.WriteString(r.ParameterView.Render())
	b.WriteString("\n-- Step 3: quality view --\n")
	b.WriteString(r.QualityView.Render())
	b.WriteString("\n-- Step 4: integrated quality schema --\n")
	b.WriteString(r.QualitySchema.Render())
	b.WriteString("\n-- Compiled storage schemas --\n")
	for _, s := range r.Schemas {
		fmt.Fprintf(&b, "  %s\n", s.String())
	}
	return b.String()
}
