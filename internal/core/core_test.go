package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/tag"
	"repro/internal/value"
)

func TestStep2Validation(t *testing.T) {
	app := er.TradingModel()
	pv, err := Step2(app, TradingStep2())
	if err != nil {
		t.Fatal(err)
	}
	if len(pv.Annotations) != 8 {
		t.Fatalf("annotations = %d", len(pv.Annotations))
	}
	// All trading parameters are in the candidate catalog.
	for _, a := range pv.Annotations {
		if !a.InCatalog {
			t.Errorf("parameter %q not found in catalog", a.Parameter)
		}
	}
	// Errors.
	if _, err := Step2(app, Step2Input{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.AttrRef("nope", "x"), Parameter: "timeliness"},
	}}); err == nil {
		t.Error("unknown element should fail")
	}
	if _, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.EntityRef("client"), Parameter: "timeliness"},
		{Element: er.EntityRef("client"), Parameter: "timeliness"},
	}}); err == nil {
		t.Error("duplicate annotation should fail")
	}
	// Unknown parameter is allowed but flagged.
	pv2, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.EntityRef("client"), Parameter: "sparkle_factor"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pv2.Annotations[0].InCatalog {
		t.Error("made-up parameter should not be InCatalog")
	}
	if !strings.Contains(pv2.Render(), "[not in candidate list]") {
		t.Error("render should flag non-catalog parameters")
	}
}

func TestStep3Figure5Shape(t *testing.T) {
	app := er.TradingModel()
	pv, err := Step2(app, TradingStep2())
	if err != nil {
		t.Fatal(err)
	}
	qv, err := Step3(pv, TradingStep3())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{ // indicator -> element
		"age":               "company_stock.share_price",
		"analyst_name":      "company_stock.research_report",
		"media":             "company_stock.research_report",
		"price":             "company_stock.research_report",
		"collection_method": "client.telephone",
		"company_name":      "company_stock.ticker_symbol",
		"entered_by":        "trade()",
		"entry_time":        "trade()",
		"inspection":        "trade()",
	}
	got := map[string]string{}
	for _, a := range qv.Indicators {
		got[a.Indicator] = a.Element.String()
	}
	for ind, elem := range want {
		if got[ind] != elem {
			t.Errorf("indicator %s on %q, want %q", ind, got[ind], elem)
		}
	}
	if len(qv.Indicators) != len(want) {
		t.Errorf("indicator count = %d, want %d", len(qv.Indicators), len(want))
	}
}

func TestStep3DefaultsAndObjectivePassThrough(t *testing.T) {
	app := er.TradingModel()
	// Parameter with catalog defaults: credibility without choices.
	pv, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.AttrRef("client", "address"), Parameter: "credibility"},
		{Element: er.AttrRef("client", "address"), Parameter: "age"}, // objective: passes through
		{Element: er.AttrRef("client", "name"), Parameter: "relevance"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	qv, err := Step3(pv, Step3Input{})
	if err != nil {
		t.Fatal(err)
	}
	inds := map[string]bool{}
	for _, a := range qv.Indicators {
		inds[a.Indicator] = true
	}
	// credibility defaults: source, analyst_name, collection_method.
	for _, want := range []string{"source", "analyst_name", "collection_method", "age"} {
		if !inds[want] {
			t.Errorf("missing indicator %s (got %v)", want, inds)
		}
	}
	// relevance has no operationalization: documented unoperationalized.
	if len(qv.Unoperationalized) != 1 || qv.Unoperationalized[0].Parameter != "relevance" {
		t.Errorf("unoperationalized = %v", qv.Unoperationalized)
	}
	if !strings.Contains(qv.Render(), "Not amenable to tagging") {
		t.Error("render should document unoperationalized parameters")
	}
}

func TestStep3KindConflict(t *testing.T) {
	app := er.TradingModel()
	pv, _ := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.AttrRef("client", "address"), Parameter: "timeliness"},
	}})
	_, err := Step3(pv, Step3Input{
		Choices: []OperationalizationChoice{
			{Element: er.AttrRef("client", "address"), Parameter: "timeliness",
				Indicators: []catalog.IndicatorSpec{{Name: "age", Kind: value.KindDuration}}},
		},
		ExtraIndicators: []IndicatorAnnotation{
			{Element: er.AttrRef("client", "address"), Indicator: "age", Kind: value.KindString},
		},
	})
	if err == nil {
		t.Error("same indicator with two kinds should fail within a view")
	}
}

func TestIntegrationSubsumesAge(t *testing.T) {
	p, err := TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	qs := res.QualitySchema
	// age dropped; creation_time kept (the §3.4 example).
	for _, a := range qs.Indicators {
		if a.Indicator == "age" {
			t.Error("age should be subsumed by creation_time")
		}
	}
	foundCreation := false
	for _, a := range qs.Indicators {
		if a.Indicator == "creation_time" && a.Element.String() == "company_stock.share_price" {
			foundCreation = true
		}
	}
	if !foundCreation {
		t.Error("creation_time missing from integrated schema")
	}
	subsumed := false
	for _, d := range qs.Decisions {
		if d.Kind == "subsume" && strings.Contains(d.Text, "age") {
			subsumed = true
		}
	}
	if !subsumed {
		t.Error("decision log should record the subsumption")
	}
	// Promotion suggestion for company_name (Premise 1.1).
	if len(qs.PromoteSuggestions) == 0 || qs.PromoteSuggestions[0].Indicator != "company_name" {
		t.Errorf("promote suggestions = %v", qs.PromoteSuggestions)
	}
}

func TestIntegrationConflictDetection(t *testing.T) {
	app := er.TradingModel()
	mk := func(kind value.Kind) *QualityView {
		pv, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
			{Element: er.AttrRef("client", "address"), Parameter: "timeliness"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		qv, err := Step3(pv, Step3Input{Choices: []OperationalizationChoice{
			{Element: er.AttrRef("client", "address"), Parameter: "timeliness",
				Indicators: []catalog.IndicatorSpec{{Name: "freshness", Kind: kind}}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return qv
	}
	ig := Integrator{Registry: derive.StandardRegistry()}
	qs, err := ig.Integrate(mk(value.KindDuration), mk(value.KindString))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Conflicts) != 1 {
		t.Fatalf("conflicts = %v", qs.Conflicts)
	}
	if len(qs.Indicators) != 0 {
		t.Error("conflicting indicator must be excluded until resolved")
	}
	if !strings.Contains(qs.Render(), "Conflicts requiring design-team resolution") {
		t.Error("render should surface conflicts")
	}
}

func TestIntegrationOrderIndependence(t *testing.T) {
	p, err := TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	pv, _ := Step2(p.App, p.Step2)
	qv, _ := Step3(pv, p.Step3)
	second := p.ExtraViews[0]
	ig := p.Integrator

	a, err := ig.Integrate(qv, second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ig.Integrate(second, qv)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Indicators) != len(b.Indicators) {
		t.Fatalf("order dependence: %d vs %d indicators", len(a.Indicators), len(b.Indicators))
	}
	for i := range a.Indicators {
		ai, bi := a.Indicators[i], b.Indicators[i]
		if ai.Element != bi.Element || ai.Indicator != bi.Indicator || ai.Kind != bi.Kind {
			t.Errorf("indicator %d: %v vs %v", i, ai, bi)
		}
	}
}

func TestIntegrateErrors(t *testing.T) {
	ig := Integrator{}
	if _, err := ig.Integrate(); err == nil {
		t.Error("no views should fail")
	}
	app1, app2 := er.TradingModel(), er.NewModel("other")
	app2.AddEntity(&er.Entity{Name: "x", Attrs: []er.Attribute{{Name: "a", Kind: value.KindInt}}})
	pv1, _ := Step2(app1, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.EntityRef("client"), Parameter: "timeliness"}}})
	qv1, _ := Step3(pv1, Step3Input{})
	pv2, _ := Step2(app2, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.EntityRef("x"), Parameter: "timeliness"}}})
	qv2, _ := Step3(pv2, Step3Input{})
	if _, err := ig.Integrate(qv1, qv2); err == nil {
		t.Error("views over different applications should fail")
	}
}

func TestPromote(t *testing.T) {
	p, err := TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	qs := res.QualitySchema
	sugg := qs.PromoteSuggestions[0]
	nIndicators := len(qs.Indicators)
	if err := qs.Promote(sugg); err != nil {
		t.Fatal(err)
	}
	// company_name became an entity attribute.
	ent, _ := qs.App.Entity("company_stock")
	if _, ok := ent.Attr("company_name"); !ok {
		t.Error("company_name not added to entity")
	}
	if len(qs.Indicators) != nIndicators-1 {
		t.Error("promoted indicator should leave the indicator list")
	}
	// Original model untouched.
	orig, _ := p.App.Entity("company_stock")
	if _, ok := orig.Attr("company_name"); ok {
		t.Error("promotion must not mutate the original application view")
	}
	// Errors.
	if err := qs.Promote(sugg); err == nil {
		t.Error("double promotion should fail")
	}
	if err := qs.Promote(IndicatorAnnotation{Element: er.RelRef("trade"), Indicator: "entered_by"}); err == nil {
		t.Error("promoting a relationship indicator should fail")
	}
}

func TestCompileSchemas(t *testing.T) {
	p, err := TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, s := range res.Schemas {
		byName[s.Name] = true
	}
	for _, want := range []string{"client", "company_stock", "trade"} {
		if !byName[want] {
			t.Errorf("missing schema %s", want)
		}
	}
	for _, s := range res.Schemas {
		switch s.Name {
		case "trade":
			// Key: client id + stock id.
			if len(s.Key) != 2 || s.Key[0] != "client_account_number" || s.Key[1] != "company_stock_ticker_symbol" {
				t.Errorf("trade key = %v", s.Key)
			}
			// Relationship-level indicators attach to all trade attrs.
			a, _ := s.Attr("quantity")
			names := indNames(a.Indicators)
			if !contains(names, "entered_by") || !contains(names, "entry_time") || !contains(names, "inspection") {
				t.Errorf("trade.quantity indicators = %v", names)
			}
		case "company_stock":
			a, _ := s.Attr("share_price")
			names := indNames(a.Indicators)
			if !contains(names, "creation_time") || !contains(names, "source") {
				t.Errorf("share_price indicators = %v", names)
			}
			if contains(names, "age") {
				t.Error("share_price should not require age after subsumption")
			}
			r, _ := s.Attr("research_report")
			rn := indNames(r.Indicators)
			for _, want := range []string{"analyst_name", "media", "price"} {
				if !contains(rn, want) {
					t.Errorf("research_report indicators = %v missing %s", rn, want)
				}
			}
		case "client":
			a, _ := s.Attr("telephone")
			if !contains(indNames(a.Indicators), "collection_method") {
				t.Errorf("telephone indicators = %v", indNames(a.Indicators))
			}
			if len(s.Key) != 1 || s.Key[0] != "account_number" {
				t.Errorf("client key = %v", s.Key)
			}
		}
	}
}

func TestPipelineDocument(t *testing.T) {
	p, err := TradingPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	for _, want := range []string{
		"Step 2: parameter view",
		"Step 3: quality view",
		"Step 4: integrated quality schema",
		"Compiled storage schemas",
		"(timeliness) on company_stock.share_price",
		"[analyst_name string] on company_stock.research_report",
		"✓ inspection",
		"derivable from creation_time",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
}

func indNames(inds []tag.Indicator) []string {
	out := make([]string, len(inds))
	for i, ind := range inds {
		out[i] = ind.Name
	}
	return out
}

func contains(s []string, want string) bool {
	for _, v := range s {
		if v == want {
			return true
		}
	}
	return false
}
