package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/er"
	"repro/internal/value"
)

// MustTradingResult runs the trading pipeline, panicking on error; it backs
// the figure-regeneration harness and examples where the fixture is known
// good.
func MustTradingResult() *PipelineResult {
	p, err := TradingPipeline()
	if err != nil {
		panic(err)
	}
	res, err := p.Run()
	if err != nil {
		panic(err)
	}
	return res
}

// ScalableModel builds a synthetic application view with nEntities entities
// of four attributes each, for integration scaling experiments (AB4).
func ScalableModel(nEntities int) *er.Model {
	m := er.NewModel("scale")
	for i := 0; i < nEntities; i++ {
		m.AddEntity(&er.Entity{
			Name: fmt.Sprintf("entity_%02d", i),
			Attrs: []er.Attribute{
				{Name: "id", Kind: value.KindInt, Identifying: true},
				{Name: "a", Kind: value.KindString},
				{Name: "b", Kind: value.KindFloat},
				{Name: "c", Kind: value.KindTime},
			},
		})
	}
	return m
}

// ScalableViews builds nViews quality views over the model, each attaching
// nIndicators indicators spread over the entities' attributes. Views
// overlap on indicator names so integration exercises the union-with-
// agreement path.
func ScalableViews(app *er.Model, nViews, nIndicators int) ([]*QualityView, error) {
	attrs := []string{"a", "b", "c"}
	var views []*QualityView
	for v := 0; v < nViews; v++ {
		var params []ParameterAnnotation
		var choices []OperationalizationChoice
		for i := 0; i < nIndicators; i++ {
			ent := fmt.Sprintf("entity_%02d", i%len(app.Entities))
			attr := attrs[i%len(attrs)]
			param := fmt.Sprintf("param_%d", i)
			el := er.AttrRef(ent, attr)
			params = append(params, ParameterAnnotation{Element: el, Parameter: param})
			choices = append(choices, OperationalizationChoice{
				Element: el, Parameter: param,
				Indicators: []catalog.IndicatorSpec{{
					Name: fmt.Sprintf("ind_%d", i), Kind: value.KindString,
				}},
			})
		}
		pv, err := Step2(app, Step2Input{Parameters: params})
		if err != nil {
			return nil, err
		}
		qv, err := Step3(pv, Step3Input{Choices: choices})
		if err != nil {
			return nil, err
		}
		views = append(views, qv)
	}
	return views, nil
}
