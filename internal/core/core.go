// Package core implements the paper's primary contribution: the four-step
// data quality requirements analysis and modeling methodology (Figure 2).
//
//	Step 1  establish the application view        -> er.Model
//	Step 2  determine subjective quality params   -> ParameterView
//	Step 3  determine objective quality indicators-> QualityView
//	Step 4  integrate quality views               -> QualitySchema
//
// The methodology is executable: Steps 2 and 3 take declarative elicitation
// input (which parameters matter on which ER elements; which indicator
// operationalizes which parameter), validate it against the application
// view and the candidate catalog, and produce the documents the paper
// mandates for the quality requirements specification. Step 4 is a
// deterministic integration algorithm, and Compile turns the resulting
// quality schema into storage schemas whose attributes carry the required
// indicator tags.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/er"
	"repro/internal/value"
)

// ParameterAnnotation attaches one subjective quality parameter to an ER
// element — a "cloud" in the paper's Figure 4. The special Inspection flag
// reproduces the "✓ inspection" marker that signals data verification
// requirements.
type ParameterAnnotation struct {
	// Element is the ER element the parameter applies to.
	Element er.ElementRef
	// Parameter is the quality parameter name (usually from the
	// catalog's candidate list, but design teams may introduce new ones;
	// Step 2 records whether the name was found in the catalog).
	Parameter string
	// Inspection marks the annotation as an inspection requirement.
	Inspection bool
	// Rationale documents why the design team cares.
	Rationale string
	// InCatalog is set by Step 2: whether the parameter appears in the
	// candidate list.
	InCatalog bool
}

// String renders "(parameter) on element".
func (a ParameterAnnotation) String() string {
	name := a.Parameter
	if a.Inspection {
		name = "✓ " + name
	}
	return "(" + name + ") on " + a.Element.String()
}

// ParameterView is the output of Step 2: the application view plus the
// subjective quality parameters the design team attached (Figure 4).
type ParameterView struct {
	App         *er.Model
	Annotations []ParameterAnnotation
}

// Step2Input is the elicitation input for Step 2.
type Step2Input struct {
	// Parameters lists the (element, parameter) pairs the design team
	// identified, with optional inspection flags and rationales.
	Parameters []ParameterAnnotation
}

// Step2 validates the elicited parameters against the application view and
// produces the parameter view. Unknown elements are errors; parameters
// missing from the candidate catalog are allowed (the design team may
// consider additional parameters, §3.2) but flagged.
func Step2(app *er.Model, in Step2Input) (*ParameterView, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("core: step 2 requires a valid application view: %w", err)
	}
	if len(in.Parameters) == 0 {
		return nil, fmt.Errorf("core: step 2 needs at least one quality parameter")
	}
	pv := &ParameterView{App: app}
	seen := map[string]bool{}
	for _, ann := range in.Parameters {
		if ann.Parameter == "" {
			return nil, fmt.Errorf("core: step 2: empty parameter name on %s", ann.Element)
		}
		if err := ann.Element.Resolve(app); err != nil {
			return nil, fmt.Errorf("core: step 2: %w", err)
		}
		key := ann.Element.String() + "|" + ann.Parameter
		if seen[key] {
			return nil, fmt.Errorf("core: step 2: duplicate parameter %s on %s", ann.Parameter, ann.Element)
		}
		seen[key] = true
		_, ann.InCatalog = catalog.ByName(ann.Parameter)
		pv.Annotations = append(pv.Annotations, ann)
	}
	return pv, nil
}

// Render draws the parameter view in the paper's Figure 4 style: the
// application view with parameter clouds attached.
func (pv *ParameterView) Render() string {
	var b strings.Builder
	b.WriteString(pv.App.Render())
	b.WriteString("Quality parameters (subjective):\n")
	anns := append([]ParameterAnnotation(nil), pv.Annotations...)
	sort.Slice(anns, func(i, j int) bool {
		if anns[i].Element.String() != anns[j].Element.String() {
			return anns[i].Element.String() < anns[j].Element.String()
		}
		return anns[i].Parameter < anns[j].Parameter
	})
	for _, a := range anns {
		fmt.Fprintf(&b, "  %s", a.String())
		if a.Rationale != "" {
			fmt.Fprintf(&b, "  -- %s", a.Rationale)
		}
		if !a.InCatalog {
			b.WriteString("  [not in candidate list]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IndicatorAnnotation attaches one objective quality indicator to an ER
// element — a dotted rectangle in the paper's Figure 5.
type IndicatorAnnotation struct {
	// Element is the ER element whose cells must carry the tag.
	Element er.ElementRef
	// Indicator is the indicator name.
	Indicator string
	// Kind is the indicator value kind.
	Kind value.Kind
	// Operationalizes names the subjective parameter this indicator
	// measures ("" when the indicator was elicited directly).
	Operationalizes string
	// Rationale documents the choice.
	Rationale string
}

// String renders "[indicator kind] on element (for parameter)".
func (a IndicatorAnnotation) String() string {
	s := "[" + a.Indicator + " " + a.Kind.String() + "] on " + a.Element.String()
	if a.Operationalizes != "" {
		s += " (for " + a.Operationalizes + ")"
	}
	return s
}

// QualityView is the output of Step 3: the application view with objective
// quality indicators replacing the subjective parameters (Figure 5).
type QualityView struct {
	App        *er.Model
	Indicators []IndicatorAnnotation
	// Unoperationalized lists parameters the design team decided not to
	// tag (e.g. retrieval time, completeness at the instance level — the
	// paper notes some quality issues are not amenable to cell tagging,
	// §1.2). They stay in the documentation.
	Unoperationalized []ParameterAnnotation
}

// OperationalizationChoice picks indicators for one parameter annotation in
// Step 3. An empty Indicators list means "use the catalog defaults".
type OperationalizationChoice struct {
	Element    er.ElementRef
	Parameter  string
	Indicators []catalog.IndicatorSpec
}

// Step3Input is the elicitation input for Step 3.
type Step3Input struct {
	// Choices maps parameters to indicators. Parameters without a choice
	// use catalog defaults when available; otherwise they are recorded
	// as unoperationalized.
	Choices []OperationalizationChoice
	// ExtraIndicators adds indicators not tied to any parameter (the
	// paper's collection_method on telephone is introduced directly).
	ExtraIndicators []IndicatorAnnotation
}

// Step3 operationalizes the parameter view into a quality view.
//
// A parameter that is itself objective (classified as an indicator in the
// catalog, like age) passes through as an indicator of the same name
// (§3.3: "if a quality parameter is deemed sufficiently objective, it can
// remain").
func Step3(pv *ParameterView, in Step3Input) (*QualityView, error) {
	qv := &QualityView{App: pv.App}
	chosen := map[string][]catalog.IndicatorSpec{}
	for _, c := range in.Choices {
		chosen[c.Element.String()+"|"+c.Parameter] = c.Indicators
	}
	addIndicator := func(ann IndicatorAnnotation) error {
		if err := ann.Element.Resolve(pv.App); err != nil {
			return fmt.Errorf("core: step 3: %w", err)
		}
		for _, have := range qv.Indicators {
			if have.Element == ann.Element && have.Indicator == ann.Indicator {
				if have.Kind != ann.Kind {
					return fmt.Errorf("core: step 3: indicator %s on %s declared with kinds %v and %v",
						ann.Indicator, ann.Element, have.Kind, ann.Kind)
				}
				return nil // idempotent
			}
		}
		qv.Indicators = append(qv.Indicators, ann)
		return nil
	}

	for _, p := range pv.Annotations {
		key := p.Element.String() + "|" + p.Parameter
		specs, hasChoice := chosen[key]
		if !hasChoice || len(specs) == 0 {
			// Objective parameter passes through directly.
			if cand, ok := catalog.ByName(p.Parameter); ok && cand.Class == catalog.Indicator {
				kind := indicatorKindDefault(p.Parameter)
				if err := addIndicator(IndicatorAnnotation{
					Element: p.Element, Indicator: p.Parameter, Kind: kind,
					Operationalizes: p.Parameter,
					Rationale:       "parameter deemed sufficiently objective; retained as indicator",
				}); err != nil {
					return nil, err
				}
				continue
			}
			// Inspection parameters map to the inspection indicator.
			if p.Inspection {
				if err := addIndicator(IndicatorAnnotation{
					Element: p.Element, Indicator: "inspection", Kind: value.KindString,
					Operationalizes: p.Parameter,
					Rationale:       "inspection requirement (✓) from the parameter view",
				}); err != nil {
					return nil, err
				}
				continue
			}
			if !hasChoice {
				specs = catalog.Operationalizations(p.Parameter)
			}
		}
		if len(specs) == 0 {
			qv.Unoperationalized = append(qv.Unoperationalized, p)
			continue
		}
		for _, spec := range specs {
			if err := addIndicator(IndicatorAnnotation{
				Element: p.Element, Indicator: spec.Name, Kind: spec.Kind,
				Operationalizes: p.Parameter, Rationale: spec.Doc,
			}); err != nil {
				return nil, err
			}
		}
	}
	for _, extra := range in.ExtraIndicators {
		if err := addIndicator(extra); err != nil {
			return nil, err
		}
	}
	return qv, nil
}

// indicatorKindDefault maps well-known objective parameters to value kinds.
func indicatorKindDefault(name string) value.Kind {
	switch name {
	case "age", "update_frequency":
		return value.KindDuration
	case "creation_time", "update_time", "arrival_time", "entry_time":
		return value.KindTime
	case "null_rate", "error_rate", "price":
		return value.KindFloat
	case "record_count":
		return value.KindInt
	default:
		return value.KindString
	}
}

// Render draws the quality view in the paper's Figure 5 style.
func (qv *QualityView) Render() string {
	var b strings.Builder
	b.WriteString(qv.App.Render())
	b.WriteString("Quality indicators (objective):\n")
	anns := append([]IndicatorAnnotation(nil), qv.Indicators...)
	sort.Slice(anns, func(i, j int) bool {
		if anns[i].Element.String() != anns[j].Element.String() {
			return anns[i].Element.String() < anns[j].Element.String()
		}
		return anns[i].Indicator < anns[j].Indicator
	})
	for _, a := range anns {
		fmt.Fprintf(&b, "  %s", a.String())
		if a.Rationale != "" {
			fmt.Fprintf(&b, "  -- %s", a.Rationale)
		}
		b.WriteByte('\n')
	}
	if len(qv.Unoperationalized) > 0 {
		b.WriteString("Not amenable to tagging (documented only):\n")
		for _, p := range qv.Unoperationalized {
			fmt.Fprintf(&b, "  %s\n", p.String())
		}
	}
	return b.String()
}
