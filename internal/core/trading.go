package core

import (
	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/value"
)

// TradingStep2 reproduces the paper's Figure 4 elicitation: timeliness on
// share price, cost and credibility on the research report, accuracy on the
// client's telephone, interpretability on the ticker symbol, and the "✓
// inspection" requirement on the trade relationship.
func TradingStep2() Step2Input {
	return Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.AttrRef("company_stock", "share_price"), Parameter: "timeliness",
			Rationale: "the trader cares how old the price is"},
		{Element: er.AttrRef("company_stock", "research_report"), Parameter: "cost",
			Rationale: "the user is concerned with the price of the data"},
		{Element: er.AttrRef("company_stock", "research_report"), Parameter: "credibility",
			Rationale: "reports are only as good as their analyst"},
		{Element: er.AttrRef("company_stock", "research_report"), Parameter: "interpretability",
			Rationale: "reports arrive in multiple formats"},
		{Element: er.AttrRef("client", "telephone"), Parameter: "accuracy",
			Rationale: "multiple collection mechanisms with different error rates"},
		{Element: er.AttrRef("company_stock", "ticker_symbol"), Parameter: "interpretability",
			Rationale: "short identifiers are hard to read"},
		{Element: er.RelRef("trade"), Parameter: "traceability",
			Rationale: "erred transactions must be trackable"},
		{Element: er.RelRef("trade"), Parameter: "inspection", Inspection: true,
			Rationale: "the ✓ inspection requirement: trades are verified"},
	}}
}

// TradingStep3 reproduces Figure 5: timeliness -> age; credibility ->
// analyst name; interpretability of the report -> media; accuracy of
// telephone -> collection method; interpretability of ticker -> company
// name; cost -> price; traceability -> entered_by / entry_time.
func TradingStep3() Step3Input {
	return Step3Input{
		Choices: []OperationalizationChoice{
			{Element: er.AttrRef("company_stock", "share_price"), Parameter: "timeliness",
				Indicators: []catalog.IndicatorSpec{{Name: "age", Kind: value.KindDuration,
					Doc: "how old the price is"}}},
			{Element: er.AttrRef("company_stock", "research_report"), Parameter: "credibility",
				Indicators: []catalog.IndicatorSpec{{Name: "analyst_name", Kind: value.KindString,
					Doc: "author of the report"}}},
			{Element: er.AttrRef("company_stock", "research_report"), Parameter: "interpretability",
				Indicators: []catalog.IndicatorSpec{{Name: "media", Kind: value.KindString,
					Doc: "bitmap, ascii or postscript"}}},
			{Element: er.AttrRef("company_stock", "research_report"), Parameter: "cost",
				Indicators: []catalog.IndicatorSpec{{Name: "price", Kind: value.KindFloat,
					Doc: "monetary price of the report"}}},
			{Element: er.AttrRef("client", "telephone"), Parameter: "accuracy",
				Indicators: []catalog.IndicatorSpec{{Name: "collection_method", Kind: value.KindString,
					Doc: "over the phone / from an information service"}}},
			{Element: er.AttrRef("company_stock", "ticker_symbol"), Parameter: "interpretability",
				Indicators: []catalog.IndicatorSpec{{Name: "company_name", Kind: value.KindString,
					Doc: "readable company name behind the ticker"}}},
			{Element: er.RelRef("trade"), Parameter: "traceability",
				Indicators: []catalog.IndicatorSpec{
					{Name: "entered_by", Kind: value.KindString, Doc: "who recorded the trade"},
					{Name: "entry_time", Kind: value.KindTime, Doc: "when the trade was recorded"},
				}},
		},
	}
}

// SecondTraderView builds a second user group's quality view over the same
// application: they ask for creation_time on the share price (instead of
// age) and for a source tag on it. Integrating this view with the Figure 5
// view triggers the paper's §3.4 subsumption example: creation_time is
// kept, age is dropped as derivable.
func SecondTraderView(app *er.Model) (*QualityView, error) {
	pv, err := Step2(app, Step2Input{Parameters: []ParameterAnnotation{
		{Element: er.AttrRef("company_stock", "share_price"), Parameter: "timeliness",
			Rationale: "real-time desk needs exact creation instants"},
		{Element: er.AttrRef("company_stock", "share_price"), Parameter: "credibility",
			Rationale: "feed provenance matters"},
	}})
	if err != nil {
		return nil, err
	}
	return Step3(pv, Step3Input{
		Choices: []OperationalizationChoice{
			{Element: er.AttrRef("company_stock", "share_price"), Parameter: "timeliness",
				Indicators: []catalog.IndicatorSpec{{Name: "creation_time", Kind: value.KindTime,
					Doc: "when the quote was produced"}}},
			{Element: er.AttrRef("company_stock", "share_price"), Parameter: "credibility",
				Indicators: []catalog.IndicatorSpec{{Name: "source", Kind: value.KindString,
					Doc: "quote feed"}}},
		},
	})
}

// TradingPipeline assembles the complete Figure 2 run for the paper's
// trading application, including the second view whose integration
// exercises the §3.4 subsumption and the company_name promotion suggestion.
func TradingPipeline() (*Pipeline, error) {
	app := er.TradingModel()
	second, err := SecondTraderView(app)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		App:   app,
		Step2: TradingStep2(),
		Step3: TradingStep3(),
		Integrator: Integrator{
			Registry:    derive.StandardRegistry(),
			AppRelevant: []string{"company_name"},
		},
		ExtraViews: []*QualityView{second},
	}, nil
}
