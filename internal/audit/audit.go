// Package audit implements the data quality administrator's "electronic
// trail" (paper §4): a log of the data manufacturing process — collection,
// entry, transformation, correction, certification — addressable at cell
// granularity, so that an exceptional situation such as an erred
// transaction can be tracked back through its production history and
// forward to everything it contaminated.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// StepKind classifies a manufacturing process step.
type StepKind uint8

// Step kinds.
const (
	StepCollect StepKind = iota
	StepEnter
	StepTransform
	StepCorrect
	StepInspect
	StepCertify
)

var stepNames = [...]string{"collect", "enter", "transform", "correct", "inspect", "certify"}

// String renders the step kind.
func (k StepKind) String() string {
	if int(k) < len(stepNames) {
		return stepNames[k]
	}
	return fmt.Sprintf("step(%d)", uint8(k))
}

// CellRef addresses one stored cell: table, primary key rendering, and
// attribute.
type CellRef struct {
	Table string
	Key   string
	Attr  string
}

// String renders "table[key].attr".
func (c CellRef) String() string { return c.Table + "[" + c.Key + "]." + c.Attr }

// Step is one manufacturing process event.
type Step struct {
	// ID is assigned by the trail, dense from 1.
	ID int64
	// Kind classifies the event.
	Kind StepKind
	// Actor is the person, department, or system responsible.
	Actor string
	// At is when the step happened.
	At time.Time
	// Inputs are the cells the step read.
	Inputs []CellRef
	// Outputs are the cells the step wrote.
	Outputs []CellRef
	// Note is free-form documentation ("double entry mismatch resolved").
	Note string
}

// Trail is the append-only manufacturing process log with cell-level
// lineage indexes. It is safe for concurrent use.
type Trail struct {
	mu       sync.RWMutex
	steps    []Step
	producer map[string][]int64 // cell -> step IDs that wrote it
	consumer map[string][]int64 // cell -> step IDs that read it
}

// NewTrail returns an empty trail.
func NewTrail() *Trail {
	return &Trail{producer: map[string][]int64{}, consumer: map[string][]int64{}}
}

// Record appends a step, assigning and returning its ID.
func (t *Trail) Record(s Step) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.ID = int64(len(t.steps) + 1)
	t.steps = append(t.steps, s)
	for _, out := range s.Outputs {
		t.producer[out.String()] = append(t.producer[out.String()], s.ID)
	}
	for _, in := range s.Inputs {
		t.consumer[in.String()] = append(t.consumer[in.String()], s.ID)
	}
	return s.ID
}

// Len reports the number of recorded steps.
func (t *Trail) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.steps)
}

// Step returns the step with the given ID.
func (t *Trail) Step(id int64) (Step, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 1 || int(id) > len(t.steps) {
		return Step{}, false
	}
	return t.steps[id-1], true
}

// Producers returns the IDs of steps that wrote the cell, oldest first.
func (t *Trail) Producers(c CellRef) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int64(nil), t.producer[c.String()]...)
}

// Lineage walks backwards from a cell: the steps that produced it, the
// cells those steps read, recursively. It returns step IDs in
// reverse-chronological discovery order without duplicates — the paper's
// "track aspects of the data manufacturing process, such as the time of
// entry or intermediate processing steps".
func (t *Trail) Lineage(c CellRef) []Step {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Step
	seenStep := map[int64]bool{}
	seenCell := map[string]bool{}
	queue := []string{c.String()}
	seenCell[c.String()] = true
	for len(queue) > 0 {
		cell := queue[0]
		queue = queue[1:]
		ids := t.producer[cell]
		for i := len(ids) - 1; i >= 0; i-- {
			id := ids[i]
			if seenStep[id] {
				continue
			}
			seenStep[id] = true
			st := t.steps[id-1]
			out = append(out, st)
			for _, in := range st.Inputs {
				if !seenCell[in.String()] {
					seenCell[in.String()] = true
					queue = append(queue, in.String())
				}
			}
		}
	}
	return out
}

// Contaminated walks forward from a cell: every cell written by a step that
// (transitively) read it. Used to scope the damage of an erred transaction.
// The starting cell itself is not included unless a downstream step rewrote
// it.
func (t *Trail) Contaminated(c CellRef) []CellRef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []CellRef
	seenCell := map[string]bool{c.String(): true}
	emitted := map[string]bool{}
	queue := []string{c.String()}
	for len(queue) > 0 {
		cell := queue[0]
		queue = queue[1:]
		for _, id := range t.consumer[cell] {
			st := t.steps[id-1]
			for _, outCell := range st.Outputs {
				key := outCell.String()
				if !emitted[key] {
					emitted[key] = true
					out = append(out, outCell)
				}
				if !seenCell[key] {
					seenCell[key] = true
					queue = append(queue, key)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ActorActivity counts steps per actor, for the administrator's reporting.
func (t *Trail) ActorActivity() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := map[string]int{}
	for _, s := range t.steps {
		out[s.Actor]++
	}
	return out
}

// StepsBetween returns steps with from <= At < to, in ID order.
func (t *Trail) StepsBetween(from, to time.Time) []Step {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Step
	for _, s := range t.steps {
		if !s.At.Before(from) && s.At.Before(to) {
			out = append(out, s)
		}
	}
	return out
}

// Report renders the trail for one cell: lineage first, then contamination.
func (t *Trail) Report(c CellRef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Audit report for %s\n", c)
	b.WriteString("Lineage (how the value was manufactured):\n")
	for _, s := range t.Lineage(c) {
		fmt.Fprintf(&b, "  #%d %s by %s at %s", s.ID, s.Kind, s.Actor, s.At.Format(time.RFC3339))
		if s.Note != "" {
			fmt.Fprintf(&b, " -- %s", s.Note)
		}
		b.WriteByte('\n')
	}
	cont := t.Contaminated(c)
	if len(cont) > 0 {
		b.WriteString("Downstream cells (contamination scope):\n")
		for _, cell := range cont {
			fmt.Fprintf(&b, "  %s\n", cell)
		}
	}
	return b.String()
}
