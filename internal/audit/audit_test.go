package audit

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(1991, 10, 1, 9, 0, 0, 0, time.UTC)

// buildTrail wires the paper's erred-transaction scenario: a quote is
// collected, entered, transformed into a position value, and corrected.
func buildTrail() (*Trail, CellRef, CellRef, CellRef) {
	tr := NewTrail()
	quote := CellRef{Table: "company_stock", Key: "IBM", Attr: "share_price"}
	position := CellRef{Table: "portfolio", Key: "acct_1001", Attr: "position_value"}
	report := CellRef{Table: "statements", Key: "acct_1001", Attr: "total"}

	tr.Record(Step{Kind: StepCollect, Actor: "reuters", At: t0,
		Outputs: []CellRef{quote}, Note: "quote collected from feed"})
	tr.Record(Step{Kind: StepEnter, Actor: "teller_1", At: t0.Add(time.Minute),
		Outputs: []CellRef{quote}, Note: "manual correction typo"})
	tr.Record(Step{Kind: StepTransform, Actor: "batch_eod", At: t0.Add(2 * time.Hour),
		Inputs: []CellRef{quote}, Outputs: []CellRef{position}})
	tr.Record(Step{Kind: StepTransform, Actor: "batch_eod", At: t0.Add(3 * time.Hour),
		Inputs: []CellRef{position}, Outputs: []CellRef{report}})
	tr.Record(Step{Kind: StepCorrect, Actor: "admin", At: t0.Add(26 * time.Hour),
		Inputs: []CellRef{quote}, Outputs: []CellRef{quote}, Note: "erred transaction fixed"})
	return tr, quote, position, report
}

func TestRecordAndStep(t *testing.T) {
	tr, _, _, _ := buildTrail()
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	s, ok := tr.Step(3)
	if !ok || s.Kind != StepTransform || s.Actor != "batch_eod" {
		t.Errorf("Step(3) = %+v, %v", s, ok)
	}
	if _, ok := tr.Step(0); ok {
		t.Error("Step(0) should miss")
	}
	if _, ok := tr.Step(99); ok {
		t.Error("Step(99) should miss")
	}
}

func TestLineage(t *testing.T) {
	tr, quote, position, report := buildTrail()
	// The report's lineage reaches back through position to the quote's
	// producing steps.
	steps := tr.Lineage(report)
	kinds := map[StepKind]int{}
	for _, s := range steps {
		kinds[s.Kind]++
	}
	if kinds[StepTransform] != 2 {
		t.Errorf("lineage transforms = %d, want 2 (steps: %v)", kinds[StepTransform], steps)
	}
	if kinds[StepCollect] != 1 || kinds[StepEnter] != 1 {
		t.Errorf("lineage should reach the quote's production: %v", kinds)
	}
	// The quote's own lineage includes its producers only.
	qsteps := tr.Lineage(quote)
	for _, s := range qsteps {
		for _, out := range s.Outputs {
			if out == position || out == report {
				t.Errorf("quote lineage should not contain downstream step %+v", s)
			}
		}
	}
	// Unknown cell: empty lineage.
	if got := tr.Lineage(CellRef{Table: "x", Key: "y", Attr: "z"}); len(got) != 0 {
		t.Errorf("unknown cell lineage = %v", got)
	}
}

func TestContaminated(t *testing.T) {
	tr, quote, position, report := buildTrail()
	cont := tr.Contaminated(quote)
	want := map[string]bool{position.String(): true, report.String(): true, quote.String(): true}
	// quote itself is rewritten by the correction step (inputs quote,
	// outputs quote), so it appears.
	if len(cont) != len(want) {
		t.Fatalf("contaminated = %v", cont)
	}
	for _, c := range cont {
		if !want[c.String()] {
			t.Errorf("unexpected contaminated cell %s", c)
		}
	}
	// Position contaminates only the report.
	cont = tr.Contaminated(position)
	if len(cont) != 1 || cont[0] != report {
		t.Errorf("position contamination = %v", cont)
	}
}

func TestActorActivityAndTimeWindow(t *testing.T) {
	tr, _, _, _ := buildTrail()
	act := tr.ActorActivity()
	if act["batch_eod"] != 2 || act["admin"] != 1 {
		t.Errorf("activity = %v", act)
	}
	steps := tr.StepsBetween(t0, t0.Add(4*time.Hour))
	if len(steps) != 4 {
		t.Errorf("window steps = %d", len(steps))
	}
	steps = tr.StepsBetween(t0.Add(24*time.Hour), t0.Add(48*time.Hour))
	if len(steps) != 1 || steps[0].Kind != StepCorrect {
		t.Errorf("late window = %v", steps)
	}
}

func TestReportRendering(t *testing.T) {
	tr, quote, _, _ := buildTrail()
	rep := tr.Report(quote)
	for _, want := range []string{"Audit report", "Lineage", "collect by reuters", "Downstream cells", "statements[acct_1001].total"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestProducers(t *testing.T) {
	tr, quote, _, _ := buildTrail()
	ids := tr.Producers(quote)
	if len(ids) != 3 { // collect, enter, correct
		t.Errorf("producers = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("producers should be oldest-first")
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewTrail()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				cell := CellRef{Table: "t", Key: "k", Attr: "a"}
				tr.Record(Step{Kind: StepEnter, Actor: "actor", At: t0, Outputs: []CellRef{cell}})
				tr.Lineage(cell)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d", tr.Len())
	}
	// IDs are dense and unique.
	seen := map[int64]bool{}
	for id := int64(1); id <= 800; id++ {
		s, ok := tr.Step(id)
		if !ok || seen[s.ID] {
			t.Fatalf("step %d missing or duplicated", id)
		}
		seen[s.ID] = true
	}
}

func TestStepKindStrings(t *testing.T) {
	names := []string{"collect", "enter", "transform", "correct", "inspect", "certify"}
	for i, want := range names {
		if got := StepKind(i).String(); got != want {
			t.Errorf("StepKind(%d) = %q, want %q", i, got, want)
		}
	}
	if CellRef.String(CellRef{Table: "t", Key: "k", Attr: "a"}) != "t[k].a" {
		t.Error("CellRef.String broken")
	}
}
