// Package value implements the typed scalar values that flow through the
// data quality engine: attribute values, quality indicator values, and the
// constants appearing in QQL expressions.
//
// A Value is a small immutable struct. The package defines a total order
// across comparable kinds (numeric kinds compare with each other; all other
// cross-kind comparisons order by kind rank so that sorting heterogeneous
// columns is deterministic), an FNV-1a hash used by hash joins and hash
// indexes, and parsing/formatting used by the QQL lexer and the renderers.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

const (
	// KindNull is the absence of a value. Null compares less than
	// everything and equal to itself (SQL three-valued logic is handled
	// at the expression layer, not here).
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable UTF-8 string.
	KindString
	// KindTime is an absolute instant (stored UTC, second precision is
	// not enforced; callers may carry nanoseconds).
	KindTime
	// KindDuration is a signed duration, used for ages and timeliness
	// thresholds.
	KindDuration
)

var kindNames = [...]string{
	KindNull:     "null",
	KindBool:     "bool",
	KindInt:      "int",
	KindFloat:    "float",
	KindString:   "string",
	KindTime:     "time",
	KindDuration: "duration",
}

// String returns the lower-case name of the kind ("int", "string", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a kind name (as written in QQL CREATE TABLE statements)
// to a Kind. It accepts the canonical names and common SQL aliases.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "null":
		return KindNull, nil
	case "bool", "boolean":
		return KindBool, nil
	case "int", "integer", "bigint":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "string", "text", "varchar":
		return KindString, nil
	case "time", "timestamp", "datetime":
		return KindTime, nil
	case "duration", "interval":
		return KindDuration, nil
	}
	return KindNull, fmt.Errorf("value: unknown kind %q", s)
}

// Value is an immutable scalar. The zero Value is Null.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), duration (ns), time (unix ns when wall-clock representable)
	f    float64
	s    string
	t    time.Time
}

// Null is the null value.
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the fmt.Stringer method on Value.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorter alias for String_.
func Str(s string) Value { return String_(s) }

// Time returns a time value, normalized to UTC.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t.UTC()} }

// Duration returns a duration value.
func Duration(d time.Duration) Value { return Value{kind: KindDuration, i: int64(d)} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// AsInt returns the integer payload for KindInt, or a truncated conversion
// for KindFloat and KindBool.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindFloat:
		return int64(v.f)
	default:
		return v.i
	}
}

// AsFloat returns the numeric payload widened to float64 (KindInt,
// KindFloat, KindBool and KindDuration are numeric).
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	default:
		return float64(v.i)
	}
}

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// AsTime returns the time payload; it is only meaningful for KindTime.
func (v Value) AsTime() time.Time { return v.t }

// AsDuration returns the duration payload; it is only meaningful for
// KindDuration.
func (v Value) AsDuration() time.Duration { return time.Duration(v.i) }

// Numeric reports whether the value participates in numeric comparison and
// arithmetic (int, float, bool, duration).
func (v Value) Numeric() bool {
	switch v.kind {
	case KindInt, KindFloat, KindBool, KindDuration:
		return true
	default: // null, string, time
		return false
	}
}

// comparisonRank orders kinds for cross-kind comparisons: null < numerics <
// string < time. Numeric kinds share a rank so they compare by magnitude.
func comparisonRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool, KindInt, KindFloat, KindDuration:
		return 1
	case KindString:
		return 2
	case KindTime:
		return 3
	}
	return 4
}

// Compare defines a total order over values: it returns -1, 0, or +1.
// Nulls sort first; numeric kinds compare by magnitude (int vs. float
// compares exactly when both fit); strings compare lexicographically; times
// chronologically. Values of non-comparable kind pairs order by kind rank.
func Compare(a, b Value) int { return ComparePtr(&a, &b) }

func compareNumeric(a, b Value) int {
	if a.kind == KindFloat || b.kind == KindFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		// NaN sorts before all other floats so ordering stays total.
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	switch {
	case a.i < b.i:
		return -1
	case a.i > b.i:
		return 1
	}
	return 0
}

// Equal reports whether a and b compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ComparePtr is the one implementation of the total order, taken through
// pointers so hot comparison loops — compiled predicates, sort keys — skip
// copying the operands (Value is a five-field struct: two machine words of
// scalars, a string header, a time.Time; the copies dominate tight loops).
// Compare delegates here, so the two can never diverge.
func ComparePtr(a, b *Value) int {
	ra, rb := comparisonRank(a.kind), comparisonRank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		if a.kind == KindFloat || b.kind == KindFloat {
			return compareNumeric(*a, *b)
		}
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.s, b.s)
	case 3:
		switch {
		case a.t.Before(b.t):
			return -1
		case a.t.After(b.t):
			return 1
		}
		return 0
	}
	return 0
}

// EqualPtr is Equal through pointers, for per-row loops (see ComparePtr).
func EqualPtr(a, b *Value) bool { return ComparePtr(a, b) == 0 }

// Less reports whether a sorts strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// LessPtr is Less through pointers, for per-row loops (see ComparePtr).
func LessPtr(a, b *Value) bool { return ComparePtr(a, b) < 0 }

// Hash returns an FNV-1a hash of the value such that Equal values hash
// equally (numeric kinds hash via their float64 widening when a float is
// representable, and via int64 otherwise).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix64 := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			mix(byte(x >> s))
		}
	}
	switch v.kind {
	case KindNull:
		mix(0)
	case KindBool, KindInt, KindDuration, KindFloat:
		// Hash all numerics through a canonical form so Int(2),
		// Float(2.0), and Bool-as-1 follow Equal's semantics.
		f := v.AsFloat()
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 && !math.IsInf(f, 0) {
			mix(1)
			mix64(uint64(int64(f)))
		} else {
			mix(2)
			mix64(math.Float64bits(f))
		}
	case KindString:
		mix(3)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindTime:
		mix(4)
		mix64(uint64(v.t.UnixNano()))
	}
	return h
}

// String renders the value for human output: null, true/false, decimal
// numbers, bare strings, RFC3339 times, and Go duration syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.AsBool())
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return v.t.Format(time.RFC3339)
	case KindDuration:
		return time.Duration(v.i).String()
	}
	return fmt.Sprintf("value(kind=%d)", v.kind)
}

// Literal renders the value as a QQL literal that parses back to an Equal
// value: strings are single-quoted with ” escaping, times are quoted
// RFC3339 prefixed with t, durations with d.
func (v Value) Literal() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindTime:
		return "t'" + v.t.Format(time.RFC3339Nano) + "'"
	case KindDuration:
		return "d'" + time.Duration(v.i).String() + "'"
	default:
		return v.String()
	}
}

// Parse converts text into a value of the requested kind. It is the inverse
// of String for every kind, and is used when loading workload fixtures.
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case KindNull:
		if s == "null" || s == "" {
			return Null, nil
		}
		return Null, fmt.Errorf("value: cannot parse %q as null", s)
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("value: cannot parse %q as bool: %v", s, err)
		}
		return Bool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("value: cannot parse %q as int: %v", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("value: cannot parse %q as float: %v", s, err)
		}
		return Float(f), nil
	case KindString:
		return Str(s), nil
	case KindTime:
		for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
			if t, err := time.Parse(layout, s); err == nil {
				return Time(t), nil
			}
		}
		return Null, fmt.Errorf("value: cannot parse %q as time", s)
	case KindDuration:
		d, err := time.ParseDuration(s)
		if err != nil {
			return Null, fmt.Errorf("value: cannot parse %q as duration: %v", s, err)
		}
		return Duration(d), nil
	}
	return Null, fmt.Errorf("value: unknown kind %v", k)
}

// CoercibleTo reports whether a value of kind from may be stored in a column
// declared with kind to without loss of intent (exact kind match, int→float
// widening, or anything into a null-kinded wildcard column).
func CoercibleTo(from, to Kind) bool {
	if from == to || from == KindNull {
		return true
	}
	if from == KindInt && to == KindFloat {
		return true
	}
	return false
}

// Coerce converts v to kind to when CoercibleTo allows it.
func Coerce(v Value, to Kind) (Value, error) {
	if v.kind == to || v.kind == KindNull {
		return v, nil
	}
	if v.kind == KindInt && to == KindFloat {
		return Float(float64(v.i)), nil
	}
	return Null, fmt.Errorf("value: cannot coerce %v to %v", v.kind, to)
}
