package value

import (
	"fmt"
	"time"
)

// Arithmetic on values, used by the QQL expression evaluator. The rules are
// deliberately small: int op int stays int, any float operand widens to
// float, time - time yields duration, time ± duration yields time, string +
// string concatenates. Null propagates through every operator.

// Add returns a + b.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindString && b.kind == KindString:
		return Str(a.s + b.s), nil
	case a.kind == KindTime && b.kind == KindDuration:
		return Time(a.t.Add(time.Duration(b.i))), nil
	case a.kind == KindDuration && b.kind == KindTime:
		return Time(b.t.Add(time.Duration(a.i))), nil
	case a.kind == KindDuration && b.kind == KindDuration:
		return Duration(time.Duration(a.i + b.i)), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i + b.i), nil
	case a.Numeric() && b.Numeric():
		return Float(a.AsFloat() + b.AsFloat()), nil
	}
	return Null, fmt.Errorf("value: cannot add %v and %v", a.kind, b.kind)
}

// Sub returns a - b.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindTime && b.kind == KindTime:
		return Duration(a.t.Sub(b.t)), nil
	case a.kind == KindTime && b.kind == KindDuration:
		return Time(a.t.Add(-time.Duration(b.i))), nil
	case a.kind == KindDuration && b.kind == KindDuration:
		return Duration(time.Duration(a.i - b.i)), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i - b.i), nil
	case a.Numeric() && b.Numeric():
		return Float(a.AsFloat() - b.AsFloat()), nil
	}
	return Null, fmt.Errorf("value: cannot subtract %v from %v", b.kind, a.kind)
}

// Mul returns a * b.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i * b.i), nil
	case a.kind == KindDuration && b.kind == KindInt:
		return Duration(time.Duration(a.i * b.i)), nil
	case a.kind == KindInt && b.kind == KindDuration:
		return Duration(time.Duration(a.i * b.i)), nil
	case a.Numeric() && b.Numeric() && a.kind != KindDuration && b.kind != KindDuration:
		return Float(a.AsFloat() * b.AsFloat()), nil
	}
	return Null, fmt.Errorf("value: cannot multiply %v and %v", a.kind, b.kind)
}

// Div returns a / b. Integer division of ints; division by zero is an error.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null, fmt.Errorf("value: integer division by zero")
		}
		return Int(a.i / b.i), nil
	case a.kind == KindDuration && b.kind == KindInt:
		if b.i == 0 {
			return Null, fmt.Errorf("value: duration division by zero")
		}
		return Duration(time.Duration(a.i / b.i)), nil
	case a.Numeric() && b.Numeric() && a.kind != KindDuration && b.kind != KindDuration:
		if b.AsFloat() == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return Float(a.AsFloat() / b.AsFloat()), nil
	}
	return Null, fmt.Errorf("value: cannot divide %v by %v", a.kind, b.kind)
}

// Neg returns -a for numeric and duration values.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	case KindDuration:
		return Duration(-time.Duration(a.i)), nil
	default: // bool, string, time: negation is a type error
		return Null, fmt.Errorf("value: cannot negate %v", a.kind)
	}
}
