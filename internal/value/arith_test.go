package value

import (
	"testing"
	"time"
)

// mustV unwraps an (Value, error) pair, panicking on error; the panic is
// surfaced by the testing framework with a stack pointing at the call site.
func mustV(v Value, err error) Value {
	if err != nil {
		panic(err)
	}
	return v
}

func TestAdd(t *testing.T) {
	now := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := mustV(Add(Int(2), Int(3))); !Equal(got, Int(5)) || got.Kind() != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(Int(2), Float(0.5))); got.Kind() != KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Add(Str("ab"), Str("cd"))); got.AsString() != "abcd" {
		t.Errorf("string concat = %v", got)
	}
	if got := mustV(Add(Time(now), Duration(time.Hour))); !got.AsTime().Equal(now.Add(time.Hour)) {
		t.Errorf("time+dur = %v", got)
	}
	if got := mustV(Add(Duration(time.Hour), Time(now))); !got.AsTime().Equal(now.Add(time.Hour)) {
		t.Errorf("dur+time = %v", got)
	}
	if got := mustV(Add(Duration(time.Hour), Duration(time.Minute))); got.AsDuration() != time.Hour+time.Minute {
		t.Errorf("dur+dur = %v", got)
	}
	if got := mustV(Add(Null, Int(1))); !got.IsNull() {
		t.Error("null propagation broken in Add")
	}
	if _, err := Add(Str("x"), Int(1)); err == nil {
		t.Error("string+int should fail")
	}
}

func TestSub(t *testing.T) {
	now := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := mustV(Sub(Int(5), Int(3))); !Equal(got, Int(2)) {
		t.Errorf("5-3 = %v", got)
	}
	if got := mustV(Sub(Time(now.Add(time.Hour)), Time(now))); got.AsDuration() != time.Hour {
		t.Errorf("time-time = %v", got)
	}
	if got := mustV(Sub(Time(now), Duration(time.Hour))); !got.AsTime().Equal(now.Add(-time.Hour)) {
		t.Errorf("time-dur = %v", got)
	}
	if got := mustV(Sub(Duration(time.Hour), Duration(time.Minute))); got.AsDuration() != 59*time.Minute {
		t.Errorf("dur-dur = %v", got)
	}
	if got := mustV(Sub(Float(1), Int(2))); got.AsFloat() != -1 {
		t.Errorf("1.0-2 = %v", got)
	}
	if got := mustV(Sub(Int(1), Null)); !got.IsNull() {
		t.Error("null propagation broken in Sub")
	}
	if _, err := Sub(Str("a"), Str("b")); err == nil {
		t.Error("string-string should fail")
	}
}

func TestMulDiv(t *testing.T) {
	if got := mustV(Mul(Int(6), Int(7))); !Equal(got, Int(42)) {
		t.Errorf("6*7 = %v", got)
	}
	if got := mustV(Mul(Duration(time.Minute), Int(3))); got.AsDuration() != 3*time.Minute {
		t.Errorf("dur*int = %v", got)
	}
	if got := mustV(Mul(Float(1.5), Int(2))); got.AsFloat() != 3 {
		t.Errorf("1.5*2 = %v", got)
	}
	if got := mustV(Div(Int(7), Int(2))); !Equal(got, Int(3)) {
		t.Errorf("7/2 = %v (integer division expected)", got)
	}
	if got := mustV(Div(Float(7), Int(2))); got.AsFloat() != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Div(Duration(time.Hour), Int(2))); got.AsDuration() != 30*time.Minute {
		t.Errorf("dur/int = %v", got)
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("int div by zero should fail")
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Error("float div by zero should fail")
	}
	if _, err := Div(Duration(time.Hour), Int(0)); err == nil {
		t.Error("duration div by zero should fail")
	}
	if got := mustV(Mul(Null, Int(2))); !got.IsNull() {
		t.Error("null propagation broken in Mul")
	}
	if got := mustV(Div(Null, Int(2))); !got.IsNull() {
		t.Error("null propagation broken in Div")
	}
}

func TestNeg(t *testing.T) {
	if got := mustV(Neg(Int(5))); !Equal(got, Int(-5)) {
		t.Errorf("-5 = %v", got)
	}
	if got := mustV(Neg(Float(2.5))); got.AsFloat() != -2.5 {
		t.Errorf("-2.5 = %v", got)
	}
	if got := mustV(Neg(Duration(time.Hour))); got.AsDuration() != -time.Hour {
		t.Errorf("-1h = %v", got)
	}
	if got := mustV(Neg(Null)); !got.IsNull() {
		t.Error("Neg(null) should be null")
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Error("Neg(string) should fail")
	}
}
