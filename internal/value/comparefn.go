package value

import (
	"math"
	"strings"
	"time"
)

// CompareFn returns a comparator specialized for the fixed right operand k,
// equivalent to func(v *Value) int { return ComparePtr(v, &k) } but with
// the kind dispatch and constant decoding hoisted out of the per-value
// loop. It exists for the vectorized tier's comparison kernels, which call
// the comparator once per row slot of a column run: the common case — run
// values whose kind matches the constant's — reduces to one machine
// comparison on the already-loaded field, and every other case falls back
// to ComparePtr, so the specialization can never change an ordering.
func CompareFn(k Value) func(v *Value) int {
	switch k.kind {
	case KindInt, KindBool, KindDuration:
		ki := k.i
		kf := float64(ki)
		return func(v *Value) int {
			switch v.kind {
			case KindInt, KindBool, KindDuration:
				switch {
				case v.i < ki:
					return -1
				case v.i > ki:
					return 1
				}
				return 0
			case KindFloat:
				// Mirrors compareNumeric with a non-NaN right operand.
				af := v.f
				switch {
				case math.IsNaN(af):
					return -1
				case af < kf:
					return -1
				case af > kf:
					return 1
				}
				return 0
			default: // nulls, mixed kinds: the general ordering
				return ComparePtr(v, &k)
			}
		}
	case KindFloat:
		kf := k.f
		kNaN := math.IsNaN(kf)
		return func(v *Value) int {
			switch v.kind {
			case KindInt, KindBool, KindDuration, KindFloat:
				af := v.AsFloat()
				aNaN := math.IsNaN(af)
				switch {
				case aNaN && kNaN:
					return 0
				case aNaN:
					return -1
				case kNaN:
					return 1
				case af < kf:
					return -1
				case af > kf:
					return 1
				}
				return 0
			default: // nulls, mixed kinds: the general ordering
				return ComparePtr(v, &k)
			}
		}
	case KindString:
		ks := k.s
		return func(v *Value) int {
			if v.kind == KindString {
				return strings.Compare(v.s, ks)
			}
			return ComparePtr(v, &k)
		}
	case KindTime:
		kt := k.t
		return func(v *Value) int {
			if v.kind == KindTime {
				switch {
				case v.t.Before(kt):
					return -1
				case v.t.After(kt):
					return 1
				}
				return 0
			}
			return ComparePtr(v, &k)
		}
	default: // KindNull: no specialization beats the general ordering
		kk := k
		return func(v *Value) int { return ComparePtr(v, &kk) }
	}
}

// timeSentinel keeps the time import anchored to this file's purpose.
var _ = time.Time{}
