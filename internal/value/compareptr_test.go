package value

import (
	"math"
	"testing"
	"time"
)

// TestComparePtrAgreesWithCompare pins the pointer-based comparator to the
// canonical one across the kind matrix, nulls and NaN included.
func TestComparePtrAgreesWithCompare(t *testing.T) {
	vals := []Value{
		Null,
		Bool(false), Bool(true),
		Int(-3), Int(0), Int(42),
		Float(-0.5), Float(42), Float(math.NaN()),
		Str(""), Str("a"), Str("b"),
		Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)),
		Time(time.Date(1993, 4, 1, 0, 0, 0, 0, time.UTC)),
		Duration(time.Hour),
	}
	for _, a := range vals {
		for _, b := range vals {
			want := Compare(a, b)
			if got := ComparePtr(&a, &b); got != want {
				t.Errorf("ComparePtr(%v, %v) = %d, Compare = %d", a, b, got, want)
			}
		}
	}
}
