package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindTime: "time", KindDuration: "duration",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"int", KindInt}, {"INTEGER", KindInt}, {"bigint", KindInt},
		{"string", KindString}, {"TEXT", KindString}, {"varchar", KindString},
		{"float", KindFloat}, {"double", KindFloat},
		{"bool", KindBool}, {"boolean", KindBool},
		{"time", KindTime}, {"timestamp", KindTime},
		{"duration", KindDuration}, {"interval", KindDuration},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	now := time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool roundtrip broken")
	}
	if Int(42).AsInt() != 42 {
		t.Error("Int roundtrip broken")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float roundtrip broken")
	}
	if Str("hi").AsString() != "hi" {
		t.Error("Str roundtrip broken")
	}
	if !Time(now).AsTime().Equal(now) {
		t.Error("Time roundtrip broken")
	}
	if Duration(3*time.Hour).AsDuration() != 3*time.Hour {
		t.Error("Duration roundtrip broken")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
	if Float(7.9).AsInt() != 7 {
		t.Error("AsInt truncation broken")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat widening broken")
	}
}

func TestCompareOrdering(t *testing.T) {
	now := time.Now()
	// Ascending chain across kinds and within kinds.
	chain := []Value{
		Null,
		Bool(false),
		Bool(true), // == Int(1) numerically; strictly after 0
		Int(2),
		Float(2.5),
		Int(3),
		Duration(4), // 4ns, numeric rank
		Str("a"),
		Str("b"),
		Time(now),
		Time(now.Add(time.Second)),
	}
	for i := range chain {
		for j := range chain {
			got := Compare(chain[i], chain[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", chain[i], chain[j], got, want)
			}
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Compare(Bool(true), Int(1)) != 0 {
		t.Error("Bool(true) should equal Int(1) numerically")
	}
	if !Less(Float(1.5), Int(2)) {
		t.Error("1.5 < 2 expected")
	}
	if Compare(Float(math.NaN()), Float(math.NaN())) != 0 {
		t.Error("NaN should equal NaN for ordering totality")
	}
	if !Less(Float(math.NaN()), Float(0)) {
		t.Error("NaN should sort before numbers")
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(7) {
	case 0:
		return Null
	case 1:
		return Bool(r.Intn(2) == 1)
	case 2:
		return Int(r.Int63n(1000) - 500)
	case 3:
		return Float(r.Float64()*100 - 50)
	case 4:
		letters := []byte("abcdefg")
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	case 5:
		return Time(time.Unix(r.Int63n(1e9), 0))
	default:
		return Duration(time.Duration(r.Int63n(1e12)))
	}
}

type valueGen struct{ V Value }

func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity-consistency via sign checks.
	antisym := func(a, b valueGen) bool {
		return Compare(a.V, b.V) == -Compare(b.V, a.V)
	}
	if err := quick.Check(antisym, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c valueGen) bool {
		x, y, z := a.V, b.V, c.V
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	reflexive := func(a valueGen) bool { return Compare(a.V, a.V) == 0 }
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	prop := func(a, b valueGen) bool {
		if Equal(a.V, b.V) {
			return a.V.Hash() == b.V.Hash()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Cross-kind numeric equality must hash equal.
	if Int(2).Hash() != Float(2.0).Hash() {
		t.Error("Int(2) and Float(2.0) must hash equal")
	}
	if Bool(true).Hash() != Int(1).Hash() {
		t.Error("Bool(true) and Int(1) must hash equal")
	}
}

func TestStringAndParseRoundtrip(t *testing.T) {
	vals := []Value{
		Bool(true), Bool(false), Int(-7), Int(0), Float(3.25),
		Str("hello world"), Time(time.Date(2020, 5, 4, 3, 2, 1, 0, time.UTC)),
		Duration(90 * time.Minute), Null,
	}
	for _, v := range vals {
		got, err := Parse(v.Kind(), v.String())
		if err != nil {
			t.Errorf("Parse(%v, %q): %v", v.Kind(), v.String(), err)
			continue
		}
		if !Equal(got, v) {
			t.Errorf("roundtrip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		k Kind
		s string
	}{
		{KindInt, "x"}, {KindFloat, "x"}, {KindBool, "maybe"},
		{KindTime, "not a time"}, {KindDuration, "5 parsecs"}, {KindNull, "something"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.k, tc.s); err == nil {
			t.Errorf("Parse(%v, %q) should fail", tc.k, tc.s)
		}
	}
}

func TestParseTimeLayouts(t *testing.T) {
	for _, s := range []string{"2021-03-04T05:06:07Z", "2021-03-04 05:06:07", "2021-03-04"} {
		v, err := Parse(KindTime, s)
		if err != nil {
			t.Errorf("Parse time %q: %v", s, err)
			continue
		}
		if v.AsTime().Year() != 2021 {
			t.Errorf("Parse time %q: got %v", s, v)
		}
	}
}

func TestLiteral(t *testing.T) {
	if got := Str("o'brien").Literal(); got != "'o''brien'" {
		t.Errorf("string literal = %q", got)
	}
	if got := Int(5).Literal(); got != "5" {
		t.Errorf("int literal = %q", got)
	}
	if got := Duration(time.Hour).Literal(); got != "d'1h0m0s'" {
		t.Errorf("duration literal = %q", got)
	}
	tm := time.Date(1991, 1, 2, 0, 0, 0, 0, time.UTC)
	if got := Time(tm).Literal(); got != "t'1991-01-02T00:00:00Z'" {
		t.Errorf("time literal = %q", got)
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Int(3), KindFloat)
	if err != nil || v.Kind() != KindFloat || v.AsFloat() != 3.0 {
		t.Errorf("Coerce int->float: %v, %v", v, err)
	}
	if _, err := Coerce(Str("x"), KindInt); err == nil {
		t.Error("Coerce string->int should fail")
	}
	if v, err := Coerce(Null, KindInt); err != nil || !v.IsNull() {
		t.Error("Coerce null should pass through")
	}
	if !CoercibleTo(KindInt, KindFloat) || CoercibleTo(KindFloat, KindInt) {
		t.Error("CoercibleTo asymmetry broken")
	}
}

func TestNumeric(t *testing.T) {
	if !Int(1).Numeric() || !Float(1).Numeric() || !Bool(true).Numeric() || !Duration(1).Numeric() {
		t.Error("numeric kinds misreported")
	}
	if Str("1").Numeric() || Null.Numeric() || Time(time.Now()).Numeric() {
		t.Error("non-numeric kinds misreported")
	}
}
