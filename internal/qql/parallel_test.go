package qql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/value"
)

// bigCatalog returns a session over a table spanning several heap segments
// (no secondary indexes), so unindexed scans are eligible for fan-out.
func bigCatalog(t *testing.T, n int) (*Session, *storage.Table) {
	t.Helper()
	cat := storage.NewCatalog()
	s := NewSession(cat)
	s.MustExec(`CREATE TABLE big (id int REQUIRED, grp string, qty int) KEY (id)`)
	tbl, _ := cat.Get("big")
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(relation.NewTuple(
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("g%d", i%7)),
			value.Int(int64((i*37)%1000)),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	return s, tbl
}

func TestPlanRoutesLargeScansThroughParallelScan(t *testing.T) {
	const n = 2*storage.SegmentSize + 100 // 3 segments
	s, _ := bigCatalog(t, n)
	s.SetParallelism(8)

	// Unindexed filtered scan: ParallelScan with the predicate fused,
	// degree clamped to the segment count.
	res := s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500`)
	if !strings.Contains(res[0].Plan, "ParallelScan(big, ×3: ") {
		t.Errorf("plan missing fused ParallelScan:\n%s", res[0].Plan)
	}
	if strings.Contains(res[0].Plan, "Select(") {
		t.Errorf("fused predicate should consume the Select step:\n%s", res[0].Plan)
	}
	// No predicate: still parallel, no fused clause.
	res = s.MustExec(`EXPLAIN SELECT id FROM big`)
	if !strings.Contains(res[0].Plan, "ParallelScan(big, ×3)") {
		t.Errorf("bare scan plan:\n%s", res[0].Plan)
	}
	// A bare LIMIT stops pulling early: the lazy serial scan (one segment
	// cloned at a time) must win over fan-out workers that would eagerly
	// copy the whole table.
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500 LIMIT 5`)
	if !strings.Contains(res[0].Plan, "TableScan(big)") {
		t.Errorf("LIMIT plan should stay serial:\n%s", res[0].Plan)
	}
	// ...but LIMIT behind a Sort or an Aggregate drains the scan anyway,
	// so fan-out still applies.
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500 ORDER BY qty LIMIT 5`)
	if !strings.Contains(res[0].Plan, "ParallelScan(big, ×3") {
		t.Errorf("ORDER BY + LIMIT plan should fan out:\n%s", res[0].Plan)
	}
	res = s.MustExec(`EXPLAIN SELECT COUNT(*) AS n FROM big WHERE qty >= 500 LIMIT 1`)
	if !strings.Contains(res[0].Plan, "ParallelScan(big, ×3") {
		t.Errorf("aggregate + LIMIT plan should fan out:\n%s", res[0].Plan)
	}
	// Parallelism 1 forces the serial TableScan.
	s.SetParallelism(1)
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500`)
	if !strings.Contains(res[0].Plan, "TableScan(big)") {
		t.Errorf("serial plan:\n%s", res[0].Plan)
	}
	// An applicable index wins over fan-out.
	s.SetParallelism(8)
	s.MustExec(`CREATE INDEX ON big (qty) USING BTREE`)
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500`)
	if !strings.Contains(res[0].Plan, "IndexScan") {
		t.Errorf("indexed plan should not fan out:\n%s", res[0].Plan)
	}
}

// TestParallelQueryErrorReleasesWorkers: a projection error mid-stream
// over a parallel plan surfaces cleanly; the session releases the scan
// workers deterministically (plan.release) rather than leaking them to GC.
func TestParallelQueryErrorReleasesWorkers(t *testing.T) {
	const n = 2*storage.SegmentSize + 10
	s, _ := bigCatalog(t, n)
	s.SetParallelism(4)
	if _, err := s.Query(`SELECT id + grp AS broken FROM big`); err == nil {
		t.Fatal("int + string projection should error")
	}
	// The session stays usable afterwards.
	out, err := s.Query(`SELECT COUNT(*) AS n FROM big`)
	if err != nil || out.Tuples[0].Cells[0].V.AsInt() != n {
		t.Fatalf("after error: %v, %v", out, err)
	}
}

func TestSmallTablesStaySerial(t *testing.T) {
	s, _ := bigCatalog(t, 100)
	s.SetParallelism(8)
	res := s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 500`)
	if strings.Contains(res[0].Plan, "ParallelScan") {
		t.Errorf("small table should scan serially:\n%s", res[0].Plan)
	}
}

func TestParallelQueryMatchesSerial(t *testing.T) {
	const n = 2*storage.SegmentSize + 57
	s, tbl := bigCatalog(t, n)
	// Delete a scattering of rows so liveness holes cross segments.
	for i := 0; i < n; i += 11 {
		if err := tbl.Delete(storage.RowID(i)); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`SELECT * FROM big`,
		`SELECT id, qty FROM big WHERE qty >= 250 AND grp != 'g3'`,
		`SELECT grp, COUNT(*) AS n FROM big WHERE qty < 800 GROUP BY grp`,
		`SELECT id FROM big WHERE qty >= 100 ORDER BY qty DESC, id LIMIT 25`,
	}
	for _, q := range queries {
		s.SetParallelism(1)
		serial, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s serial: %v", q, err)
		}
		s.SetParallelism(6)
		par, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s parallel: %v", q, err)
		}
		if sf, pf := relation.Format(serial, true), relation.Format(par, true); sf != pf {
			t.Errorf("%s: parallel result differs from serial", q)
		}
	}
}
