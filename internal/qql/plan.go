package qql

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// resolver maps (alias, attribute) pairs to output column names of the
// joined stream, so qualified references like c.name keep working after
// joins rename colliding columns.
type resolver struct {
	entries []resolverEntry
}

type resolverEntry struct {
	alias, attr, out string
}

func (r *resolver) addTable(alias string, s *schema.Schema) {
	for _, a := range s.Attrs {
		r.entries = append(r.entries, resolverEntry{alias: alias, attr: a.Name, out: a.Name})
	}
}

// addJoined registers the right side of a join given the combined output
// schema: its columns occupy the tail of the output in order.
func (r *resolver) addJoined(alias string, right *schema.Schema, combined *schema.Schema) {
	offset := len(combined.Attrs) - len(right.Attrs)
	for i := range right.Attrs {
		r.entries = append(r.entries, resolverEntry{
			alias: alias,
			attr:  right.Attrs[i].Name,
			out:   combined.Attrs[offset+i].Name,
		})
	}
}

// resolve maps a possibly qualified name to an output column name.
func (r *resolver) resolve(name string) (string, error) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		alias, attr := name[:i], name[i+1:]
		for _, e := range r.entries {
			if e.alias == alias && e.attr == attr {
				return e.out, nil
			}
		}
		return "", fmt.Errorf("qql: unknown column %s", name)
	}
	var found []string
	for _, e := range r.entries {
		if e.attr == name {
			found = append(found, e.out)
		}
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		// The name may already be an output column (e.g. "stock_symbol").
		for _, e := range r.entries {
			if e.out == name {
				return name, nil
			}
		}
		return "", fmt.Errorf("qql: unknown column %s", name)
	default:
		if allSame(found) {
			return found[0], nil
		}
		return "", fmt.Errorf("qql: ambiguous column %s (qualify with an alias)", name)
	}
}

func allSame(s []string) bool {
	for _, v := range s[1:] {
		if v != s[0] {
			return false
		}
	}
	return true
}

// rewriteNames resolves qualified/ambiguous names inside an expression tree
// in place.
func (r *resolver) rewriteNames(e algebra.Expr) error {
	var firstErr error
	e.Walk(func(n algebra.Expr) {
		if firstErr != nil {
			return
		}
		switch v := n.(type) {
		case *algebra.ColRef:
			out, err := r.resolve(v.Name)
			if err != nil {
				firstErr = err
				return
			}
			v.Name = out
		case *algebra.IndRef:
			out, err := r.resolve(v.Col)
			if err != nil {
				firstErr = err
				return
			}
			v.Col = out
		case *algebra.MetaRef:
			out, err := r.resolve(v.Col)
			if err != nil {
				firstErr = err
				return
			}
			v.Col = out
		case *algebra.SrcContains:
			out, err := r.resolve(v.Col)
			if err != nil {
				firstErr = err
				return
			}
			v.Col = out
		}
	})
	return firstErr
}

// plan is the compiled form of a SELECT: an iterator plus the EXPLAIN text.
type plan struct {
	it    algebra.Iterator
	steps []string
	// stop releases background scan resources (parallel workers, buffered
	// segments); nil when the pipeline holds none.
	stop func()

	// analyze turns on per-operator instrumentation: every tapped operator
	// is wrapped so EXPLAIN ANALYZE can report actual rows/batches/time per
	// step. Plans built with analyze=false carry no wrappers and no stats —
	// the normal execution path pays nothing.
	analyze bool
	// stats[i] holds the actuals for steps[i]; nil for annotation-only
	// steps (the Vectorized header) and for every step of an un-analyzed
	// plan.
	stats []*algebra.OpStats
	// taps[i] is the instrument wrapper for steps[i] (nil when not
	// instrumented); kept so operator extra stats (parallel-scan worker
	// occupancy) can be harvested after execution.
	taps []any
}

// add records an annotation-only step (no operator, no actuals).
func (p *plan) add(step string) {
	p.steps = append(p.steps, step)
	if p.analyze {
		p.stats = append(p.stats, nil)
		p.taps = append(p.taps, nil)
	}
}

// tapIt records a step produced by a Volcano operator and, when the plan is
// analyzed, wraps the operator with a row/time counter. setup charges
// constructor work (an eager hash-join build or aggregate drain) to the
// operator's actuals.
func (p *plan) tapIt(step string, it algebra.Iterator, setup time.Duration) algebra.Iterator {
	p.steps = append(p.steps, step)
	if !p.analyze {
		return it
	}
	st := &algebra.OpStats{Nanos: int64(setup)}
	wrapped := algebra.NewInstrument(it, st)
	p.stats = append(p.stats, st)
	p.taps = append(p.taps, wrapped)
	return wrapped
}

// tapBit is tapIt for batch-tier operators; setup charges eager
// constructor work (the batch hash join's build-side transpose) to the
// operator's actuals.
func (p *plan) tapBit(step string, bit algebra.BatchIterator, setup time.Duration) algebra.BatchIterator {
	p.steps = append(p.steps, step)
	if !p.analyze {
		return bit
	}
	st := &algebra.OpStats{Nanos: int64(setup)}
	wrapped := algebra.NewBatchInstrument(bit, st)
	p.stats = append(p.stats, st)
	p.taps = append(p.taps, wrapped)
	return wrapped
}

// harvestExtras copies operator-specific actuals (worker occupancy) out of
// the instrumented operators into their OpStats; call after execution.
func (p *plan) harvestExtras() {
	for i, tap := range p.taps {
		if tap == nil || p.stats[i] == nil {
			continue
		}
		if ex, ok := tap.(algebra.ExtraStats); ok {
			if s := ex.ExtraStats(); s != "" {
				p.stats[i].Extra = s
			}
		}
	}
}

// release deterministically frees the plan's background resources; safe to
// call always (idempotent, nil-tolerant). Executors call it once the
// iterator will no longer be pulled — in particular after a mid-stream
// error, where relying on the finalizer would park workers until GC.
func (p *plan) release() {
	if p.stop != nil {
		p.stop()
	}
}

// shape renders the plan as a compact one-line pipeline for logs.
func (p *plan) shape() string { return strings.Join(p.steps, " -> ") }

func (p *plan) explain() string {
	var b strings.Builder
	for i, s := range p.steps {
		b.WriteString(strings.Repeat("  ", i))
		if i > 0 {
			b.WriteString("-> ")
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

// splitConjuncts flattens top-level ANDs.
func splitConjuncts(e algebra.Expr) []algebra.Expr {
	if l, ok := e.(*algebra.Logic); ok && l.Op == algebra.OpAnd {
		return append(splitConjuncts(l.L), splitConjuncts(l.R)...)
	}
	return []algebra.Expr{e}
}

// simplifyFilter splits a filter into conjuncts and constant-folds each
// (algebra.Simplify, at bind time — the tree is this execution's private
// clone). Conjuncts that fold to true are dropped — WHERE 1 = 1 loses its
// Select step entirely — and a conjunct that folds to any other constant
// (false, null, non-bool) can never be true, so the whole filter keeps
// nothing: neverTrue tells the caller to plan an empty scan. A nil filter
// yields no conjuncts.
//
// Deliberate semantics: a never-true filter is decided without evaluating
// its sibling conjuncts, so one that would error per row (1/0 = x, LIKE on
// an int) is skipped along with the scan — WHERE 1/0 = 1 AND 1 = 2 returns
// zero rows instead of a division error. That is the standard behavior of
// constant-folding planners (a one-time false filter suppresses row
// evaluation entirely), and both tiers share this path, so scalar and
// vectorized plans still agree byte for byte. Simplify itself never folds
// an erroring subtree: when such a conjunct IS evaluated, the error still
// surfaces.
func simplifyFilter(e algebra.Expr) (conjuncts []algebra.Expr, neverTrue bool) {
	if e == nil {
		return nil, false
	}
	for _, c := range splitConjuncts(e) {
		sc := algebra.Simplify(c)
		if truth, decided := algebra.ConstTruth(sc); decided {
			if !truth {
				return nil, true
			}
			continue // definitely true: contributes nothing
		}
		conjuncts = append(conjuncts, sc)
	}
	return conjuncts, false
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(es []algebra.Expr) algebra.Expr {
	var out algebra.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &algebra.Logic{Op: algebra.OpAnd, L: out, R: e}
		}
	}
	return out
}

// sarg describes one index-usable conjunct: target op const.
type sarg struct {
	target storage.IndexTarget
	op     algebra.CmpOp
	val    value.Value
	expr   algebra.Expr // the original conjunct
}

// extractSarg recognizes Cmp(colOrInd, const) and Cmp(const, colOrInd).
func extractSarg(e algebra.Expr) (sarg, bool) {
	cmp, ok := e.(*algebra.Cmp)
	if !ok {
		return sarg{}, false
	}
	targetOf := func(x algebra.Expr) (storage.IndexTarget, bool) {
		switch v := x.(type) {
		case *algebra.ColRef:
			return storage.IndexTarget{Attr: v.Name}, true
		case *algebra.IndRef:
			return storage.IndexTarget{Attr: v.Col, Indicator: v.Indicator}, true
		}
		return storage.IndexTarget{}, false
	}
	if t, ok := targetOf(cmp.L); ok {
		if c, ok := cmp.R.(*algebra.Const); ok {
			return sarg{target: t, op: cmp.Op, val: c.V, expr: e}, true
		}
	}
	if t, ok := targetOf(cmp.R); ok {
		if c, ok := cmp.L.(*algebra.Const); ok {
			return sarg{target: t, op: flipOp(cmp.Op), val: c.V, expr: e}, true
		}
	}
	return sarg{}, false
}

func flipOp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.OpLt:
		return algebra.OpGt
	case algebra.OpLe:
		return algebra.OpGe
	case algebra.OpGt:
		return algebra.OpLt
	case algebra.OpGe:
		return algebra.OpLe
	default:
		return op // Eq, Ne symmetric
	}
}

// chooseIndexScan picks an indexed access path from the conjuncts of the
// WHERE and WITH QUALITY clauses. It returns the iterator and a
// description, or ok=false when no index applies. The conjuncts it prunes
// by are not consumed: the caller re-checks them in a Select, since the
// lazy index scan fetches rows at pull time.
func chooseIndexScan(tbl *storage.Table, conjuncts []algebra.Expr) (algebra.Iterator, string, bool) {
	type candidate struct {
		target storage.IndexTarget
		sargs  []sarg
		ranged bool
	}
	byTarget := map[storage.IndexTarget]*candidate{}
	var order []storage.IndexTarget
	for _, c := range conjuncts {
		sg, ok := extractSarg(c)
		if !ok || sg.op == algebra.OpNe {
			continue
		}
		exists, ranged := tbl.HasIndex(sg.target)
		if !exists {
			continue
		}
		if sg.op != algebra.OpEq && !ranged {
			continue
		}
		cand, ok := byTarget[sg.target]
		if !ok {
			cand = &candidate{target: sg.target, ranged: ranged}
			byTarget[sg.target] = cand
			order = append(order, sg.target)
		}
		cand.sargs = append(cand.sargs, sg)
	}
	// Prefer a target with an equality sarg, else the first range target.
	var chosen *candidate
	for _, t := range order {
		c := byTarget[t]
		for _, sg := range c.sargs {
			if sg.op == algebra.OpEq {
				chosen = c
				break
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil && len(order) > 0 {
		chosen = byTarget[order[0]]
	}
	if chosen == nil {
		return nil, "", false
	}
	lo, hi := storage.Unbounded, storage.Unbounded
	var descParts []string
	for _, sg := range chosen.sargs {
		switch sg.op {
		case algebra.OpEq:
			lo, hi = storage.Incl(sg.val), storage.Incl(sg.val)
		case algebra.OpGt:
			lo = tighterLow(lo, storage.Excl(sg.val))
		case algebra.OpGe:
			lo = tighterLow(lo, storage.Incl(sg.val))
		case algebra.OpLt:
			hi = tighterHigh(hi, storage.Excl(sg.val))
		case algebra.OpLe:
			hi = tighterHigh(hi, storage.Incl(sg.val))
		default:
			// OpNe never forms a sarg: an exclusion is not a range bound.
		}
		descParts = append(descParts, sg.expr.String())
		if sg.op == algebra.OpEq {
			break // equality pins the range; stop accumulating
		}
	}
	it, err := algebra.NewIndexScan(tbl, chosen.target, lo, hi)
	if err != nil {
		return nil, "", false
	}
	desc := fmt.Sprintf("IndexScan(%s on %s: %s)", tbl.Schema().Name, chosen.target, strings.Join(descParts, " AND "))
	return it, desc, true
}

func tighterLow(a, b storage.Bound) storage.Bound {
	if a.Unbounded {
		return b
	}
	if b.Unbounded {
		return a
	}
	c := value.Compare(a.Value, b.Value)
	if c > 0 || (c == 0 && !a.Inclusive) {
		return a
	}
	return b
}

func tighterHigh(a, b storage.Bound) storage.Bound {
	if a.Unbounded {
		return b
	}
	if b.Unbounded {
		return a
	}
	c := value.Compare(a.Value, b.Value)
	if c < 0 || (c == 0 && !a.Inclusive) {
		return a
	}
	return b
}

// segPrunes turns the sargable filter conjuncts into segment-skipping
// prunes for the columnar scan: column⊗constant comparisons whose
// per-segment min/max statistics can refute whole segments. Indicator
// targets carry no column statistics and a null constant never compares
// definitely-true, so both are skipped. The conjuncts are not consumed —
// pruning only drops segments where the predicate cannot hold for any
// row, and the Select above the scan still filters the survivors.
func segPrunes(conjuncts []algebra.Expr, sch *schema.Schema) []algebra.SegPrune {
	var out []algebra.SegPrune
	for _, c := range conjuncts {
		sg, ok := extractSarg(c)
		if !ok || sg.target.Indicator != "" || sg.val.IsNull() {
			continue
		}
		idx := sch.ColIndex(sg.target.Attr)
		if idx < 0 {
			continue
		}
		out = append(out, algebra.SegPrune{Col: idx, Op: sg.op, K: sg.val})
	}
	return out
}

// batchScanCols computes which base-table columns a single-table batch
// plan touches, so the columnar scan materializes only those. A sort
// reads whole rows (the batch section closes before ORDER BY in the
// non-aggregate path) and a star projection touches everything, so both
// request the full column list; so does any name that resolves to no base
// column (conservative — it should not happen after prepare). A bare
// COUNT(*) legitimately requests zero columns: the batches then carry
// only their row count.
func batchScanCols(st *SelectStmt, sch *schema.Schema, conjuncts []algebra.Expr, hasAgg bool) []int {
	full := func() []int {
		cols := make([]int, len(sch.Attrs))
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	if !hasAgg && len(st.OrderBy) > 0 {
		return full()
	}
	seen := make(map[int]bool, len(sch.Attrs))
	cols := []int{}
	all := false
	addName := func(name string) {
		idx := sch.ColIndex(name)
		if idx < 0 {
			all = true
			return
		}
		if !seen[idx] {
			seen[idx] = true
			cols = append(cols, idx)
		}
	}
	addExpr := func(e algebra.Expr) {
		e.Walk(func(n algebra.Expr) {
			switch v := n.(type) {
			case *algebra.ColRef:
				addName(v.Name)
			case *algebra.IndRef:
				addName(v.Col)
			case *algebra.MetaRef:
				addName(v.Col)
			case *algebra.SrcContains:
				addName(v.Col)
			}
		})
	}
	for _, c := range conjuncts {
		addExpr(c)
	}
	for _, g := range st.GroupBy {
		addExpr(g)
	}
	for _, item := range st.Items {
		switch {
		case item.Star:
			all = true
		case item.Agg != nil:
			if item.Agg.Arg != nil {
				addExpr(item.Agg.Arg)
			}
		default:
			addExpr(item.Expr)
		}
	}
	if all {
		return full()
	}
	sort.Ints(cols)
	return cols
}

// equiJoinKeys recognizes an equi-join condition left.col = right.col where
// the two sides resolve into the two inputs.
func equiJoinKeys(on algebra.Expr, left, right *schema.Schema) (lk, rk algebra.Expr, residual algebra.Expr, ok bool) {
	conjuncts := splitConjuncts(on)
	var rest []algebra.Expr
	for _, c := range conjuncts {
		if lk != nil {
			rest = append(rest, c)
			continue
		}
		cmp, isCmp := c.(*algebra.Cmp)
		if !isCmp || cmp.Op != algebra.OpEq {
			rest = append(rest, c)
			continue
		}
		lref, lok := cmp.L.(*algebra.ColRef)
		rref, rok := cmp.R.(*algebra.ColRef)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		switch {
		case left.ColIndex(lref.Name) >= 0 && right.ColIndex(rref.Name) >= 0:
			lk, rk = &algebra.ColRef{Name: lref.Name}, &algebra.ColRef{Name: rref.Name}
		case left.ColIndex(rref.Name) >= 0 && right.ColIndex(lref.Name) >= 0:
			lk, rk = &algebra.ColRef{Name: rref.Name}, &algebra.ColRef{Name: lref.Name}
		default:
			rest = append(rest, c)
		}
	}
	if lk == nil {
		return nil, nil, nil, false
	}
	return lk, rk, andAll(rest), true
}

// preparedSelect is the bound-plan cache artifact: a SELECT whose names
// have been fully resolved against one generation of the referenced
// tables' schemas, plus the (catalog, table, schema version) triple that
// resolution assumed. The statement is pristine — it is never executed,
// only cloned — so a cached prepared plan can be instantiated concurrently
// by many sessions without sharing mutable expression or iterator state.
type preparedSelect struct {
	stmt     *SelectStmt // resolved; clone before building
	cat      *storage.Catalog
	tables   []string // referenced table names, FROM first
	versions []uint64 // schema versions captured atomically with the tables
}

// referencedTables lists the distinct tables the SELECT reads, FROM first.
func referencedTables(st *SelectStmt) []string {
	names := []string{st.From.Table}
	seen := map[string]bool{st.From.Table: true}
	for _, j := range st.Joins {
		if !seen[j.Ref.Table] {
			seen[j.Ref.Table] = true
			names = append(names, j.Ref.Table)
		}
	}
	return names
}

// aliasedSchema returns the schema under the stream name the build phase
// will give it via NewRename; join collision-renaming depends on it.
func aliasedSchema(s *schema.Schema, alias string) *schema.Schema {
	if alias == "" || alias == s.Name {
		return s
	}
	c := s.Clone()
	c.Name = alias
	return c
}

// prepareSelect resolves st's names in place against the current schemas of
// every referenced table and captures those tables and their schema
// versions (read atomically, before resolution — a version read later than
// its schema could tag a plan compiled against the old schema with the new
// version, making a stale plan validate). The returned prepared plan owns
// st; the table map feeds an immediate buildSelect of the same generation.
func (s *Session) prepareSelect(st *SelectStmt) (*preparedSelect, map[string]*storage.Table, error) {
	if s.analyze {
		defer func(t0 time.Time) { s.prepDur = time.Since(t0) }(time.Now())
	}
	names := referencedTables(st)
	tables, versions, missing := s.cat.Resolve(names)
	if missing != "" {
		return nil, nil, fmt.Errorf("qql: unknown table %q", missing)
	}

	res := &resolver{}
	if len(st.Joins) == 0 {
		res.addTable(st.From.Alias, tables[st.From.Table].Schema())
	} else {
		cur := aliasedSchema(tables[st.From.Table].Schema(), st.From.Alias)
		res.addTable(st.From.Alias, cur)
		for _, j := range st.Joins {
			right := aliasedSchema(tables[j.Ref.Table].Schema(), j.Ref.Alias)
			// Resolve the ON expression against a provisional resolver that
			// includes the right side mapped to its own names.
			provisional := &resolver{entries: append([]resolverEntry(nil), res.entries...)}
			provisional.addTable(j.Ref.Alias, right)
			if err := provisional.rewriteNames(j.On); err != nil {
				return nil, nil, err
			}
			combined, err := algebra.JoinSchema(cur, right)
			if err != nil {
				return nil, nil, err
			}
			res.addJoined(j.Ref.Alias, right, combined)
			cur = combined
		}
	}

	if st.Where != nil {
		if err := res.rewriteNames(st.Where); err != nil {
			return nil, nil, err
		}
	}
	if st.Quality != nil {
		if err := res.rewriteNames(st.Quality); err != nil {
			return nil, nil, err
		}
	}

	hasAgg := len(st.GroupBy) > 0
	for _, item := range st.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		for _, g := range st.GroupBy {
			if err := res.rewriteNames(g); err != nil {
				return nil, nil, err
			}
		}
		for _, item := range st.Items {
			switch {
			case item.Star:
				// Rejected at build time: * cannot combine with aggregates.
			case item.Agg != nil:
				if item.Agg.Arg != nil {
					if err := res.rewriteNames(item.Agg.Arg); err != nil {
						return nil, nil, err
					}
				}
			default:
				if err := res.rewriteNames(item.Expr); err != nil {
					return nil, nil, err
				}
			}
		}
		// ORDER BY in the aggregate path binds against the aggregate's
		// output columns, not the input schema: no resolution here.
	} else {
		for _, item := range st.Items {
			if item.Star {
				continue // expanded against the stream schema at build time
			}
			if err := res.rewriteNames(item.Expr); err != nil {
				return nil, nil, err
			}
		}
		// ORDER BY may reference projection aliases; substitute their
		// definitions, then resolve what remains. Star expansions are plain
		// column references and never substituted.
		pseudo := make([]algebra.ProjectItem, 0, len(st.Items))
		for _, item := range st.Items {
			if item.Star {
				continue
			}
			as := item.As
			if as == "" {
				if cr, ok := item.Expr.(*algebra.ColRef); ok {
					as = cr.Name
				}
			}
			pseudo = append(pseudo, algebra.ProjectItem{Expr: item.Expr, As: as})
		}
		for i := range st.OrderBy {
			substituteAliases(st.OrderBy[i].Expr, pseudo, &st.OrderBy[i].Expr)
			if err := res.rewriteNames(st.OrderBy[i].Expr); err != nil {
				return nil, nil, err
			}
		}
	}
	return &preparedSelect{stmt: st, cat: s.cat, tables: names, versions: versions}, tables, nil
}

// planSelect compiles a SELECT in one shot: prepare (name resolution +
// version capture) then build. Plan-cache hits skip the prepare phase and
// build straight from a clone of the cached prepared statement.
func (s *Session) planSelect(st *SelectStmt) (*plan, error) {
	prep, tables, err := s.prepareSelect(st)
	if err != nil {
		return nil, err
	}
	return s.buildSelect(prep.stmt, tables)
}

// buildSelect compiles a resolved SELECT into an iterator pipeline over the
// given tables. It never resolves names — prepareSelect has already
// rewritten every reference to an output column name — so it is re-entrant
// over clones of one cached prepared statement: each build binds its own
// private expression copies and constructs fresh iterators.
func (s *Session) buildSelect(st *SelectStmt, tables map[string]*storage.Table) (*plan, error) {
	if s.analyze {
		defer func(t0 time.Time) { s.buildDur = time.Since(t0) }(time.Now())
	}
	p := &plan{analyze: s.analyze}

	baseTable, ok := tables[st.From.Table]
	if !ok {
		return nil, fmt.Errorf("qql: unknown table %q", st.From.Table)
	}

	singleTable := len(st.Joins) == 0

	hasAgg := len(st.GroupBy) > 0
	for _, item := range st.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	// A scan feeding a Sort or an Aggregate is always drained; under a bare
	// LIMIT the consumer stops early, and the lazy serial scan (which clones
	// one segment at a time) beats fan-out workers that would eagerly copy
	// the whole table into their output buffers.
	consumesAll := st.Limit < 0 || len(st.OrderBy) > 0 || hasAgg

	whereConjuncts, whereNever := simplifyFilter(st.Where)
	qualityConjuncts, qualityNever := simplifyFilter(st.Quality)
	neverTrue := whereNever || qualityNever

	// it is the row stream; bit, when non-nil, is a vectorized source the
	// batch-native operators extend until the plan leaves the batch tier.
	var it algebra.Iterator
	var bit algebra.BatchIterator
	if singleTable {
		all := append(append([]algebra.Expr(nil), whereConjuncts...), qualityConjuncts...)
		if neverTrue {
			// A filter simplified to a constant that is not true keeps no
			// rows: skip the access path entirely.
			it = p.tapIt(fmt.Sprintf("EmptyScan(%s)", st.From.Table), algebra.NewEmptyScan(baseTable.Schema()), 0)
			whereConjuncts, qualityConjuncts = nil, nil
		} else if ix, desc, ok := chooseIndexScan(baseTable, all); ok {
			// The sarg conjuncts stay in the Select below even though the
			// index already pruned by them: the lazy index scan fetches
			// tuples at pull time, so a row updated after the index lookup
			// could otherwise slip into the result no longer satisfying the
			// predicate. Re-checking is cheap relative to the pruning win.
			it = p.tapIt(desc, ix, 0)
		} else if s.vec {
			// Vectorized tier: batch-at-a-time over zero-clone segment
			// reads. Safe because every row that reaches the result passes
			// through a projection or aggregation that rebuilds its cells.
			if s.vecComp {
				p.add(fmt.Sprintf("Vectorized(batch=%d, compiled)", s.batchSize))
			} else {
				p.add(fmt.Sprintf("Vectorized(batch=%d)", s.batchSize))
			}
			if degree := s.parallelDegree(baseTable); degree > 1 && consumesAll {
				// Workers produce filtered segments, the merge stays
				// row-ID-ordered, and batching picks up at the merge output.
				fused := andAll(all)
				pit, err := algebra.NewSharedParallelScan(baseTable, degree, fused, s.ctx, s.vecComp)
				if err != nil {
					return nil, err
				}
				desc := fmt.Sprintf("ParallelScan(%s, ×%d)", st.From.Table, degree)
				if fused != nil {
					desc = fmt.Sprintf("ParallelScan(%s, ×%d: %s)", st.From.Table, degree, fused.String())
				}
				bit = algebra.NewToBatch(p.tapIt(desc, pit, 0), s.batchSize)
				whereConjuncts, qualityConjuncts = nil, nil
			} else {
				// Serial columnar scan: materialize only the columns the
				// plan touches, and skip whole segments whose min/max
				// statistics refute a sargable conjunct. The conjuncts are
				// not consumed — pruning only removes segments where the
				// predicate cannot hold for any row, and the BatchSelect
				// below still filters the survivors.
				cols := batchScanCols(st, baseTable.Schema(), all, hasAgg)
				bit = p.tapBit(fmt.Sprintf("BatchTableScan(%s)", st.From.Table), algebra.NewBatchColScan(baseTable, s.batchSize, cols, segPrunes(all, baseTable.Schema())), 0)
			}
		} else if degree := s.parallelDegree(baseTable); degree > 1 && consumesAll {
			// Large unindexed scan: fan segments out across workers, fusing
			// the residual predicate (WHERE and WITH QUALITY both filter via
			// Select, so their conjunction pushes down as one predicate —
			// interpreted, like every other Volcano-tier evaluation).
			fused := andAll(all)
			pit, err := algebra.NewSharedParallelScan(baseTable, degree, fused, s.ctx, false)
			if err != nil {
				return nil, err
			}
			if stopper, ok := pit.(algebra.Stopper); ok {
				p.stop = stopper.Stop
			}
			desc := fmt.Sprintf("ParallelScan(%s, ×%d)", st.From.Table, degree)
			if fused != nil {
				desc = fmt.Sprintf("ParallelScan(%s, ×%d: %s)", st.From.Table, degree, fused.String())
			}
			it = p.tapIt(desc, pit, 0)
			whereConjuncts, qualityConjuncts = nil, nil
		} else {
			it = p.tapIt(fmt.Sprintf("TableScan(%s)", st.From.Table), algebra.NewSharedTableScan(baseTable), 0)
		}
		if st.From.Alias != st.From.Table {
			if bit != nil {
				bit = algebra.NewBatchRename(bit, st.From.Alias)
			} else {
				var err error
				it, err = algebra.NewRename(it, st.From.Alias, nil)
				if err != nil {
					return nil, err
				}
			}
		}
	} else {
		// A single equi-join on a vectorized session runs batch-native end
		// to end: both sides stream as column batches, the build side
		// transposes into a columnar hash table, and the joined stream
		// stays on the batch tier for the filters and aggregates above it.
		if s.vec && len(st.Joins) == 1 && !neverTrue {
			nb, err := s.planBatchJoin(st, tables, baseTable, p, consumesAll)
			if err != nil {
				return nil, err
			}
			bit = nb
		}
		if bit == nil {
			it = p.tapIt(fmt.Sprintf("TableScan(%s)", st.From.Table), algebra.NewSharedTableScan(baseTable), 0)
			var err error
			it, err = algebra.NewRename(it, st.From.Alias, nil)
			if err != nil {
				return nil, err
			}
			for _, j := range st.Joins {
				rtbl, ok := tables[j.Ref.Table]
				if !ok {
					return nil, fmt.Errorf("qql: unknown table %q", j.Ref.Table)
				}
				right, err := algebra.NewRename(algebra.NewSharedTableScan(rtbl), j.Ref.Alias, nil)
				if err != nil {
					return nil, err
				}
				if lk, rk, residual, ok := equiJoinKeys(j.On, it.Schema(), right.Schema()); ok {
					// The hash join materializes its build side in the
					// constructor; charge that to the operator's actuals.
					t0 := time.Now()
					joined, err := algebra.NewHashJoin(it, right, lk, rk, residual, s.ctx)
					if err != nil {
						return nil, err
					}
					it = p.tapIt(fmt.Sprintf("HashJoin(%s: %s = %s)", j.Ref.Alias, lk.String(), rk.String()), joined, time.Since(t0))
				} else {
					joined, err := algebra.NewNestedLoopJoin(it, right, j.On, s.ctx)
					if err != nil {
						return nil, err
					}
					it = p.tapIt(fmt.Sprintf("NestedLoopJoin(%s ON %s)", j.Ref.Alias, j.On.String()), joined, 0)
				}
			}
			if neverTrue {
				// Joined schema computed, join inputs settled: the constant
				// filter still keeps nothing.
				it = p.tapIt("EmptyScan(join: filter is never true)", algebra.NewEmptyScan(it.Schema()), 0)
				whereConjuncts, qualityConjuncts = nil, nil
			}
		}
	}

	if pred := andAll(whereConjuncts); pred != nil {
		if bit != nil {
			nb, err := algebra.NewBatchSelect(bit, pred, s.ctx, s.vecComp)
			if err != nil {
				return nil, err
			}
			bit = p.tapBit(fmt.Sprintf("BatchSelect(%s)", pred.String()), nb, 0)
		} else {
			ni, err := algebra.NewSelect(it, pred, s.ctx)
			if err != nil {
				return nil, err
			}
			it = p.tapIt(fmt.Sprintf("Select(%s)", pred.String()), ni, 0)
		}
	}
	if pred := andAll(qualityConjuncts); pred != nil {
		if bit != nil {
			nb, err := algebra.NewBatchSelect(bit, pred, s.ctx, s.vecComp)
			if err != nil {
				return nil, err
			}
			bit = p.tapBit(fmt.Sprintf("BatchQualitySelect(%s)", pred.String()), nb, 0)
		} else {
			ni, err := algebra.NewSelect(it, pred, s.ctx)
			if err != nil {
				return nil, err
			}
			it = p.tapIt(fmt.Sprintf("QualitySelect(%s)", pred.String()), ni, 0)
		}
	}

	if hasAgg {
		if bit != nil {
			if len(st.GroupBy) == 0 {
				// Global aggregates sink the batch stream directly —
				// COUNT(*) never touches a row.
				return s.planBatchAggregate(st, bit, p)
			}
			// Grouped aggregation is batch-native too: group keys and
			// aggregate arguments read straight off the column vectors,
			// with no row materialization before the per-group fold.
			return s.planBatchGroupedAggregate(st, bit, p)
		}
		return s.planAggregate(st, it, p)
	}

	// Plain projection path. Expand stars against the current schema.
	var streamSchema *schema.Schema
	if bit != nil {
		streamSchema = bit.Schema()
	} else {
		streamSchema = it.Schema()
	}
	items := projectionItems(st, streamSchema)

	// ORDER BY runs before projection (so it can use non-projected
	// columns); alias substitution and resolution happened at prepare time.
	// Sorting is a scalar operator, so it closes the batch section.
	if len(st.OrderBy) > 0 && bit != nil {
		it = s.adoptFromBatch(bit, p)
		bit = nil
	}
	if len(st.OrderBy) > 0 {
		keys := make([]algebra.SortKey, len(st.OrderBy))
		for i, o := range st.OrderBy {
			keys[i] = algebra.SortKey{Expr: o.Expr, Desc: o.Desc}
		}
		ni, err := algebra.NewSort(it, keys, s.ctx)
		if err != nil {
			return nil, err
		}
		it = p.tapIt(fmt.Sprintf("Sort(%s)", orderDesc(st.OrderBy)), ni, 0)
	}

	if bit != nil {
		nb, err := algebra.NewBatchProject(bit, items, s.ctx, s.batchSize, s.vecComp)
		if err != nil {
			return nil, err
		}
		bit = p.tapBit(fmt.Sprintf("BatchProject(%s)", itemsDesc(items)), nb, 0)
		if !st.Distinct && (st.Limit >= 0 || st.Offset > 0) {
			// Batch-native limit: stops pulling — and releases upstream
			// buffers — the moment the quota fills.
			bit = p.tapBit(fmt.Sprintf("Limit(%d, offset %d)", st.Limit, st.Offset), algebra.NewBatchLimit(bit, st.Limit, st.Offset), 0)
		}
		it = s.adoptFromBatch(bit, p)
		if st.Distinct {
			it = p.tapIt("Distinct", algebra.NewDistinct(it), 0)
			if st.Limit >= 0 || st.Offset > 0 {
				it = p.tapIt(fmt.Sprintf("Limit(%d, offset %d)", st.Limit, st.Offset), algebra.NewLimit(it, st.Limit, st.Offset), 0)
			}
		}
		p.it = it
		return p, nil
	}

	ni, err := algebra.NewProject(it, items, s.ctx)
	if err != nil {
		return nil, err
	}
	it = p.tapIt(fmt.Sprintf("Project(%s)", itemsDesc(items)), ni, 0)

	if st.Distinct {
		it = p.tapIt("Distinct", algebra.NewDistinct(it), 0)
	}
	if st.Limit >= 0 || st.Offset > 0 {
		limit := st.Limit
		if limit < 0 {
			limit = -1
		}
		it = p.tapIt(fmt.Sprintf("Limit(%d, offset %d)", st.Limit, st.Offset), algebra.NewLimit(it, limit, st.Offset), 0)
	}
	p.it = it
	return p, nil
}

// adoptFromBatch closes a plan's batch section: the adapter owns a pooled
// batch and its Stop propagates down through the batch operators to any
// scan workers, so plan.release tears the whole vectorized pipeline down
// deterministically.
func (s *Session) adoptFromBatch(bit algebra.BatchIterator, p *plan) algebra.Iterator {
	fb := algebra.NewFromBatch(bit, s.batchSize)
	if stopper, ok := fb.(algebra.Stopper); ok {
		p.stop = stopper.Stop
	}
	return fb
}

// parallelDegree decides the fan-out for scanning tbl: the session's
// parallelism clamped to the segment count, and 0 (serial) for tables that
// do not span multiple heap segments — fan-out overhead only pays off once
// there is more than one segment's worth of rows to split.
func (s *Session) parallelDegree(tbl *storage.Table) int {
	if s.par <= 1 || tbl.Len() <= storage.SegmentSize {
		return 0
	}
	if n := tbl.Segments(); s.par > n {
		return n
	}
	return s.par
}

// projectionItems expands stars against the stream schema; item
// expressions were resolved at prepare time.
func projectionItems(st *SelectStmt, cur *schema.Schema) []algebra.ProjectItem {
	var items []algebra.ProjectItem
	for _, item := range st.Items {
		if item.Star {
			for _, a := range cur.Attrs {
				items = append(items, algebra.ProjectItem{Expr: &algebra.ColRef{Name: a.Name}, As: a.Name})
			}
			continue
		}
		as := item.As
		if as == "" {
			if cr, ok := item.Expr.(*algebra.ColRef); ok {
				as = cr.Name
			}
		}
		items = append(items, algebra.ProjectItem{Expr: item.Expr, As: as})
	}
	return items
}

// substituteAliases replaces a bare ColRef matching a projection alias with
// that item's expression.
func substituteAliases(e algebra.Expr, items []algebra.ProjectItem, slot *algebra.Expr) {
	if cr, ok := e.(*algebra.ColRef); ok {
		for _, it := range items {
			if it.As == cr.Name {
				if _, isCol := it.Expr.(*algebra.ColRef); !isCol {
					*slot = it.Expr
				}
				return
			}
		}
	}
}

func orderDesc(items []OrderItem) string {
	parts := make([]string, len(items))
	for i, o := range items {
		parts[i] = o.Expr.String()
		if o.Desc {
			parts[i] += " DESC"
		}
	}
	return strings.Join(parts, ", ")
}

func itemsDesc(items []algebra.ProjectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.As
	}
	return strings.Join(parts, ", ")
}

// collectAggSpecs gathers the aggregate specs and the final projection of
// an aggregate-path SELECT, shared by the scalar and batch aggregate
// plans; every input-schema name was resolved at prepare time.
func collectAggSpecs(st *SelectStmt) (aggs []algebra.AggSpec, finalItems []algebra.ProjectItem, err error) {
	for _, item := range st.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("qql: * cannot be combined with aggregates")
		}
	}
	// Compute group-by output column names exactly as algebra.NewAggregate
	// will.
	groupNames := make([]string, len(st.GroupBy))
	for i, g := range st.GroupBy {
		name := g.String()
		if cr, ok := g.(*algebra.ColRef); ok {
			name = cr.Name
		} else if strings.ContainsAny(name, " @.()'") {
			name = fmt.Sprintf("group%d", i+1)
		}
		groupNames[i] = name
	}

	finalItems = make([]algebra.ProjectItem, 0, len(st.Items))
	aggCounter := 0
	for _, item := range st.Items {
		if item.Agg != nil {
			aggCounter++
			as := item.As
			if as == "" {
				switch {
				case item.Agg.Arg == nil:
					as = "count"
				default:
					if cr, ok := item.Agg.Arg.(*algebra.ColRef); ok {
						as = strings.ToLower([...]string{"count", "sum", "avg", "min", "max"}[item.Agg.Fn]) + "_" + cr.Name
					} else {
						as = fmt.Sprintf("agg%d", aggCounter)
					}
				}
			}
			aggs = append(aggs, algebra.AggSpec{Fn: item.Agg.Fn, Arg: item.Agg.Arg, As: as})
			finalItems = append(finalItems, algebra.ProjectItem{Expr: &algebra.ColRef{Name: as}, As: as})
			continue
		}
		// Non-aggregate item must match a group-by expression.
		matched := ""
		for i, g := range st.GroupBy {
			if g.String() == item.Expr.String() {
				matched = groupNames[i]
				break
			}
		}
		if matched == "" {
			return nil, nil, fmt.Errorf("qql: select item %s is neither aggregated nor grouped", item.Expr.String())
		}
		as := item.As
		if as == "" {
			as = matched
		}
		finalItems = append(finalItems, algebra.ProjectItem{Expr: &algebra.ColRef{Name: matched}, As: as})
	}
	return aggs, finalItems, nil
}

// planAggregate compiles the GROUP BY / aggregate path over a row stream.
func (s *Session) planAggregate(st *SelectStmt, it algebra.Iterator, p *plan) (*plan, error) {
	aggs, finalItems, err := collectAggSpecs(st)
	if err != nil {
		return nil, err
	}
	// NewAggregate drains its input in the constructor; time it so the
	// aggregation work shows up in the operator's actuals.
	t0 := time.Now()
	agg, err := algebra.NewAggregate(it, st.GroupBy, aggs, s.ctx)
	if err != nil {
		return nil, err
	}
	tapped := p.tapIt(fmt.Sprintf("Aggregate(group by %d key(s), %d aggregate(s))", len(st.GroupBy), len(aggs)), agg, time.Since(t0))
	return s.aggregateTail(st, tapped, finalItems, p)
}

// planBatchAggregate compiles the global-aggregate path over a batch
// stream: the sink consumes whole batches (COUNT(*) counts them without
// touching rows) and yields the single result row.
func (s *Session) planBatchAggregate(st *SelectStmt, bit algebra.BatchIterator, p *plan) (*plan, error) {
	aggs, finalItems, err := collectAggSpecs(st)
	if err != nil {
		return nil, err
	}
	// NewBatchAggregate sinks the whole batch stream in the constructor;
	// time it so the work shows up in the operator's actuals.
	t0 := time.Now()
	agg, err := algebra.NewBatchAggregate(bit, aggs, s.ctx, s.batchSize, s.vecComp)
	if err != nil {
		return nil, err
	}
	tapped := p.tapIt(fmt.Sprintf("BatchAggregate(%d aggregate(s))", len(aggs)), agg, time.Since(t0))
	return s.aggregateTail(st, tapped, finalItems, p)
}

// planBatchGroupedAggregate compiles the GROUP BY path over a batch
// stream: plain-column group keys and aggregate arguments read straight
// off the column vectors, so no row is assembled before the per-group
// fold. Output is byte-identical to the scalar Aggregate.
func (s *Session) planBatchGroupedAggregate(st *SelectStmt, bit algebra.BatchIterator, p *plan) (*plan, error) {
	aggs, finalItems, err := collectAggSpecs(st)
	if err != nil {
		return nil, err
	}
	// NewBatchGroupedAggregate drains the batch stream in the constructor;
	// time it so the work shows up in the operator's actuals.
	t0 := time.Now()
	agg, err := algebra.NewBatchGroupedAggregate(bit, st.GroupBy, aggs, s.ctx, s.batchSize, s.vecComp)
	if err != nil {
		return nil, err
	}
	tapped := p.tapIt(fmt.Sprintf("BatchGroupedAggregate(group by %d key(s), %d aggregate(s))", len(st.GroupBy), len(aggs)), agg, time.Since(t0))
	return s.aggregateTail(st, tapped, finalItems, p)
}

// planBatchJoin routes a single equi-join through the batch tier: the
// probe side streams as column batches (through the shared parallel scan
// when the table is large enough and the plan drains it), the build side
// is transposed into a columnar hash table, and the joined stream stays
// on the batch tier for the operators above it. Returns nil with no error
// when the ON condition has no equi-key — the caller falls back to the
// scalar nested-loop join.
func (s *Session) planBatchJoin(st *SelectStmt, tables map[string]*storage.Table, baseTable *storage.Table, p *plan, consumesAll bool) (algebra.BatchIterator, error) {
	j := st.Joins[0]
	rtbl, ok := tables[j.Ref.Table]
	if !ok {
		return nil, fmt.Errorf("qql: unknown table %q", j.Ref.Table)
	}
	leftS := aliasedSchema(baseTable.Schema(), st.From.Alias)
	rightS := aliasedSchema(rtbl.Schema(), j.Ref.Alias)
	lk, rk, residual, ok := equiJoinKeys(j.On, leftS, rightS)
	if !ok {
		return nil, nil
	}
	if s.vecComp {
		p.add(fmt.Sprintf("Vectorized(batch=%d, compiled)", s.batchSize))
	} else {
		p.add(fmt.Sprintf("Vectorized(batch=%d)", s.batchSize))
	}
	// The join assembles full output rows, so both sides scan every column;
	// filters above the join still run batch-native.
	var left algebra.BatchIterator
	if degree := s.parallelDegree(baseTable); degree > 1 && consumesAll {
		pit, err := algebra.NewSharedParallelScan(baseTable, degree, nil, s.ctx, s.vecComp)
		if err != nil {
			return nil, err
		}
		left = algebra.NewToBatch(p.tapIt(fmt.Sprintf("ParallelScan(%s, ×%d)", st.From.Table, degree), pit, 0), s.batchSize)
	} else {
		left = p.tapBit(fmt.Sprintf("BatchTableScan(%s)", st.From.Table), algebra.NewBatchTableScan(baseTable, s.batchSize), 0)
	}
	if st.From.Alias != st.From.Table {
		left = algebra.NewBatchRename(left, st.From.Alias)
	}
	right := p.tapBit(fmt.Sprintf("BatchTableScan(%s)", j.Ref.Table), algebra.NewBatchTableScan(rtbl, s.batchSize), 0)
	if j.Ref.Alias != j.Ref.Table {
		right = algebra.NewBatchRename(right, j.Ref.Alias)
	}
	// The batch hash join drains and transposes its build side in the
	// constructor; charge that to the operator's actuals.
	t0 := time.Now()
	joined, err := algebra.NewBatchHashJoin(left, right, lk, rk, residual, s.ctx, s.batchSize, s.vecComp)
	if err != nil {
		return nil, err
	}
	return p.tapBit(fmt.Sprintf("BatchHashJoin(%s: %s = %s)", j.Ref.Alias, lk.String(), rk.String()), joined, time.Since(t0)), nil
}

// aggregateTail finishes either aggregate plan: final projection, ORDER
// BY, DISTINCT, LIMIT — all over at most one row per group.
func (s *Session) aggregateTail(st *SelectStmt, agg algebra.Iterator, finalItems []algebra.ProjectItem, p *plan) (*plan, error) {
	proj, err := algebra.NewProject(agg, finalItems, s.ctx)
	if err != nil {
		return nil, err
	}
	out := p.tapIt(fmt.Sprintf("Project(%s)", itemsDesc(finalItems)), proj, 0)

	if len(st.OrderBy) > 0 {
		keys := make([]algebra.SortKey, len(st.OrderBy))
		for i, o := range st.OrderBy {
			keys[i] = algebra.SortKey{Expr: o.Expr, Desc: o.Desc}
		}
		sorted, err := algebra.NewSort(out, keys, s.ctx)
		if err != nil {
			return nil, err
		}
		out = p.tapIt(fmt.Sprintf("Sort(%s)", orderDesc(st.OrderBy)), sorted, 0)
	}
	if st.Distinct {
		out = p.tapIt("Distinct", algebra.NewDistinct(out), 0)
	}
	if st.Limit >= 0 || st.Offset > 0 {
		out = p.tapIt(fmt.Sprintf("Limit(%d, offset %d)", st.Limit, st.Offset), algebra.NewLimit(out, st.Limit, st.Offset), 0)
	}
	p.it = out
	return p, nil
}
