package qql

import "testing"

// FuzzParse drives the QQL lexer and parser with arbitrary input. The
// properties under test are crash-freedom (no panics, no infinite loops on
// malformed statements) plus one consistency invariant: anything Parse
// accepts must also tokenize cleanly, since the parser consumes the token
// stream the lexer produces.
//
// Seeds cover the grammar's distinctive corners: quality-tagged inserts
// (@ {source: ...}, SOURCE lists), WITH QUALITY predicates on indicator
// columns, QUALITY column clauses in DDL, and plain relational statements.
// The committed corpus lives in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT co_name FROM customer WHERE employees > 100",
		"EXPLAIN SELECT co_name FROM customer WITH QUALITY employees@source = 'Nexis'",
		"CREATE TABLE m (x int QUALITY (source string))",
		"INSERT INTO m VALUES (1 @ {source: 'a'}), (2)",
		"INSERT INTO r VALUES (1 SOURCE 'a', 'one'), (2 SOURCE 'b', 'two' SOURCE ('c', 'd'))",
		"SELECT x, COUNT(y) FROM n GROUP BY x ORDER BY x DESC LIMIT 3;",
		"DELETE FROM trades WHERE qty < 50",
		"UPDATE t SET x = x + 1 WHERE x IS NOT NULL",
		"CREATE INDEX ON nums (n)",
		"DESCRIBE customer",
		"SELECT a FROM t WHERE s LIKE 'ab%' AND n IN (1, 2, 3)",
		"SELECT 'unterminated",
		"INSERT INTO nums VALUES (",
		"\x00\xff@@QUALITY",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		if _, terr := Tokenize(src); terr != nil {
			t.Fatalf("Parse accepted %q (%d stmts) but Tokenize rejects it: %v", src, len(stmts), terr)
		}
	})
}
