package qql

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/algebra"
)

// Normalize canonicalizes a QQL script for use as a plan-cache key: it lexes
// the source and re-renders the token stream with single spaces, uppercased
// hard keywords and re-quoted literals. Two scripts that differ only in
// layout, comments or hard-keyword case share a key. String literals keep
// their exact contents (so 'a  b' and 'a b' never collide), and soft
// keywords — which the parser accepts as identifiers in name positions —
// keep their original spelling, so a table named "source" never shares a
// key with one named "SOURCE".
func Normalize(src string) (string, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case t.Kind == TokString:
			b.WriteString("'" + strings.ReplaceAll(t.Text, "'", "''") + "'")
		case t.Kind == TokTime:
			b.WriteString("t'" + t.Text + "'")
		case t.Kind == TokDuration:
			b.WriteString("d'" + t.Text + "'")
		case t.Kind == TokKeyword && softKeywords[t.Text]:
			b.WriteString(t.Val.AsString())
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// HitRate reports hits / (hits + misses), 0 when the cache is cold.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key   string
	stmts []Stmt // pristine parse; never executed, only cloned
}

// PlanCache memoizes parsed statements keyed by normalized script text, so
// concurrent sessions serving hot queries skip the lexer and parser. Entries
// hold a pristine AST: lookups hand out deep clones because binding and
// planning mutate expression nodes in place. The cache is safe for
// concurrent use and evicts least-recently-used entries beyond MaxEntries.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	byKey   map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	hits    uint64
	misses  uint64
}

// DefaultCacheSize is the entry cap used when NewPlanCache is given n <= 0.
const DefaultCacheSize = 256

// NewPlanCache creates a cache holding at most max parsed scripts.
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &PlanCache{max: max, byKey: make(map[string]*list.Element), lru: list.New()}
}

// Stats snapshots the hit/miss counters and current size.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}

// lookup returns the pristine statements for key, recording a hit or miss.
// Callers must clone before executing.
func (c *PlanCache) lookup(key string) ([]Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).stmts, true
}

// store inserts the pristine statements under key, evicting the LRU entry
// when full. Storing an existing key refreshes its recency.
func (c *PlanCache) store(key string, stmts []Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).stmts = stmts
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, stmts: stmts})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// parseCached parses a script through the cache: on a hit the cached AST is
// cloned, on a miss the source is parsed and a pristine clone is stored.
func (c *PlanCache) parseCached(src string) ([]Stmt, error) {
	key, err := Normalize(src)
	if err != nil {
		return nil, err
	}
	if pristine, ok := c.lookup(key); ok {
		return cloneStmts(pristine), nil
	}
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c.store(key, cloneStmts(stmts))
	return stmts, nil
}

func cloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, st := range stmts {
		out[i] = cloneStmt(st)
	}
	return out
}

func cloneExpr(e algebra.Expr) algebra.Expr { return algebra.CloneExpr(e) }

func cloneTagAssigns(tags []TagAssign) []TagAssign {
	if tags == nil {
		return nil
	}
	out := make([]TagAssign, len(tags))
	for i, t := range tags {
		out[i] = TagAssign{Name: t.Name, Expr: cloneExpr(t.Expr), Meta: cloneTagAssigns(t.Meta)}
	}
	return out
}

func cloneSelect(st *SelectStmt) *SelectStmt {
	out := &SelectStmt{
		Distinct: st.Distinct,
		From:     st.From,
		Limit:    st.Limit,
		Offset:   st.Offset,
	}
	out.Items = make([]SelectItem, len(st.Items))
	for i, it := range st.Items {
		ci := SelectItem{Star: it.Star, Expr: cloneExpr(it.Expr), As: it.As}
		if it.Agg != nil {
			ci.Agg = &AggItem{Fn: it.Agg.Fn, Arg: cloneExpr(it.Agg.Arg)}
		}
		out.Items[i] = ci
	}
	if st.Joins != nil {
		out.Joins = make([]JoinClause, len(st.Joins))
		for i, j := range st.Joins {
			out.Joins[i] = JoinClause{Ref: j.Ref, On: cloneExpr(j.On)}
		}
	}
	out.Where = cloneExpr(st.Where)
	out.Quality = cloneExpr(st.Quality)
	if st.GroupBy != nil {
		out.GroupBy = make([]algebra.Expr, len(st.GroupBy))
		for i, g := range st.GroupBy {
			out.GroupBy[i] = cloneExpr(g)
		}
	}
	if st.OrderBy != nil {
		out.OrderBy = make([]OrderItem, len(st.OrderBy))
		for i, o := range st.OrderBy {
			out.OrderBy[i] = OrderItem{Expr: cloneExpr(o.Expr), Desc: o.Desc}
		}
	}
	return out
}

// cloneStmt deep-copies a parsed statement, detaching every expression node
// the planner or executor might mutate.
func cloneStmt(st Stmt) Stmt {
	switch v := st.(type) {
	case *SelectStmt:
		return cloneSelect(v)
	case *ExplainStmt:
		return &ExplainStmt{Sel: cloneSelect(v.Sel)}
	case *InsertStmt:
		out := &InsertStmt{Table: v.Table, Rows: make([][]InsertCell, len(v.Rows))}
		for i, row := range v.Rows {
			cells := make([]InsertCell, len(row))
			for j, c := range row {
				cells[j] = InsertCell{
					Expr:    cloneExpr(c.Expr),
					Tags:    cloneTagAssigns(c.Tags),
					Sources: append([]string(nil), c.Sources...),
				}
			}
			out.Rows[i] = cells
		}
		return out
	case *UpdateStmt:
		out := &UpdateStmt{Table: v.Table, Where: cloneExpr(v.Where)}
		out.Sets = make([]SetClause, len(v.Sets))
		for i, s := range v.Sets {
			out.Sets[i] = SetClause{Col: s.Col, Expr: cloneExpr(s.Expr), Tags: cloneTagAssigns(s.Tags)}
		}
		return out
	case *DeleteStmt:
		return &DeleteStmt{Table: v.Table, Where: cloneExpr(v.Where)}
	case *TagTableStmt:
		return &TagTableStmt{Table: v.Table, Tags: cloneTagAssigns(v.Tags)}
	case *CreateTableStmt:
		out := &CreateTableStmt{Name: v.Name, Strict: v.Strict, Key: append([]string(nil), v.Key...)}
		out.Cols = make([]ColDef, len(v.Cols))
		for i, c := range v.Cols {
			out.Cols[i] = ColDef{Name: c.Name, Kind: c.Kind, Required: c.Required,
				Indicators: append([]IndDef(nil), c.Indicators...)}
		}
		return out
	case *CreateIndexStmt:
		c := *v
		return &c
	case *ShowTagsStmt:
		c := *v
		return &c
	case *ShowTablesStmt:
		return &ShowTablesStmt{}
	case *DescribeStmt:
		c := *v
		return &c
	}
	// Unknown statement kinds pass through uncloned; execution still works,
	// they just must not be cached. Parse produces only the types above.
	return st
}
