package qql

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/storage"
)

// Normalize canonicalizes a QQL script for use as a plan-cache key: it lexes
// the source and re-renders the token stream with single spaces, uppercased
// hard keywords and re-quoted literals. Two scripts that differ only in
// layout, comments or hard-keyword case share a key. String literals keep
// their exact contents (so 'a  b' and 'a b' never collide), and soft
// keywords — which the parser accepts as identifiers in name positions —
// keep their original spelling, so a table named "source" never shares a
// key with one named "SOURCE".
func Normalize(src string) (string, error) {
	lx := NewLexer(src)
	var b strings.Builder
	b.Grow(len(src))
	for i := 0; ; i++ {
		t, err := lx.Next()
		if err != nil {
			return "", err
		}
		if t.Kind == TokEOF {
			return b.String(), nil
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case t.Kind == TokString:
			b.WriteString("'" + strings.ReplaceAll(t.Text, "'", "''") + "'")
		case t.Kind == TokTime:
			b.WriteString("t'" + t.Text + "'")
		case t.Kind == TokDuration:
			b.WriteString("d'" + t.Text + "'")
		case t.Kind == TokKeyword && softKeywords[t.Text]:
			b.WriteString(t.Val.AsString())
		default:
			b.WriteString(t.Text)
		}
	}
}

// CacheStats is a point-in-time snapshot of plan-cache effectiveness
// across both tiers: the AST tier (parsed statements) and the bound-plan
// tier (resolved, schema-versioned single-SELECT plans).
type CacheStats struct {
	// Hits and Misses count AST-tier lookups (any statement shape).
	Hits   uint64
	Misses uint64
	// Entries is the AST tier's current size.
	Entries int
	// PlanHits and PlanMisses count bound-plan-tier lookups; a lookup whose
	// entry failed schema-version validation counts as a miss plus one
	// PlanInvalidations.
	PlanHits          uint64
	PlanMisses        uint64
	PlanInvalidations uint64
	// PlanEntries is the bound-plan tier's current size.
	PlanEntries int
	// Disabled reports a cache constructed with NewPlanCache(n <= 0):
	// attached sessions bypass both tiers entirely.
	Disabled bool
}

// HitRate reports AST-tier hits / (hits + misses), 0 when cold.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanHitRate reports bound-plan-tier hits / (hits + misses), 0 when cold.
func (s CacheStats) PlanHitRate() float64 {
	total := s.PlanHits + s.PlanMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanHits) / float64(total)
}

type cacheEntry struct {
	key   string
	stmts []Stmt // pristine parse; never executed, only cloned
}

// planKey addresses the bound-plan tier: normalized statement text scoped
// to one catalog, so sessions over different catalogs sharing a cache get
// independent entries instead of evicting each other's.
type planKey struct {
	cat  *storage.Catalog
	text string
}

type planCacheEntry struct {
	key  planKey
	prep *preparedSelect // pristine resolved plan; cloned per execution
}

// PlanCache memoizes query compilation across sessions in two tiers, both
// keyed by normalized statement text and bounded by one LRU cap each.
//
// The AST tier holds parsed statement lists for whole scripts, so hot
// statements skip the lexer and parser; lookups hand out deep clones
// because binding and planning mutate expression nodes in place.
//
// The bound-plan tier holds fully resolved single-SELECT plans
// (preparedSelect) tagged with the schema version of every referenced
// table. Lookups validate those versions against the live catalog; an
// entry whose tables moved — CREATE/DROP TABLE, CREATE INDEX, TAG TABLE —
// is evicted on sight, so a stale plan is unreachable, not merely
// unlikely. Hits skip parsing *and* name resolution; only per-execution
// clone + bind + iterator construction remain.
//
// The cache is safe for concurrent use. A cache constructed with
// NewPlanCache(n <= 0) is disabled: sessions treat it as absent and Stats
// reports Disabled.
type PlanCache struct {
	mu       sync.Mutex
	max      int
	disabled bool
	byKey    map[string]*list.Element
	lru      *list.List // front = most recent; values are *cacheEntry
	hits     uint64
	misses   uint64

	// The bound-plan tier's flag and counters are atomics so the warm-query
	// hot path takes the mutex exactly once (lookupPlan); with them folded
	// into mu, every hit would serialize three times on one global lock.
	planTier    atomic.Bool // bound-plan tier on (default); off = AST-only
	planByKey   map[planKey]*list.Element
	planLRU     *list.List // values are *planCacheEntry
	planHits    atomic.Uint64
	planMisses  atomic.Uint64
	planInvalid atomic.Uint64
}

// DefaultCacheSize is the conventional per-tier entry cap. It is a
// sentinel callers pass explicitly for "the default" (the qqld -cache flag
// defaults to it; server.Config.CacheSize 0 maps to it) — NewPlanCache
// itself treats n <= 0 as disabled, not as this default.
const DefaultCacheSize = 256

// NewPlanCache creates a cache holding at most max entries per tier.
// max <= 0 returns a disabled cache: attached sessions parse and plan
// every statement from scratch, and Stats reports Disabled.
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		return &PlanCache{disabled: true}
	}
	c := &PlanCache{
		max:   max,
		byKey: make(map[string]*list.Element), lru: list.New(),
		planByKey: make(map[planKey]*list.Element), planLRU: list.New(),
	}
	c.planTier.Store(true)
	return c
}

// Disabled reports whether the cache was constructed disabled.
func (c *PlanCache) Disabled() bool { return c.disabled }

// SetPlanTier toggles the bound-plan tier; off leaves the AST tier only.
// It exists for benchmarks and A/B comparison, not as a tuning knob.
func (c *PlanCache) SetPlanTier(on bool) {
	c.planTier.Store(on && !c.disabled)
}

// planTierOn reports whether bound-plan caching is active.
func (c *PlanCache) planTierOn() bool {
	return c != nil && !c.disabled && c.planTier.Load()
}

// Stats snapshots the hit/miss counters and current sizes of both tiers.
func (c *PlanCache) Stats() CacheStats {
	st := CacheStats{
		PlanHits:          c.planHits.Load(),
		PlanMisses:        c.planMisses.Load(),
		PlanInvalidations: c.planInvalid.Load(),
		Disabled:          c.disabled,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st.Hits, st.Misses = c.hits, c.misses
	if c.lru != nil {
		st.Entries = c.lru.Len()
	}
	if c.planLRU != nil {
		st.PlanEntries = c.planLRU.Len()
	}
	return st
}

// lookup returns the pristine statements for key, recording a hit or miss.
// Callers must clone before executing.
func (c *PlanCache) lookup(key string) ([]Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).stmts, true
}

// store inserts the pristine statements under key, evicting the LRU entry
// when full. Storing an existing key refreshes its recency.
func (c *PlanCache) store(key string, stmts []Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).stmts = stmts
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, stmts: stmts})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// parseCached parses a script through the AST tier under its normalized
// key (computed by the caller, which may already hold it from a bound-plan
// lookup — the key also addresses that tier). On a hit the cached AST is
// cloned; on a miss the source is parsed and a pristine clone is stored —
// unless the script contains a statement kind cloneStmt cannot deep-copy,
// in which case it is served uncached: caching it would alias the pristine
// AST into the planner, which mutates expression nodes in place.
func (c *PlanCache) parseCached(src, key string) ([]Stmt, string, error) {
	if pristine, ok := c.lookup(key); ok {
		clones, _ := cloneStmts(pristine) // entries hold only clonable kinds
		return clones, key, nil
	}
	stmts, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	if clones, ok := cloneStmts(stmts); ok {
		c.store(key, clones)
	}
	return stmts, key, nil
}

// ---- Bound-plan tier ----

// lookupPlan returns the prepared plan cached under key and refreshes its
// recency. It does not touch the hit/miss counters: the caller classifies
// the outcome after schema-version validation via notePlan.
func (c *PlanCache) lookupPlan(key planKey) (*preparedSelect, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.planByKey == nil {
		return nil, false
	}
	el, ok := c.planByKey[key]
	if !ok {
		return nil, false
	}
	c.planLRU.MoveToFront(el)
	return el.Value.(*planCacheEntry).prep, true
}

// notePlan records a bound-plan-tier lookup outcome.
func (c *PlanCache) notePlan(hit bool) {
	if hit {
		c.planHits.Add(1)
	} else {
		c.planMisses.Add(1)
	}
}

// storePlan inserts a prepared plan under key, evicting the LRU entry when
// full. Storing an existing key replaces it (the newly prepared plan is at
// least as fresh as the cached one).
func (c *PlanCache) storePlan(key planKey, prep *preparedSelect) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.planByKey == nil || !c.planTier.Load() {
		return
	}
	if el, ok := c.planByKey[key]; ok {
		c.planLRU.MoveToFront(el)
		el.Value.(*planCacheEntry).prep = prep
		return
	}
	c.planByKey[key] = c.planLRU.PushFront(&planCacheEntry{key: key, prep: prep})
	for c.planLRU.Len() > c.max {
		oldest := c.planLRU.Back()
		c.planLRU.Remove(oldest)
		delete(c.planByKey, oldest.Value.(*planCacheEntry).key)
	}
}

// invalidatePlan evicts the entry under key after a failed schema-version
// validation, so the stale plan cannot be returned again.
func (c *PlanCache) invalidatePlan(key planKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.planByKey == nil {
		return
	}
	if el, ok := c.planByKey[key]; ok {
		c.planLRU.Remove(el)
		delete(c.planByKey, key)
		c.planInvalid.Add(1)
	}
}

// cloneStmts deep-copies a statement list; ok is false when any statement
// is of a kind cloneStmt cannot copy (such a list must not be cached).
func cloneStmts(stmts []Stmt) (out []Stmt, ok bool) {
	out = make([]Stmt, len(stmts))
	ok = true
	for i, st := range stmts {
		c, cok := cloneStmt(st)
		if !cok {
			ok = false
		}
		out[i] = c
	}
	return out, ok
}

func cloneExpr(e algebra.Expr) algebra.Expr { return algebra.CloneExpr(e) }

func cloneTagAssigns(tags []TagAssign) []TagAssign {
	if tags == nil {
		return nil
	}
	out := make([]TagAssign, len(tags))
	for i, t := range tags {
		out[i] = TagAssign{Name: t.Name, Expr: cloneExpr(t.Expr), Meta: cloneTagAssigns(t.Meta)}
	}
	return out
}

func cloneSelect(st *SelectStmt) *SelectStmt {
	out := &SelectStmt{
		Distinct: st.Distinct,
		From:     st.From,
		Limit:    st.Limit,
		Offset:   st.Offset,
	}
	out.Items = make([]SelectItem, len(st.Items))
	for i, it := range st.Items {
		ci := SelectItem{Star: it.Star, Expr: cloneExpr(it.Expr), As: it.As}
		if it.Agg != nil {
			ci.Agg = &AggItem{Fn: it.Agg.Fn, Arg: cloneExpr(it.Agg.Arg)}
		}
		out.Items[i] = ci
	}
	if st.Joins != nil {
		out.Joins = make([]JoinClause, len(st.Joins))
		for i, j := range st.Joins {
			out.Joins[i] = JoinClause{Ref: j.Ref, On: cloneExpr(j.On)}
		}
	}
	out.Where = cloneExpr(st.Where)
	out.Quality = cloneExpr(st.Quality)
	if st.GroupBy != nil {
		out.GroupBy = make([]algebra.Expr, len(st.GroupBy))
		for i, g := range st.GroupBy {
			out.GroupBy[i] = cloneExpr(g)
		}
	}
	if st.OrderBy != nil {
		out.OrderBy = make([]OrderItem, len(st.OrderBy))
		for i, o := range st.OrderBy {
			out.OrderBy[i] = OrderItem{Expr: cloneExpr(o.Expr), Desc: o.Desc}
		}
	}
	return out
}

// cloneStmt deep-copies a parsed statement, detaching every expression node
// the planner or executor might mutate. ok is false for a statement kind it
// does not know how to copy: the original is returned and must not be
// cached (executing it still works; replaying a cached alias of it would
// leak one execution's in-place rewrites into the next).
func cloneStmt(st Stmt) (Stmt, bool) {
	switch v := st.(type) {
	case *SelectStmt:
		return cloneSelect(v), true
	case *ExplainStmt:
		return &ExplainStmt{Sel: cloneSelect(v.Sel), Analyze: v.Analyze}, true
	case *InsertStmt:
		out := &InsertStmt{Table: v.Table, Rows: make([][]InsertCell, len(v.Rows))}
		for i, row := range v.Rows {
			cells := make([]InsertCell, len(row))
			for j, c := range row {
				cells[j] = InsertCell{
					Expr:    cloneExpr(c.Expr),
					Tags:    cloneTagAssigns(c.Tags),
					Sources: append([]string(nil), c.Sources...),
				}
			}
			out.Rows[i] = cells
		}
		return out, true
	case *UpdateStmt:
		out := &UpdateStmt{Table: v.Table, Where: cloneExpr(v.Where)}
		out.Sets = make([]SetClause, len(v.Sets))
		for i, s := range v.Sets {
			out.Sets[i] = SetClause{Col: s.Col, Expr: cloneExpr(s.Expr), Tags: cloneTagAssigns(s.Tags)}
		}
		return out, true
	case *DeleteStmt:
		return &DeleteStmt{Table: v.Table, Where: cloneExpr(v.Where)}, true
	case *TagTableStmt:
		return &TagTableStmt{Table: v.Table, Tags: cloneTagAssigns(v.Tags)}, true
	case *CreateTableStmt:
		out := &CreateTableStmt{Name: v.Name, Strict: v.Strict, Key: append([]string(nil), v.Key...)}
		out.Cols = make([]ColDef, len(v.Cols))
		for i, c := range v.Cols {
			out.Cols[i] = ColDef{Name: c.Name, Kind: c.Kind, Required: c.Required,
				Indicators: append([]IndDef(nil), c.Indicators...)}
		}
		return out, true
	case *DropTableStmt:
		c := *v
		return &c, true
	case *CreateIndexStmt:
		c := *v
		return &c, true
	case *ShowTagsStmt:
		c := *v
		return &c, true
	case *ShowTablesStmt:
		return &ShowTablesStmt{}, true
	case *ShowStatsStmt:
		return &ShowStatsStmt{}, true
	case *DescribeStmt:
		c := *v
		return &c, true
	}
	// Unknown statement kinds pass through uncloned; execution still works,
	// and parseCached refuses to cache a script containing one.
	return st, false
}
