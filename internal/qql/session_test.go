package qql

import (
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// newPaperSession loads the paper's Table 1/2 customer example plus a trade
// table for join tests.
func newPaperSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(storage.NewCatalog())
	s.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	_, err := s.Exec(`
CREATE TABLE customer (
  co_name string REQUIRED,
  address string QUALITY (creation_time time, source string),
  employees int QUALITY (creation_time time, source string)
) KEY (co_name) STRICT;

INSERT INTO customer VALUES (
  'Fruit Co',
  '12 Jay St' @ {creation_time: t'1991-01-02', source: 'sales'} SOURCE 'sales_db',
  4004 @ {creation_time: t'1991-10-03', source: 'Nexis'} SOURCE 'nexis'
);
INSERT INTO customer VALUES (
  'Nut Co',
  '62 Lois Av' @ {creation_time: t'1991-10-24', source: 'acct''g'} SOURCE 'acctg_db',
  700 @ {creation_time: t'1991-10-09', source: 'estimate'} SOURCE 'estimate'
);

CREATE TABLE trades (
  co_name string,
  qty int,
  price float QUALITY (source string)
);
INSERT INTO trades VALUES ('Fruit Co', 100, 10.5 @ {source: 'feedA'}),
                          ('Fruit Co', 50, 11.0 @ {source: 'feedB'}),
                          ('Nut Co', 25, 7.25 @ {source: 'feedA'});
`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateInsertSelectStar(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT * FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	// Cell tags present (Table 2 shape).
	addr := rel.Tuples[0].Cells[1]
	if v, ok := addr.Tags.Get("source"); !ok || v.AsString() != "sales" {
		t.Errorf("address source tag = %v, %v", v, ok)
	}
	if !addr.Sources.Contains("sales_db") {
		t.Errorf("address polygen sources = %v", addr.Sources)
	}
}

func TestWhereAndQualityClauses(t *testing.T) {
	s := newPaperSession(t)
	// Application predicate only.
	rel, err := s.Query(`SELECT co_name FROM customer WHERE employees > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("where result = %v", rel.Tuples)
	}
	// Quality predicate over indicator: exclude estimates.
	rel, err = s.Query(`SELECT co_name, employees FROM customer WITH QUALITY employees@source != 'estimate'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("quality filter result = %v", rel.Tuples)
	}
	// Both clauses.
	rel, err = s.Query(`SELECT co_name FROM customer WHERE employees < 5000 WITH QUALITY AGE(employees@creation_time) <= d'2160h'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("combined clauses = %d rows", rel.Len())
	}
}

func TestQualityAgeFilter(t *testing.T) {
	s := newPaperSession(t)
	// As of 1992-01-01, address tagged 1991-01-02 is ~364 days old;
	// 1991-10-24 is ~69 days old. Filter to < 90 days.
	rel, err := s.Query(`SELECT co_name FROM customer WITH QUALITY AGE(address@creation_time) < d'2160h'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Nut Co" {
		t.Fatalf("age filter = %v", rel.Tuples)
	}
}

func TestSourcePredicate(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT co_name FROM customer WHERE SOURCE(employees, 'nexis')`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("source predicate = %v", rel.Tuples)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT co_name AS company, employees * 2 AS doubled FROM customer ORDER BY employees DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Attrs[0].Name != "company" || rel.Schema.Attrs[1].Name != "doubled" {
		t.Fatalf("schema = %v", rel.Schema.AttrNames())
	}
	if rel.Tuples[0].Cells[1].V.AsInt() != 8008 {
		t.Fatalf("doubled = %v", rel.Tuples[0].Cells[1].V)
	}
	// Derived cell keeps the employees tags (only contributor).
	if v, ok := rel.Tuples[0].Cells[1].Tags.Get("source"); !ok || v.AsString() != "Nexis" {
		t.Errorf("derived tag = %v, %v", v, ok)
	}
}

func TestOrderByAliasAndLimitOffset(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT co_name, employees + 0 AS e FROM customer ORDER BY e DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("order by alias = %v", rel.Tuples)
	}
	rel, err = s.Query(`SELECT co_name FROM customer ORDER BY co_name LIMIT 1 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Nut Co" {
		t.Fatalf("offset = %v", rel.Tuples)
	}
}

func TestJoinQualifiedNames(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`
SELECT c.co_name, t.qty, t.price
FROM customer c JOIN trades t ON c.co_name = t.co_name
WHERE t.qty >= 50
ORDER BY t.qty DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("join rows = %d", rel.Len())
	}
	if rel.Tuples[0].Cells[1].V.AsInt() != 100 {
		t.Fatalf("join order = %v", rel.Tuples)
	}
	// Quality tags survive the join.
	if v, ok := rel.Tuples[0].Cells[2].Tags.Get("source"); !ok || v.AsString() != "feedA" {
		t.Errorf("join lost price tags: %v %v", v, ok)
	}
}

func TestJoinQualityClause(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`
SELECT c.co_name, t.price FROM customer c JOIN trades t ON c.co_name = t.co_name
WITH QUALITY t.price@source = 'feedA' AND c.employees@source != 'estimate'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("join quality = %v", rel.Tuples)
	}
}

func TestAggregates(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT co_name, COUNT(*) AS n, SUM(qty) AS total, AVG(price) AS avg_p
FROM trades GROUP BY co_name ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("groups = %d", rel.Len())
	}
	first := rel.Tuples[0]
	if first.Cells[0].V.AsString() != "Fruit Co" || first.Cells[1].V.AsInt() != 2 || first.Cells[2].V.AsInt() != 150 {
		t.Fatalf("agg row = %v", first)
	}
	// Global aggregate.
	rel, err = s.Query(`SELECT COUNT(*) AS n, MIN(qty) AS lo, MAX(qty) AS hi FROM trades`)
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Tuples[0]
	if row.Cells[0].V.AsInt() != 3 || row.Cells[1].V.AsInt() != 25 || row.Cells[2].V.AsInt() != 100 {
		t.Fatalf("global agg = %v", row)
	}
}

func TestAggregateErrors(t *testing.T) {
	s := newPaperSession(t)
	if _, err := s.Query(`SELECT qty, COUNT(*) FROM trades`); err == nil {
		t.Error("non-grouped item with aggregate should fail")
	}
	if _, err := s.Query(`SELECT *, COUNT(*) FROM trades`); err == nil {
		t.Error("star with aggregate should fail")
	}
}

func TestDistinct(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT DISTINCT co_name FROM trades`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("distinct = %d rows", rel.Len())
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	s := newPaperSession(t)
	res, err := s.Exec(`DELETE FROM trades WHERE qty < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Msg, "deleted 1") {
		t.Fatalf("delete msg = %q", res[0].Msg)
	}
	res, err = s.Exec(`UPDATE trades SET qty = qty + 1 WHERE co_name = 'Fruit Co'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Msg, "updated 2") {
		t.Fatalf("update msg = %q", res[0].Msg)
	}
	rel, _ := s.Query(`SELECT SUM(qty) AS q FROM trades`)
	if rel.Tuples[0].Cells[0].V.AsInt() != 152 {
		t.Fatalf("after update sum = %v", rel.Tuples[0].Cells[0].V)
	}
	// Tag-only update (re-certification by the data quality administrator).
	res, err = s.Exec(`UPDATE customer SET address @ {source: 'verified'} WHERE co_name = 'Nut Co'`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ = s.Query(`SELECT co_name FROM customer WITH QUALITY address@source = 'verified'`)
	if rel.Len() != 1 {
		t.Fatalf("tag update not visible: %d rows", rel.Len())
	}
}

func TestShowAndDescribe(t *testing.T) {
	s := newPaperSession(t)
	res := s.MustExec(`SHOW TABLES`)
	if res[0].Rel.Len() != 2 {
		t.Fatalf("show tables = %d rows", res[0].Rel.Len())
	}
	res = s.MustExec(`DESCRIBE customer`)
	if res[0].Rel.Len() != 3 {
		t.Fatalf("describe = %d rows", res[0].Rel.Len())
	}
	found := false
	for _, tup := range res[0].Rel.Tuples {
		if tup.Cells[0].V.AsString() == "address" &&
			strings.Contains(tup.Cells[3].V.AsString(), "creation_time time") {
			found = true
		}
	}
	if !found {
		t.Error("describe should list indicators")
	}
}

func TestExplainAndIndexPushdown(t *testing.T) {
	s := newPaperSession(t)
	s.MustExec(`CREATE INDEX ON customer (employees) USING BTREE;
	            CREATE INDEX ON customer (employees@source) USING HASH`)
	res := s.MustExec(`EXPLAIN SELECT co_name FROM customer WHERE employees > 100`)
	if !strings.Contains(res[0].Plan, "IndexScan") {
		t.Errorf("range plan missing IndexScan:\n%s", res[0].Plan)
	}
	res = s.MustExec(`EXPLAIN SELECT co_name FROM customer WITH QUALITY employees@source = 'Nexis'`)
	if !strings.Contains(res[0].Plan, "IndexScan") {
		t.Errorf("quality plan missing IndexScan:\n%s", res[0].Plan)
	}
	// Index and scan paths agree.
	viaIdx, err := s.Query(`SELECT co_name FROM customer WITH QUALITY employees@source = 'Nexis'`)
	if err != nil {
		t.Fatal(err)
	}
	if viaIdx.Len() != 1 || viaIdx.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("indexed quality query = %v", viaIdx.Tuples)
	}
	res = s.MustExec(`EXPLAIN SELECT co_name FROM customer WHERE co_name = 'Nut Co'`)
	if !strings.Contains(res[0].Plan, "TableScan") {
		t.Errorf("unindexed plan should TableScan:\n%s", res[0].Plan)
	}
}

func TestIndexRangeBoundsCombine(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE nums (n int);`)
	for i := 0; i < 100; i++ {
		s.MustExec(`INSERT INTO nums VALUES (` + value.Int(int64(i)).String() + `)`)
	}
	s.MustExec(`CREATE INDEX ON nums (n)`)
	rel, err := s.Query(`SELECT n FROM nums WHERE n >= 10 AND n < 20`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 10 {
		t.Fatalf("range = %d rows", rel.Len())
	}
	// Same result without index.
	s2 := NewSession(storage.NewCatalog())
	s2.MustExec(`CREATE TABLE nums (n int);`)
	for i := 0; i < 100; i++ {
		s2.MustExec(`INSERT INTO nums VALUES (` + value.Int(int64(i)).String() + `)`)
	}
	rel2, err := s2.Query(`SELECT n FROM nums WHERE n >= 10 AND n < 20`)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != rel.Len() {
		t.Fatalf("index vs scan disagree: %d vs %d", rel.Len(), rel2.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * WHERE x = 1`,
		`CREATE TABLE t`,
		`CREATE TABLE t (x blob)`,
		`INSERT INTO t VALUES`,
		`SELECT * FROM t WHERE`,
		`SELECT MIN(x) + 1 FROM t`,
		`UPDATE t SET`,
		`DELETE t`,
		`CREATE INDEX t (x)`,
		`SELECT * FROM t LIMIT x`,
		`SELECT a b c FROM t`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s := newPaperSession(t)
	bad := []string{
		`SELECT * FROM nosuch`,
		`SELECT nosuch FROM customer`,
		`SELECT c.nope FROM customer c`,
		`INSERT INTO customer VALUES ('X')`,
		`INSERT INTO nosuch VALUES (1)`,
		`CREATE TABLE customer (x int)`,
		`CREATE INDEX ON nosuch (x)`,
		`DELETE FROM nosuch`,
		`UPDATE nosuch SET x = 1`,
		`UPDATE customer SET nosuch = 1`,
		`DESCRIBE nosuch`,
		`SELECT co_name FROM customer WHERE employees = co_name@nope AND nosuchfn(1) = 2`,
	}
	for _, src := range bad {
		if _, err := s.Exec(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
	// Strict table rejects missing tags at the QQL layer too.
	if _, err := s.Exec(`INSERT INTO customer VALUES ('Bare Co', 'addr', 1)`); err == nil {
		t.Error("strict table must reject untagged insert")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := newPaperSession(t)
	// co_name exists in both tables: unqualified use in a join must fail.
	if _, err := s.Query(`SELECT co_name FROM customer c JOIN trades t ON c.co_name = t.co_name`); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
}

func TestSelfJoinDisambiguation(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`
SELECT a.co_name, b.qty FROM trades a JOIN trades b ON a.co_name = b.co_name
WHERE a.qty = 100 ORDER BY b.qty`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("self join rows = %d", rel.Len())
	}
}

func TestInsertMultiRowAndMultiSource(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE r (x int, y string)`)
	s.MustExec(`INSERT INTO r VALUES (1 SOURCE 'a', 'one'), (2 SOURCE 'b', 'two' SOURCE ('c', 'd'))`)
	rel, err := s.Query(`SELECT * FROM r ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if !rel.Tuples[0].Cells[0].Sources.Contains("a") {
		t.Errorf("row1 sources = %v", rel.Tuples[0].Cells[0].Sources)
	}
	c := rel.Tuples[1].Cells[1]
	if !c.Sources.Contains("c") || !c.Sources.Contains("d") {
		t.Errorf("multi-source cell = %v", c.Sources)
	}
}

func TestInExpressionAndLike(t *testing.T) {
	s := newPaperSession(t)
	rel, err := s.Query(`SELECT co_name FROM customer WHERE co_name IN ('Nut Co', 'Seed Co')`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("IN rows = %d", rel.Len())
	}
	rel, err = s.Query(`SELECT co_name FROM customer WHERE co_name LIKE '%Co' AND co_name NOT LIKE 'Nut%'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("LIKE rows = %v", rel.Tuples)
	}
}

func TestNullHandlingInQQL(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE n (x int, y int)`)
	s.MustExec(`INSERT INTO n VALUES (1, 10), (2, NULL), (3, 30)`)
	rel, _ := s.Query(`SELECT x FROM n WHERE y > 5`)
	if rel.Len() != 2 {
		t.Errorf("null row leaked through predicate: %d rows", rel.Len())
	}
	rel, _ = s.Query(`SELECT x FROM n WHERE y IS NULL`)
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsInt() != 2 {
		t.Errorf("IS NULL = %v", rel.Tuples)
	}
	rel, _ = s.Query(`SELECT COUNT(y) AS c FROM n`)
	if rel.Tuples[0].Cells[0].V.AsInt() != 2 {
		t.Errorf("COUNT(col) should skip nulls: %v", rel.Tuples[0].Cells[0].V)
	}
}

func TestMissingIndicatorIsNull(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE m (x int QUALITY (source string))`)
	s.MustExec(`INSERT INTO m VALUES (1 @ {source: 'a'}), (2)`)
	// Untagged rows do not satisfy indicator predicates (unknown).
	rel, _ := s.Query(`SELECT x FROM m WITH QUALITY x@source = 'a'`)
	if rel.Len() != 1 {
		t.Errorf("tagged filter = %d rows", rel.Len())
	}
	rel, _ = s.Query(`SELECT x FROM m WITH QUALITY x@source IS NULL`)
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsInt() != 2 {
		t.Errorf("untagged filter = %v", rel.Tuples)
	}
}

func TestMultiStatementScriptAndComments(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	res, err := s.Exec(`
-- create and fill
CREATE TABLE t (x int);
INSERT INTO t VALUES (1), (2), (3);
SELECT COUNT(*) AS n FROM t;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[2].Rel.Tuples[0].Cells[0].V.AsInt() != 3 {
		t.Fatalf("count = %v", res[2].Rel.Tuples[0].Cells[0].V)
	}
}
