// Package qql implements QQL, the Quality Query Language: a small SQL
// dialect extended with the quality constructs the paper calls for — cell
// tags written at insert time, indicator references (col@indicator) in
// expressions, polygen source predicates (SOURCE(col, 'name')), and a
// dedicated WITH QUALITY clause separating data-quality requirements from
// application predicates so that "at query time users can retrieve data of
// specific quality" (paper §1.3).
//
// The package provides the lexer, recursive-descent parser, a rule-based
// planner with index pushdown over attribute and indicator values, and a
// Session tying statements to a storage.Catalog.
package qql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/value"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokTime
	TokDuration
	TokPunct // ( ) , ; @ { } : . *
	TokOp    // = != < <= > >= + - / %
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind TokKind
	Text string
	Val  value.Value // literal payload for Int/Float/String/Time/Duration
	Line int
	Col  int
}

// keywords recognized by the lexer; matched case-insensitively, normalized
// to upper case in Token.Text.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true, "WITH": true,
	"QUALITY": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "JOIN": true, "ON": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "LIKE": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "DROP": true, "TABLE": true, "INDEX": true, "USING": true, "HASH": true,
	"BTREE": true, "KEY": true, "REQUIRED": true, "STRICT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "SOURCE": true,
	"DELETE": true, "UPDATE": true, "SET": true,
	"EXPLAIN": true, "SHOW": true, "TABLES": true, "DESCRIBE": true,
	"TAG": true, "TAGS": true, "ANALYZE": true, "STATS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"UNION": true, "EXCEPT": true, "ALL": true,
}

// Lexer turns QQL source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		// t'...' and d'...' literals.
		if (word == "t" || word == "T" || word == "d" || word == "D") && l.peek() == '\'' {
			body, err := l.quoted()
			if err != nil {
				return tok, err
			}
			if word == "t" || word == "T" {
				v, err := value.Parse(value.KindTime, body)
				if err != nil {
					return tok, fmt.Errorf("qql: line %d: %v", tok.Line, err)
				}
				tok.Kind, tok.Text, tok.Val = TokTime, body, v
				return tok, nil
			}
			v, err := value.Parse(value.KindDuration, body)
			if err != nil {
				return tok, fmt.Errorf("qql: line %d: %v", tok.Line, err)
			}
			tok.Kind, tok.Text, tok.Val = TokDuration, body, v
			return tok, nil
		}
		up := strings.ToUpper(word)
		if keywords[up] {
			// Keep the original spelling in Val so soft keywords can be
			// used as plain identifiers (e.g. an indicator named
			// "source").
			tok.Kind, tok.Text, tok.Val = TokKeyword, up, value.Str(word)
			return tok, nil
		}
		tok.Kind, tok.Text = TokIdent, word
		return tok, nil

	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		isFloat := false
		if l.peek() == '.' && isDigit(l.peek2()) {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.pos
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if isDigit(l.peek()) {
				isFloat = true
				for l.pos < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				l.pos = save
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			v, err := value.Parse(value.KindFloat, text)
			if err != nil {
				return tok, fmt.Errorf("qql: line %d: bad float %q", tok.Line, text)
			}
			tok.Kind, tok.Text, tok.Val = TokFloat, text, v
			return tok, nil
		}
		v, err := value.Parse(value.KindInt, text)
		if err != nil {
			return tok, fmt.Errorf("qql: line %d: bad int %q", tok.Line, text)
		}
		tok.Kind, tok.Text, tok.Val = TokInt, text, v
		return tok, nil

	case c == '\'':
		body, err := l.quoted()
		if err != nil {
			return tok, err
		}
		tok.Kind, tok.Text, tok.Val = TokString, body, value.Str(body)
		return tok, nil

	case strings.IndexByte("(),;@{}:.*", c) >= 0:
		l.advance()
		tok.Kind, tok.Text = TokPunct, string(c)
		return tok, nil

	case c == '=':
		l.advance()
		tok.Kind, tok.Text = TokOp, "="
		return tok, nil
	case c == '!':
		l.advance()
		if l.peek() != '=' {
			return tok, fmt.Errorf("qql: line %d: unexpected '!'", tok.Line)
		}
		l.advance()
		tok.Kind, tok.Text = TokOp, "!="
		return tok, nil
	case c == '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			tok.Kind, tok.Text = TokOp, "<="
		} else if l.peek() == '>' {
			l.advance()
			tok.Kind, tok.Text = TokOp, "!="
		} else {
			tok.Kind, tok.Text = TokOp, "<"
		}
		return tok, nil
	case c == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			tok.Kind, tok.Text = TokOp, ">="
		} else {
			tok.Kind, tok.Text = TokOp, ">"
		}
		return tok, nil
	case c == '+' || c == '-' || c == '/':
		l.advance()
		tok.Kind, tok.Text = TokOp, string(c)
		return tok, nil
	}
	return tok, fmt.Errorf("qql: line %d col %d: unexpected character %q", tok.Line, tok.Col, string(c))
}

// quoted consumes a single-quoted string with ” escaping; the lexer is
// positioned at the opening quote.
func (l *Lexer) quoted() (string, error) {
	line := l.line
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", fmt.Errorf("qql: line %d: unterminated string", line)
		}
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' {
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return b.String(), nil
		}
		b.WriteByte(c)
	}
}

// Tokenize lexes the entire input; convenience for tests.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// timeNowDefault is the session default for EvalContext.Now.
func timeNowDefault() time.Time { return time.Now().UTC() }
