package qql

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// vectorizedWorkload is the query matrix the scalar-vs-vectorized property
// test drives: scans, filters, quality filters, projections (plain,
// computed, star), aggregates (global and grouped), equi-joins (with
// residuals, filters and grouped aggregation above them), sorts, distinct,
// limits and offsets.
func vectorizedWorkload() []string {
	return []string{
		`SELECT * FROM big`,
		`SELECT id, qty FROM big`,
		`SELECT COUNT(*) AS n FROM big`,
		`SELECT COUNT(*) AS n FROM big WHERE qty >= 500`,
		`SELECT COUNT(*) AS n, SUM(qty) AS s, MIN(qty) AS lo, MAX(qty) AS hi, AVG(qty) AS a FROM big`,
		`SELECT id, qty * 2 AS qty2 FROM big WHERE qty >= 250 AND grp != 'g3'`,
		`SELECT id FROM big WHERE qty >= 100 AND qty < 900`,
		`SELECT id FROM big WITH QUALITY grp@source = 'a'`,
		`SELECT id FROM big WHERE qty < 800 WITH QUALITY grp@source != 'b'`,
		`SELECT grp, COUNT(*) AS n FROM big WHERE qty < 800 GROUP BY grp`,
		`SELECT grp, COUNT(*) AS n, SUM(qty) AS s, MAX(qty) AS hi FROM big GROUP BY grp`,
		`SELECT id FROM big LIMIT 10`,
		`SELECT id FROM big WHERE qty >= 500 LIMIT 25 OFFSET 13`,
		`SELECT id, qty FROM big WHERE qty >= 100 ORDER BY qty DESC, id LIMIT 40`,
		`SELECT DISTINCT grp FROM big WHERE qty < 950`,
		`SELECT DISTINCT grp FROM big LIMIT 3`,
		`SELECT id FROM big WHERE qty >= 500 AND 1 = 1`,
		`SELECT COUNT(*) AS n FROM big WHERE 1 = 2`,
		`SELECT id AS i, qty AS q FROM big b WHERE b.qty > 700`,
		`SELECT b.id, d.label FROM big b JOIN dim d ON b.grp = d.grp WHERE b.qty >= 600`,
		`SELECT big.id, dim.boost FROM big JOIN dim ON big.grp = dim.grp ORDER BY big.id LIMIT 30`,
		`SELECT b.id FROM big b JOIN dim d ON b.grp = d.grp AND b.qty > d.boost`,
		`SELECT d.label, COUNT(*) AS n, SUM(b.qty) AS s FROM big b JOIN dim d ON b.grp = d.grp GROUP BY d.label`,
		`SELECT b.id, d.label FROM big b JOIN dim d ON b.qty < d.boost LIMIT 20`,
		`SELECT COUNT(*) AS n FROM big b JOIN dim d ON b.grp = d.grp WHERE 1 = 2`,
	}
}

// vecCatalog builds a shared catalog with a table spanning several
// segments, tagged cells, and liveness holes, plus a small dimension
// table for join shapes (one group, g6, is deliberately absent so probes
// miss; some labels carry tags so join outputs move provenance).
func vecCatalog(t *testing.T, n int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	s := NewSession(cat)
	s.MustExec(`CREATE TABLE big (id int REQUIRED, grp string QUALITY (source string), qty int) KEY (id)`)
	tbl, _ := cat.Get("big")
	for i := 0; i < n; i++ {
		tag := ""
		if i%3 == 0 {
			tag = fmt.Sprintf(" @ {source: '%s'}", []string{"a", "b"}[i%2])
		}
		s.MustExec(fmt.Sprintf(`INSERT INTO big VALUES (%d, 'g%d'%s, %d)`, i, i%7, tag, (i*37)%1000))
	}
	for i := 0; i < n; i += 11 {
		if err := tbl.Delete(storage.RowID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.MustExec(`CREATE TABLE dim (grp string REQUIRED, label string QUALITY (source string), boost int) KEY (grp)`)
	for i := 0; i < 6; i++ {
		tag := ""
		if i%2 == 0 {
			tag = " @ {source: 'ref'}"
		}
		s.MustExec(fmt.Sprintf(`INSERT INTO dim VALUES ('g%d', 'label-%d'%s, %d)`, i, i, tag, i*150))
	}
	return cat
}

// TestVectorizedMatchesScalarProperty is the cross-tier property test: for
// every workload query, every parallel degree 1–8, and batch sizes 1, 3
// and 1024, the vectorized plan's output is byte-identical (tags and
// sources included) to the scalar plan's.
func TestVectorizedMatchesScalarProperty(t *testing.T) {
	const n = 2*storage.SegmentSize + 157
	cat := vecCatalog(t, n)

	scalar := NewSession(cat)
	scalar.SetVectorized(false)
	vec := NewSession(cat)

	for _, q := range vectorizedWorkload() {
		for degree := 1; degree <= 8; degree++ {
			scalar.SetParallelism(degree)
			want, err := scalar.Query(q)
			if err != nil {
				t.Fatalf("scalar %q: %v", q, err)
			}
			for _, bs := range []int{1, 3, 1024} {
				for _, compiled := range []bool{true, false} {
					vec.SetParallelism(degree)
					vec.SetBatchSize(bs)
					vec.SetCompiledExprs(compiled)
					got, err := vec.Query(q)
					if err != nil {
						t.Fatalf("vectorized %q (deg %d, batch %d): %v", q, degree, bs, err)
					}
					if want.Schema.Name != got.Schema.Name {
						t.Fatalf("%q: schema %q != scalar %q", q, got.Schema.Name, want.Schema.Name)
					}
					if wf, gf := relation.Format(want, true), relation.Format(got, true); wf != gf {
						t.Fatalf("%q (deg %d, batch %d, compiled %v): vectorized differs from scalar\nscalar:\n%s\nvectorized:\n%s",
							q, degree, bs, compiled, wf, gf)
					}
				}
			}
		}
	}
}

// TestVectorizedExplain pins the EXPLAIN surface of the batch tier.
func TestVectorizedExplain(t *testing.T) {
	const n = 2*storage.SegmentSize + 100
	cat := vecCatalog(t, n)
	s := NewSession(cat)
	s.SetParallelism(1)

	res := s.MustExec(`EXPLAIN SELECT COUNT(*) AS n FROM big WHERE qty >= 500`)
	for _, want := range []string{"Vectorized(batch=1024, compiled)", "BatchTableScan(big)", "BatchSelect(", "BatchAggregate(1 aggregate(s))"} {
		if !strings.Contains(res[0].Plan, want) {
			t.Errorf("plan missing %q:\n%s", want, res[0].Plan)
		}
	}

	res = s.MustExec(`EXPLAIN SELECT id FROM big WITH QUALITY grp@source = 'a' LIMIT 5`)
	for _, want := range []string{"BatchQualitySelect(", "BatchProject(id)", "Limit(5, offset 0)"} {
		if !strings.Contains(res[0].Plan, want) {
			t.Errorf("plan missing %q:\n%s", want, res[0].Plan)
		}
	}

	// Grouped aggregation is batch-native: keys and arguments read off the
	// column vectors.
	res = s.MustExec(`EXPLAIN SELECT grp, COUNT(*) AS n FROM big GROUP BY grp`)
	if !strings.Contains(res[0].Plan, "BatchGroupedAggregate(group by 1 key(s), 1 aggregate(s))") {
		t.Errorf("plan missing BatchGroupedAggregate:\n%s", res[0].Plan)
	}

	// Equi-joins route batch-native: both sides stream as column batches,
	// the filter above the join stays on the batch tier.
	res = s.MustExec(`EXPLAIN SELECT b.id, d.label FROM big b JOIN dim d ON b.grp = d.grp WHERE b.qty > 500`)
	for _, want := range []string{"Vectorized(batch=1024, compiled)", "BatchTableScan(big)", "BatchTableScan(dim)", "BatchHashJoin(d: grp = grp)", "BatchSelect("} {
		if !strings.Contains(res[0].Plan, want) {
			t.Errorf("join plan missing %q:\n%s", want, res[0].Plan)
		}
	}

	// Non-equi joins fall back to the scalar nested-loop join.
	res = s.MustExec(`EXPLAIN SELECT b.id FROM big b JOIN dim d ON b.qty < d.boost`)
	if !strings.Contains(res[0].Plan, "NestedLoopJoin(") || strings.Contains(res[0].Plan, "Vectorized") {
		t.Errorf("non-equi join should stay scalar:\n%s", res[0].Plan)
	}

	// The batch tier composes with the parallel scan: workers fuse the
	// predicate, the merge stays ordered, batching picks up above it.
	s.SetParallelism(8)
	res = s.MustExec(`EXPLAIN SELECT COUNT(*) AS n FROM big WHERE qty >= 500`)
	if !strings.Contains(res[0].Plan, "Vectorized(batch=") || !strings.Contains(res[0].Plan, "ParallelScan(big, ×3: ") {
		t.Errorf("vectorized parallel plan:\n%s", res[0].Plan)
	}

	// Index plans stay on the scalar index path.
	s.MustExec(`CREATE INDEX ON big (qty) USING BTREE`)
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty >= 990`)
	if !strings.Contains(res[0].Plan, "IndexScan") || strings.Contains(res[0].Plan, "Vectorized") {
		t.Errorf("indexed plan should bypass the batch tier:\n%s", res[0].Plan)
	}

	// Vectorization off: classic Volcano plan.
	s.SetParallelism(1)
	s.SetVectorized(false)
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE id < 0 OR qty >= 0`)
	if strings.Contains(res[0].Plan, "Vectorized") || !strings.Contains(res[0].Plan, "Select(") {
		t.Errorf("scalar plan:\n%s", res[0].Plan)
	}
}

// TestSimplifiedPlans pins the bind-time predicate simplification: a
// tautology drops its Select step, an unsatisfiable filter plans an empty
// scan, and EXPLAIN reflects both.
func TestSimplifiedPlans(t *testing.T) {
	cat := vecCatalog(t, 500)
	s := NewSession(cat)

	res := s.MustExec(`EXPLAIN SELECT id FROM big WHERE 1 = 1`)
	if strings.Contains(res[0].Plan, "Select(") {
		t.Errorf("tautology should drop the Select step:\n%s", res[0].Plan)
	}

	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE 1 = 2`)
	if !strings.Contains(res[0].Plan, "EmptyScan(big)") {
		t.Errorf("unsatisfiable filter should plan an EmptyScan:\n%s", res[0].Plan)
	}
	out, err := s.Query(`SELECT id FROM big WHERE 1 = 2`)
	if err != nil || out.Len() != 0 {
		t.Fatalf("WHERE 1=2 = %d rows, err %v", out.Len(), err)
	}

	// x AND false is false regardless of x — including when x would error.
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE qty > 10 AND 1 = 2`)
	if !strings.Contains(res[0].Plan, "EmptyScan(big)") {
		t.Errorf("x AND false should plan an EmptyScan:\n%s", res[0].Plan)
	}

	// A global COUNT over the empty plan still yields its one row.
	out, err = s.Query(`SELECT COUNT(*) AS n FROM big WITH QUALITY 1 = 2`)
	if err != nil || out.Len() != 1 || out.Tuples[0].Cells[0].V.AsInt() != 0 {
		t.Fatalf("COUNT over empty plan = %v, err %v", out, err)
	}

	// Simplification reaches the scalar tier too.
	s.SetVectorized(false)
	res = s.MustExec(`EXPLAIN SELECT id FROM big WHERE 1 = 1 AND qty > 100`)
	if !strings.Contains(res[0].Plan, "Select((qty > 100))") {
		t.Errorf("scalar plan should keep only the live conjunct:\n%s", res[0].Plan)
	}
}

// TestVectorizedScalarPathsSkipClones is the clone-traffic satellite:
// COUNT(*) and projected scans clone nothing in either tier — the shared
// zero-clone segment reads carry both — while DML keeps its snapshot
// clones.
func TestVectorizedScalarPathsSkipClones(t *testing.T) {
	cat := vecCatalog(t, storage.SegmentSize+200)
	for _, mode := range []struct {
		name string
		vec  bool
	}{{"vectorized", true}, {"scalar", false}} {
		s := NewSession(cat)
		s.SetVectorized(mode.vec)
		s.SetParallelism(1)
		for _, q := range []string{
			`SELECT COUNT(*) AS n FROM big`,
			`SELECT COUNT(*) AS n FROM big WHERE qty >= 500`,
			`SELECT id, qty FROM big WHERE qty >= 900`,
			`SELECT grp, COUNT(*) AS n FROM big GROUP BY grp`,
			`SELECT b.id, d.label FROM big b JOIN dim d ON b.grp = d.grp WHERE b.qty >= 700`,
			`SELECT d.label, COUNT(*) AS n FROM big b JOIN dim d ON b.grp = d.grp GROUP BY d.label`,
		} {
			before := storage.TupleClones()
			if _, err := s.Query(q); err != nil {
				t.Fatalf("%s %q: %v", mode.name, q, err)
			}
			if d := storage.TupleClones() - before; d != 0 {
				t.Errorf("%s %q cloned %d tuples, want 0", mode.name, q, d)
			}
		}
	}
}

// TestVectorizedUnderSharedPlanCacheRace: concurrent sessions with mixed
// batch sizes and tiers share one plan cache over one catalog while DDL
// bumps schema versions — run under -race by CI.
func TestVectorizedUnderSharedPlanCacheRace(t *testing.T) {
	cat := vecCatalog(t, storage.SegmentSize+300)
	cache := NewPlanCache(64)
	queries := vectorizedWorkload()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSession(cat)
			s.SetPlanCache(cache)
			s.SetVectorized(w%4 != 0) // one scalar session in the mix
			s.SetBatchSize([]int{1024, 64, 3, 1024}[w%4])
			s.SetParallelism(1 + w%3)
			for i := 0; i < 30; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := s.Query(q); err != nil {
					t.Errorf("worker %d %q: %v", w, q, err)
					return
				}
			}
		}(w)
	}
	// DDL churn alongside: bump schema versions so cached vectorized plans
	// are invalidated and rebuilt concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := NewSession(cat)
		s.SetPlanCache(cache)
		for i := 0; i < 10; i++ {
			s.MustExec(`TAG TABLE big {load: 'batch'}`)
		}
	}()
	wg.Wait()
}
