package qql

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestTagTableAndShowTags(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE t (x int)`)
	res, err := s.Exec(`TAG TABLE t @ {population_method: 'batch_load', record_count: 0}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Msg, "tagged table t with 2") {
		t.Errorf("msg = %q", res[0].Msg)
	}
	// Re-tagging replaces.
	s.MustExec(`TAG TABLE t {record_count: 42}`)
	out := s.MustExec(`SHOW TAGS t`)
	rel := out[0].Rel
	if rel.Len() != 2 {
		t.Fatalf("tags = %d", rel.Len())
	}
	found := map[string]string{}
	for _, tup := range rel.Tuples {
		found[tup.Cells[0].V.AsString()] = tup.Cells[1].V.String()
	}
	if found["population_method"] != "batch_load" || found["record_count"] != "42" {
		t.Errorf("tags = %v", found)
	}
	// Table-level tags flow into snapshots (and thus query results'
	// provenance context).
	tbl, _ := s.Catalog().Get("t")
	snap := tbl.Snapshot()
	if !snap.TableTags.Has("population_method") {
		t.Error("snapshot lost table tags")
	}
	// Errors.
	if _, err := s.Exec(`TAG TABLE ghost {a: 1}`); err == nil {
		t.Error("tagging unknown table should fail")
	}
	if _, err := s.Exec(`SHOW TAGS ghost`); err == nil {
		t.Error("showing unknown table's tags should fail")
	}
	if _, err := Parse(`TAG t {a: 1}`); err == nil {
		t.Error("TAG without TABLE should fail")
	}
}
