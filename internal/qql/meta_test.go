package qql

import (
	"testing"
	"time"

	"repro/internal/storage"
)

// TestMetaQualityRoundTrip exercises Premise 1.4: the same tagging and
// query mechanism applied to quality indicators themselves. The source tag
// on an employee count carries its own credibility assessment, queryable as
// employees@source@credibility.
func TestMetaQualityRoundTrip(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	s.MustExec(`
CREATE TABLE customer (
  co_name string REQUIRED,
  employees int QUALITY (source string)
) KEY (co_name);

INSERT INTO customer VALUES
  ('Fruit Co', 4004 @ {source: 'Nexis' @ {credibility: 'high', assessed_by: 'dq_admin'}}),
  ('Nut Co',   700  @ {source: 'estimate' @ {credibility: 'low'}}),
  ('Seed Co',  120  @ {source: 'sales'});
`)
	// Filter by the quality of the quality indicator.
	rel, err := s.Query(`SELECT co_name FROM customer WITH QUALITY employees@source@credibility = 'high'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
		t.Fatalf("meta filter = %v", rel.Tuples)
	}
	// Unassessed meta-quality is unknown: never satisfies.
	rel, err = s.Query(`SELECT co_name FROM customer WITH QUALITY employees@source@credibility != 'low'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("unknown meta should not satisfy !=: %v", rel.Tuples)
	}
	// IS NULL finds the unassessed rows.
	rel, err = s.Query(`SELECT co_name FROM customer WITH QUALITY employees@source@credibility IS NULL ORDER BY co_name`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Seed Co" {
		t.Fatalf("IS NULL meta = %v", rel.Tuples)
	}
	// Both the indicator and its meta-quality survive projection.
	rel, err = s.Query(`SELECT employees FROM customer WHERE co_name = 'Fruit Co'`)
	if err != nil {
		t.Fatal(err)
	}
	c := rel.Tuples[0].Cells[0]
	if v, ok := c.MetaFor("source").Get("credibility"); !ok || v.AsString() != "high" {
		t.Errorf("meta lost through projection: %v %v", v, ok)
	}
	if v, ok := c.MetaFor("source").Get("assessed_by"); !ok || v.AsString() != "dq_admin" {
		t.Errorf("second meta tag lost: %v %v", v, ok)
	}
}

func TestMetaQualityUpdate(t *testing.T) {
	s := NewSession(storage.NewCatalog())
	s.MustExec(`CREATE TABLE m (x int QUALITY (source string));
INSERT INTO m VALUES (1 @ {source: 'feed'})`)
	// The administrator later assesses the source tag.
	s.MustExec(`UPDATE m SET x @ {source: 'feed' @ {credibility: 'medium'}}`)
	rel, err := s.Query(`SELECT x FROM m WITH QUALITY x@source@credibility = 'medium'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("meta update not visible: %v", rel.Tuples)
	}
}

func TestMetaQualityParserLimits(t *testing.T) {
	// Only one level of meta nesting is supported.
	if _, err := Parse(`INSERT INTO t VALUES (1 @ {a: 1 @ {b: 2 @ {c: 3}}})`); err == nil {
		t.Error("two-level meta nesting should be rejected")
	}
	// col@ind@meta parses in expressions and prints back.
	st, err := ParseOne(`SELECT x FROM t WHERE x@a@b = 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if got := sel.Where.String(); got != "(x@a@b = 1)" {
		t.Errorf("meta ref string = %q", got)
	}
}
