package qql

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/workload"
)

// TestIndexedVersusScannedDifferential runs randomly generated quality
// queries against two copies of the same data — one fully indexed, one with
// no indexes — and requires identical results. This pins the planner's
// index pushdown (equality and range, over attributes and indicators,
// including bound combination) to the semantics of the naive scan.
func TestIndexedVersusScannedDifferential(t *testing.T) {
	rel := workload.Customers(workload.CustomerConfig{N: 3000, Seed: 77, Untagged: 0.1})

	mk := func(indexed bool) *Session {
		cat := storage.NewCatalog()
		sess := NewSession(cat)
		sess.SetNow(workload.Epoch)
		tbl, err := cat.Create(rel.Schema, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Load(rel); err != nil {
			t.Fatal(err)
		}
		if indexed {
			for _, ix := range []struct {
				target storage.IndexTarget
				kind   storage.IndexKind
			}{
				{storage.IndexTarget{Attr: "employees"}, storage.IndexBTree},
				{storage.IndexTarget{Attr: "employees", Indicator: "creation_time"}, storage.IndexBTree},
				{storage.IndexTarget{Attr: "employees", Indicator: "source"}, storage.IndexHash},
				{storage.IndexTarget{Attr: "address", Indicator: "source"}, storage.IndexHash},
			} {
				if err := tbl.CreateIndex(ix.target, ix.kind); err != nil {
					t.Fatal(err)
				}
			}
		}
		return sess
	}
	indexed, scanned := mk(true), mk(false)

	r := rand.New(rand.NewSource(31))
	sources := []string{"sales", "acct'g", "Nexis", "estimate", "nowhere"}
	randTime := func() string {
		back := time.Duration(r.Int63n(int64(400 * 24 * time.Hour)))
		return workload.Epoch.Add(-back).Format(time.RFC3339)
	}
	genQuery := func() string {
		var conj []string
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				conj = append(conj, fmt.Sprintf("employees >= %d", r.Intn(10000)))
			case 1:
				conj = append(conj, fmt.Sprintf("employees < %d", r.Intn(10000)))
			case 2:
				src := sources[r.Intn(len(sources))]
				op := []string{"=", "!="}[r.Intn(2)]
				conj = append(conj, fmt.Sprintf("employees@source %s '%s'", op, sqlEscape(src)))
			case 3:
				conj = append(conj, fmt.Sprintf("employees@creation_time >= t'%s'", randTime()))
			default:
				conj = append(conj, fmt.Sprintf("address@source = '%s'", sqlEscape(sources[r.Intn(len(sources))])))
			}
		}
		where := conj[0]
		for _, c := range conj[1:] {
			where += " AND " + c
		}
		return "SELECT co_name, employees FROM customer WITH QUALITY " + where + " ORDER BY co_name"
	}

	for i := 0; i < 150; i++ {
		q := genQuery()
		a, err := indexed.Query(q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		b, err := scanned.Query(q)
		if err != nil {
			t.Fatalf("scanned %q: %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("query %q: indexed %d rows, scanned %d", q, a.Len(), b.Len())
		}
		for j := range a.Tuples {
			if !a.Tuples[j].Equal(b.Tuples[j]) {
				t.Fatalf("query %q: row %d differs:\n  %v\n  %v", q, j, a.Tuples[j], b.Tuples[j])
			}
		}
	}
}

func sqlEscape(s string) string {
	out := ""
	for _, c := range s {
		if c == '\'' {
			out += "''"
		} else {
			out += string(c)
		}
	}
	return out
}
