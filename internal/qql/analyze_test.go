package qql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

// analyzeFixture builds a session over a 50-row table where exactly 40 rows
// have a >= 10, so per-operator row counts are predictable.
func analyzeFixture(t *testing.T) *Session {
	t.Helper()
	cat := storage.NewCatalog()
	s := NewSession(cat)
	s.SetPlanCache(NewPlanCache(16))
	s.MustExec(`CREATE TABLE t (a int REQUIRED, b string) KEY (a)`)
	var ins strings.Builder
	ins.WriteString(`INSERT INTO t VALUES `)
	for i := 0; i < 50; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, `(%d, 'r%d')`, i, i)
	}
	s.MustExec(ins.String())
	return s
}

// stepByPrefix finds the first instrumented step whose description starts
// with prefix.
func stepByPrefix(t *testing.T, rep *AnalyzeReport, prefix string) AnalyzeStep {
	t.Helper()
	for _, st := range rep.Steps {
		if strings.HasPrefix(st.Desc, prefix) {
			if !st.Instrumented {
				t.Fatalf("step %q not instrumented", st.Desc)
			}
			return st
		}
	}
	t.Fatalf("no step with prefix %q in %+v", prefix, rep.Steps)
	return AnalyzeStep{}
}

func TestAnalyzeVectorizedCounts(t *testing.T) {
	s := analyzeFixture(t)
	rep, err := s.AnalyzeQuery(`SELECT a, b FROM t WHERE a >= 10 LIMIT 12`)
	if err != nil {
		t.Fatal(err)
	}
	scan := stepByPrefix(t, rep, "BatchTableScan")
	sel := stepByPrefix(t, rep, "BatchSelect")
	lim := stepByPrefix(t, rep, "Limit")
	if scan.Rows != 50 {
		t.Errorf("scan rows = %d, want 50", scan.Rows)
	}
	if scan.Batches == 0 {
		t.Errorf("batch scan reported no batches")
	}
	if sel.Rows != 40 {
		t.Errorf("select rows = %d, want 40", sel.Rows)
	}
	if lim.Rows != 12 {
		t.Errorf("limit rows = %d, want 12", lim.Rows)
	}
	if rep.Rows != 12 {
		t.Errorf("report rows = %d, want 12", rep.Rows)
	}
	if root, ok := rep.RootRows(); !ok || root != int64(rep.Rows) {
		t.Errorf("root rows = %d (ok=%v), want %d", root, ok, rep.Rows)
	}
	if rep.CacheTier != "miss" {
		t.Errorf("first run cache tier = %q, want miss", rep.CacheTier)
	}

	// The analyze run warms the bare SELECT's bound-plan entry.
	rep2, err := s.AnalyzeQuery(`SELECT a, b FROM t WHERE a >= 10 LIMIT 12`)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheTier != "hit" {
		t.Errorf("second run cache tier = %q, want hit", rep2.CacheTier)
	}
}

func TestAnalyzeSerialCounts(t *testing.T) {
	s := analyzeFixture(t)
	s.SetVectorized(false)
	s.SetParallelism(1)
	rep, err := s.AnalyzeQuery(`SELECT a FROM t WHERE a >= 10 ORDER BY a DESC`)
	if err != nil {
		t.Fatal(err)
	}
	scan := stepByPrefix(t, rep, "TableScan")
	sort := stepByPrefix(t, rep, "Sort")
	if scan.Rows != 50 {
		t.Errorf("scan rows = %d, want 50", scan.Rows)
	}
	if sort.Rows != 40 {
		t.Errorf("sort rows = %d, want 40", sort.Rows)
	}
	if scan.Batches != 0 {
		t.Errorf("Volcano scan reported %d batches, want 0", scan.Batches)
	}
	if rep.Rows != 40 {
		t.Errorf("report rows = %d, want 40", rep.Rows)
	}
}

func TestAnalyzeParallelScanOccupancy(t *testing.T) {
	const n = 2*storage.SegmentSize + 100 // 3 segments
	s, _ := bigCatalog(t, n)
	s.SetPlanCache(NewPlanCache(16))
	s.SetParallelism(8)
	s.SetVectorized(false)

	rep, err := s.AnalyzeQuery(`SELECT id FROM big WHERE qty >= 500`)
	if err != nil {
		t.Fatal(err)
	}
	scan := stepByPrefix(t, rep, "ParallelScan")
	if root, ok := rep.RootRows(); !ok || root != int64(rep.Rows) {
		t.Errorf("root rows = %d (ok=%v), want %d", root, ok, rep.Rows)
	}
	// The fused predicate filters inside the workers, so the scan's output
	// count equals the result count.
	if scan.Rows != int64(rep.Rows) {
		t.Errorf("parallel scan rows = %d, want %d", scan.Rows, rep.Rows)
	}
	if !strings.Contains(scan.Extra, "workers=3") || !strings.Contains(scan.Extra, "segments=[") {
		t.Errorf("parallel scan extra = %q, want worker occupancy", scan.Extra)
	}
	// Every segment was claimed by some worker: occupancy sums to 3.
	var segs [3]int
	if _, err := fmt.Sscanf(scan.Extra[strings.Index(scan.Extra, "segments=["):],
		"segments=[%d %d %d]", &segs[0], &segs[1], &segs[2]); err != nil {
		t.Fatalf("parsing extra %q: %v", scan.Extra, err)
	}
	if segs[0]+segs[1]+segs[2] != 3 {
		t.Errorf("segment occupancy %v does not sum to 3", segs)
	}
}

func TestAnalyzeVectorizedParallelScan(t *testing.T) {
	const n = 2*storage.SegmentSize + 100
	s, _ := bigCatalog(t, n)
	s.SetPlanCache(NewPlanCache(16))
	s.SetParallelism(4)

	rep, err := s.AnalyzeQuery(`SELECT COUNT(*) AS c FROM big WHERE qty >= 500`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 1 {
		t.Fatalf("report rows = %d, want 1", rep.Rows)
	}
	// The aggregate drains its input in its constructor; that eager work
	// must be charged to the aggregate step, not lost.
	agg := stepByPrefix(t, rep, "BatchAggregate")
	if agg.Rows != 1 {
		t.Errorf("aggregate rows = %d, want 1", agg.Rows)
	}
	if agg.Time <= 0 {
		t.Errorf("aggregate time = %v, want > 0 (eager drain charged)", agg.Time)
	}
}

func TestAnalyzeJoinSetupCharged(t *testing.T) {
	s := analyzeFixture(t)
	s.MustExec(`CREATE TABLE u (a int REQUIRED, note string) KEY (a)`)
	s.MustExec(`INSERT INTO u VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	// Vectorized session: the equi-join routes through the batch-native
	// hash join, whose build-side transpose happens in the constructor and
	// must be charged to the join step.
	rep, err := s.AnalyzeQuery(`SELECT t.b, u.note FROM t JOIN u ON t.a = u.a`)
	if err != nil {
		t.Fatal(err)
	}
	join := stepByPrefix(t, rep, "BatchHashJoin")
	if join.Rows != 3 {
		t.Errorf("join rows = %d, want 3", join.Rows)
	}
	if join.Time <= 0 {
		t.Errorf("join time = %v, want > 0 (build side charged)", join.Time)
	}
	if rep.Rows != 3 {
		t.Errorf("report rows = %d, want 3", rep.Rows)
	}

	// The scalar tier keeps its Volcano hash join, with the same
	// setup-charging contract.
	s.SetVectorized(false)
	rep, err = s.AnalyzeQuery(`SELECT t.b, u.note FROM t JOIN u ON t.a = u.a`)
	if err != nil {
		t.Fatal(err)
	}
	join = stepByPrefix(t, rep, "HashJoin")
	if join.Rows != 3 {
		t.Errorf("scalar join rows = %d, want 3", join.Rows)
	}
	if join.Time <= 0 {
		t.Errorf("scalar join time = %v, want > 0 (build side charged)", join.Time)
	}
}

func TestAnalyzeSegmentSkipping(t *testing.T) {
	const n = 2*storage.SegmentSize + 100 // 3 segments; id is insertion-ordered
	s, _ := bigCatalog(t, n)
	s.SetPlanCache(NewPlanCache(16))
	s.SetParallelism(1)

	// id rises monotonically with the insertion order, so each segment's
	// min/max refutes id < 5 except the first: the columnar scan skips the
	// other two segments whole and reports it.
	rep, err := s.AnalyzeQuery(`SELECT id FROM big WHERE id < 5`)
	if err != nil {
		t.Fatal(err)
	}
	scan := stepByPrefix(t, rep, "BatchTableScan")
	if scan.Extra != "segments skipped=2 of 3" {
		t.Errorf("scan extra = %q, want \"segments skipped=2 of 3\"", scan.Extra)
	}
	if scan.Rows != int64(storage.SegmentSize) {
		t.Errorf("scan rows = %d, want %d (only the first segment read)", scan.Rows, storage.SegmentSize)
	}
	if rep.Rows != 5 {
		t.Errorf("report rows = %d, want 5", rep.Rows)
	}

	// The skip count surfaces in the rendered EXPLAIN ANALYZE output.
	res := s.MustExec(`EXPLAIN ANALYZE SELECT id FROM big WHERE id < 5`)
	if !strings.Contains(res[0].Plan, "segments skipped=2 of 3") {
		t.Errorf("EXPLAIN ANALYZE missing segment-skip actuals:\n%s", res[0].Plan)
	}

	// An unprunable predicate skips nothing but still reports the outcome.
	rep, err = s.AnalyzeQuery(`SELECT COUNT(*) AS c FROM big WHERE qty >= 500`)
	if err != nil {
		t.Fatal(err)
	}
	scan = stepByPrefix(t, rep, "BatchTableScan")
	if scan.Extra != "segments skipped=0 of 3" {
		t.Errorf("scan extra = %q, want \"segments skipped=0 of 3\"", scan.Extra)
	}
}

func TestExplainAnalyzeStatement(t *testing.T) {
	s := analyzeFixture(t)
	res := s.MustExec(`EXPLAIN ANALYZE SELECT a FROM t WHERE a >= 10`)
	plan := res[0].Plan
	for _, want := range []string{"actual rows=", "phases: parse=", "plan cache: miss", "rows: 40"} {
		if !strings.Contains(plan, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, plan)
		}
	}
	// Executing the bare SELECT next hits the plan the analyze run stored.
	s.MustExec(`SELECT a FROM t WHERE a >= 10`)
	res = s.MustExec(`EXPLAIN ANALYZE SELECT a FROM t WHERE a >= 10`)
	if !strings.Contains(res[0].Plan, "plan cache: hit") {
		t.Errorf("second EXPLAIN ANALYZE should hit:\n%s", res[0].Plan)
	}
	// Plain EXPLAIN is unchanged: no actuals.
	res = s.MustExec(`EXPLAIN SELECT a FROM t WHERE a >= 10`)
	if strings.Contains(res[0].Plan, "actual rows=") {
		t.Errorf("plain EXPLAIN must not execute:\n%s", res[0].Plan)
	}
}

func TestShowStats(t *testing.T) {
	s := analyzeFixture(t)
	s.MustExec(`SELECT a FROM t LIMIT 1`)
	res := s.MustExec(`SHOW STATS`)
	rel := res[0].Rel
	if rel == nil {
		t.Fatal("SHOW STATS returned no relation")
	}
	got := map[string]string{}
	for _, tup := range rel.Tuples {
		got[tup.Cells[0].V.AsString()] = tup.Cells[1].V.AsString()
	}
	for _, want := range []string{
		"session_statements", "session_errors", "cache_ast_hits",
		"cache_plan_hits", "storage_tuple_clones",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("SHOW STATS missing %q (got %v)", want, got)
		}
	}
	if got["session_errors"] != "0" {
		t.Errorf("session_errors = %q, want 0", got["session_errors"])
	}
}
