package qql

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/storage"
	"repro/internal/value"
)

// Parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type Parser struct {
	lx  *Lexer
	cur Token
}

// NewParser returns a parser over src, primed with the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse parses all statements in a script (semicolon separated).
func Parse(src string) ([]Stmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		for p.isPunct(";") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.cur.Kind == TokEOF {
			return out, nil
		}
		s, err := p.Statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.isPunct(";") && p.cur.Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input, got %q", p.cur.Text)
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Stmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("qql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *Parser) next() error {
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qql: line %d col %d: %s", p.cur.Line, p.cur.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(k string) bool {
	return p.cur.Kind == TokKeyword && p.cur.Text == k
}

func (p *Parser) isPunct(s string) bool {
	return p.cur.Kind == TokPunct && p.cur.Text == s
}

func (p *Parser) isOp(s string) bool {
	return p.cur.Kind == TokOp && p.cur.Text == s
}

func (p *Parser) acceptKeyword(k string) (bool, error) {
	if p.isKeyword(k) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectKeyword(k string) error {
	if !p.isKeyword(k) {
		return p.errf("expected %s, got %q", k, p.cur.Text)
	}
	return p.next()
}

func (p *Parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur.Text)
	}
	return p.next()
}

// softKeywords may double as plain identifiers in name positions; most
// importantly SOURCE, because "source" is the paper's canonical quality
// indicator name.
var softKeywords = map[string]bool{
	"SOURCE": true, "QUALITY": true, "KEY": true, "TABLES": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"HASH": true, "BTREE": true, "STRICT": true, "REQUIRED": true,
	"ANALYZE": true, "STATS": true,
}

// ident accepts an identifier, or a soft keyword used as a name (returned
// in its original spelling).
func (p *Parser) ident() (string, error) {
	if p.cur.Kind == TokIdent {
		name := p.cur.Text
		return name, p.next()
	}
	if p.cur.Kind == TokKeyword && softKeywords[p.cur.Text] {
		name := p.cur.Val.AsString()
		return name, p.next()
	}
	return "", p.errf("expected identifier, got %q", p.cur.Text)
}

// Statement parses a single statement by its leading keyword.
func (p *Parser) Statement() (Stmt, error) {
	switch {
	case p.isKeyword("CREATE"):
		return p.createStmt()
	case p.isKeyword("DROP"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name}, nil
	case p.isKeyword("INSERT"):
		return p.insertStmt()
	case p.isKeyword("SELECT"):
		return p.selectStmt()
	case p.isKeyword("EXPLAIN"):
		if err := p.next(); err != nil {
			return nil, err
		}
		analyze := false
		if p.isKeyword("ANALYZE") {
			analyze = true
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Sel: sel.(*SelectStmt), Analyze: analyze}, nil
	case p.isKeyword("DELETE"):
		return p.deleteStmt()
	case p.isKeyword("UPDATE"):
		return p.updateStmt()
	case p.isKeyword("SHOW"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isKeyword("TAGS") {
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ShowTagsStmt{Table: name}, nil
		}
		if p.isKeyword("STATS") {
			if err := p.next(); err != nil {
				return nil, err
			}
			return &ShowStatsStmt{}, nil
		}
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case p.isKeyword("TAG"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.isPunct("@") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		tags, err := p.tagBlock()
		if err != nil {
			return nil, err
		}
		return &TagTableStmt{Table: name, Tags: tags}, nil
	case p.isKeyword("DESCRIBE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name}, nil
	}
	return nil, p.errf("expected a statement, got %q", p.cur.Text)
}

func (p *Parser) createStmt() (Stmt, error) {
	if err := p.next(); err != nil { // CREATE
		return nil, err
	}
	switch {
	case p.isKeyword("TABLE"):
		return p.createTable()
	case p.isKeyword("INDEX"):
		return p.createIndex()
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *Parser) createTable() (Stmt, error) {
	if err := p.next(); err != nil { // TABLE
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name}
	for {
		col, err := p.colDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if ok, err := p.acceptKeyword("KEY"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			k, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Key = append(st.Key, k)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptKeyword("STRICT"); err != nil {
		return nil, err
	} else if ok {
		st.Strict = true
	}
	return st, nil
}

func (p *Parser) colDef() (ColDef, error) {
	var cd ColDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	if p.cur.Kind != TokIdent {
		return cd, p.errf("expected type name, got %q", p.cur.Text)
	}
	kind, err := value.ParseKind(p.cur.Text)
	if err != nil {
		return cd, p.errf("%v", err)
	}
	cd.Kind = kind
	if err := p.next(); err != nil {
		return cd, err
	}
	if ok, err := p.acceptKeyword("REQUIRED"); err != nil {
		return cd, err
	} else if ok {
		cd.Required = true
	}
	if ok, err := p.acceptKeyword("QUALITY"); err != nil {
		return cd, err
	} else if ok {
		if err := p.expectPunct("("); err != nil {
			return cd, err
		}
		for {
			iname, err := p.ident()
			if err != nil {
				return cd, err
			}
			if p.cur.Kind != TokIdent {
				return cd, p.errf("expected indicator type, got %q", p.cur.Text)
			}
			ikind, err := value.ParseKind(p.cur.Text)
			if err != nil {
				return cd, p.errf("%v", err)
			}
			if err := p.next(); err != nil {
				return cd, err
			}
			cd.Indicators = append(cd.Indicators, IndDef{Name: iname, Kind: ikind})
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return cd, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return cd, err
		}
	}
	return cd, nil
}

func (p *Parser) createIndex() (Stmt, error) {
	if err := p.next(); err != nil { // INDEX
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	target := storage.IndexTarget{Attr: attr}
	if p.isPunct("@") {
		if err := p.next(); err != nil {
			return nil, err
		}
		ind, err := p.ident()
		if err != nil {
			return nil, err
		}
		target.Indicator = ind
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	kind := storage.IndexBTree
	if ok, err := p.acceptKeyword("USING"); err != nil {
		return nil, err
	} else if ok {
		switch {
		case p.isKeyword("HASH"):
			kind = storage.IndexHash
		case p.isKeyword("BTREE"):
			kind = storage.IndexBTree
		default:
			return nil, p.errf("expected HASH or BTREE")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return &CreateIndexStmt{Table: table, Target: target, Kind: kind}, nil
}

func (p *Parser) insertStmt() (Stmt, error) {
	if err := p.next(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []InsertCell
		for {
			cell, err := p.insertCell()
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return st, nil
}

// insertCell parses expr [@ {ind: expr, ...}] [SOURCE 'a', 'b'].
func (p *Parser) insertCell() (InsertCell, error) {
	var c InsertCell
	e, err := p.Expr()
	if err != nil {
		return c, err
	}
	c.Expr = e
	if p.isPunct("@") {
		if err := p.next(); err != nil {
			return c, err
		}
		tags, err := p.tagBlock()
		if err != nil {
			return c, err
		}
		c.Tags = tags
	}
	if p.isKeyword("SOURCE") {
		if err := p.next(); err != nil {
			return c, err
		}
		// Either a single string, or a parenthesized list: SOURCE ('a',
		// 'b'). The parentheses avoid ambiguity with the comma that
		// separates row cells.
		if p.isPunct("(") {
			if err := p.next(); err != nil {
				return c, err
			}
			for {
				if p.cur.Kind != TokString {
					return c, p.errf("expected source name string")
				}
				c.Sources = append(c.Sources, p.cur.Text)
				if err := p.next(); err != nil {
					return c, err
				}
				if p.isPunct(",") {
					if err := p.next(); err != nil {
						return c, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return c, err
			}
		} else {
			if p.cur.Kind != TokString {
				return c, p.errf("expected source name string")
			}
			c.Sources = append(c.Sources, p.cur.Text)
			if err := p.next(); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}

// tagBlock parses {ind: expr [@ {meta: expr, ...}], ...}. The optional
// nested block records meta-quality for the indicator (Premise 1.4).
func (p *Parser) tagBlock() ([]TagAssign, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TagAssign
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		ta := TagAssign{Name: name, Expr: e}
		if p.isPunct("@") {
			if err := p.next(); err != nil {
				return nil, err
			}
			meta, err := p.tagBlock()
			if err != nil {
				return nil, err
			}
			for _, m := range meta {
				if len(m.Meta) > 0 {
					return nil, p.errf("meta-quality nests only one level")
				}
			}
			ta.Meta = meta
		}
		out = append(out, ta)
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) selectStmt() (Stmt, error) {
	if err := p.next(); err != nil { // SELECT
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		st.Distinct = true
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	st.From = ref
	for p.isKeyword("JOIN") {
		if err := p.next(); err != nil {
			return nil, err
		}
		jref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Ref: jref, On: on})
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if ok, err := p.acceptKeyword("WITH"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("QUALITY"); err != nil {
			return nil, err
		}
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Quality = e
	}
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if ok, err := p.acceptKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if ok, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = false
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if ok, err := p.acceptKeyword("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		if p.cur.Kind != TokInt {
			return nil, p.errf("expected integer after LIMIT")
		}
		st.Limit = int(p.cur.Val.AsInt())
		if err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptKeyword("OFFSET"); err != nil {
			return nil, err
		} else if ok {
			if p.cur.Kind != TokInt {
				return nil, p.errf("expected integer after OFFSET")
			}
			st.Offset = int(p.cur.Val.AsInt())
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

func (p *Parser) selectItem() (SelectItem, error) {
	var item SelectItem
	if p.isPunct("*") {
		item.Star = true
		return item, p.next()
	}
	if p.cur.Kind == TokKeyword {
		switch p.cur.Text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			fn := map[string]algebra.AggFunc{
				"COUNT": algebra.AggCount, "SUM": algebra.AggSum, "AVG": algebra.AggAvg,
				"MIN": algebra.AggMin, "MAX": algebra.AggMax,
			}[p.cur.Text]
			if err := p.next(); err != nil {
				return item, err
			}
			if err := p.expectPunct("("); err != nil {
				return item, err
			}
			agg := &AggItem{Fn: fn}
			if p.isPunct("*") {
				if fn != algebra.AggCount {
					return item, p.errf("only COUNT accepts *")
				}
				if err := p.next(); err != nil {
					return item, err
				}
			} else {
				arg, err := p.Expr()
				if err != nil {
					return item, err
				}
				agg.Arg = arg
			}
			if err := p.expectPunct(")"); err != nil {
				return item, err
			}
			item.Agg = agg
			if ok, err := p.acceptKeyword("AS"); err != nil {
				return item, err
			} else if ok {
				as, err := p.ident()
				if err != nil {
					return item, err
				}
				item.As = as
			}
			return item, nil
		}
	}
	e, err := p.Expr()
	if err != nil {
		return item, err
	}
	item.Expr = e
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return item, err
	} else if ok {
		as, err := p.ident()
		if err != nil {
			return item, err
		}
		item.As = as
	}
	return item, nil
}

func (p *Parser) tableRef() (TableRef, error) {
	var ref TableRef
	name, err := p.ident()
	if err != nil {
		return ref, err
	}
	ref.Table = name
	ref.Alias = name
	if p.cur.Kind == TokIdent {
		alias, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Alias = alias
	}
	return ref, nil
}

func (p *Parser) deleteStmt() (Stmt, error) {
	if err := p.next(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) updateStmt() (Stmt, error) {
	if err := p.next(); err != nil { // UPDATE
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sc := SetClause{Col: col}
		if p.isOp("=") {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			sc.Expr = e
		}
		if p.isPunct("@") {
			if err := p.next(); err != nil {
				return nil, err
			}
			tags, err := p.tagBlock()
			if err != nil {
				return nil, err
			}
			sc.Tags = tags
		}
		if sc.Expr == nil && sc.Tags == nil {
			return nil, p.errf("SET %s assigns neither value nor tags", col)
		}
		st.Sets = append(st.Sets, sc)
		if p.isPunct(",") {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.Expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// ---- Expression grammar ----
// Expr       := orExpr
// orExpr     := andExpr (OR andExpr)*
// andExpr    := notExpr (AND notExpr)*
// notExpr    := NOT notExpr | predicate
// predicate  := additive [cmpOp additive | IS [NOT] NULL | [NOT] IN (...) | [NOT] LIKE 'pat']
// additive   := multiplicative ((+|-) multiplicative)*
// multiplicative := unary ((*|/) unary)*
// unary      := - unary | primary
// primary    := literal | ref | call | ( Expr )

// Expr parses a full expression.
func (p *Parser) Expr() (algebra.Expr, error) {
	return p.orExpr()
}

func (p *Parser) orExpr() (algebra.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &algebra.Logic{Op: algebra.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) andExpr() (algebra.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &algebra.Logic{Op: algebra.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) notExpr() (algebra.Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &algebra.Not{E: e}, nil
	}
	return p.predicate()
}

var cmpOps = map[string]algebra.CmpOp{
	"=": algebra.OpEq, "!=": algebra.OpNe, "<": algebra.OpLt,
	"<=": algebra.OpLe, ">": algebra.OpGt, ">=": algebra.OpGe,
}

func (p *Parser) predicate() (algebra.Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.cur.Kind == TokOp {
		if op, ok := cmpOps[p.cur.Text]; ok {
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &algebra.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	if p.isKeyword("IS") {
		if err := p.next(); err != nil {
			return nil, err
		}
		neg := false
		if ok, err := p.acceptKeyword("NOT"); err != nil {
			return nil, err
		} else if ok {
			neg = true
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &algebra.IsNull{E: l, Negate: neg}, nil
	}
	neg := false
	if p.isKeyword("NOT") {
		// NOT IN / NOT LIKE
		save := p.cur
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.isKeyword("IN") && !p.isKeyword("LIKE") {
			return nil, fmt.Errorf("qql: line %d: unexpected NOT", save.Line)
		}
		neg = true
	}
	if p.isKeyword("IN") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []algebra.Expr
		for {
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.isPunct(",") {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &algebra.InList{E: l, List: list, Negate: neg}, nil
	}
	if p.isKeyword("LIKE") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.cur.Kind != TokString {
			return nil, p.errf("expected pattern string after LIKE")
		}
		pat := p.cur.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &algebra.Like{E: l, Pattern: pat, Negate: neg}, nil
	}
	return l, nil
}

func (p *Parser) additive() (algebra.Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := algebra.OpAdd
		if p.cur.Text == "-" {
			op = algebra.OpSub
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &algebra.Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) multiplicative() (algebra.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isOp("/") {
		op := algebra.OpMul
		if p.cur.Kind == TokOp && p.cur.Text == "/" {
			op = algebra.OpDiv
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &algebra.Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) unary() (algebra.Expr, error) {
	if p.isOp("-") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if c, ok := e.(*algebra.Const); ok && c.V.Numeric() {
			v, err := value.Neg(c.V)
			if err == nil {
				return &algebra.Const{V: v}, nil
			}
		}
		return &algebra.Neg{E: e}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (algebra.Expr, error) {
	switch p.cur.Kind {
	case TokInt, TokFloat, TokString, TokTime, TokDuration:
		v := p.cur.Val
		return &algebra.Const{V: v}, p.next()
	case TokKeyword:
		switch p.cur.Text {
		case "TRUE":
			return &algebra.Const{V: value.Bool(true)}, p.next()
		case "FALSE":
			return &algebra.Const{V: value.Bool(false)}, p.next()
		case "NULL":
			return &algebra.Const{V: value.Null}, p.next()
		case "SOURCE":
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			if p.cur.Kind != TokString {
				return nil, p.errf("expected source name string")
			}
			src := p.cur.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &algebra.SrcContains{Col: col, Source: src}, nil
		case "MIN", "MAX", "COUNT", "SUM", "AVG":
			return nil, p.errf("aggregate %s is only allowed as a top-level select item", p.cur.Text)
		}
		return nil, p.errf("unexpected keyword %q in expression", p.cur.Text)
	case TokPunct:
		if p.cur.Text == "(" {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.Expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", p.cur.Text)
	case TokIdent:
		name := p.cur.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		// Function call?
		if p.isPunct("(") {
			if err := p.next(); err != nil {
				return nil, err
			}
			var args []algebra.Expr
			if !p.isPunct(")") {
				for {
					a, err := p.Expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.isPunct(",") {
						if err := p.next(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &algebra.Call{Name: strings.ToUpper(name), Args: args}, nil
		}
		// Qualified: name.attr
		full := name
		if p.isPunct(".") {
			if err := p.next(); err != nil {
				return nil, err
			}
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			full = name + "." + attr
		}
		// Indicator ref: col@indicator, or meta ref: col@indicator@meta
		if p.isPunct("@") {
			if err := p.next(); err != nil {
				return nil, err
			}
			ind, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.isPunct("@") {
				if err := p.next(); err != nil {
					return nil, err
				}
				meta, err := p.ident()
				if err != nil {
					return nil, err
				}
				return &algebra.MetaRef{Col: full, Indicator: ind, Meta: meta}, nil
			}
			return &algebra.IndRef{Col: full, Indicator: ind}, nil
		}
		return &algebra.ColRef{Name: full}, nil
	default: // TokEOF, TokOp: neither can begin a primary expression
		return nil, p.errf("unexpected token %q in expression", p.cur.Text)
	}
}

// qualifiedName parses ident(.ident)? and returns the dotted form.
func (p *Parser) qualifiedName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.isPunct(".") {
		if err := p.next(); err != nil {
			return "", err
		}
		attr, err := p.ident()
		if err != nil {
			return "", err
		}
		return name + "." + attr, nil
	}
	return name, nil
}
