package qql

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{"SELECT * FROM t", "select  *\n\tfrom t", true},
		{"SELECT * FROM t", "SELECT * FROM t -- trailing comment", true},
		{"SELECT * FROM t WHERE a = 'x y'", "SELECT * FROM t WHERE a='x y'", true},
		// String literal contents must survive exactly: different inner
		// whitespace means a different key.
		{"SELECT * FROM t WHERE a = 'x  y'", "SELECT * FROM t WHERE a = 'x y'", false},
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 2", false},
		// Identifiers are case-sensitive, hard keywords are not.
		{"select a from t", "SELECT a FROM t", true},
		{"SELECT a FROM t", "SELECT A FROM t", false},
		// Soft keywords double as identifiers, so their spelling is part of
		// the key: a table named "source" is not a table named "SOURCE".
		{"SELECT * FROM source", "SELECT * FROM SOURCE", false},
		{"CREATE TABLE source (a int)", "CREATE TABLE SOURCE (a int)", false},
	}
	for _, c := range cases {
		ka, err := Normalize(c.a)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", c.a, err)
		}
		kb, err := Normalize(c.b)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", c.b, err)
		}
		if (ka == kb) != c.same {
			t.Errorf("Normalize(%q)=%q vs Normalize(%q)=%q; want same=%v", c.a, ka, c.b, kb, c.same)
		}
	}
}

func TestNormalizeQuoting(t *testing.T) {
	key, err := Normalize(`SELECT * FROM t WHERE a = 'it''s' AND b > t'1991-10-03T00:00:00Z' AND c <= d'720h'`)
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT * FROM t WHERE a = 'it''s' AND b > t'1991-10-03T00:00:00Z' AND c <= d'720h'`
	if key != want {
		t.Errorf("key = %q, want %q", key, want)
	}
}

func newCachedSession(t *testing.T, cache *PlanCache) *Session {
	t.Helper()
	sess := NewSession(storage.NewCatalog())
	sess.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	sess.SetPlanCache(cache)
	return sess
}

const cacheFixture = `
CREATE TABLE customer (
    co_name string REQUIRED,
    employees int QUALITY (creation_time time, source string)
) KEY (co_name) STRICT;
INSERT INTO customer VALUES
    ('Fruit Co', 4004 @ {creation_time: t'1991-10-03T00:00:00Z', source: 'Nexis'}),
    ('Nut Co', 700 @ {creation_time: t'1991-10-09T00:00:00Z', source: 'estimate'});
`

func TestPlanCacheHitsAndResults(t *testing.T) {
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(cacheFixture)

	q := `SELECT co_name FROM customer WITH QUALITY employees@source != 'estimate'`
	for i := 0; i < 3; i++ {
		rel, err := sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsString() != "Fruit Co" {
			t.Fatalf("iteration %d: unexpected result %v", i, rel)
		}
	}
	// Layout-insensitive: same key, so another hit.
	if _, err := sess.Query("select co_name\nfrom customer WITH QUALITY employees@source != 'estimate'"); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	// The first SELECT misses both tiers (parse + prepare); repeats are
	// bound-plan hits served without consulting the AST tier at all.
	if st.PlanHits != 3 {
		t.Errorf("plan hits = %d, want 3", st.PlanHits)
	}
	if st.PlanMisses != 1 {
		t.Errorf("plan misses = %d, want 1", st.PlanMisses)
	}
	if st.Misses != 2 { // fixture script, first SELECT parse, nothing else
		t.Errorf("misses = %d, want 2", st.Misses)
	}
	if st.PlanHitRate() <= 0 {
		t.Errorf("plan hit rate = %v, want > 0", st.PlanHitRate())
	}
	if st.PlanEntries != 1 {
		t.Errorf("plan entries = %d, want 1", st.PlanEntries)
	}
}

func TestPlanCacheClonesAreIsolated(t *testing.T) {
	// Planning rewrites alias-qualified names in place; executing the same
	// cached statement twice must not observe the first run's rewrites.
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(cacheFixture)
	q := `SELECT c.co_name FROM customer c WHERE c.co_name LIKE 'Fruit%'`
	for i := 0; i < 3; i++ {
		rel, err := sess.Query(q)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if rel.Len() != 1 {
			t.Fatalf("iteration %d: got %d rows, want 1", i, rel.Len())
		}
	}
	// DML statements are cached and cloned too: repeated UPDATE through the
	// cache keeps binding correctly.
	for i := 0; i < 2; i++ {
		if _, err := sess.Exec(`UPDATE customer SET employees = employees + 1 WHERE co_name = 'Nut Co'`); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	rel, err := sess.Query(`SELECT employees FROM customer WHERE co_name = 'Nut Co'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0].Cells[0].V.AsInt(); got != 702 {
		t.Errorf("employees = %d, want 702", got)
	}
}

func TestPlanCacheSoftKeywordIdentifiers(t *testing.T) {
	// Regression: "source" is a soft keyword; a table of that name must not
	// share a cache key with a table named "SOURCE".
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(`CREATE TABLE source (a int)`)
	if _, err := sess.Exec(`CREATE TABLE SOURCE (a int)`); err != nil {
		t.Fatalf("distinct spelling replayed the cached AST: %v", err)
	}
	sess.MustExec(`INSERT INTO source VALUES (1)`)
	sess.MustExec(`INSERT INTO SOURCE VALUES (1), (2)`)
	for spelling, want := range map[string]int64{"source": 1, "SOURCE": 2} {
		rel, err := sess.Query(`SELECT COUNT(*) AS n FROM ` + spelling)
		if err != nil {
			t.Fatal(err)
		}
		if got := rel.Tuples[0].Cells[0].V.AsInt(); got != want {
			t.Errorf("count(%s) = %d, want %d", spelling, got, want)
		}
	}
}

func TestPlanCacheEviction(t *testing.T) {
	cache := NewPlanCache(2)
	sess := newCachedSession(t, cache)
	sess.MustExec(`CREATE TABLE t (a int)`)
	for i := 0; i < 5; i++ {
		if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries > 2 {
		t.Errorf("entries = %d, want <= 2", st.Entries)
	}
	// The most recent statement is still cached: re-running it is a hit.
	before := cache.Stats().Hits
	if _, err := sess.Exec(`INSERT INTO t VALUES (4)`); err != nil {
		t.Fatal(err)
	}
	if after := cache.Stats().Hits; after != before+1 {
		t.Errorf("hits went %d -> %d, want +1", before, after)
	}
	rel, err := sess.Query(`SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0].Cells[0].V.AsInt() != 6 {
		t.Errorf("row count = %v, want 6", rel.Tuples[0].Cells[0].V)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	cache := NewPlanCache(32)
	cat := storage.NewCatalog()
	boot := NewSession(cat)
	boot.SetPlanCache(cache)
	boot.MustExec(cacheFixture)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewSession(cat)
			sess.SetPlanCache(cache)
			for i := 0; i < 50; i++ {
				rel, err := sess.Query(`SELECT co_name FROM customer WITH QUALITY employees@source != 'estimate'`)
				if err != nil {
					errs <- err
					return
				}
				if rel.Len() != 1 {
					errs <- fmt.Errorf("got %d rows, want 1", rel.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits+st.PlanHits == 0 {
		t.Error("expected cache hits under concurrent load")
	}
}
