package qql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/storage"
)

// AnalyzeStep is one plan step of an EXPLAIN ANALYZE report with its
// actuals. Annotation-only steps (the Vectorized header) carry no actuals
// and have Instrumented false.
type AnalyzeStep struct {
	// Desc is the step description, identical to the EXPLAIN line.
	Desc string
	// Instrumented reports whether the step is a real operator with
	// collected actuals.
	Instrumented bool
	// Rows is the number of tuples the operator produced.
	Rows int64
	// Batches is the number of non-empty batches produced (batch tier
	// operators only).
	Batches int64
	// Time is the operator's inclusive wall time (the operator plus
	// everything beneath it), including any eager constructor work (hash
	// join build, aggregate drain).
	Time time.Duration
	// Extra carries operator-specific actuals, e.g. parallel-scan worker
	// occupancy ("workers=4 segments=[7 6 6 6]").
	Extra string
}

// AnalyzeReport is the structured result of EXPLAIN ANALYZE: the executed
// plan with per-operator actuals, phase timings, and provenance/cache
// detail. Format renders it as the statement's text output; tests consume
// the struct directly.
type AnalyzeReport struct {
	// Steps mirrors the EXPLAIN plan tree in source-to-sink order.
	Steps []AnalyzeStep
	// Parse is the time spent lexing/parsing the script (or cloning it out
	// of the AST cache tier).
	Parse time.Duration
	// Bind is the time spent resolving names and capturing schema versions;
	// zero on a bound-plan cache hit, which skips the phase entirely.
	Bind time.Duration
	// Plan is the time spent constructing the iterator pipeline (including
	// cache lookup/validation and statement cloning, minus Bind).
	Plan time.Duration
	// Exec is the time spent draining the root iterator.
	Exec time.Duration
	// CacheTier is the bound-plan cache outcome: hit, miss or bypass.
	CacheTier string
	// Rows is the number of rows the query returned.
	Rows int
	// Clones is the change in the process-wide tuple-clone counter across
	// execution — approximate under concurrent sessions, exact otherwise.
	Clones int64
}

// RootRows returns the row count of the last instrumented step — the
// operator whose output is the statement result.
func (r *AnalyzeReport) RootRows() (int64, bool) {
	for i := len(r.Steps) - 1; i >= 0; i-- {
		if r.Steps[i].Instrumented {
			return r.Steps[i].Rows, true
		}
	}
	return 0, false
}

// Format renders the report as EXPLAIN ANALYZE's text output: the plan tree
// annotated with actuals, then the summary lines.
func (r *AnalyzeReport) Format() string {
	var b strings.Builder
	for i, st := range r.Steps {
		b.WriteString(strings.Repeat("  ", i))
		if i > 0 {
			b.WriteString("-> ")
		}
		b.WriteString(st.Desc)
		if st.Instrumented {
			fmt.Fprintf(&b, " (actual rows=%d", st.Rows)
			if st.Batches > 0 {
				fmt.Fprintf(&b, " batches=%d", st.Batches)
			}
			fmt.Fprintf(&b, " time=%v", st.Time.Round(time.Microsecond))
			if st.Extra != "" {
				b.WriteString(" ")
				b.WriteString(st.Extra)
			}
			b.WriteString(")")
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "rows: %d; clones: %d\n", r.Rows, r.Clones)
	fmt.Fprintf(&b, "phases: parse=%v bind=%v plan=%v exec=%v\n",
		r.Parse.Round(time.Microsecond), r.Bind.Round(time.Microsecond),
		r.Plan.Round(time.Microsecond), r.Exec.Round(time.Microsecond))
	fmt.Fprintf(&b, "plan cache: %s\n", r.CacheTier)
	return b.String()
}

// execAnalyze runs EXPLAIN ANALYZE <select>: execute the query with
// instrumentation and return the annotated plan as the statement's Plan
// text.
func (s *Session) execAnalyze(sel *SelectStmt, key string) (Result, error) {
	rep, err := s.analyzeSelect(sel, key)
	if err != nil {
		return Result{}, err
	}
	s.info.CacheTier = rep.CacheTier
	s.info.Rows = rep.Rows
	return Result{Plan: rep.Format()}, nil
}

// analyzeSelect compiles sel with instrumentation (sharing the bound-plan
// cache tier under key, like EXPLAIN), drains it, and assembles the report.
func (s *Session) analyzeSelect(sel *SelectStmt, key string) (*AnalyzeReport, error) {
	s.analyze = true
	s.prepDur, s.buildDur = 0, 0
	defer func() { s.analyze = false }()

	clones0 := storage.TupleClones()
	tPlan := time.Now()
	p, outcome, err := s.planSelectVia(sel, key, false)
	planDur := time.Since(tPlan)
	if err != nil {
		return nil, err
	}
	tExec := time.Now()
	rel, err := algebra.Collect(p.it)
	execDur := time.Since(tExec)
	p.harvestExtras()
	p.release()
	if err != nil {
		return nil, err
	}

	rep := &AnalyzeReport{
		Parse:     s.lastParse,
		Bind:      s.prepDur,
		Plan:      planDur - s.prepDur,
		Exec:      execDur,
		CacheTier: outcome.String(),
		Rows:      len(rel.Tuples),
		Clones:    storage.TupleClones() - clones0,
	}
	s.info.PlanShape = p.shape()
	for i, desc := range p.steps {
		step := AnalyzeStep{Desc: desc}
		if i < len(p.stats) && p.stats[i] != nil {
			st := p.stats[i]
			step.Instrumented = true
			step.Rows = st.Rows
			step.Batches = st.Batches
			step.Time = st.Time()
			step.Extra = st.Extra
		}
		rep.Steps = append(rep.Steps, step)
	}
	return rep, nil
}

// AnalyzeQuery runs EXPLAIN ANALYZE over src — which must be a single
// SELECT (or an EXPLAIN ANALYZE of one) — and returns the structured
// report. It shares the bound-plan cache tier exactly as executing the bare
// SELECT would.
func (s *Session) AnalyzeQuery(src string) (*AnalyzeReport, error) {
	stmts, key, err := s.parse(src, "")
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("qql: AnalyzeQuery expects one statement, got %d", len(stmts))
	}
	var sel *SelectStmt
	switch v := stmts[0].(type) {
	case *SelectStmt:
		sel = v
	case *ExplainStmt:
		sel = v.Sel
		if v.Analyze {
			key = strings.TrimPrefix(key, "EXPLAIN ANALYZE ")
		} else {
			key = strings.TrimPrefix(key, "EXPLAIN ")
		}
	default:
		return nil, fmt.Errorf("qql: AnalyzeQuery expects a SELECT statement")
	}
	s.tick()
	return s.analyzeSelect(sel, key)
}
