package qql

import (
	"strings"
	"testing"

	"repro/internal/storage/wal"
)

// openDurable builds a session whose mutations are write-ahead logged
// into dir.
func openDurable(t *testing.T, dir string) (*Session, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(l.Catalog())
	s.SetDurability(l)
	return s, l
}

// TestDurableSessionSurvivesReopen drives the full statement surface
// through a durable session, reopens the log, and requires a fresh
// session over the recovered catalog to answer queries identically.
func TestDurableSessionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, l := openDurable(t, dir)
	script := []string{
		`CREATE TABLE emp (id int REQUIRED, name string QUALITY (source string)) KEY (id)`,
		`INSERT INTO emp VALUES (1, 'ada' @ {source: 'hr'} SOURCE 'hr_db'), (2, 'grace'), (3, 'edsger')`,
		`CREATE INDEX ON emp (id) USING HASH`,
		`TAG TABLE emp @ {source: 'census'}`,
		`UPDATE emp SET name = 'alan' WHERE id = 2`,
		`DELETE FROM emp WHERE id = 3`,
	}
	for _, stmt := range script {
		if _, err := s.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	want := mustTable(t, s, `SELECT id, name FROM emp ORDER BY id`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.RecoveryStats().Replayed; got == 0 {
		t.Fatal("nothing replayed from the log")
	}
	s2 := NewSession(l2.Catalog())
	got := mustTable(t, s2, `SELECT id, name FROM emp ORDER BY id`)
	if got != want {
		t.Fatalf("recovered table diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Quality metadata survives too: the table tag and the cell source.
	res, err := s2.Exec(`SHOW TAGS emp`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tup := range res[0].Rel.Tuples {
		if tup.Cells[1].V.AsString() == "census" {
			found = true
		}
	}
	if !found {
		t.Fatalf("table tag lost: %v", res[0].Rel.Tuples)
	}
}

// TestDurableRejectedStatementLeavesNoTrace: a statement the executor
// rejects (duplicate key) must leave neither catalog state nor log
// records — after reopen, only the accepted rows exist.
func TestDurableRejectedStatementLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	s, l := openDurable(t, dir)
	s.MustExec(`CREATE TABLE emp (id int REQUIRED) KEY (id)`)
	s.MustExec(`INSERT INTO emp VALUES (1)`)
	if _, err := s.Exec(`INSERT INTO emp VALUES (1)`); err == nil {
		t.Fatal("duplicate key accepted")
	}
	s.MustExec(`INSERT INTO emp VALUES (2)`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2 := NewSession(l2.Catalog())
	got := mustTable(t, s2, `SELECT id FROM emp ORDER BY id`)
	if strings.Count(got, "\n") != 3 { // header + 2 rows + trailing newline
		t.Fatalf("unexpected recovered rows:\n%s", got)
	}
}

// TestDeferredCommit: with SetDeferCommit on, Exec does not advance the
// durable horizon; CommitDurable does, in one commit.
func TestDeferredCommit(t *testing.T) {
	dir := t.TempDir()
	s, l := openDurable(t, dir)
	defer l.Close()
	s.MustExec(`CREATE TABLE emp (id int REQUIRED) KEY (id)`)
	base := l.Stats().Commits
	s.SetDeferCommit(true)
	s.MustExec(`INSERT INTO emp VALUES (1)`)
	s.MustExec(`INSERT INTO emp VALUES (2)`)
	if got := l.Stats().Commits; got != base {
		t.Fatalf("deferred mode committed: %d -> %d", base, got)
	}
	s.SetDeferCommit(false)
	if err := s.CommitDurable(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != base+1 {
		t.Fatalf("want exactly one commit, got %d", st.Commits-base)
	}
	if st.DurableSeq != st.AppendedSeq {
		t.Fatalf("durable horizon %d behind appended %d", st.DurableSeq, st.AppendedSeq)
	}
	// CommitDurable with nothing pending is a no-op.
	if err := s.CommitDurable(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Commits; got != base+1 {
		t.Fatalf("idle CommitDurable issued a commit")
	}
}

// mustTable renders a query result to a stable string for comparison.
func mustTable(t *testing.T, s *Session, q string) string {
	t.Helper()
	rel, err := s.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var b strings.Builder
	for _, a := range rel.Schema.Attrs {
		b.WriteString(a.Name)
		b.WriteString("\t")
	}
	b.WriteString("\n")
	for _, tup := range rel.Tuples {
		for _, c := range tup.Cells {
			b.WriteString(c.V.String())
			b.WriteString("\t")
		}
		b.WriteString("\n")
	}
	return b.String()
}
