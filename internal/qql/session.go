package qql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// Result is the outcome of executing one statement: a relation for queries,
// a message for DDL/DML, and a plan string for EXPLAIN.
type Result struct {
	Rel  *relation.Relation
	Msg  string
	Plan string
}

// Session executes QQL against a storage catalog. The session's Now anchors
// NOW() and AGE(): within one statement it is fixed, so results are
// internally consistent, and unless SetNow pinned it, it is re-sampled from
// the wall clock at each statement — a long-lived connection's timeliness
// checks track real time instead of freezing at accept time. A session is
// not safe for concurrent use; concurrent callers (e.g. server connections)
// each get their own session over one shared catalog, optionally sharing a
// PlanCache.
type Session struct {
	cat       *storage.Catalog
	ctx       *algebra.EvalContext
	nowPinned bool
	cache     *PlanCache
	par       int
	vec       bool
	vecComp   bool
	batchSize int

	// analyze is set while an EXPLAIN ANALYZE compiles and runs: buildSelect
	// then instruments every operator. Sessions are single-goroutine, so a
	// plain bool suffices.
	analyze bool
	// lastParse, prepDur and buildDur record phase timings for the analyze
	// report (prepDur/buildDur only while analyze is set).
	lastParse time.Duration
	prepDur   time.Duration
	buildDur  time.Duration
	// info describes the last executed statement for observers (slow-query
	// logging, per-kind metrics); see LastExecInfo.
	info ExecInfo
	// nStmts/nErrs count statements executed and errors over the session's
	// lifetime, reported by SHOW STATS.
	nStmts int64
	nErrs  int64
	// statsExtra supplies additional SHOW STATS rows; the server registers
	// its process-wide counters here so qqlsh sessions can see them.
	statsExtra func() []StatRow
	// dur, when set, write-ahead-logs every mutation (see SetDurability).
	// durDirty tracks uncommitted durable mutations; durDefer postpones
	// the end-of-script commit until CommitDurable (batch frames).
	dur      Durability
	durDefer bool
	durDirty bool
}

// ExecInfo summarizes the last statement a session executed — enough for a
// slow-query log line or per-kind accounting without re-parsing the text.
// For multi-statement scripts it reflects the script's last statement.
type ExecInfo struct {
	// Kind is the statement kind: select, insert, update, delete, create,
	// drop, explain, show, describe, tag.
	Kind string
	// CacheTier is the bound-plan cache outcome for SELECTs (hit, miss,
	// bypass); empty for non-SELECT statements.
	CacheTier string
	// PlanShape is the compact " -> "-joined operator pipeline for SELECTs;
	// empty otherwise.
	PlanShape string
	// Rows is the number of rows returned (queries) or affected (DML).
	Rows int
}

// LastExecInfo reports the ExecInfo of the most recent statement.
func (s *Session) LastExecInfo() ExecInfo { return s.info }

// StatRow is one name/value line of SHOW STATS output.
type StatRow struct {
	Name  string
	Value string
}

// SetStatsExtra registers a provider of additional SHOW STATS rows
// (typically server-wide counters); nil detaches.
func (s *Session) SetStatsExtra(fn func() []StatRow) { s.statsExtra = fn }

// NewSession creates a session over the catalog with Now tracking the wall
// clock per statement; use SetNow to pin it for reproducible runs. Scan
// parallelism defaults to one worker per schedulable core; vectorized
// execution with compiled expressions is on.
func NewSession(cat *storage.Catalog) *Session {
	return &Session{cat: cat, ctx: &algebra.EvalContext{Now: timeNowDefault()},
		par: algebra.DefaultParallelism(), vec: true, vecComp: true,
		batchSize: algebra.DefaultBatchSize}
}

// tick re-samples the statement clock unless SetNow pinned it. It swaps in
// a fresh EvalContext rather than mutating the old one: background scan
// workers of a previous statement may still hold the old context, and they
// must keep seeing the instant their statement started under.
func (s *Session) tick() {
	if !s.nowPinned {
		s.ctx = &algebra.EvalContext{Now: timeNowDefault()}
	}
}

// SetParallelism sets the fan-out degree for parallel heap scans; n <= 0
// restores the default (GOMAXPROCS). Degree 1 forces serial scans.
func (s *Session) SetParallelism(n int) {
	if n <= 0 {
		n = algebra.DefaultParallelism()
	}
	s.par = n
}

// Parallelism reports the session's scan fan-out degree.
func (s *Session) Parallelism() int { return s.par }

// SetVectorized toggles the batch-at-a-time execution tier. When on (the
// default), the planner routes eligible single-table plans through batch
// iterators; off forces the row-at-a-time Volcano tier everywhere. Both
// tiers produce byte-identical results — the knob exists for measurement
// and escape-hatch use.
func (s *Session) SetVectorized(on bool) { s.vec = on }

// Vectorized reports whether the batch execution tier is enabled.
func (s *Session) Vectorized() bool { return s.vec }

// SetCompiledExprs toggles expression compilation inside vectorized plans:
// on (the default) specializes predicates and projections into closure
// chains (algebra.Compile), off keeps the interpreted tree walk. A/B knob;
// results are identical either way.
func (s *Session) SetCompiledExprs(on bool) { s.vecComp = on }

// SetBatchSize sets the vectorized tier's rows-per-batch; n <= 0 restores
// algebra.DefaultBatchSize.
func (s *Session) SetBatchSize(n int) {
	if n <= 0 {
		n = algebra.DefaultBatchSize
	}
	s.batchSize = n
}

// BatchSize reports the vectorized tier's rows-per-batch.
func (s *Session) BatchSize() int { return s.batchSize }

// SetPlanCache attaches a shared prepared-plan cache: subsequent Exec and
// Query calls skip parsing when the (normalized) statement text is cached.
// Pass nil to detach. The same cache may back many concurrent sessions.
func (s *Session) SetPlanCache(c *PlanCache) { s.cache = c }

// PlanCache returns the attached plan cache, nil when none.
func (s *Session) PlanCache() *PlanCache { return s.cache }

// parse routes a script through the AST cache tier when an enabled cache
// is attached; the returned key is the normalized text addressing both
// cache tiers ("" when uncached). A non-empty precomputed key (from
// fastSelect's lookup) is trusted, saving a second lex of the same source.
func (s *Session) parse(src, key string) ([]Stmt, string, error) {
	t0 := time.Now()
	defer func() { s.lastParse = time.Since(t0) }()
	if s.cache != nil && !s.cache.Disabled() {
		if key == "" {
			var err error
			if key, err = Normalize(src); err != nil {
				return nil, "", err
			}
		}
		return s.cache.parseCached(src, key)
	}
	stmts, err := Parse(src)
	return stmts, "", err
}

// SetNow pins the session's current instant: every subsequent statement
// evaluates NOW() and AGE() against t until the next SetNow.
func (s *Session) SetNow(t time.Time) {
	s.ctx = &algebra.EvalContext{Now: t.UTC()}
	s.nowPinned = true
}

// Now reports the session's current instant.
func (s *Session) Now() time.Time { return s.ctx.Now }

// Catalog exposes the underlying storage catalog.
func (s *Session) Catalog() *storage.Catalog { return s.cat }

// Exec parses and executes a script, returning one Result per statement.
// Execution stops at the first error. A single-statement SELECT (or
// EXPLAIN) goes through the bound-plan cache tier when one is attached;
// statements inside multi-statement scripts bypass it.
func (s *Session) Exec(src string) ([]Result, error) {
	p, fastKey, ok := s.fastSelect(src)
	if ok {
		rel, err := algebra.Collect(p.it)
		p.release()
		s.nStmts++
		if err != nil {
			s.nErrs++
			return nil, err
		}
		s.info = ExecInfo{Kind: "select", CacheTier: planHit.String(),
			PlanShape: p.shape(), Rows: len(rel.Tuples)}
		return []Result{{Rel: rel}}, nil
	}
	stmts, key, err := s.parse(src, fastKey)
	if err != nil {
		s.nErrs++
		return nil, err
	}
	if len(stmts) != 1 {
		key = "" // plan-tier keys address exactly one SELECT
	}
	out := make([]Result, 0, len(stmts))
	for _, st := range stmts {
		s.tick()
		s.nStmts++
		r, err := s.execStmt(st, key)
		if err != nil {
			s.nErrs++
			// Earlier statements of this script already mutated the
			// catalog; they must reach stable storage even though the
			// script as a whole failed. If that commit also fails, the
			// caller must learn the earlier results in out are not
			// durable — join it with the statement error rather than
			// leaving it invisible until a later write trips the sticky
			// error.
			if cerr := s.commitStmts(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return out, err
		}
		out = append(out, r)
	}
	// Acknowledged writes reach the WAL before the wire response: the
	// commit happens here, before results are returned.
	if err := s.commitStmts(); err != nil {
		s.nErrs++
		return out, err
	}
	return out, nil
}

// Query executes a single SELECT and returns its relation.
func (s *Session) Query(src string) (*relation.Relation, error) {
	p, fastKey, ok := s.fastSelect(src)
	if ok {
		defer p.release()
		return algebra.Collect(p.it)
	}
	stmts, key, err := s.parse(src, fastKey)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("qql: expected one statement, got %d", len(stmts))
	}
	sel, isSel := stmts[0].(*SelectStmt)
	if !isSel {
		return nil, fmt.Errorf("qql: Query expects a SELECT statement")
	}
	s.tick()
	p, _, err = s.planSelectVia(sel, key, true)
	if err != nil {
		return nil, err
	}
	defer p.release()
	return algebra.Collect(p.it)
}

// cachedPlan runs the bound-plan tier's hit protocol for key: lookup →
// schema-version validation → clone + build, evicting the entry when
// validation or the build fails (only plans that build belong in the
// tier). It counts a hit only on success and nothing otherwise — the
// caller accounts for the miss when it prepares. It ticks the statement
// clock just before building, so the plan's iterators capture a fresh
// instant. Both the parse-free fast path and the parsed path go through
// here; there is exactly one copy of this protocol.
func (s *Session) cachedPlan(key planKey) (*plan, bool) {
	prep, ok := s.cache.lookupPlan(key)
	if !ok {
		return nil, false
	}
	tables, valid := s.validatePlan(prep)
	if !valid {
		s.cache.invalidatePlan(key)
		return nil, false
	}
	s.tick()
	p, err := s.buildSelect(cloneSelect(prep.stmt), tables)
	if err != nil {
		s.cache.invalidatePlan(key)
		return nil, false
	}
	s.cache.notePlan(true)
	return p, true
}

// fastSelect is the parse-free hot path: when the bound-plan tier holds a
// schema-version-valid plan for src's normalized text, the cached resolved
// statement is cloned and built directly — no lexer, parser, or name
// resolution. It reports ok=false whenever the slow path must run,
// returning the normalized key it computed so the slow path need not lex
// the source again. A bound-plan entry exists only for scripts that are
// exactly one SELECT, so a hit implies the script shape without parsing.
func (s *Session) fastSelect(src string) (*plan, string, bool) {
	if !s.cache.planTierOn() {
		return nil, "", false
	}
	key, err := Normalize(src)
	if err != nil {
		return nil, "", false // the parse path reports the lex error
	}
	p, ok := s.cachedPlan(planKey{cat: s.cat, text: key})
	return p, key, ok
}

// cacheOutcome classifies how a SELECT's plan was obtained, for EXPLAIN.
type cacheOutcome uint8

const (
	// planBypass: no enabled cache with a bound-plan tier applied (cache
	// absent or disabled, tier off, or statement not individually keyed).
	planBypass cacheOutcome = iota
	// planHit: a cached prepared plan passed schema-version validation.
	planHit
	// planMiss: prepared from scratch (and cached when possible).
	planMiss
)

func (o cacheOutcome) String() string {
	switch o {
	case planHit:
		return "hit"
	case planMiss:
		return "miss"
	default: // planBypass
		return "bypass"
	}
}

// validatePlan checks a cached prepared plan against the live catalog:
// every referenced table still present, every schema version unmoved. On
// success it returns the table generation the versions vouch for, captured
// atomically with them. The catalog check is defense in depth — plan keys
// are catalog-scoped, so a cross-catalog entry should be unreachable.
func (s *Session) validatePlan(prep *preparedSelect) (map[string]*storage.Table, bool) {
	if prep.cat != s.cat {
		return nil, false
	}
	tables, versions, missing := s.cat.Resolve(prep.tables)
	if missing != "" {
		return nil, false
	}
	for i := range versions {
		if versions[i] != prep.versions[i] {
			return nil, false
		}
	}
	return tables, true
}

// planSelectVia compiles sel through the bound-plan cache tier when key
// addresses it ("" bypasses): a validated hit clones the cached resolved
// statement and rebuilds iterators — skipping parse and name resolution — a
// miss prepares from scratch and caches the prepared plan for the next
// execution. triedFast skips the hit attempt when the caller's fastSelect
// already looked this key up and missed moments ago (the duplicate lookup
// would serialize on the cache mutex for nothing). The caller owns sel.
func (s *Session) planSelectVia(sel *SelectStmt, key string, triedFast bool) (*plan, cacheOutcome, error) {
	c := s.cache
	if key == "" || !c.planTierOn() {
		p, err := s.planSelect(sel)
		return p, planBypass, err
	}
	pk := planKey{cat: s.cat, text: key}
	if !triedFast {
		if p, ok := s.cachedPlan(pk); ok {
			return p, planHit, nil
		}
	}
	c.notePlan(false)
	prep, tables, err := s.prepareSelect(sel)
	if err != nil {
		return nil, planMiss, err
	}
	// Build from a clone before caching: prep.stmt must stay pristine, and
	// only a plan that actually builds is worth storing — caching a
	// build-failing statement would make every retry pay lookup + validate
	// + clone + fail on top of the fresh compile.
	p, err := s.buildSelect(cloneSelect(prep.stmt), tables)
	if err != nil {
		return nil, planMiss, err
	}
	c.storePlan(pk, prep)
	return p, planMiss, nil
}

// MustExec runs Exec and panics on error; for fixtures and examples.
func (s *Session) MustExec(src string) []Result {
	out, err := s.Exec(src)
	if err != nil {
		panic(err)
	}
	return out
}

// execStmt executes one statement; key addresses the bound-plan cache tier
// for SELECT/EXPLAIN ("" bypasses it).
func (s *Session) execStmt(st Stmt, key string) (Result, error) {
	s.info = ExecInfo{Kind: StmtKind(st)}
	switch v := st.(type) {
	case *CreateTableStmt:
		return s.execCreateTable(v)
	case *DropTableStmt:
		return s.execDropTable(v)
	case *CreateIndexStmt:
		return s.execCreateIndex(v)
	case *InsertStmt:
		return s.execInsert(v)
	case *SelectStmt:
		// When key is non-empty the script was a single SELECT, so the
		// caller's fastSelect already tried (and missed) this exact key.
		p, outcome, err := s.planSelectVia(v, key, true)
		if err != nil {
			return Result{}, err
		}
		rel, err := algebra.Collect(p.it)
		p.release()
		if err != nil {
			return Result{}, err
		}
		s.info.CacheTier = outcome.String()
		s.info.PlanShape = p.shape()
		s.info.Rows = len(rel.Tuples)
		return Result{Rel: rel}, nil
	case *ExplainStmt:
		// EXPLAIN shares the bare SELECT's plan-tier entry: Normalize
		// uppercases the leading keywords, so stripping them yields exactly
		// the SELECT's own key. An EXPLAIN therefore reports — and warms —
		// the cache state its SELECT would see.
		if v.Analyze {
			return s.execAnalyze(v.Sel, strings.TrimPrefix(key, "EXPLAIN ANALYZE "))
		}
		p, outcome, err := s.planSelectVia(v.Sel, strings.TrimPrefix(key, "EXPLAIN "), false)
		if err != nil {
			return Result{}, err
		}
		p.release()
		s.info.CacheTier = outcome.String()
		s.info.PlanShape = p.shape()
		return Result{Plan: p.explain() + "plan cache: " + outcome.String() + "\n"}, nil
	case *DeleteStmt:
		return s.execDelete(v)
	case *UpdateStmt:
		return s.execUpdate(v)
	case *TagTableStmt:
		return s.execTagTable(v)
	case *ShowTagsStmt:
		return s.execShowTags(v)
	case *ShowTablesStmt:
		return s.execShowTables()
	case *ShowStatsStmt:
		return s.execShowStats()
	case *DescribeStmt:
		return s.execDescribe(v)
	}
	return Result{}, fmt.Errorf("qql: unhandled statement %T", st)
}

// StmtKinds lists every value StmtKind can return, for callers that
// pre-register per-kind accounting series (so a scrape sees every kind at
// zero before the first statement of that kind arrives).
var StmtKinds = []string{
	"select", "insert", "update", "delete", "create", "drop",
	"explain", "explain analyze", "show", "describe", "tag", "other",
}

// StmtKind names a statement's kind for accounting: select, insert, update,
// delete, create, drop, explain, show, describe, tag.
func StmtKind(st Stmt) string {
	switch v := st.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	case *CreateTableStmt, *CreateIndexStmt:
		return "create"
	case *DropTableStmt:
		return "drop"
	case *ExplainStmt:
		if v.Analyze {
			return "explain analyze"
		}
		return "explain"
	case *ShowTagsStmt, *ShowTablesStmt, *ShowStatsStmt:
		return "show"
	case *DescribeStmt:
		return "describe"
	case *TagTableStmt:
		return "tag"
	}
	return "other"
}

func (s *Session) execCreateTable(st *CreateTableStmt) (Result, error) {
	attrs := make([]schema.Attr, len(st.Cols))
	for i, c := range st.Cols {
		inds := make([]tag.Indicator, len(c.Indicators))
		for j, d := range c.Indicators {
			inds[j] = tag.Indicator{Name: d.Name, Kind: d.Kind}
		}
		attrs[i] = schema.Attr{Name: c.Name, Kind: c.Kind, Required: c.Required, Indicators: inds}
	}
	sc, err := schema.New(st.Name, attrs, st.Key...)
	if err != nil {
		return Result{}, err
	}
	if err := s.applyCreateTable(sc, st.Strict); err != nil {
		return Result{}, err
	}
	return Result{Msg: fmt.Sprintf("created table %s", st.Name)}, nil
}

func (s *Session) execDropTable(st *DropTableStmt) (Result, error) {
	if err := s.applyDropTable(st.Table); err != nil {
		return Result{}, err
	}
	return Result{Msg: fmt.Sprintf("dropped table %s", st.Table)}, nil
}

func (s *Session) execCreateIndex(st *CreateIndexStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	if err := s.applyCreateIndex(tbl, st.Table, st.Target, st.Kind); err != nil {
		return Result{}, err
	}
	kind := "btree"
	if st.Kind == storage.IndexHash {
		kind = "hash"
	}
	return Result{Msg: fmt.Sprintf("created %s index on %s(%s)", kind, st.Table, st.Target)}, nil
}

// evalConst evaluates an insert/update expression that must not reference
// columns (it is evaluated against an empty tuple; column references fail).
func (s *Session) evalConst(e algebra.Expr, sc *schema.Schema) (value.Value, error) {
	if err := e.Bind(sc); err != nil {
		return value.Null, err
	}
	return e.Eval(relation.Tuple{}, s.ctx)
}

func (s *Session) execInsert(st *InsertStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := tbl.Schema()
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(sc.Attrs) {
			return Result{}, fmt.Errorf("qql: insert arity %d, table %s has %d columns", len(row), st.Table, len(sc.Attrs))
		}
		cells := make([]relation.Cell, len(row))
		for i, ic := range row {
			v, err := s.evalConst(ic.Expr, sc)
			if err != nil {
				return Result{}, fmt.Errorf("qql: insert value %d: %w", i+1, err)
			}
			cell := relation.Cell{V: v}
			for _, ta := range ic.Tags {
				tv, err := s.evalConst(ta.Expr, sc)
				if err != nil {
					return Result{}, fmt.Errorf("qql: insert tag %s: %w", ta.Name, err)
				}
				cell.Tags = cell.Tags.With(ta.Name, tv)
				for _, m := range ta.Meta {
					mv, err := s.evalConst(m.Expr, sc)
					if err != nil {
						return Result{}, fmt.Errorf("qql: insert meta tag %s@%s: %w", ta.Name, m.Name, err)
					}
					cell = cell.WithMetaTag(ta.Name, m.Name, mv)
				}
			}
			if len(ic.Sources) > 0 {
				cell.Sources = tag.NewSources(ic.Sources...)
			}
			cells[i] = cell
		}
		if err := s.applyInsert(tbl, st.Table, relation.Tuple{Cells: cells}); err != nil {
			return Result{}, err
		}
		n++
	}
	s.info.Rows = n
	return Result{Msg: fmt.Sprintf("inserted %d row(s) into %s", n, st.Table)}, nil
}

func (s *Session) execDelete(st *DeleteStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	var pred algebra.Expr
	if st.Where != nil {
		pred = st.Where
		if err := pred.Bind(tbl.Schema()); err != nil {
			return Result{}, err
		}
	}
	// SnapshotRows, not Scan: the collect phase must see one consistent
	// table state, or a key deleted and reinserted by a concurrent writer
	// could match at two row IDs in a single statement.
	allIDs, rows := tbl.SnapshotRows()
	var ids []storage.RowID
	for i, id := range allIDs {
		if pred != nil {
			keep, err := algebra.Truth(pred, rows[i], s.ctx)
			if err != nil {
				return Result{}, err
			}
			if !keep {
				continue
			}
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := s.applyDelete(tbl, st.Table, id); err != nil {
			return Result{}, err
		}
	}
	s.info.Rows = len(ids)
	return Result{Msg: fmt.Sprintf("deleted %d row(s) from %s", len(ids), st.Table)}, nil
}

func (s *Session) execUpdate(st *UpdateStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := tbl.Schema()
	var pred algebra.Expr
	if st.Where != nil {
		pred = st.Where
		if err := pred.Bind(sc); err != nil {
			return Result{}, err
		}
	}
	type change struct {
		id  storage.RowID
		tup relation.Tuple
	}
	var changes []change
	// SnapshotRows for the same reason as execDelete: one consistent
	// collect phase per statement.
	allIDs, rows := tbl.SnapshotRows()
	for i, id := range allIDs {
		tup := rows[i]
		if pred != nil {
			keep, err := algebra.Truth(pred, tup, s.ctx)
			if err != nil {
				return Result{}, err
			}
			if !keep {
				continue
			}
		}
		updated := tup.Clone()
		for _, set := range st.Sets {
			col := sc.ColIndex(set.Col)
			if col < 0 {
				return Result{}, fmt.Errorf("qql: unknown column %q in UPDATE", set.Col)
			}
			cell := updated.Cells[col]
			if set.Expr != nil {
				if err := set.Expr.Bind(sc); err != nil {
					return Result{}, err
				}
				v, err := set.Expr.Eval(tup, s.ctx)
				if err != nil {
					return Result{}, err
				}
				cell.V = v
			}
			for _, ta := range set.Tags {
				if err := ta.Expr.Bind(sc); err != nil {
					return Result{}, err
				}
				tv, err := ta.Expr.Eval(tup, s.ctx)
				if err != nil {
					return Result{}, err
				}
				cell.Tags = cell.Tags.With(ta.Name, tv)
				for _, m := range ta.Meta {
					if err := m.Expr.Bind(sc); err != nil {
						return Result{}, err
					}
					mv, err := m.Expr.Eval(tup, s.ctx)
					if err != nil {
						return Result{}, err
					}
					cell = cell.WithMetaTag(ta.Name, m.Name, mv)
				}
			}
			updated.Cells[col] = cell
		}
		changes = append(changes, change{id: id, tup: updated})
	}
	for _, ch := range changes {
		if err := s.applyUpdate(tbl, st.Table, ch.id, ch.tup); err != nil {
			return Result{}, err
		}
	}
	s.info.Rows = len(changes)
	return Result{Msg: fmt.Sprintf("updated %d row(s) in %s", len(changes), st.Table)}, nil
}

func (s *Session) execTagTable(st *TagTableStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	for _, ta := range st.Tags {
		v, err := s.evalConst(ta.Expr, tbl.Schema())
		if err != nil {
			return Result{}, fmt.Errorf("qql: table tag %s: %w", ta.Name, err)
		}
		if err := s.applyTagTable(tbl, st.Table, ta.Name, v); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("tagged table %s with %d indicator(s)", st.Table, len(st.Tags))}, nil
}

func (s *Session) execShowTags(st *ShowTagsStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := schema.MustNew("table_tags", []schema.Attr{
		{Name: "indicator", Kind: value.KindString},
		{Name: "value", Kind: value.KindNull},
	})
	rel := relation.New(sc)
	for _, tg := range tbl.TableTags().Tags() {
		rel.Tuples = append(rel.Tuples, relation.NewTuple(value.Str(tg.Indicator), tg.Value))
	}
	return Result{Rel: rel}, nil
}

func (s *Session) execShowTables() (Result, error) {
	sc := schema.MustNew("tables", []schema.Attr{
		{Name: "name", Kind: value.KindString},
		{Name: "rows", Kind: value.KindInt},
	})
	rel := relation.New(sc)
	names := s.cat.Names()
	sort.Strings(names)
	for _, n := range names {
		tbl, _ := s.cat.Get(n)
		rel.Tuples = append(rel.Tuples, relation.NewTuple(value.Str(n), value.Int(int64(tbl.Len()))))
	}
	return Result{Rel: rel}, nil
}

// execShowStats reports session-local execution counters, the attached plan
// cache's statistics, and any rows from a registered extra provider (the
// server hooks its process-wide counters in), as a (stat, value) relation.
func (s *Session) execShowStats() (Result, error) {
	sc := schema.MustNew("stats", []schema.Attr{
		{Name: "stat", Kind: value.KindString},
		{Name: "value", Kind: value.KindString},
	})
	rel := relation.New(sc)
	add := func(name, val string) {
		rel.Tuples = append(rel.Tuples, relation.NewTuple(value.Str(name), value.Str(val)))
	}
	add("session_statements", fmt.Sprintf("%d", s.nStmts))
	add("session_errors", fmt.Sprintf("%d", s.nErrs))
	add("session_parallelism", fmt.Sprintf("%d", s.par))
	add("session_vectorized", fmt.Sprintf("%t", s.vec))
	add("session_batch_size", fmt.Sprintf("%d", s.batchSize))
	if s.cache != nil {
		cs := s.cache.Stats()
		add("cache_ast_hits", fmt.Sprintf("%d", cs.Hits))
		add("cache_ast_misses", fmt.Sprintf("%d", cs.Misses))
		add("cache_ast_entries", fmt.Sprintf("%d", cs.Entries))
		add("cache_ast_hit_rate", fmt.Sprintf("%.3f", cs.HitRate()))
		add("cache_plan_hits", fmt.Sprintf("%d", cs.PlanHits))
		add("cache_plan_misses", fmt.Sprintf("%d", cs.PlanMisses))
		add("cache_plan_invalidations", fmt.Sprintf("%d", cs.PlanInvalidations))
		add("cache_plan_entries", fmt.Sprintf("%d", cs.PlanEntries))
		add("cache_plan_hit_rate", fmt.Sprintf("%.3f", cs.PlanHitRate()))
	}
	add("storage_tuple_clones", fmt.Sprintf("%d", storage.TupleClones()))
	if s.statsExtra != nil {
		for _, row := range s.statsExtra() {
			add(row.Name, row.Value)
		}
	}
	return Result{Rel: rel}, nil
}

func (s *Session) execDescribe(st *DescribeStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := schema.MustNew("columns", []schema.Attr{
		{Name: "column", Kind: value.KindString},
		{Name: "type", Kind: value.KindString},
		{Name: "required", Kind: value.KindBool},
		{Name: "indicators", Kind: value.KindString},
	})
	rel := relation.New(sc)
	for _, a := range tbl.Schema().Attrs {
		names := make([]string, len(a.Indicators))
		for i, ind := range a.Indicators {
			names[i] = ind.Name + " " + ind.Kind.String()
		}
		rel.Tuples = append(rel.Tuples, relation.NewTuple(
			value.Str(a.Name), value.Str(a.Kind.String()), value.Bool(a.Required),
			value.Str(joinComma(names))))
	}
	return Result{Rel: rel}, nil
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
