package qql

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// Result is the outcome of executing one statement: a relation for queries,
// a message for DDL/DML, and a plan string for EXPLAIN.
type Result struct {
	Rel  *relation.Relation
	Msg  string
	Plan string
}

// Session executes QQL against a storage catalog. The session's Now anchors
// NOW() and AGE() so query results are reproducible. A session is not safe
// for concurrent use; concurrent callers (e.g. server connections) each get
// their own session over one shared catalog, optionally sharing a PlanCache.
type Session struct {
	cat   *storage.Catalog
	ctx   *algebra.EvalContext
	cache *PlanCache
	par   int
}

// NewSession creates a session over the catalog with Now set to the wall
// clock; use SetNow for reproducible runs. Scan parallelism defaults to one
// worker per schedulable core.
func NewSession(cat *storage.Catalog) *Session {
	return &Session{cat: cat, ctx: &algebra.EvalContext{Now: timeNowDefault()}, par: algebra.DefaultParallelism()}
}

// SetParallelism sets the fan-out degree for parallel heap scans; n <= 0
// restores the default (GOMAXPROCS). Degree 1 forces serial scans.
func (s *Session) SetParallelism(n int) {
	if n <= 0 {
		n = algebra.DefaultParallelism()
	}
	s.par = n
}

// Parallelism reports the session's scan fan-out degree.
func (s *Session) Parallelism() int { return s.par }

// SetPlanCache attaches a shared prepared-plan cache: subsequent Exec and
// Query calls skip parsing when the (normalized) statement text is cached.
// Pass nil to detach. The same cache may back many concurrent sessions.
func (s *Session) SetPlanCache(c *PlanCache) { s.cache = c }

// PlanCache returns the attached plan cache, nil when none.
func (s *Session) PlanCache() *PlanCache { return s.cache }

// parse routes a script through the plan cache when one is attached.
func (s *Session) parse(src string) ([]Stmt, error) {
	if s.cache != nil {
		return s.cache.parseCached(src)
	}
	return Parse(src)
}

// SetNow fixes the session's current instant.
func (s *Session) SetNow(t time.Time) { s.ctx.Now = t.UTC() }

// Now reports the session's current instant.
func (s *Session) Now() time.Time { return s.ctx.Now }

// Catalog exposes the underlying storage catalog.
func (s *Session) Catalog() *storage.Catalog { return s.cat }

// Exec parses and executes a script, returning one Result per statement.
// Execution stops at the first error.
func (s *Session) Exec(src string) ([]Result, error) {
	stmts, err := s.parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := s.execStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Query executes a single SELECT and returns its relation.
func (s *Session) Query(src string) (*relation.Relation, error) {
	stmts, err := s.parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("qql: expected one statement, got %d", len(stmts))
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("qql: Query expects a SELECT statement")
	}
	p, err := s.planSelect(sel)
	if err != nil {
		return nil, err
	}
	defer p.release()
	return algebra.Collect(p.it)
}

// MustExec runs Exec and panics on error; for fixtures and examples.
func (s *Session) MustExec(src string) []Result {
	out, err := s.Exec(src)
	if err != nil {
		panic(err)
	}
	return out
}

func (s *Session) execStmt(st Stmt) (Result, error) {
	switch v := st.(type) {
	case *CreateTableStmt:
		return s.execCreateTable(v)
	case *CreateIndexStmt:
		return s.execCreateIndex(v)
	case *InsertStmt:
		return s.execInsert(v)
	case *SelectStmt:
		p, err := s.planSelect(v)
		if err != nil {
			return Result{}, err
		}
		rel, err := algebra.Collect(p.it)
		p.release()
		if err != nil {
			return Result{}, err
		}
		return Result{Rel: rel}, nil
	case *ExplainStmt:
		p, err := s.planSelect(v.Sel)
		if err != nil {
			return Result{}, err
		}
		return Result{Plan: p.explain()}, nil
	case *DeleteStmt:
		return s.execDelete(v)
	case *UpdateStmt:
		return s.execUpdate(v)
	case *TagTableStmt:
		return s.execTagTable(v)
	case *ShowTagsStmt:
		return s.execShowTags(v)
	case *ShowTablesStmt:
		return s.execShowTables()
	case *DescribeStmt:
		return s.execDescribe(v)
	}
	return Result{}, fmt.Errorf("qql: unhandled statement %T", st)
}

func (s *Session) execCreateTable(st *CreateTableStmt) (Result, error) {
	attrs := make([]schema.Attr, len(st.Cols))
	for i, c := range st.Cols {
		inds := make([]tag.Indicator, len(c.Indicators))
		for j, d := range c.Indicators {
			inds[j] = tag.Indicator{Name: d.Name, Kind: d.Kind}
		}
		attrs[i] = schema.Attr{Name: c.Name, Kind: c.Kind, Required: c.Required, Indicators: inds}
	}
	sc, err := schema.New(st.Name, attrs, st.Key...)
	if err != nil {
		return Result{}, err
	}
	if _, err := s.cat.Create(sc, st.Strict); err != nil {
		return Result{}, err
	}
	return Result{Msg: fmt.Sprintf("created table %s", st.Name)}, nil
}

func (s *Session) execCreateIndex(st *CreateIndexStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	if err := tbl.CreateIndex(st.Target, st.Kind); err != nil {
		return Result{}, err
	}
	kind := "btree"
	if st.Kind == storage.IndexHash {
		kind = "hash"
	}
	return Result{Msg: fmt.Sprintf("created %s index on %s(%s)", kind, st.Table, st.Target)}, nil
}

// evalConst evaluates an insert/update expression that must not reference
// columns (it is evaluated against an empty tuple; column references fail).
func (s *Session) evalConst(e algebra.Expr, sc *schema.Schema) (value.Value, error) {
	if err := e.Bind(sc); err != nil {
		return value.Null, err
	}
	return e.Eval(relation.Tuple{}, s.ctx)
}

func (s *Session) execInsert(st *InsertStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := tbl.Schema()
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(sc.Attrs) {
			return Result{}, fmt.Errorf("qql: insert arity %d, table %s has %d columns", len(row), st.Table, len(sc.Attrs))
		}
		cells := make([]relation.Cell, len(row))
		for i, ic := range row {
			v, err := s.evalConst(ic.Expr, sc)
			if err != nil {
				return Result{}, fmt.Errorf("qql: insert value %d: %w", i+1, err)
			}
			cell := relation.Cell{V: v}
			for _, ta := range ic.Tags {
				tv, err := s.evalConst(ta.Expr, sc)
				if err != nil {
					return Result{}, fmt.Errorf("qql: insert tag %s: %w", ta.Name, err)
				}
				cell.Tags = cell.Tags.With(ta.Name, tv)
				for _, m := range ta.Meta {
					mv, err := s.evalConst(m.Expr, sc)
					if err != nil {
						return Result{}, fmt.Errorf("qql: insert meta tag %s@%s: %w", ta.Name, m.Name, err)
					}
					cell = cell.WithMetaTag(ta.Name, m.Name, mv)
				}
			}
			if len(ic.Sources) > 0 {
				cell.Sources = tag.NewSources(ic.Sources...)
			}
			cells[i] = cell
		}
		if _, err := tbl.Insert(relation.Tuple{Cells: cells}); err != nil {
			return Result{}, err
		}
		n++
	}
	return Result{Msg: fmt.Sprintf("inserted %d row(s) into %s", n, st.Table)}, nil
}

func (s *Session) execDelete(st *DeleteStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	var pred algebra.Expr
	if st.Where != nil {
		pred = st.Where
		if err := pred.Bind(tbl.Schema()); err != nil {
			return Result{}, err
		}
	}
	// SnapshotRows, not Scan: the collect phase must see one consistent
	// table state, or a key deleted and reinserted by a concurrent writer
	// could match at two row IDs in a single statement.
	allIDs, rows := tbl.SnapshotRows()
	var ids []storage.RowID
	for i, id := range allIDs {
		if pred != nil {
			keep, err := algebra.Truth(pred, rows[i], s.ctx)
			if err != nil {
				return Result{}, err
			}
			if !keep {
				continue
			}
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := tbl.Delete(id); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("deleted %d row(s) from %s", len(ids), st.Table)}, nil
}

func (s *Session) execUpdate(st *UpdateStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := tbl.Schema()
	var pred algebra.Expr
	if st.Where != nil {
		pred = st.Where
		if err := pred.Bind(sc); err != nil {
			return Result{}, err
		}
	}
	type change struct {
		id  storage.RowID
		tup relation.Tuple
	}
	var changes []change
	// SnapshotRows for the same reason as execDelete: one consistent
	// collect phase per statement.
	allIDs, rows := tbl.SnapshotRows()
	for i, id := range allIDs {
		tup := rows[i]
		if pred != nil {
			keep, err := algebra.Truth(pred, tup, s.ctx)
			if err != nil {
				return Result{}, err
			}
			if !keep {
				continue
			}
		}
		updated := tup.Clone()
		for _, set := range st.Sets {
			col := sc.ColIndex(set.Col)
			if col < 0 {
				return Result{}, fmt.Errorf("qql: unknown column %q in UPDATE", set.Col)
			}
			cell := updated.Cells[col]
			if set.Expr != nil {
				if err := set.Expr.Bind(sc); err != nil {
					return Result{}, err
				}
				v, err := set.Expr.Eval(tup, s.ctx)
				if err != nil {
					return Result{}, err
				}
				cell.V = v
			}
			for _, ta := range set.Tags {
				if err := ta.Expr.Bind(sc); err != nil {
					return Result{}, err
				}
				tv, err := ta.Expr.Eval(tup, s.ctx)
				if err != nil {
					return Result{}, err
				}
				cell.Tags = cell.Tags.With(ta.Name, tv)
				for _, m := range ta.Meta {
					if err := m.Expr.Bind(sc); err != nil {
						return Result{}, err
					}
					mv, err := m.Expr.Eval(tup, s.ctx)
					if err != nil {
						return Result{}, err
					}
					cell = cell.WithMetaTag(ta.Name, m.Name, mv)
				}
			}
			updated.Cells[col] = cell
		}
		changes = append(changes, change{id: id, tup: updated})
	}
	for _, ch := range changes {
		if err := tbl.Update(ch.id, ch.tup); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("updated %d row(s) in %s", len(changes), st.Table)}, nil
}

func (s *Session) execTagTable(st *TagTableStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	for _, ta := range st.Tags {
		v, err := s.evalConst(ta.Expr, tbl.Schema())
		if err != nil {
			return Result{}, fmt.Errorf("qql: table tag %s: %w", ta.Name, err)
		}
		tbl.SetTableTag(ta.Name, v)
	}
	return Result{Msg: fmt.Sprintf("tagged table %s with %d indicator(s)", st.Table, len(st.Tags))}, nil
}

func (s *Session) execShowTags(st *ShowTagsStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := schema.MustNew("table_tags", []schema.Attr{
		{Name: "indicator", Kind: value.KindString},
		{Name: "value", Kind: value.KindNull},
	})
	rel := relation.New(sc)
	for _, tg := range tbl.TableTags().Tags() {
		rel.Tuples = append(rel.Tuples, relation.NewTuple(value.Str(tg.Indicator), tg.Value))
	}
	return Result{Rel: rel}, nil
}

func (s *Session) execShowTables() (Result, error) {
	sc := schema.MustNew("tables", []schema.Attr{
		{Name: "name", Kind: value.KindString},
		{Name: "rows", Kind: value.KindInt},
	})
	rel := relation.New(sc)
	names := s.cat.Names()
	sort.Strings(names)
	for _, n := range names {
		tbl, _ := s.cat.Get(n)
		rel.Tuples = append(rel.Tuples, relation.NewTuple(value.Str(n), value.Int(int64(tbl.Len()))))
	}
	return Result{Rel: rel}, nil
}

func (s *Session) execDescribe(st *DescribeStmt) (Result, error) {
	tbl, ok := s.cat.Get(st.Table)
	if !ok {
		return Result{}, fmt.Errorf("qql: unknown table %q", st.Table)
	}
	sc := schema.MustNew("columns", []schema.Attr{
		{Name: "column", Kind: value.KindString},
		{Name: "type", Kind: value.KindString},
		{Name: "required", Kind: value.KindBool},
		{Name: "indicators", Kind: value.KindString},
	})
	rel := relation.New(sc)
	for _, a := range tbl.Schema().Attrs {
		names := make([]string, len(a.Indicators))
		for i, ind := range a.Indicators {
			names[i] = ind.Name + " " + ind.Kind.String()
		}
		rel.Tuples = append(rel.Tuples, relation.NewTuple(
			value.Str(a.Name), value.Str(a.Kind.String()), value.Bool(a.Required),
			value.Str(joinComma(names))))
	}
	return Result{Rel: rel}, nil
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
