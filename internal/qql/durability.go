package qql

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Durability is the write-ahead-logging seam between the executor and the
// storage engine. When a session has one attached (SetDurability), every
// mutation routes through it — the implementation (*wal.Log) appends a
// logical record and applies it to the catalog atomically, so the log's
// order is the catalog's order — and Commit blocks until everything the
// session applied is on stable storage. Sessions without a Durability
// mutate the catalog directly, as before.
type Durability interface {
	Insert(table string, tup relation.Tuple) error
	Update(table string, id storage.RowID, tup relation.Tuple) error
	Delete(table string, id storage.RowID) error
	CreateTable(sc *schema.Schema, strict bool) error
	DropTable(table string) error
	CreateIndex(table string, target storage.IndexTarget, kind storage.IndexKind) error
	TagTable(table, indicator string, v value.Value) error
	Commit() error
}

// SetDurability attaches a write-ahead log to the session; nil detaches.
// The Durability must apply its mutations to this session's catalog.
func (s *Session) SetDurability(d Durability) { s.dur = d }

// Durable reports whether a Durability is attached.
func (s *Session) Durable() bool { return s.dur != nil }

// SetDeferCommit controls when durable mutations are committed. Off (the
// default), Exec commits at the end of every script. On, mutations
// accumulate until CommitDurable — the server's batch frames use this to
// make one fsync cover a whole batch.
func (s *Session) SetDeferCommit(on bool) { s.durDefer = on }

// CommitDurable flushes every uncommitted durable mutation to stable
// storage. A no-op without an attached Durability or pending mutations.
func (s *Session) CommitDurable() error {
	if s.dur == nil || !s.durDirty {
		return nil
	}
	s.durDirty = false
	return s.dur.Commit()
}

// commitStmts runs the end-of-script commit unless deferred. Called on
// both the success and the error path of Exec: earlier statements of a
// failed script already mutated the catalog and must still be made
// durable before their results are acknowledged.
func (s *Session) commitStmts() error {
	if s.durDefer {
		return nil
	}
	return s.CommitDurable()
}

// The apply* helpers below are the only places session code touches
// storage mutators: with a Durability attached the mutation goes through
// the log (append before apply), without one it hits the table directly.
// The walorder analyzer enforces that no other executor code calls a
// storage mutator.

func (s *Session) applyInsert(tbl *storage.Table, table string, tup relation.Tuple) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.Insert(table, tup)
	}
	_, err := tbl.Insert(tup)
	return err
}

func (s *Session) applyUpdate(tbl *storage.Table, table string, id storage.RowID, tup relation.Tuple) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.Update(table, id, tup)
	}
	return tbl.Update(id, tup)
}

func (s *Session) applyDelete(tbl *storage.Table, table string, id storage.RowID) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.Delete(table, id)
	}
	return tbl.Delete(id)
}

func (s *Session) applyCreateTable(sc *schema.Schema, strict bool) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.CreateTable(sc, strict)
	}
	_, err := s.cat.Create(sc, strict)
	return err
}

func (s *Session) applyDropTable(table string) error {
	if s.dur != nil {
		if _, ok := s.cat.Get(table); !ok {
			return fmt.Errorf("qql: unknown table %q", table)
		}
		s.durDirty = true
		return s.dur.DropTable(table)
	}
	if !s.cat.Drop(table) {
		return fmt.Errorf("qql: unknown table %q", table)
	}
	return nil
}

func (s *Session) applyCreateIndex(tbl *storage.Table, table string, target storage.IndexTarget, kind storage.IndexKind) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.CreateIndex(table, target, kind)
	}
	return tbl.CreateIndex(target, kind)
}

func (s *Session) applyTagTable(tbl *storage.Table, table, indicator string, v value.Value) error {
	if s.dur != nil {
		s.durDirty = true
		return s.dur.TagTable(table, indicator, v)
	}
	tbl.SetTableTag(indicator, v)
	return nil
}
