package qql

import (
	"testing"
	"time"

	"repro/internal/value"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT co_name, employees FROM customer WHERE employees >= 700;")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "co_name"}, {TokPunct, ","},
		{TokIdent, "employees"}, {TokKeyword, "FROM"}, {TokIdent, "customer"},
		{TokKeyword, "WHERE"}, {TokIdent, "employees"}, {TokOp, ">="},
		{TokInt, "700"}, {TokPunct, ";"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%d, %q), want (%d, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestTokenizeLiterals(t *testing.T) {
	toks, err := Tokenize("3 2.5 1e3 'o''brien' t'1991-10-03' d'24h' true")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Val.AsInt() != 3 {
		t.Errorf("int token = %v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Val.AsFloat() != 2.5 {
		t.Errorf("float token = %v", toks[1])
	}
	if toks[2].Kind != TokFloat || toks[2].Val.AsFloat() != 1000 {
		t.Errorf("exp float token = %v", toks[2])
	}
	if toks[3].Kind != TokString || toks[3].Val.AsString() != "o'brien" {
		t.Errorf("string token = %v", toks[3])
	}
	if toks[4].Kind != TokTime || toks[4].Val.AsTime().Year() != 1991 {
		t.Errorf("time token = %v", toks[4])
	}
	if toks[5].Kind != TokDuration || toks[5].Val.AsDuration() != 24*time.Hour {
		t.Errorf("duration token = %v", toks[5])
	}
	if toks[6].Kind != TokKeyword || toks[6].Text != "TRUE" {
		t.Errorf("true token = %v", toks[6])
	}
}

func TestTokenizeOperatorsAndComments(t *testing.T) {
	toks, err := Tokenize("a = b != c <> d <= e >= f < g > h -- trailing comment\n+ i")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tk := range toks {
		if tk.Kind == TokOp {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"=", "!=", "!=", "<=", ">=", "<", ">", "+"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestTokenizeQualityPunctuation(t *testing.T) {
	toks, err := Tokenize("addr@source {creation_time: t'1991-01-02'}")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[1].Text != "@" || toks[2].Text != "SOURCE" {
		t.Errorf("indicator ref tokens = %v", toks[:3])
	}
	if toks[3].Text != "{" || toks[5].Text != ":" {
		t.Errorf("tag block tokens = %v", toks[3:6])
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "!x", "t'not a time'", "d'bogus'", "#"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("token a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("token b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestValueLiteralRoundtripThroughLexer(t *testing.T) {
	vals := []value.Value{
		value.Int(42), value.Float(2.5), value.Str("it's"),
		value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)),
		value.Duration(90 * time.Minute),
	}
	for _, v := range vals {
		toks, err := Tokenize(v.Literal())
		if err != nil {
			t.Errorf("Tokenize(%s): %v", v.Literal(), err)
			continue
		}
		if len(toks) != 2 {
			t.Errorf("Tokenize(%s) = %d tokens", v.Literal(), len(toks))
			continue
		}
		if !value.Equal(toks[0].Val, v) {
			t.Errorf("literal roundtrip %v -> %v", v, toks[0].Val)
		}
	}
}
