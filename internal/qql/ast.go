package qql

import (
	"repro/internal/algebra"
	"repro/internal/storage"
	"repro/internal/value"
)

// Stmt is any parsed QQL statement.
type Stmt interface{ stmt() }

// IndDef declares a quality indicator inside CREATE TABLE.
type IndDef struct {
	Name string
	Kind value.Kind
}

// ColDef declares a column inside CREATE TABLE.
type ColDef struct {
	Name       string
	Kind       value.Kind
	Required   bool
	Indicators []IndDef
}

// CreateTableStmt is CREATE TABLE name (col KIND [REQUIRED] [QUALITY (ind
// KIND, ...)], ...) [KEY (col, ...)] [STRICT].
type CreateTableStmt struct {
	Name   string
	Cols   []ColDef
	Key    []string
	Strict bool
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt is DROP TABLE name: the table, its rows, its indexes and
// its table-level tags all go; the name's schema version advances so cached
// plans over it are invalidated.
type DropTableStmt struct {
	Table string
}

func (*DropTableStmt) stmt() {}

// CreateIndexStmt is CREATE INDEX ON table (target) [USING HASH|BTREE];
// target is col or col@indicator.
type CreateIndexStmt struct {
	Table  string
	Target storage.IndexTarget
	Kind   storage.IndexKind
}

func (*CreateIndexStmt) stmt() {}

// TagAssign is one indicator assignment in an insert/update tag block; Meta
// optionally carries meta-quality assignments for this indicator (Premise
// 1.4), one level deep.
type TagAssign struct {
	Name string
	Expr algebra.Expr
	Meta []TagAssign
}

// InsertCell is one value of an INSERT row: expression, optional tag block
// (@ {ind: expr, ...}) and optional SOURCE list.
type InsertCell struct {
	Expr    algebra.Expr
	Tags    []TagAssign
	Sources []string
}

// InsertStmt is INSERT INTO table VALUES (cell, ...), (cell, ...).
type InsertStmt struct {
	Table string
	Rows  [][]InsertCell
}

func (*InsertStmt) stmt() {}

// AggItem is an aggregate select item.
type AggItem struct {
	Fn  algebra.AggFunc
	Arg algebra.Expr // nil for COUNT(*)
}

// SelectItem is one output column: *, an aggregate, or an expression.
type SelectItem struct {
	Star bool
	Agg  *AggItem
	Expr algebra.Expr
	As   string
}

// TableRef names a FROM/JOIN table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is JOIN table [alias] ON expr.
type JoinClause struct {
	Ref TableRef
	On  algebra.Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr algebra.Expr
	Desc bool
}

// SelectStmt is the full SELECT form:
//
//	SELECT [DISTINCT] items FROM t [alias] [JOIN u [alias] ON expr]...
//	[WHERE expr] [WITH QUALITY expr] [GROUP BY exprs]
//	[ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    algebra.Expr
	Quality  algebra.Expr
	GroupBy  []algebra.Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
}

func (*SelectStmt) stmt() {}

// ExplainStmt is EXPLAIN [ANALYZE] <select>. With Analyze set the
// statement executes the query and reports per-operator actuals alongside
// the plan tree.
type ExplainStmt struct {
	Sel     *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where algebra.Expr
}

func (*DeleteStmt) stmt() {}

// SetClause is one SET item of UPDATE: col = expr [@ {tags}]. When Expr is
// nil only the tags are rewritten (col @ {tags} form).
type SetClause struct {
	Col  string
	Expr algebra.Expr
	Tags []TagAssign
}

// UpdateStmt is UPDATE table SET clauses [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where algebra.Expr
}

func (*UpdateStmt) stmt() {}

// TagTableStmt is TAG TABLE t @ {ind: expr, ...}: table-level quality
// indicators (paper §1.2, tagging higher aggregations).
type TagTableStmt struct {
	Table string
	Tags  []TagAssign
}

func (*TagTableStmt) stmt() {}

// ShowTagsStmt is SHOW TAGS t: print a table's table-level tags.
type ShowTagsStmt struct {
	Table string
}

func (*ShowTagsStmt) stmt() {}

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

func (*ShowTablesStmt) stmt() {}

// ShowStatsStmt is SHOW STATS: report session and plan-cache execution
// counters (and, when the session runs under a server, the server's
// counters) as a two-column relation.
type ShowStatsStmt struct{}

func (*ShowStatsStmt) stmt() {}

// DescribeStmt is DESCRIBE table.
type DescribeStmt struct {
	Table string
}

func (*DescribeStmt) stmt() {}
