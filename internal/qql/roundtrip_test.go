package qql

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/value"
)

// genExpr builds a random expression tree whose String() form is valid QQL.
func genExpr(r *rand.Rand, depth int) algebra.Expr {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return &algebra.Const{V: value.Int(r.Int63n(100))}
		case 1:
			return &algebra.Const{V: value.Float(float64(r.Intn(100)) + 0.5)}
		case 2:
			return &algebra.Const{V: value.Str("s" + string(rune('a'+r.Intn(26))))}
		case 3:
			return &algebra.Const{V: value.Duration(time.Duration(r.Intn(1000)) * time.Minute)}
		case 4:
			return &algebra.ColRef{Name: []string{"a", "b", "c"}[r.Intn(3)]}
		default:
			return &algebra.IndRef{Col: []string{"a", "b"}[r.Intn(2)],
				Indicator: []string{"src", "ct"}[r.Intn(2)]}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &algebra.Cmp{Op: algebra.CmpOp(r.Intn(6)), L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 1:
		return &algebra.Logic{Op: algebra.LogicOp(r.Intn(2)),
			L: genBoolExpr(r, depth-1), R: genBoolExpr(r, depth-1)}
	case 2:
		return &algebra.Not{E: genBoolExpr(r, depth-1)}
	case 3:
		return &algebra.Arith{Op: algebra.ArithOp(r.Intn(4)), L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 4:
		return &algebra.IsNull{E: genExpr(r, depth-1), Negate: r.Intn(2) == 0}
	case 5:
		n := 1 + r.Intn(3)
		list := make([]algebra.Expr, n)
		for i := range list {
			list[i] = &algebra.Const{V: value.Int(r.Int63n(10))}
		}
		return &algebra.InList{E: genExpr(r, depth-1), List: list, Negate: r.Intn(2) == 0}
	case 6:
		return &algebra.Like{E: &algebra.ColRef{Name: "a"},
			Pattern: []string{"x%", "%y", "a_c"}[r.Intn(3)], Negate: r.Intn(2) == 0}
	default:
		return &algebra.Call{Name: "COALESCE", Args: []algebra.Expr{genExpr(r, depth-1), genExpr(r, depth-1)}}
	}
}

func genBoolExpr(r *rand.Rand, depth int) algebra.Expr {
	if depth <= 0 {
		return &algebra.Cmp{Op: algebra.OpEq,
			L: &algebra.ColRef{Name: "a"}, R: &algebra.Const{V: value.Int(r.Int63n(10))}}
	}
	return genExpr(r, depth)
}

// parseExprString runs the parser's expression entry point over a string.
func parseExprString(t *testing.T, src string) algebra.Expr {
	t.Helper()
	p, err := NewParser(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	e, err := p.Expr()
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if p.cur.Kind != TokEOF {
		t.Fatalf("parse %q: trailing %q", src, p.cur.Text)
	}
	return e
}

// TestExprStringParseFixpoint checks parse(e.String()).String() == e.String()
// over random expression trees: the printer emits valid QQL and printing is
// a fixpoint of parse∘print.
func TestExprStringParseFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		e := genExpr(r, 3)
		s1 := e.String()
		back := parseExprString(t, s1)
		s2 := back.String()
		if s1 != s2 {
			t.Fatalf("fixpoint broken:\n  printed %s\n  reparsed %s", s1, s2)
		}
	}
}

// TestStatementRoundtripSemantics re-executes a script whose SELECT was
// rebuilt from parsed-and-printed expressions and checks the results match.
func TestStatementRoundtripSemantics(t *testing.T) {
	s := newPaperSession(t)
	orig := `SELECT co_name FROM customer WHERE (employees > 100 AND co_name LIKE '%Co') WITH QUALITY employees@source != 'estimate'`
	st, err := ParseOne(orig)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	rebuilt := `SELECT co_name FROM customer WHERE ` + sel.Where.String() +
		` WITH QUALITY ` + sel.Quality.String()
	r1, err := s.Query(orig)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query(rebuilt)
	if err != nil {
		t.Fatalf("rebuilt query %q: %v", rebuilt, err)
	}
	if r1.Len() != r2.Len() {
		t.Fatalf("roundtrip changed semantics: %d vs %d rows", r1.Len(), r2.Len())
	}
	for i := range r1.Tuples {
		if !r1.Tuples[i].Equal(r2.Tuples[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}
