package qql

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// ---- DROP TABLE ----

func TestDropTable(t *testing.T) {
	sess := newCachedSession(t, NewPlanCache(16))
	sess.MustExec(cacheFixture)

	res := sess.MustExec(`DROP TABLE customer`)
	if res[0].Msg != "dropped table customer" {
		t.Errorf("drop message = %q", res[0].Msg)
	}
	if _, err := sess.Query(`SELECT * FROM customer`); err == nil {
		t.Fatal("query on dropped table succeeded")
	}
	if _, err := sess.Exec(`DROP TABLE customer`); err == nil {
		t.Fatal("double drop succeeded")
	}
	// The name is reusable with a brand-new schema.
	sess.MustExec(`CREATE TABLE customer (x int); INSERT INTO customer VALUES (7)`)
	rel, err := sess.Query(`SELECT x FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsInt() != 7 {
		t.Fatalf("recreated table result = %v", rel.Tuples)
	}
}

func TestCatalogSchemaVersions(t *testing.T) {
	sess := newCachedSession(t, NewPlanCache(16))
	cat := sess.Catalog()
	if v := cat.Version("t"); v != 0 {
		t.Fatalf("version of never-created table = %d, want 0", v)
	}
	sess.MustExec(`CREATE TABLE t (a int)`)
	v1 := cat.Version("t")
	sess.MustExec(`CREATE INDEX ON t (a) USING BTREE`)
	v2 := cat.Version("t")
	sess.MustExec(`TAG TABLE t @ {method: 'census'}`)
	v3 := cat.Version("t")
	sess.MustExec(`DROP TABLE t`)
	v4 := cat.Version("t")
	sess.MustExec(`CREATE TABLE t (b string)`)
	v5 := cat.Version("t")
	vs := []uint64{v1, v2, v3, v4, v5}
	for i := 1; i < len(vs); i++ {
		if vs[i] <= vs[i-1] {
			t.Fatalf("versions not strictly monotonic across DDL: %v", vs)
		}
	}
}

// ---- EXPLAIN plan-cache outcome ----

func explainLine(t *testing.T, sess *Session, q string) string {
	t.Helper()
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	for _, line := range strings.Split(res[0].Plan, "\n") {
		if strings.HasPrefix(line, "plan cache: ") {
			return strings.TrimPrefix(line, "plan cache: ")
		}
	}
	t.Fatalf("no plan cache line in:\n%s", res[0].Plan)
	return ""
}

func TestExplainPlanCacheOutcome(t *testing.T) {
	// No cache attached: bypass.
	bare := NewSession(storage.NewCatalog())
	bare.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
	bare.MustExec(`CREATE TABLE t (a int)`)
	if got := explainLine(t, bare, `EXPLAIN SELECT a FROM t`); got != "bypass" {
		t.Errorf("uncached EXPLAIN outcome = %q, want bypass", got)
	}

	sess := newCachedSession(t, NewPlanCache(16))
	sess.MustExec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2)`)
	q := `SELECT a FROM t WHERE a >= 1`
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "miss" {
		t.Errorf("first EXPLAIN outcome = %q, want miss", got)
	}
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "hit" {
		t.Errorf("second EXPLAIN outcome = %q, want hit", got)
	}
	// EXPLAIN warmed the entry the bare SELECT uses: executing it is a hit.
	before := sess.PlanCache().Stats().PlanHits
	if _, err := sess.Query(q); err != nil {
		t.Fatal(err)
	}
	if after := sess.PlanCache().Stats().PlanHits; after != before+1 {
		t.Errorf("SELECT after EXPLAIN: plan hits went %d -> %d, want +1", before, after)
	}
	// A statement inside a multi-statement script bypasses the plan tier.
	res, err := sess.Exec(`EXPLAIN ` + q + `; SHOW TABLES`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].Plan, "plan cache: bypass") {
		t.Errorf("multi-statement EXPLAIN should bypass:\n%s", res[0].Plan)
	}
}

// ---- schema-version invalidation ----

func TestPlanTierInvalidationOnDDL(t *testing.T) {
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(`CREATE TABLE t (a int, b int) KEY (a);
		INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)

	q := `SELECT b FROM t WHERE a = 2`
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "miss" {
		t.Fatalf("cold outcome = %q, want miss", got)
	}
	res := sess.MustExec(`EXPLAIN ` + q)
	if !strings.Contains(res[0].Plan, "TableScan") {
		t.Fatalf("unindexed plan should TableScan:\n%s", res[0].Plan)
	}

	// CREATE INDEX bumps the version: the cached plan must be re-optimized,
	// not replayed — the new plan uses the index.
	sess.MustExec(`CREATE INDEX ON t (a) USING BTREE`)
	res = sess.MustExec(`EXPLAIN ` + q)
	if !strings.Contains(res[0].Plan, "IndexScan") {
		t.Fatalf("post-CREATE INDEX plan still table-scans (stale plan replayed):\n%s", res[0].Plan)
	}
	if !strings.Contains(res[0].Plan, "plan cache: miss") {
		t.Fatalf("post-DDL EXPLAIN should miss:\n%s", res[0].Plan)
	}
	if inv := cache.Stats().PlanInvalidations; inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}

	// TAG TABLE invalidates too (conservative: any DDL-adjacent change).
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "hit" {
		t.Fatalf("warm outcome = %q, want hit", got)
	}
	sess.MustExec(`TAG TABLE t @ {method: 'census'}`)
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "miss" {
		t.Errorf("post-TAG TABLE outcome = %q, want miss", got)
	}

	// DROP + recreate under a different schema: the cached plan must not
	// resolve against the old schema — the query re-binds and errors
	// because column b is gone.
	sess.MustExec(`DROP TABLE t; CREATE TABLE t (a int, c int)`)
	sess.MustExec(`INSERT INTO t VALUES (2, 200)`)
	if _, err := sess.Query(q); err == nil || !strings.Contains(err.Error(), "unknown column b") {
		t.Fatalf("stale plan survived drop/recreate: err = %v", err)
	}
	rel, err := sess.Query(`SELECT c FROM t WHERE a = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].Cells[0].V.AsInt() != 200 {
		t.Fatalf("recreated-table query = %v", rel.Tuples)
	}
}

// TestDirectStorageDDLInvalidates: version bumps live in the storage
// layer, so a CreateIndex or SetTableTag issued through the storage API
// directly — bypassing QQL entirely, as embedded facade users do — still
// invalidates cached bound plans.
func TestDirectStorageDDLInvalidates(t *testing.T) {
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(`CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 10)`)
	q := `SELECT b FROM t WHERE a = 1`
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "miss" {
		t.Fatalf("cold outcome = %q, want miss", got)
	}
	tbl, _ := sess.Catalog().Get("t")
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "a"}, storage.IndexBTree); err != nil {
		t.Fatal(err)
	}
	res := sess.MustExec(`EXPLAIN ` + q)
	if !strings.Contains(res[0].Plan, "IndexScan") || !strings.Contains(res[0].Plan, "plan cache: miss") {
		t.Fatalf("direct CreateIndex did not invalidate the cached plan:\n%s", res[0].Plan)
	}
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "hit" {
		t.Fatalf("warm outcome = %q, want hit", got)
	}
	tbl.SetTableTag("method", value.Str("census"))
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "miss" {
		t.Errorf("direct SetTableTag did not invalidate: outcome = %q", got)
	}
}

// TestBuildFailingSelectNotCached: a SELECT that survives prepare but
// fails at build (star + aggregate is rejected at build time) must not
// enter the bound-plan tier — caching it would make every retry pay
// lookup + validate + clone + fail on top of the fresh compile, and count
// failing executions as hits.
func TestBuildFailingSelectNotCached(t *testing.T) {
	cache := NewPlanCache(16)
	sess := newCachedSession(t, cache)
	sess.MustExec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`)
	q := `SELECT *, COUNT(*) AS n FROM t`
	for i := 0; i < 3; i++ {
		if _, err := sess.Query(q); err == nil {
			t.Fatal("star + aggregate should fail")
		}
	}
	st := cache.Stats()
	if st.PlanEntries != 0 {
		t.Errorf("build-failing SELECT was cached: %+v", st)
	}
	if st.PlanHits != 0 {
		t.Errorf("failing executions counted as plan hits: %+v", st)
	}
}

// ---- session clock ----

func TestSessionClockAdvancesPerStatement(t *testing.T) {
	sess := NewSession(storage.NewCatalog())
	sess.MustExec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`)
	now := func() time.Time {
		rel, err := sess.Query(`SELECT NOW() AS n FROM t`)
		if err != nil {
			t.Fatal(err)
		}
		return rel.Tuples[0].Cells[0].V.AsTime()
	}
	first := now()
	time.Sleep(5 * time.Millisecond)
	second := now()
	if !second.After(first) {
		t.Fatalf("session clock frozen across Execs: %v then %v", first, second)
	}
}

func TestSetNowPinsClock(t *testing.T) {
	sess := NewSession(storage.NewCatalog())
	pin := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	sess.SetNow(pin)
	sess.MustExec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`)
	time.Sleep(2 * time.Millisecond)
	rel, err := sess.Query(`SELECT NOW() AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0].Cells[0].V.AsTime(); !got.Equal(pin) {
		t.Fatalf("pinned clock drifted: %v, want %v", got, pin)
	}
	if sess.Now() != pin {
		t.Errorf("Now() = %v, want pin", sess.Now())
	}
}

// ---- clone enforcement ----

// collectReproPtrs walks v and records the addresses of every pointer to a
// struct defined in this module, plus every non-empty slice backing array —
// the shapes a shallow statement copy would alias into the planner.
func collectReproPtrs(v reflect.Value, out map[uintptr]string) {
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return
		}
		// Zero-sized structs all live at the runtime's zero base; their
		// "sharing" is an artifact, not aliasing.
		if e := v.Type().Elem(); e.Kind() == reflect.Struct && e.Size() > 0 && strings.HasPrefix(e.PkgPath(), "repro/") {
			out[v.Pointer()] = e.String()
		}
		collectReproPtrs(v.Elem(), out)
	case reflect.Interface:
		if !v.IsNil() {
			collectReproPtrs(v.Elem(), out)
		}
	case reflect.Slice:
		if v.Len() > 0 {
			out[v.Pointer()] = "[]" + v.Type().Elem().String()
		}
		for i := 0; i < v.Len(); i++ {
			collectReproPtrs(v.Index(i), out)
		}
	case reflect.Struct:
		// Skip foreign structs (time.Time's *Location is legitimately
		// shared); repro structs are walked field by field.
		if pkg := v.Type().PkgPath(); pkg != "" && !strings.HasPrefix(pkg, "repro/") {
			return
		}
		for i := 0; i < v.NumField(); i++ {
			collectReproPtrs(v.Field(i), out)
		}
	}
}

// stmtSamples covers every statement kind the parser can produce, one
// exemplar each, exercising the expression-bearing fields.
var stmtSamples = map[string]string{
	"*qql.SelectStmt": `SELECT DISTINCT a, a + 1 AS b FROM t x JOIN u y ON x.a = y.a
		WHERE a > 1 AND a IN (1, 2) WITH QUALITY a@src != 'estimate'
		GROUP BY a ORDER BY a DESC LIMIT 3 OFFSET 1`,
	"*qql.ExplainStmt":     `EXPLAIN SELECT a FROM t WHERE a LIKE 'x%'`,
	"*qql.InsertStmt":      `INSERT INTO t VALUES (1 @ {src: 'Nexis' @ {cred: 'high'}} SOURCE ('feed'), 2)`,
	"*qql.UpdateStmt":      `UPDATE t SET a = a + 1 @ {src: 'fix'} WHERE a IS NOT NULL`,
	"*qql.DeleteStmt":      `DELETE FROM t WHERE NOT (a = 1 OR a = 2)`,
	"*qql.TagTableStmt":    `TAG TABLE t @ {method: 'census', size: 4004}`,
	"*qql.CreateTableStmt": `CREATE TABLE t (a int REQUIRED QUALITY (src string, ct time)) KEY (a) STRICT`,
	"*qql.DropTableStmt":   `DROP TABLE t`,
	"*qql.CreateIndexStmt": `CREATE INDEX ON t (a@src) USING HASH`,
	"*qql.ShowTagsStmt":    `SHOW TAGS t`,
	"*qql.ShowTablesStmt":  `SHOW TABLES`,
	"*qql.DescribeStmt":    `DESCRIBE t`,
}

// TestCloneStmtExhaustive parses one exemplar of every statement kind and
// checks cloneStmt hands back a deep copy sharing no module-defined
// pointers or slice backings with the original.
func TestCloneStmtExhaustive(t *testing.T) {
	for typ, src := range stmtSamples {
		st, err := ParseOne(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", typ, err)
		}
		if got := reflect.TypeOf(st).String(); got != typ {
			t.Fatalf("sample %q parsed to %s, want %s", src, got, typ)
		}
		clone, ok := cloneStmt(st)
		if !ok {
			t.Fatalf("%s: cloneStmt reported unclonable", typ)
		}
		// Zero-sized statements (SHOW TABLES) legitimately share the
		// runtime's zero-base address; identity is meaningless for them.
		if clone == st && reflect.TypeOf(st).Elem().Size() > 0 {
			t.Fatalf("%s: clone is the original", typ)
		}
		orig, cloned := map[uintptr]string{}, map[uintptr]string{}
		collectReproPtrs(reflect.ValueOf(st), orig)
		collectReproPtrs(reflect.ValueOf(clone), cloned)
		for addr, what := range cloned {
			if _, shared := orig[addr]; shared {
				t.Errorf("%s: clone shares %s with the original", typ, what)
			}
		}
	}
}

// fakeStmt is a statement kind the cache's clone does not know.
type fakeStmt struct{}

func (fakeStmt) stmt() {}

func TestUnclonableStatementsAreNotCached(t *testing.T) {
	if _, ok := cloneStmt(fakeStmt{}); ok {
		t.Fatal("cloneStmt claims to clone an unknown statement kind")
	}
	if _, ok := cloneStmts([]Stmt{&ShowTablesStmt{}, fakeStmt{}}); ok {
		t.Fatal("cloneStmts claims to clone a list containing an unknown kind")
	}
	// parseCached must refuse to cache what it cannot clone; every kind the
	// parser produces is clonable, so the guard is exercised structurally:
	// a clonable script is cached, and the invariant that entries hold only
	// clonable statements is what lets lookups ignore the ok bit.
	cache := NewPlanCache(4)
	key, err := Normalize(`SHOW TABLES`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.parseCached(`SHOW TABLES`, key); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("clonable script not cached: %+v", st)
	}
}

// ---- disabled cache ----

func TestPlanCacheDisabled(t *testing.T) {
	cache := NewPlanCache(0)
	if !cache.Disabled() {
		t.Fatal("NewPlanCache(0) not disabled")
	}
	st := cache.Stats()
	if !st.Disabled {
		t.Error("Stats().Disabled = false")
	}
	sess := newCachedSession(t, cache)
	sess.MustExec(cacheFixture)
	q := `SELECT co_name FROM customer WITH QUALITY employees@source != 'estimate'`
	for i := 0; i < 3; i++ {
		rel, err := sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 {
			t.Fatalf("iteration %d: %d rows, want 1", i, rel.Len())
		}
	}
	st = cache.Stats()
	if st.Hits+st.Misses+st.PlanHits+st.PlanMisses != 0 || st.Entries != 0 || st.PlanEntries != 0 {
		t.Errorf("disabled cache saw traffic: %+v", st)
	}
	if got := explainLine(t, sess, `EXPLAIN `+q); got != "bypass" {
		t.Errorf("EXPLAIN outcome with disabled cache = %q, want bypass", got)
	}
	// SetPlanTier cannot resurrect a disabled cache.
	cache.SetPlanTier(true)
	if _, err := sess.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.PlanMisses != 0 {
		t.Errorf("disabled cache recorded a plan miss after SetPlanTier(true): %+v", st)
	}
}

// TestSharedCacheAcrossCatalogs: plan-tier keys are catalog-scoped, so two
// sessions over different catalogs sharing one cache each keep their own
// entries — neither evicts the other's, and no spurious invalidations are
// recorded.
func TestSharedCacheAcrossCatalogs(t *testing.T) {
	cache := NewPlanCache(16)
	mk := func(marker int) *Session {
		sess := NewSession(storage.NewCatalog())
		sess.SetNow(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))
		sess.SetPlanCache(cache)
		sess.MustExec(fmt.Sprintf(`CREATE TABLE t (a int); INSERT INTO t VALUES (%d)`, marker))
		return sess
	}
	a, b := mk(1), mk(2)
	q := `SELECT a FROM t`
	for i := 0; i < 3; i++ {
		for want, sess := range map[int64]*Session{1: a, 2: b} {
			rel, err := sess.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if got := rel.Tuples[0].Cells[0].V.AsInt(); got != want {
				t.Fatalf("cross-catalog mixup: got %d, want %d", got, want)
			}
		}
	}
	st := cache.Stats()
	if st.PlanInvalidations != 0 {
		t.Errorf("cross-catalog sharing caused %d invalidations (thrash)", st.PlanInvalidations)
	}
	if st.PlanEntries != 2 {
		t.Errorf("plan entries = %d, want 2 (one per catalog)", st.PlanEntries)
	}
	if st.PlanHits < 4 {
		t.Errorf("plan hits = %d, want >= 4", st.PlanHits)
	}
}

// ---- DDL vs cache race ----

// TestDDLVsPlanCacheRace is the acceptance-criteria stress test: 32
// concurrent sessions hammer a hot cached SELECT while the table is
// dropped, recreated and re-tagged between rounds. After each round's DDL
// completes, every session must see the new generation — a replayed stale
// plan would return the previous round's marker. Run under -race.
func TestDDLVsPlanCacheRace(t *testing.T) {
	const workers = 32
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	cache := NewPlanCache(64)
	cat := storage.NewCatalog()
	ddl := NewSession(cat)
	ddl.SetPlanCache(cache)

	sessions := make([]*Session, workers)
	for i := range sessions {
		sessions[i] = NewSession(cat)
		sessions[i].SetPlanCache(cache)
	}

	q := `SELECT marker FROM hot WHERE gate = 1`
	for round := 0; round < rounds; round++ {
		if round > 0 {
			ddl.MustExec(`DROP TABLE hot`)
		}
		ddl.MustExec(fmt.Sprintf(
			`CREATE TABLE hot (gate int, marker int) KEY (gate);
			 INSERT INTO hot VALUES (1, %d);
			 TAG TABLE hot @ {round: %d}`, round, round))
		if round%3 == 1 {
			ddl.MustExec(`CREATE INDEX ON hot (gate) USING HASH`)
		}

		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sess *Session, want int64) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					rel, err := sess.Query(q)
					if err != nil {
						errs <- fmt.Errorf("round %d: %w", want, err)
						return
					}
					if rel.Len() != 1 {
						errs <- fmt.Errorf("round %d: %d rows, want 1", want, rel.Len())
						return
					}
					if got := rel.Tuples[0].Cells[0].V.AsInt(); got != want {
						errs <- fmt.Errorf("round %d: stale plan returned marker %d", want, got)
						return
					}
				}
			}(sessions[w], int64(round))
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.PlanHits == 0 {
		t.Errorf("stress ran entirely cold: %+v", st)
	}
	if st.PlanInvalidations == 0 {
		t.Errorf("DDL between rounds never invalidated a cached plan: %+v", st)
	}
}

// TestDDLVsPlanCacheChaos overlaps queries and DDL with no barrier: results
// must come from some committed generation (any marker, one row) and the
// engine must not panic or race. Errors from the drop window ("unknown
// table", "unknown column") are expected and tolerated.
func TestDDLVsPlanCacheChaos(t *testing.T) {
	const workers = 16
	cache := NewPlanCache(64)
	cat := storage.NewCatalog()
	boot := NewSession(cat)
	boot.SetPlanCache(cache)
	boot.MustExec(`CREATE TABLE hot (gate int, marker int); INSERT INTO hot VALUES (1, 0)`)

	stop := make(chan struct{})
	ddlDone := make(chan struct{})
	go func() {
		defer close(ddlDone)
		ddl := NewSession(cat)
		ddl.SetPlanCache(cache)
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = ddl.Exec(`DROP TABLE hot`)
			_, _ = ddl.Exec(fmt.Sprintf(`CREATE TABLE hot (gate int, marker int); INSERT INTO hot VALUES (1, %d)`, round))
			_, _ = ddl.Exec(fmt.Sprintf(`TAG TABLE hot @ {round: %d}`, round))
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewSession(cat)
			sess.SetPlanCache(cache)
			for i := 0; i < 200; i++ {
				rel, err := sess.Query(`SELECT marker FROM hot WHERE gate = 1`)
				if err != nil {
					continue // racing the drop window
				}
				if rel.Len() > 1 {
					t.Errorf("%d rows from a single-row table", rel.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-ddlDone
}
