package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Releasepair enforces deterministic release of pooled resources: a value
// drawn from a sync.Pool — directly via Pool.Get or through a getter
// wrapper like algebra.getBatch — must reach its paired release
// (Pool.Put, putBatch, Stop, Close, release) on every control-flow path
// out of the function that acquired it, including early error returns.
// The vectorized tier recycles kilorow batch buffers through exactly this
// pattern; a batch dropped on an error path is not a leak the GC fixes
// cheaply — it permanently shrinks the warm pool and resurrects the
// per-query allocations the pool exists to amortize (PR 5).
//
// Ownership transfer ends the obligation: storing the value into a struct
// field, returning it, or passing it to another function hands the
// release duty to the new owner (batchProject parking its input batch in
// p.buf until Stop is the canonical example). A deferred release covers
// all paths at once and is the preferred shape.
//
// The check is intraprocedural and path-sensitive over if/else, switch,
// select and loops; it deliberately has no opinion about acquisitions
// stored directly into fields, which are lifecycle-managed by Stop.
var Releasepair = &Analyzer{
	Name: "releasepair",
	Doc: "report sync.Pool acquisitions (Pool.Get, getBatch) that miss " +
		"their paired release on some control-flow path",
	Match: func(string) bool { return true },
	Run:   runReleasepair,
}

// releaseNames are callee names that discharge the obligation when the
// tracked value appears among their arguments or as their receiver.
var releaseNames = map[string]bool{
	"putBatch": true,
	"Put":      true,
	"Stop":     true,
	"Close":    true,
	"release":  true,
	"Release":  true,
}

func runReleasepair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				rp := &releaseWalker{pass: pass}
				live := map[*types.Var]token.Pos{}
				rp.walkStmts(fd.Body.List, live)
				// Falling off the end of the function is a return too.
				rp.reportLive(live, fd.Body.Rbrace)
			}
		}
	}
	return nil
}

// isPoolAcquire reports whether the call draws from a pool: sync.Pool.Get
// or a same-package getter named getBatch.
func isPoolAcquire(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "getBatch" {
		return true
	}
	if fn.Name() == "Get" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		if recv := fn.Signature().Recv(); recv != nil {
			if n := namedType(recv.Type()); n != nil && n.Obj().Name() == "Pool" {
				return true
			}
		}
	}
	return false
}

type releaseWalker struct {
	pass *Pass
}

func (rp *releaseWalker) reportLive(live map[*types.Var]token.Pos, at token.Pos) {
	for v, pos := range live {
		rp.pass.Reportf(at,
			"%s acquired from the pool at %s is not released on this path; release it (putBatch/Put/Stop/Close), defer the release, or transfer ownership before returning",
			v.Name(), rp.pass.Fset.Position(pos))
	}
}

func cloneLive(live map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	c := make(map[*types.Var]token.Pos, len(live))
	for k, v := range live {
		c[k] = v
	}
	return c
}

// mergeBranches folds the live sets surviving each non-terminating branch
// back into live: an obligation is discharged only if every branch that
// falls through discharged it.
func mergeBranches(live map[*types.Var]token.Pos, branches []map[*types.Var]token.Pos) {
	for v := range live {
		discharged := len(branches) > 0
		for _, b := range branches {
			if _, still := b[v]; still {
				discharged = false
				break
			}
		}
		if discharged {
			delete(live, v)
		}
	}
}

// terminates reports whether a statement list certainly leaves the
// function (ends in return or an unlabeled panic call).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (rp *releaseWalker) walkStmts(stmts []ast.Stmt, live map[*types.Var]token.Pos) {
	for _, s := range stmts {
		rp.walkStmt(s, live)
	}
}

func (rp *releaseWalker) walkStmt(s ast.Stmt, live map[*types.Var]token.Pos) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// New acquisitions: `b := getBatch(n)`, `x := pool.Get().(*T)`.
		for i, rhs := range s.Rhs {
			call := acquireCall(rhs)
			if call == nil || !isPoolAcquire(rp.pass.Info, call) {
				continue
			}
			if i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := rp.pass.Info.Defs[id].(*types.Var); ok {
						live[v] = call.Pos()
						continue
					}
					if v, ok := rp.pass.Info.Uses[id].(*types.Var); ok {
						live[v] = call.Pos()
						continue
					}
				}
			}
			// Acquired straight into a field, a map slot or a blank: the
			// value is lifecycle-managed elsewhere; out of scope here.
		}
		// Any other appearance of a tracked variable on either side is a
		// transfer (aliasing, field store, reassignment).
		for _, rhs := range s.Rhs {
			if acquireCall(rhs) == nil {
				rp.transferUses(rhs, live)
			}
		}
	case *ast.ExprStmt:
		rp.scanRelease(s.X, live)
	case *ast.DeferStmt:
		rp.deferRelease(s.Call, live)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			rp.transferUses(e, live)
		}
		rp.reportLive(live, s.Pos())
		clear(live)
	case *ast.IfStmt:
		if s.Init != nil {
			rp.walkStmt(s.Init, live)
		}
		thenLive := cloneLive(live)
		rp.walkStmts(s.Body.List, thenLive)
		var branches []map[*types.Var]token.Pos
		if !terminates(s.Body.List) {
			branches = append(branches, thenLive)
		}
		if s.Else != nil {
			elseLive := cloneLive(live)
			rp.walkStmt(s.Else, elseLive)
			elseTerm := false
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(blk.List)
			}
			if !elseTerm {
				branches = append(branches, elseLive)
			}
		} else {
			branches = append(branches, cloneLive(live))
		}
		mergeBranches(live, branches)
	case *ast.BlockStmt:
		rp.walkStmts(s.List, live)
	case *ast.ForStmt:
		rp.walkStmts(s.Body.List, cloneLive(live))
	case *ast.RangeStmt:
		rp.walkStmts(s.Body.List, cloneLive(live))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses [][]ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CommClause).Body)
			}
		}
		var branches []map[*types.Var]token.Pos
		for _, body := range clauses {
			bl := cloneLive(live)
			rp.walkStmts(body, bl)
			if !terminates(body) {
				branches = append(branches, bl)
			}
		}
		if len(branches) > 0 {
			mergeBranches(live, branches)
		}
	case *ast.GoStmt:
		// The goroutine takes ownership of anything it captures.
		rp.transferUses(s.Call, live)
	case *ast.LabeledStmt:
		rp.walkStmt(s.Stmt, live)
	}
}

// acquireCall unwraps `call`, `call.(*T)` and parens to the underlying
// call expression, or nil.
func acquireCall(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return call
	}
	return nil
}

// scanRelease looks for release calls and ownership transfers in an
// expression statement.
func (rp *releaseWalker) scanRelease(e ast.Expr, live map[*types.Var]token.Pos) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		rp.transferUses(e, live)
		return
	}
	if rp.dischargesIn(call, live) {
		return
	}
	// Not a release: the tracked value escaping as an argument transfers
	// ownership (NextBatch(b) hands the buffer to the producer to fill;
	// the producer's contract covers it). Method calls *on* the value
	// (b.Len()) keep the obligation local.
	for _, arg := range call.Args {
		rp.transferUses(arg, live)
	}
}

// dischargesIn applies a release call to the live set, reporting whether
// the call was a recognized release shape.
func (rp *releaseWalker) dischargesIn(call *ast.CallExpr, live map[*types.Var]token.Pos) bool {
	name := ""
	var recv ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	default:
		return false
	}
	if !releaseNames[name] {
		return false
	}
	released := false
	for _, arg := range call.Args {
		if v := trackedVar(rp.pass.Info, arg, live); v != nil {
			delete(live, v)
			released = true
		}
	}
	if recv != nil {
		if v := trackedVar(rp.pass.Info, recv, live); v != nil {
			delete(live, v)
			released = true
		}
	}
	return released
}

// deferRelease handles `defer release(v)` and `defer func() { ... }()`
// whose body releases tracked values: a deferred release covers every
// path, so the obligations simply end here.
func (rp *releaseWalker) deferRelease(call *ast.CallExpr, live map[*types.Var]token.Pos) {
	if rp.dischargesIn(call, live) {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, inner := range collectCalls(lit.Body) {
			rp.dischargesIn(inner, live)
		}
	}
}

// trackedVar resolves an expression to a tracked variable, or nil.
func trackedVar(info *types.Info, e ast.Expr, live map[*types.Var]token.Pos) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := live[v]; !tracked {
		return nil
	}
	return v
}

// transferUses removes from the live set any tracked variable appearing
// in e: returns, stores, captures and argument positions all hand the
// release obligation to the new owner. A variable in method-receiver
// position (b.Len()) is the one use that does NOT transfer — calling a
// method on the batch is how the owner uses it, not how it gives it away.
func (rp *releaseWalker) transferUses(e ast.Expr, live map[*types.Var]token.Pos) {
	if e == nil || len(live) == 0 {
		return
	}
	receivers := map[*ast.Ident]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					receivers[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || receivers[id] {
			return true
		}
		if v, ok := rp.pass.Info.Uses[id].(*types.Var); ok {
			delete(live, v)
		}
		return true
	})
}
