package lint

import (
	"sort"
	"testing"
)

// TestAllRegistered pins the multichecker roster: every analyzer the suite
// defines must be registered in All() with a usable name, doc and entry
// point, so a new analyzer cannot silently miss the qqlvet run.
func TestAllRegistered(t *testing.T) {
	all := All()
	wantNames := []string{
		"atomicmix", "cancelflow", "errdrop", "exhaustive", "lockorder",
		"locksafe", "metricsreg", "releasepair", "sharedscan", "valuecopy",
		"walorder",
	}
	var got []string
	seen := map[string]bool{}
	for _, a := range all {
		if a == nil {
			t.Fatal("nil analyzer registered")
		}
		if a.Name == "" || a.Doc == "" || a.Run == nil || a.Match == nil {
			t.Errorf("analyzer %q incompletely defined (doc/run/match)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		got = append(got, a.Name)
	}
	sort.Strings(got)
	if len(got) != len(wantNames) {
		t.Fatalf("All() = %v, want %v", got, wantNames)
	}
	for i := range wantNames {
		if got[i] != wantNames[i] {
			t.Fatalf("All() = %v, want %v", got, wantNames)
		}
	}
}

// TestMatchScopes pins each analyzer's package scope to the paths its
// invariant lives in.
func TestMatchScopes(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"locksafe", "repro/internal/storage", true},
		{"locksafe", "repro/internal/server/client", true}, // repo-wide
		{"valuecopy", "repro/internal/algebra", true},
		{"valuecopy", "repro/internal/storage", true},
		{"valuecopy", "repro/internal/value", true},
		{"valuecopy", "repro/internal/server", false},
		{"metricsreg", "repro/internal/server", true},
		{"metricsreg", "repro/internal/qql", true},
		{"metricsreg", "repro/internal/storage", false},
		{"sharedscan", "repro/internal/algebra", true},
		{"sharedscan", "repro/internal/qql", true},
		{"sharedscan", "repro/internal/server", true},
		{"sharedscan", "repro/internal/storage", false}, // the impl itself may clone
		{"releasepair", "repro/internal/algebra", true}, // repo-wide
		{"lockorder", "repro/internal/storage", true},   // repo-wide
		{"lockorder", "repro/internal/server/client", true},
		{"atomicmix", "repro/internal/storage", true},      // repo-wide
		{"cancelflow", "repro/internal/algebra", true},     // repo-wide
		{"exhaustive", "repro/internal/server/wire", true}, // repo-wide
		{"errdrop", "repro/internal/server", true},
		{"errdrop", "repro/internal/server/client", true},
		{"errdrop", "repro/internal/server/wire", true},
		{"errdrop", "repro/internal/storage", true},
		{"errdrop", "repro/cmd/qqlsh", true},
		{"errdrop", "repro/cmd/qqld", true},
		{"errdrop", "repro/internal/value", false}, // pure compute: out of scope
		{"errdrop", "repro/internal/algebra", false},
		{"walorder", "repro/internal/qql", true},
		{"walorder", "repro/internal/storage/wal", true},
		{"walorder", "repro/internal/storage", false}, // the engine itself is below the log
	}
	for _, c := range cases {
		a := byName[c.analyzer]
		if a == nil {
			t.Fatalf("analyzer %q not registered", c.analyzer)
		}
		if got := a.Match(c.path); got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

// TestIncludeTestsRoster pins which analyzers keep _test.go findings:
// only errdrop — a test helper that swallows an error hides real
// failures — while the hot-path invariants stay production-only.
func TestIncludeTestsRoster(t *testing.T) {
	for _, a := range All() {
		want := a.Name == "errdrop"
		if a.IncludeTests != want {
			t.Errorf("%s.IncludeTests = %v, want %v", a.Name, a.IncludeTests, want)
		}
	}
}
