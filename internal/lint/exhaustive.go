// Exhaustive checks switches over closed sets. The defining package
// exports the membership as a fact — for an enum type (a defined basic
// type with two or more typed package-level constants: wire frame types,
// value kinds, statement kinds), the constants and their values; for a
// sealed interface (one with an unexported method, which no other package
// can implement), the implementing types. A switch elsewhere over that
// type must either cover every member or carry an explicit default: the
// default is the author's signature that "anything else" is handled, and
// its absence plus a missing member is exactly how a new wire frame type
// silently falls through a decoder.
//
// Coverage is computed over constant values, not names, so aliases and
// literal cases both count. Very large enums (> 24 members) are skipped —
// a switch over a token alphabet handles a deliberate subset and a
// default would only mask typos there.
package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over closed const sets (enum facts from the defining " +
		"package) and sealed interfaces must cover every member or carry " +
		"an explicit default",
	Match: func(string) bool { return true },
	Run:   runExhaustive,
}

// maxEnumMembers bounds the enum sizes the analyzer polices; larger sets
// are vocabularies (token kinds), not protocol alphabets.
const maxEnumMembers = 24

// enumFact is the exported membership of a defined constant set: parallel
// name/value slices, values rendered with constant.Value.ExactString so
// distinct spellings of one value compare equal.
type enumFact struct {
	Names  []string `json:"names"`
	Values []string `json:"values"`
}

// sealedFact is the exported implementation set of a sealed interface.
type sealedFact struct {
	Impls []string `json:"impls"`
}

func runExhaustive(pass *Pass) error {
	exportEnumFacts(pass)
	exportSealedFacts(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkConstSwitch(pass, n)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// inTestFile reports whether an object is declared in a _test.go file.
// Closed-set membership must come from production declarations only: `go
// vet` compiles a package together with its test files, and a test fake
// (a fake Stmt, an extra enum member for an error path) must not force
// production switches to cover it.
func inTestFile(pass *Pass, obj types.Object) bool {
	return strings.HasSuffix(pass.Fset.Position(obj.Pos()).Filename, "_test.go")
}

// exportEnumFacts publishes, for every defined basic type in this package
// with >= 2 typed package-level constants, the member name/value sets.
func exportEnumFacts(pass *Pass) {
	scope := pass.Pkg.Scope()
	type member struct{ name, value string }
	members := map[*types.Named][]member{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || inTestFile(pass, c) {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		if _, basic := named.Underlying().(*types.Basic); !basic {
			continue
		}
		members[named] = append(members[named], member{name: c.Name(), value: c.Val().ExactString()})
	}
	for named, ms := range members {
		if len(ms) < 2 {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
		fact := &enumFact{}
		seen := map[string]bool{}
		for _, m := range ms {
			if seen[m.value] {
				continue // aliases collapse to one member
			}
			seen[m.value] = true
			fact.Names = append(fact.Names, m.name)
			fact.Values = append(fact.Values, m.value)
		}
		pass.Export("enum:"+ObjectKey(named.Obj()), fact)
	}
}

// exportSealedFacts publishes the implementing types of every interface
// in this package that has an unexported method. Such an interface cannot
// be implemented outside its declaring package, so its implementation set
// here is the whole closed set.
func exportSealedFacts(pass *Pass) {
	scope := pass.Pkg.Scope()
	var ifaces []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || inTestFile(pass, tn) {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		sealed := false
		for i := 0; i < iface.NumMethods(); i++ {
			if !iface.Method(i).Exported() {
				sealed = true
				break
			}
		}
		if sealed {
			ifaces = append(ifaces, named)
		}
	}
	if len(ifaces) == 0 {
		return
	}
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		var impls []string
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || inTestFile(pass, tn) {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(n) || n.TypeParams().Len() > 0 {
				continue
			}
			if types.Implements(n, it) || types.Implements(types.NewPointer(n), it) {
				impls = append(impls, n.Obj().Name())
			}
		}
		if len(impls) < 2 {
			continue
		}
		sort.Strings(impls)
		pass.Export("sealed:"+ObjectKey(iface.Obj()), &sealedFact{Impls: impls})
	}
}

// checkConstSwitch verifies member coverage of a switch whose tag has an
// enum-fact type.
func checkConstSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	var fact enumFact
	if !pass.Facts.Import(pass.Analyzer.Name, "enum:"+ObjectKey(named.Obj()), &fact) {
		return
	}
	if len(fact.Names) > maxEnumMembers {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch handles "anything else"
		}
		for _, e := range cc.List {
			if ctv, ok := pass.Info.Types[e]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for i, v := range fact.Values {
		if !covered[v] {
			missing = append(missing, fact.Names[i])
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Switch, "switch on %s covers %d of %d members of the closed set and has no default: missing %s",
		typeLabel(named), len(fact.Values)-len(missing), len(fact.Values), strings.Join(missing, ", "))
}

// checkTypeSwitch verifies implementation coverage of a type switch over
// a sealed interface.
func checkTypeSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	var subject ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				subject = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			subject = ta.X
		}
	}
	if subject == nil {
		return
	}
	tv, ok := pass.Info.Types[subject]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	var fact sealedFact
	if !pass.Facts.Import(pass.Analyzer.Name, "sealed:"+ObjectKey(named.Obj()), &fact) {
		return
	}
	if len(fact.Impls) > maxEnumMembers {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default
		}
		for _, e := range cc.List {
			if ctv, ok := pass.Info.Types[e]; ok {
				if n := namedType(ctv.Type); n != nil {
					covered[n.Obj().Name()] = true
				}
			}
		}
	}

	var missing []string
	for _, impl := range fact.Impls {
		if !covered[impl] {
			missing = append(missing, impl)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Switch, "type switch on sealed interface %s covers %d of %d implementations and has no default: missing %s",
		typeLabel(named), len(fact.Impls)-len(missing), len(fact.Impls), strings.Join(missing, ", "))
}

// typeLabel renders a named type as pkg.Name using the short package name.
func typeLabel(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}
