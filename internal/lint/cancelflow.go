// Cancelflow checks that cancellation can actually reach the code that
// must observe it. The engine's long-running code — scan workers, the
// server accept/read loops, client demux goroutines — is shut down either
// through a context or through a done-channel (the algebra.Stopper
// pattern); a loop or goroutine that cannot observe either runs until
// process exit, which is how PR 2's scan-visitor deadlock hid.
//
// Four rules:
//
//  1. an unconditional `for` loop must have an exit (return, break, goto)
//     — a loop with neither exit nor cancellation check is unstoppable;
//  2. a context.Context parameter must be used — an ignored ctx means the
//     caller's cancellation silently stops propagating at this frame;
//  3. a function that receives a ctx must not manufacture a fresh
//     context.Background()/TODO() — deriving from the incoming ctx is
//     what keeps the cancellation chain connected;
//  4. `go f(ctx)` requires that f (transitively, via exported facts and
//     the CHA call graph) consults cancellation: a goroutine handed a ctx
//     that never checks Done/Err and never passes the ctx on cannot be
//     stopped.
//
// Per-function facts record whether the function takes a ctx/done
// parameter and whether it (transitively) consults cancellation, so rule
// 4 sees through package boundaries.
package lint

import (
	"go/ast"
	"go/types"
)

var Cancelflow = &Analyzer{
	Name: "cancelflow",
	Doc: "verify cancellation (context or done-channel) reaches unbounded " +
		"loops and ctx-carrying goroutines",
	Match: func(string) bool { return true },
	Run:   runCancelflow,
}

// cancelFact is the exported per-function cancellation summary.
type cancelFact struct {
	TakesCtx bool `json:"takesCtx,omitempty"`
	Consults bool `json:"consults,omitempty"`
}

type cancelState struct {
	pass     *Pass
	cg       *CallGraph
	decls    map[*types.Func]*ast.FuncDecl
	consults map[*types.Func]bool
	visiting map[*types.Func]bool
}

func runCancelflow(pass *Pass) error {
	cs := &cancelState{
		pass:     pass,
		cg:       NewCallGraph(&Package{Fset: pass.Fset, Files: pass.Files, Types: pass.Pkg, Info: pass.Info}),
		decls:    map[*types.Func]*ast.FuncDecl{},
		consults: map[*types.Func]bool{},
		visiting: map[*types.Func]bool{},
	}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				cs.decls[fn] = fd
				order = append(order, fn)
			}
		}
	}

	for _, fn := range order {
		fd := cs.decls[fn]
		takes := ctxParam(fd) != nil || doneParam(pass.Info, fd) != nil
		consults := cs.consultsCancel(fn)
		if takes || consults {
			pass.Export(ObjectKey(fn), &cancelFact{TakesCtx: takes, Consults: consults})
		}

		// Rule 2: unused ctx parameter.
		if ctx := ctxParam(fd); ctx != nil && ctx.Name != "_" {
			if obj := pass.Info.Defs[ctx]; obj != nil && !objUsed(pass.Info, fd.Body, obj) {
				pass.Reportf(ctx.Pos(), "context parameter %s is never used: cancellation stops propagating here (pass it on or drop the parameter)", ctx.Name)
			}
		}

		// Rule 3: fresh root context inside a ctx-carrying function.
		if ctxParam(fd) != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
					(callee.Name() == "Background" || callee.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() inside a function that already has a ctx: derive from the incoming context so cancellation stays connected", callee.Name())
				}
				return true
			})
		}

		// Rules 1 and 4 over the body.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Cond == nil {
					cs.checkLoop(n)
				}
			case *ast.GoStmt:
				cs.checkGo(n)
			}
			return true
		})
	}
	return nil
}

// checkLoop enforces rule 1 on a `for { ... }` loop: some statement must
// be able to leave it.
func (cs *cancelState) checkLoop(loop *ast.ForStmt) {
	if loopHasExit(loop) {
		return
	}
	cs.pass.Reportf(loop.For, "unbounded for-loop with no exit path: no return, break or goto leaves it, so cancellation can never stop it")
}

// loopHasExit reports whether any path leaves the loop body: a return, a
// goto, a panic, or a break binding to this loop (not to a nested loop,
// switch or select).
func loopHasExit(loop *ast.ForStmt) bool {
	found := false
	// depth counts enclosing break-absorbing statements inside the loop.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			switch n.Tok.String() {
			case "goto":
				found = true
			case "break":
				if n.Label != nil || depth == 0 {
					found = true
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
		case *ast.ForStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.RangeStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.SwitchStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.TypeSwitchStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.SelectStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.FuncLit:
			// A nested function's returns don't leave the loop.
		case *ast.BlockStmt:
			for _, s := range n.List {
				walk(s, depth)
			}
		case *ast.IfStmt:
			walk(n.Body, depth)
			walk(n.Else, depth)
		case *ast.LabeledStmt:
			walk(n.Stmt, depth)
		case *ast.CaseClause:
			for _, s := range n.Body {
				walk(s, depth)
			}
		case *ast.CommClause:
			for _, s := range n.Body {
				walk(s, depth)
			}
		}
	}
	walk(loop.Body, 0)
	return found
}

func walkBody(b *ast.BlockStmt, depth int, walk func(ast.Node, int)) {
	for _, s := range b.List {
		walk(s, depth)
	}
}

// checkGo enforces rule 4: a goroutine that receives a context must be
// able to observe its cancellation.
func (cs *cancelState) checkGo(g *ast.GoStmt) {
	// Does the call carry a ctx argument?
	carriesCtx := false
	for _, arg := range g.Call.Args {
		if isCtxExpr(cs.pass.Info, arg) {
			carriesCtx = true
			break
		}
	}

	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		// go func(ctx) { ... }(ctx) or a closure capturing ctx: the body
		// is right here — check it directly.
		litTakes := false
		if lit.Type.Params != nil {
			for _, field := range lit.Type.Params.List {
				if tv, ok := cs.pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
					litTakes = true
				}
			}
		}
		if (carriesCtx || litTakes) && !cs.bodyConsults(lit.Body) {
			cs.pass.Reportf(g.Go, "goroutine receives a ctx but its body never consults cancellation (Done/Err) or passes the ctx on")
		}
		return
	}

	if !carriesCtx {
		return
	}
	fns, dynamic := cs.cg.Callees(g.Call)
	if dynamic {
		return
	}
	known, anyConsults := false, false
	for _, fn := range fns {
		c, ok := cs.calleeConsults(fn)
		if !ok {
			continue
		}
		known = true
		if c {
			anyConsults = true
		}
	}
	if known && !anyConsults {
		cs.pass.Reportf(g.Go, "goroutine %s receives a ctx but never consults cancellation (Done/Err) or passes the ctx to a callee that does", funcName(cs.pass.Info, g.Call))
	}
}

// calleeConsults resolves whether a callee consults cancellation: local
// functions by direct analysis, imported ones through facts. ok=false
// means unknown (unanalyzed package) — unknown never triggers a report.
func (cs *cancelState) calleeConsults(fn *types.Func) (consults, ok bool) {
	if fn.Pkg() == cs.pass.Pkg {
		return cs.consultsCancel(fn), true
	}
	var fact cancelFact
	if cs.pass.Import(ObjectKey(fn), &fact) {
		return fact.Consults, true
	}
	return false, false
}

// consultsCancel memoizes whether a local function (transitively)
// consults cancellation.
func (cs *cancelState) consultsCancel(fn *types.Func) bool {
	if c, ok := cs.consults[fn]; ok {
		return c
	}
	decl := cs.decls[fn]
	if decl == nil || cs.visiting[fn] {
		return false
	}
	cs.visiting[fn] = true
	c := cs.bodyConsults(decl.Body)
	cs.visiting[fn] = false
	cs.consults[fn] = c
	return c
}

// bodyConsults reports whether a body observes cancellation: a call to
// ctx.Done/Err/Deadline, a receive from a struct{}-channel, or a call
// passing a ctx/done value to a callee that itself consults.
func (cs *cancelState) bodyConsults(body *ast.BlockStmt) bool {
	info := cs.pass.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isCtxExpr(info, sel.X) {
					switch sel.Sel.Name {
					case "Done", "Err", "Deadline":
						found = true
						return false
					}
				}
			}
			// Propagation: a ctx/done argument handed to a consulting callee.
			passesCancel := false
			for _, arg := range n.Args {
				if isCtxExpr(info, arg) || isDoneChanExpr(info, arg) {
					passesCancel = true
					break
				}
			}
			if passesCancel {
				fns, _ := cs.cg.Callees(n)
				for _, fn := range fns {
					if c, ok := cs.calleeConsults(fn); ok && c {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isDoneChanExpr(info, n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isDoneChanExpr(info, n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// ctxParam returns the first context.Context parameter's ident, or nil.
func ctxParam(fd *ast.FuncDecl) *ast.Ident {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "context" && sel.Sel.Name == "Context" {
				if len(field.Names) > 0 {
					return field.Names[0]
				}
			}
		}
	}
	return nil
}

// doneParam returns the first struct{}-channel parameter's ident, or nil.
func doneParam(info *types.Info, fd *ast.FuncDecl) *ast.Ident {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isDoneChanType(tv.Type) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0]
		}
	}
	return nil
}

// objUsed reports whether obj is referenced anywhere in the body.
func objUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	return used
}

// isCtxExpr reports whether e has type context.Context.
func isCtxExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isContextType(tv.Type)
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// isDoneChanExpr reports whether e is a receivable struct{} channel — the
// done/stop channel shape.
func isDoneChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isDoneChanType(tv.Type)
}

func isDoneChanType(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
