package lint

import (
	"bytes"
	"encoding/json"
	"go/types"
	"sort"
	"strings"
)

// factsVersion is the header line of a serialized facts file. cmd/go treats
// the facts ("vetx") file as an opaque cache entry keyed by the tool's
// build ID, so the version only has to be self-consistent: a decoder that
// sees any other header treats the file as empty rather than failing,
// which keeps mixed-version caches harmless.
const factsVersion = "qqlvet.facts.v2"

// Facts is the cross-package knowledge store of one analysis run.
// Analyzers export facts about package-level objects while analyzing the
// package that declares them, and import those facts when a dependent
// package is analyzed later. Facts are grouped by analyzer name (an
// analyzer may use dotted sub-namespaces like "lockorder.graph") and keyed
// by stable object keys (see ObjectKey); values are the analyzer's own
// JSON-serializable fact types.
//
// The driver guarantees packages are analyzed in dependency order, so by
// the time a package is analyzed every fact its imports can produce is
// already present. Facts are not synchronized: one analysis run owns one
// store.
type Facts struct {
	m map[string]map[string]json.RawMessage
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: map[string]map[string]json.RawMessage{}}
}

// Export records a fact about key under the analyzer namespace. The fact
// must marshal to JSON; a marshal failure drops the fact (facts are an
// optimization — losing one weakens a diagnostic, it never breaks one).
func (f *Facts) Export(analyzer, key string, fact any) {
	if key == "" {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return
	}
	ns := f.m[analyzer]
	if ns == nil {
		ns = map[string]json.RawMessage{}
		f.m[analyzer] = ns
	}
	ns[key] = data
}

// Import unmarshals the fact recorded for key under the analyzer namespace
// into out and reports whether one existed.
func (f *Facts) Import(analyzer, key string, out any) bool {
	data, ok := f.m[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// Has reports whether a fact exists for key under the analyzer namespace.
func (f *Facts) Has(analyzer, key string) bool {
	_, ok := f.m[analyzer][key]
	return ok
}

// Keys returns the sorted fact keys of one analyzer namespace.
func (f *Facts) Keys(analyzer string) []string {
	ns := f.m[analyzer]
	keys := make([]string, 0, len(ns))
	for k := range ns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge copies every fact from other into f, overwriting on key collision.
// Collisions only occur when the same declaring package was analyzed
// twice, in which case the facts are identical.
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	for analyzer, ns := range other.m {
		for k, v := range ns {
			dst := f.m[analyzer]
			if dst == nil {
				dst = map[string]json.RawMessage{}
				f.m[analyzer] = dst
			}
			dst[k] = v
		}
	}
}

// Encode serializes the store: a version header line followed by one JSON
// object. json.Marshal sorts map keys, so equal stores encode identically
// and the vetx file is a stable cache entry.
func (f *Facts) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(factsVersion)
	buf.WriteByte('\n')
	data, err := json.Marshal(f.m)
	if err != nil {
		data = []byte("{}")
	}
	buf.Write(data)
	buf.WriteByte('\n')
	return buf.Bytes()
}

// DecodeFacts parses a serialized fact store. Unknown versions (including
// the fact-less v1 stub files earlier qqlvet builds wrote) decode as an
// empty store: stale facts weaken diagnostics, they must never fail a run.
func DecodeFacts(data []byte) *Facts {
	f := NewFacts()
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || string(data[:nl]) != factsVersion {
		return f
	}
	if err := json.Unmarshal(bytes.TrimSpace(data[nl+1:]), &f.m); err != nil {
		return NewFacts()
	}
	return f
}

// ObjectKey renders a stable cross-package identity for a package-level
// object: "pkgpath.Name" for functions, vars, consts and types,
// "pkgpath.Recv.Name" for methods. Objects without a stable identity
// (locals, interface methods' anonymous scopes, objects without a package)
// key as "", which Export ignores.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := basePkgPath(obj.Pkg().Path())
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Signature().Recv(); recv != nil {
			rt := recv.Type()
			if n := namedType(rt); n != nil {
				return pkg + "." + n.Obj().Name() + "." + fn.Name()
			}
			if iface, ok := rt.Underlying().(*types.Interface); ok {
				_ = iface // unnamed interface method: no stable key
			}
			return ""
		}
		return pkg + "." + fn.Name()
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return pkg + "." + obj.Name()
}

// FieldKey renders the identity of a struct field: "pkgpath.Struct.field".
// Fields are not package-scope objects, so their key is derived from the
// named struct type that declares them.
func FieldKey(structType *types.Named, field *types.Var) string {
	if structType == nil || field == nil || structType.Obj().Pkg() == nil {
		return ""
	}
	return basePkgPath(structType.Obj().Pkg().Path()) + "." + structType.Obj().Name() + "." + field.Name()
}

// basePkgPath strips the " [pkg.test]" suffix cmd/go appends to test
// variants, so facts about a test-variant package merge with facts about
// the plain package.
func basePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
