// Walorder enforces the write-ahead ordering contract in the executor and
// the log: table state changes only after the record that describes them
// is in the WAL's buffer, and a snapshot file is only renamed into place
// after its contents are fsynced.
//
// Two rules, scoped to internal/qql and internal/storage/wal:
//
//  1. a call to a storage mutator — Table.Insert/Update/Delete/
//     CreateIndex/SetTableTag or Catalog.Create/Drop — may appear only
//     inside a function named apply* or replay*. Those are the sanctioned
//     choke points: the session's apply* helpers route through the
//     Durability seam (append before apply) and the log's
//     applyRecord/replay* run after the record is already buffered or on
//     disk. A mutator call anywhere else is a state write that can
//     overtake its log record, i.e. a write the log cannot reproduce
//     after a crash;
//  2. a Rename call must be textually preceded, in the same function, by
//     a Sync or SyncDir call — the fsync-then-rename half of the
//     checkpoint protocol. Without the preceding sync, a crash can leave
//     the new name pointing at unwritten blocks. Functions themselves
//     named Rename are exempt: they are FS-shim delegations (OsFS,
//     FaultFS), the primitive the rule is about.
//
// The rules are syntactic choke-point checks, not dataflow: they encode
// "mutations have exactly these doors" so a future executor statement or
// checkpoint variant cannot quietly open a new one.
package lint

import (
	"go/ast"
	"strings"
)

var Walorder = &Analyzer{
	Name: "walorder",
	Doc: "enforce WAL write ordering: storage mutators only inside " +
		"apply*/replay* functions; Rename only after a preceding Sync",
	Match: matchAny("internal/qql", "internal/storage/wal"),
	Run:   runWalorder,
}

// walMutators lists the storage methods that change table or catalog
// state, per receiver type.
var walMutators = map[string]map[string]bool{
	"Table": {
		"Insert": true, "Update": true, "Delete": true,
		"CreateIndex": true, "SetTableTag": true,
	},
	"Catalog": {"Create": true, "Drop": true},
}

func runWalorder(pass *Pass) error {
	info := pass.Info
	// syncSeen tracks, per enclosing FuncDecl, whether a Sync/SyncDir
	// call has already appeared; inspectWithStack visits in source order,
	// so "already appeared" is "textually precedes".
	syncSeen := map[*ast.FuncDecl]bool{}

	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		fd, fname := enclosingFunc(stack)

		// Rule 2: fsync-then-rename.
		switch fn.Name() {
		case "Sync", "SyncDir":
			if fd != nil {
				syncSeen[fd] = true
			}
		case "Rename":
			if fd != nil && fname != "Rename" && !syncSeen[fd] {
				pass.Reportf(call.Pos(),
					"calls %s before any Sync in %s: a snapshot must be fsynced before it is renamed into place",
					funcName(info, call), fname)
			}
		}

		// Rule 1: mutators only behind the sanctioned doors.
		recv := fn.Signature().Recv()
		if recv == nil {
			return true
		}
		named := namedType(recv.Type())
		if named == nil || named.Obj().Pkg() == nil ||
			!hasPathSuffix(named.Obj().Pkg().Path(), "internal/storage") {
			return true
		}
		methods, ok := walMutators[named.Obj().Name()]
		if !ok || !methods[fn.Name()] {
			return true
		}
		if strings.HasPrefix(fname, "apply") || strings.HasPrefix(fname, "replay") {
			return true
		}
		pass.Reportf(call.Pos(),
			"calls storage mutator %s outside an apply*/replay* function: "+
				"table state must change only after the WAL record is appended",
			funcName(info, call))
		return true
	})
	return nil
}
