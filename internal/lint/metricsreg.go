package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Metricsreg enforces the PR 6 scrape-race rule: every metrics series a
// request-path function touches must be pre-registered at construction
// time, never created on first use. First-use registration has two
// production failure modes this repo has already documented: a scrape
// that lands before the first request sees an incomplete exposition (the
// CI smoke greps would flake), and the registration slow path (lock +
// map insert) lands on the hot path of exactly the request that loses
// the race.
//
// The rule, statically: inside the packages that serve traffic, any call
// to Registry.Counter / Gauge / Histogram outside a construction-time
// function must (a) pass a compile-time constant series name — a dynamic
// name can never have been pre-registered — and (b) use a name that some
// construction-time function in the same package registers, where
// "construction-time" means a function named init, New*, new*, or
// register* (the registerMetrics / registerQualityHelp convention).
// Help() counts as registering a name: it is the construction-time
// declaration of the series family, including families whose label sets
// are data-dependent (per-table gauges) and therefore materialize at
// collection time by design.
var Metricsreg = &Analyzer{
	Name: "metricsreg",
	Doc: "report request-path metrics lookups whose series are not " +
		"pre-registered at construction (PR 6 scrape-race rule)",
	Match: matchAny("internal/server", "internal/qql", "internal/workload", "cmd/qqld"),
	Run:   runMetricsreg,
}

// isRegistryMethod reports whether the call is method name on
// *metrics.Registry.
func isRegistryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return "", false
	}
	if !isNamed(fn.Signature().Recv().Type(), "internal/metrics", "Registry") {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram", "Help":
		return fn.Name(), true
	}
	return "", false
}

// constructionTime reports whether funcName is a construction-time
// function: registration there happens before the listener accepts.
func constructionTime(funcName string) bool {
	return funcName == "init" ||
		strings.HasPrefix(funcName, "New") || strings.HasPrefix(funcName, "new") ||
		strings.HasPrefix(funcName, "Register") || strings.HasPrefix(funcName, "register")
}

func runMetricsreg(pass *Pass) error {
	// Phase 1: collect the names registered at construction time.
	registered := map[string]bool{}
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isRegistryMethod(pass.Info, call); !ok {
			return true
		}
		if _, name := enclosingFunc(stack); !constructionTime(name) {
			return true
		}
		if s, ok := constName(pass.Info, call); ok {
			registered[s] = true
		}
		return true
	})

	// Phase 2: audit every other lookup.
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := isRegistryMethod(pass.Info, call)
		if !ok || method == "Help" {
			return true
		}
		if _, fname := enclosingFunc(stack); constructionTime(fname) {
			return true
		}
		name, isConst := constName(pass.Info, call)
		if !isConst {
			pass.Reportf(call.Pos(),
				"Registry.%s with a dynamic series name on the request path; dynamic names cannot be pre-registered — derive the series at construction or register its family with Help (PR 6)",
				method)
			return true
		}
		if !registered[name] {
			pass.Reportf(call.Pos(),
				"series %q is looked up on the request path but never pre-registered; add it to a construction-time register function so scrapes cannot race first use (PR 6)",
				name)
		}
		return true
	})
	return nil
}

// constName extracts the series-name argument when it is a compile-time
// string constant.
func constName(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
