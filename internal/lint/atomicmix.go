// Atomicmix enforces access-mode consistency for atomically-used memory:
// once any code passes &x to a sync/atomic function, every access to x —
// in any package — must go through sync/atomic. A single plain read or
// write re-introduces exactly the data race the atomic was bought to
// prevent, and the racy read is usually far from the atomic write, which
// is why the check is whole-program: the defining package exports an
// "accessed atomically" fact for each such variable or field, and every
// dependent package checks its own accesses against the imported facts.
//
// Fields of the typed atomic wrappers (atomic.Int64 and friends) need no
// checking — the type system already forbids plain access — so the engine
// prefers them; this analyzer polices the function-style escape hatch.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc: "report plain reads or writes of variables and fields that are " +
		"accessed through sync/atomic anywhere in the program",
	Match: func(string) bool { return true },
	Run:   runAtomicmix,
}

// atomicUseFact marks one variable or struct field as atomically accessed,
// keyed by ObjectKey/FieldKey, with one rendered position for diagnostics.
type atomicUseFact struct {
	At string `json:"at"`
}

func runAtomicmix(pass *Pass) error {
	info := pass.Info

	// Pass 1: find &x arguments to sync/atomic calls. The address
	// expressions themselves are remembered so pass 2 can skip them.
	atomicArgs := map[ast.Expr]bool{}
	local := map[string]string{} // key -> rendered position
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Signature().Recv() != nil {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := ast.Unparen(addr.X)
			key := accessKey(info, target)
			if key == "" {
				return true
			}
			atomicArgs[target] = true
			if _, ok := local[key]; !ok {
				local[key] = pass.Fset.Position(addr.Pos()).String()
				pass.Export(key, &atomicUseFact{At: local[key]})
			}
			return true
		})
	}

	// The checkable key set: locally discovered plus everything imported.
	atomic := map[string]string{}
	for _, key := range pass.Facts.Keys(pass.Analyzer.Name) {
		var fact atomicUseFact
		if pass.Import(key, &fact) {
			atomic[key] = fact.At
		}
	}
	for key, at := range local {
		atomic[key] = at
	}
	if len(atomic) == 0 {
		return nil
	}

	// Pass 2: every other access to those objects is a violation. The
	// declaration itself and the atomic call sites are exempt; there is no
	// constructor exemption — initialize atomics with atomic stores or
	// rely on the zero value.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[n] {
					return false
				}
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				v, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				key := ""
				if named := namedType(sel.Recv()); named != nil {
					key = FieldKey(named, v)
				}
				if at, ok := atomic[key]; ok {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed atomically (e.g. at %s); mixing modes is a data race",
						key, at)
				}
			case *ast.Ident:
				if atomicArgs[n] {
					return true
				}
				v, ok := info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				key := ObjectKey(v)
				if at, ok := atomic[key]; ok {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed atomically (e.g. at %s); mixing modes is a data race",
						key, at)
				}
			}
			return true
		})
	}
	return nil
}

// accessKey renders the fact key of an addressable expression: a selector
// to a named struct's field or an identifier naming a package-level var.
func accessKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok {
			return ""
		}
		if named := namedType(sel.Recv()); named != nil {
			return FieldKey(named, v)
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
			return ObjectKey(v)
		}
	}
	return ""
}
