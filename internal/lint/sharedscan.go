package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Sharedscan keeps the query path on the zero-clone readers. PR 5's
// vectorized tier earns its throughput by scanning segments through
// ScanSegmentRowsShared[Into], and the columnar tier goes further with
// ScanSegmentCols — column vectors alias the heap's immutable runs,
// consumers are read-only, and BENCH_VEC gates clones-per-query to zero
// in CI. A cloning scan reintroduced anywhere on the query path silently
// pays O(rows) allocations per query and the gate only catches the
// specific shapes the bench runs.
//
// The analyzer flags calls to the cloning storage readers — ScanSegment,
// ScanSegmentRows, Scan, Snapshot, SnapshotRows — from the query-path
// packages (algebra, qql, server), with two structural escapes that are
// exactly the places cloning is the contract:
//
//   - DML and persistence functions (names matching insert/update/
//     delete/snapshot/persist/load/save): collect-then-apply needs a
//     stable copy precisely because it will mutate the table while
//     holding the row set;
//   - methods on dual-mode iterator types that declare a `shared bool`
//     field (tableScan, parallelScan): the cloning branch there is the
//     documented opt-out the planner chooses for non-read-only
//     consumers.
var Sharedscan = &Analyzer{
	Name: "sharedscan",
	Doc: "report cloning table reads (ScanSegmentRows, Scan, Snapshot...) " +
		"on the query path; use the zero-clone Shared readers or the " +
		"columnar ScanSegmentCols",
	Match: matchAny("internal/algebra", "internal/qql", "internal/server"),
	Run:   runSharedscan,
}

// cloningReaders are the *storage.Table methods that clone every row they
// return.
var cloningReaders = map[string]bool{
	"ScanSegment":     true,
	"ScanSegmentRows": true,
	"Scan":            true,
	"Snapshot":        true,
	"SnapshotRows":    true,
}

// dmlFuncRE matches function names whose job is to mutate or persist —
// the call sites where a stable cloned row set is the point.
var dmlFuncRE = regexp.MustCompile(`(?i)(insert|update|delete|snapshot|persist|load|save|backup)`)

func runSharedscan(pass *Pass) error {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Signature().Recv() == nil || !cloningReaders[fn.Name()] {
			return true
		}
		if !isNamed(fn.Signature().Recv().Type(), "internal/storage", "Table") {
			return true
		}
		fd, fname := enclosingFunc(stack)
		if dmlFuncRE.MatchString(fname) {
			return true
		}
		if fd != nil && receiverHasSharedKnob(pass, fd) {
			return true
		}
		pass.Reportf(call.Pos(),
			"Table.%s clones every row it returns; on the query path use ScanSegmentRowsShared[Into] or the columnar ScanSegmentCols (read-only contract) — cloning reads belong in DML/persistence functions (PR 5 zero-clone rule)",
			fn.Name())
		return true
	})
	return nil
}

// receiverHasSharedKnob reports whether fd is a method on a type that
// declares a `shared bool` field — the dual-mode iterator pattern whose
// cloning branch is deliberate.
func receiverHasSharedKnob(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	n := namedType(tv.Type)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "shared" {
			if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Bool {
				return true
			}
		}
	}
	return false
}
