package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph resolves call sites to the functions they may invoke using
// class-hierarchy analysis (CHA): an interface method call may reach the
// matching method of any known concrete type that implements the
// interface. "Known" means every named type reachable from the analyzed
// package — its own scope plus the scopes of everything it transitively
// imports, which export data makes complete. That is the sound direction
// for a dependency-ordered analysis: when package a (analyzed later)
// calls through an interface defined in package b (analyzed earlier), the
// candidate set includes both b's own implementations and a's.
//
// CHA is deliberately imprecise — it ignores which concrete values
// actually flow to the call site — because the analyzers using it
// propagate *effects* (locks acquired, cancellation consulted), where a
// superset of callees gives a superset of effects and therefore errs
// toward reporting, never toward silence.
type CallGraph struct {
	info  *types.Info
	named []*types.Named

	// resolution cache per interface method object
	cache map[*types.Func][]*types.Func
}

// NewCallGraph indexes every named type reachable from pkg.
func NewCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{info: pkg.Info, cache: map[*types.Func][]*types.Func{}}
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, n)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg.Types)
	sort.Slice(g.named, func(i, j int) bool {
		return g.named[i].Obj().Id() < g.named[j].Obj().Id()
	})
	return g
}

// Callees resolves a call site to the set of functions it may invoke.
// Static calls (plain functions, concrete methods) resolve to exactly one;
// interface method calls resolve to every known implementation's method;
// calls through function values resolve to none with dynamic=true.
// Conversions and builtins resolve to none, dynamic=false.
func (g *CallGraph) Callees(call *ast.CallExpr) (fns []*types.Func, dynamic bool) {
	if isConversionOrBuiltin(g.info, call) {
		return nil, false
	}
	fn := calleeFunc(g.info, call)
	if fn == nil {
		return nil, true
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return []*types.Func{fn}, false
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return []*types.Func{fn}, false
	}
	// The interface method itself leads the result: callers that classify
	// stdlib behavior by method identity (net.Conn.Read is I/O) match on
	// it even when no implementation is indexed.
	return append([]*types.Func{fn}, g.implementations(fn, iface)...), false
}

// implementations returns the concrete methods CHA considers reachable
// from a call to interface method m.
func (g *CallGraph) implementations(m *types.Func, iface *types.Interface) []*types.Func {
	if cached, ok := g.cache[m]; ok {
		return cached
	}
	var impls []*types.Func
	for _, n := range g.named {
		if types.IsInterface(n) || n.TypeParams().Len() > 0 {
			continue
		}
		var recv types.Type = n
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(n)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			impls = append(impls, impl)
		}
	}
	g.cache[m] = impls
	return impls
}
