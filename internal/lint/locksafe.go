package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locksafe enforces the lock-scope discipline the storage layer adopted
// after the PR 2 scan deadlock (TestScanVisitorReentrancy): while a
// sync.Mutex or sync.RWMutex is held, code must not transfer control to
// anything whose body the lock's owner cannot audit. Concretely, inside a
// locked region it reports:
//
//   - calls through function values (parameters, fields, locals) — the
//     exact shape of the old Table.Scan calling a user visitor under
//     RLock, which deadlocked the moment the visitor called back into the
//     table behind a queued writer;
//   - calls to interface methods while a lock owned by internal/storage
//     is held — dynamically dispatched, so equally unauditable. This rule
//     is scoped to storage locks: connection-state mutexes legitimately
//     guard net.Conn/context.Context calls (a deadline set must happen
//     under the same lock that guards the conn), while the storage layer
//     has no business doing dynamic dispatch inside a lock;
//   - function values passed as arguments to other calls (the callee may
//     invoke them under the lock). Function literals are exempt from both
//     rules but their bodies are analyzed as part of the locked region,
//     which is what blesses the forEachLiveLocked(func(...){...}) visitor
//     idiom and sort.Slice with an inline comparator;
//   - calls to same-package functions that (transitively, within the
//     package) acquire any lock — nested acquisition is how the
//     storage/catalog lock pair would invert its ordering.
//
// The analysis is per-function: a region opens at mu.Lock()/mu.RLock()
// and closes at the matching Unlock, or at function end when the unlock
// is deferred. Methods whose names end in "Locked" are the audited
// callees designed to run under the caller's lock; they are free to be
// called inside a region but are themselves analyzed like any other
// function.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc: "report control transfer to unauditable code (function values, " +
		"interface methods, lock-acquiring helpers) while a mutex is held",
	Match: func(string) bool { return true },
	Run:   runLocksafe,
}

// syncLockOp classifies a call as a mutex operation: the lock-expression
// key ("t.mu", "s" for an embedded mutex) plus whether it acquires or
// releases. TryLock variants are ignored — their failure branch makes
// region tracking ambiguous and the engine does not use them.
type syncLockOp struct {
	key     string
	acquire bool
	release bool
	storage bool // the mutex field/var is declared in internal/storage
}

// heldLock records one held lock: where it was acquired and whether it is
// a storage-layer lock (which arms the interface-method rule).
type heldLock struct {
	pos     token.Pos
	storage bool
}

func mutexOp(info *types.Info, call *ast.CallExpr) (syncLockOp, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return syncLockOp{}, false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return syncLockOp{}, false
	}
	if n := namedType(recv.Type()); n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return syncLockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return syncLockOp{}, false
	}
	op := syncLockOp{key: exprString(sel.X), storage: storageOwnedLock(info, sel)}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op.acquire = true
	case "Unlock", "RUnlock":
		op.release = true
	default:
		return syncLockOp{}, false
	}
	return op, true
}

// storageOwnedLock reports whether the mutex in a mu.Lock() selector is
// declared in internal/storage — the layer whose lock regions must stay
// free of dynamic dispatch (sel.X is the mutex expression).
func storageOwnedLock(info *types.Info, sel *ast.SelectorExpr) bool {
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr: // t.mu — resolve the field
		if s, ok := info.Selections[x]; ok {
			obj = s.Obj()
		} else {
			obj = info.Uses[x.Sel]
		}
	case *ast.Ident: // a plain mutex var, or the receiver of an embedded mutex
		obj = info.Uses[x]
	}
	return obj != nil && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), "internal/storage")
}

func runLocksafe(pass *Pass) error {
	ls := &locksafeState{pass: pass, mayLock: packageMayLock(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ls.litVars = localClosures(pass.Info, fd.Body)
				ls.walking = map[*ast.FuncLit]bool{}
				ls.walkStmts(fd.Body.List, map[string]heldLock{})
			}
		}
	}
	return nil
}

// localClosures maps local variables that are assigned a function literal
// exactly once to that literal. Calling such a variable is statically
// auditable — the body is right there in the same function — so locksafe
// analyzes it inline instead of reporting an opaque function-value call.
// A variable reassigned anywhere stays opaque.
func localClosures(info *types.Info, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	assigns := map[*types.Var]int{}
	lits := map[*types.Var]*ast.FuncLit{}
	note := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		assigns[v]++
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lits[v] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					note(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					note(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	for v, n := range assigns {
		if n != 1 {
			delete(lits, v)
		}
	}
	return lits
}

// knownClosure resolves an expression to a single-assignment local
// closure body, or nil.
func (ls *locksafeState) knownClosure(e ast.Expr) *ast.FuncLit {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := ls.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return ls.litVars[v]
}

// walkClosure analyzes a resolved closure body under the current lock
// state, guarding against self-recursive closures.
func (ls *locksafeState) walkClosure(lit *ast.FuncLit, held map[string]heldLock) {
	if ls.walking[lit] {
		return
	}
	ls.walking[lit] = true
	ls.walkStmts(lit.Body.List, held)
	ls.walking[lit] = false
}

// packageMayLock computes, to a fixpoint over the package-local call
// graph, the set of functions that acquire any sync lock directly or via
// same-package callees. Calling one of these inside a locked region nests
// acquisitions, the precondition for lock-order inversion.
func packageMayLock(pass *Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	mayLock := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range bodies {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := mutexOp(pass.Info, call); ok && op.acquire {
				mayLock[fn] = true
			}
			if callee := calleeFunc(pass.Info, call); callee != nil {
				if _, local := bodies[callee]; local {
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if mayLock[fn] {
				continue
			}
			for _, c := range callees {
				if mayLock[c] {
					mayLock[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return mayLock
}

type locksafeState struct {
	pass    *Pass
	mayLock map[*types.Func]bool
	litVars map[*types.Var]*ast.FuncLit
	walking map[*ast.FuncLit]bool
}

func cloneHeld(held map[string]heldLock) map[string]heldLock {
	c := make(map[string]heldLock, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// walkStmts interprets a statement list, maintaining the set of held lock
// keys. Branch bodies run on copies of the set: a lock released only on
// one path stays held on the fallthrough view, which is the conservative
// direction for this check.
func (ls *locksafeState) walkStmts(stmts []ast.Stmt, held map[string]heldLock) {
	for _, s := range stmts {
		ls.walkStmt(s, held)
	}
}

func (ls *locksafeState) walkStmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ls.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the region open to function end. Other
		// deferred calls run after every unlock this walker can see, so
		// they are checked against an empty held set.
		if op, ok := mutexOp(ls.pass.Info, s.Call); ok && op.release {
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, inner := range collectCalls(lit.Body) {
				if op, ok := mutexOp(ls.pass.Info, inner); ok && op.release {
					return
				}
			}
			ls.walkStmts(lit.Body.List, map[string]heldLock{})
			return
		}
		ls.checkExpr(s.Call, map[string]heldLock{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			ls.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		ls.checkExpr(s.Cond, held)
		ls.walkStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			ls.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.checkExpr(s.Cond, held)
		}
		body := cloneHeld(held)
		ls.walkStmts(s.Body.List, body)
		if s.Post != nil {
			ls.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		ls.checkExpr(s.X, held)
		ls.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					ls.walkStmt(cc.Comm, cloneHeld(held))
				}
				ls.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.BlockStmt:
		ls.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		ls.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs outside this stack's locked region.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ls.walkStmts(lit.Body.List, map[string]heldLock{})
		}
	case *ast.SendStmt:
		ls.checkExpr(s.Chan, held)
		ls.checkExpr(s.Value, held)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// Declarations with call initializers are rare in locked regions;
		// handle the common ValueSpec case.
		if ds, ok := s.(*ast.DeclStmt); ok {
			if gd, ok := ds.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							ls.checkExpr(v, held)
						}
					}
				}
			}
		}
	}
}

// collectCalls gathers every call expression in a subtree.
func collectCalls(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// checkExpr scans one expression for mutex transitions and, when a lock is
// held, for the disallowed call shapes. Function literal subtrees are
// visited through the call rules (invoked inline or passed as argument),
// never blindly, so their bodies are judged under the correct lock state.
func (ls *locksafeState) checkExpr(e ast.Expr, held map[string]heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // reached only via call-argument analysis below
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := mutexOp(ls.pass.Info, call); ok {
			if op.acquire {
				if _, dup := held[op.key]; dup {
					ls.pass.Reportf(call.Pos(), "locks %s while already holding it", op.key)
				}
				held[op.key] = heldLock{pos: call.Pos(), storage: op.storage}
			} else if op.release {
				delete(held, op.key)
			}
			return false
		}
		ls.checkCall(call, held)
		return true
	})
}

// checkCall applies the locked-region rules to one call.
func (ls *locksafeState) checkCall(call *ast.CallExpr, held map[string]heldLock) {
	info := ls.pass.Info
	locked := len(held) > 0
	key := anyKey(held)

	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: its body runs right here, under
		// whatever is held right here.
		ls.walkStmts(lit.Body.List, held)
	} else if locked && !isConversionOrBuiltin(info, call) {
		fn := calleeFunc(info, call)
		switch {
		case fn == nil:
			// A local variable bound once to a literal is as auditable as
			// the literal itself: analyze its body here instead.
			if lit := ls.knownClosure(call.Fun); lit != nil {
				ls.walkClosure(lit, held)
				break
			}
			ls.pass.Reportf(call.Pos(),
				"calls function value %s while %s is held; a visitor that re-enters the lock's owner deadlocks behind a queued writer (PR 2)",
				exprString(call.Fun), key)
		case fn.Signature().Recv() != nil && types.IsInterface(fn.Signature().Recv().Type()):
			// Interface dispatch is reported only under storage locks: see
			// the analyzer doc for why connection mutexes are exempt.
			if sk := storageKey(held); sk != "" {
				ls.pass.Reportf(call.Pos(),
					"calls interface method %s while %s is held; dynamic dispatch cannot be audited for reentrancy (storage lock discipline, PR 2)",
					exprString(call.Fun), sk)
			}
		case fn.Pkg() == ls.pass.Pkg && ls.mayLock[fn]:
			ls.pass.Reportf(call.Pos(),
				"calls %s, which acquires a lock, while %s is held; nested acquisition risks lock-order inversion", funcName(info, call), key)
		}
	}

	// Function-typed arguments: literals are analyzed as part of the
	// region (the callee may run them under our lock); opaque function
	// values are reported — their bodies cannot be audited from here.
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if lit, ok := arg.(*ast.FuncLit); ok {
			ls.walkStmts(lit.Body.List, held)
			continue
		}
		if !locked {
			continue
		}
		if tv, ok := info.Types[arg]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig && !tv.IsNil() {
				if isConversionOrBuiltin(info, call) {
					continue
				}
				if lit := ls.knownClosure(arg); lit != nil {
					ls.walkClosure(lit, held)
					continue
				}
				ls.pass.Reportf(arg.Pos(),
					"passes function value %s to %s while %s is held; the callee may invoke it inside the locked region (PR 2)",
					exprString(arg), funcName(info, call), key)
			}
		}
	}
}

// storageKey picks the smallest held storage-lock key, or "" when no
// storage lock is held.
func storageKey(held map[string]heldLock) string {
	best := ""
	for k, h := range held {
		if h.storage && (best == "" || k < best) {
			best = k
		}
	}
	return best
}

// anyKey picks a held lock key for diagnostics (deterministically the
// smallest, so messages are stable).
func anyKey(held map[string]heldLock) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
