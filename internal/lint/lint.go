// Package lint is qqlvet's analysis framework: a stdlib-only skeleton of
// the golang.org/x/tools/go/analysis model (Analyzer, Pass, Diagnostic)
// plus the engine-specific analyzers that machine-check invariants this
// repo has already paid for once in bugs — lock-scope discipline in
// storage, deterministic release of pooled batches, pointer-based Value
// comparison on hot paths, construction-time metrics registration, and
// zero-clone shared scans on the query path.
//
// The framework deliberately mirrors x/tools shapes (an Analyzer owns a
// Run func over a Pass carrying files, type info and a Report sink) so the
// suite can migrate onto the real go/analysis package wholesale if the
// module ever takes on the x/tools dependency. Until then everything here
// builds from go/ast, go/types and go/token alone, which keeps the repo at
// zero external dependencies — the same constraint the rest of the engine
// lives under.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position in the analyzed package and the
// message explaining which invariant the code at that position violates.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one invariant checker. Run inspects a type-checked package
// through the Pass and reports violations; it must not mutate the ASTs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces, shown by
	// `qqlvet -help`. The first line is the summary.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. The driver consults it for reporting only — facts are still
	// computed on non-matching packages, since a matching dependent may
	// need them. Test harnesses bypass it so testdata packages exercise
	// every analyzer regardless of their paths.
	Match func(pkgPath string) bool
	// IncludeTests keeps diagnostics positioned inside _test.go files.
	// Most invariants are production hot-path contracts that tests
	// legitimately probe the edges of (a test may hold a lock on purpose,
	// or clone rows to mutate them), so the default is to drop test-file
	// findings at the sink; analyzers whose invariant holds in tests too
	// (errdrop: a test helper that swallows an error hides real failures)
	// opt in here.
	IncludeTests bool
	// Run performs the analysis.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts is the run's cross-package fact store. Facts exported by the
	// dependencies of this package are already present; facts this pass
	// exports become visible to packages analyzed later. Never nil.
	Facts *Facts

	// factsOnly suppresses diagnostics: the pass runs only so its fact
	// exports become available to dependent packages. The driver sets it
	// for dependency-only packages and for packages the analyzer's Match
	// predicate excludes from reporting.
	factsOnly bool

	diags []Diagnostic
}

// Reportf records a diagnostic at pos. On facts-only passes it is a no-op;
// findings inside _test.go files are dropped unless the analyzer sets
// IncludeTests.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.factsOnly {
		return
	}
	if !p.Analyzer.IncludeTests {
		if f := p.Fset.File(pos); f != nil && strings.HasSuffix(f.Name(), "_test.go") {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Export records a fact about key under this pass's analyzer namespace.
func (p *Pass) Export(key string, fact any) { p.Facts.Export(p.Analyzer.Name, key, fact) }

// Import reads a fact about key from this pass's analyzer namespace.
func (p *Pass) Import(key string, out any) bool { return p.Facts.Import(p.Analyzer.Name, key, out) }

// RunAnalyzer applies one analyzer to a loaded package and returns its
// findings sorted by position. Facts exported by the pass are added to
// facts; nil means the run keeps no cross-package knowledge (single
// package, no dependencies analyzed).
func RunAnalyzer(a *Analyzer, pkg *Package, facts *Facts) ([]Diagnostic, error) {
	return runPass(a, pkg, facts, !pkg.FactsOnly)
}

// runPass is RunAnalyzer with an explicit reporting switch, used by the
// driver to run fact-computation passes over packages the analyzer's
// Match predicate excludes from reporting.
func runPass(a *Analyzer, pkg *Package, facts *Facts, report bool) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts()
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		Facts:     facts,
		factsOnly: !report,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}

// ---- Shared type-inspection helpers ----

// namedType unwraps pointers and aliases down to a named type, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamed reports whether t (through pointers) is the named type
// pkgSuffix.name, matching the package by import-path suffix so the check
// holds for both "repro/internal/value" and a vendored or test-relocated
// copy.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && hasPathSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// hasPathSuffix reports whether path equals suffix or ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves a call to the *types.Func it statically invokes:
// a plain function, a method, or a method expression. It returns nil for
// calls through function values, type conversions and builtins — the
// dynamic calls several analyzers care about precisely because they cannot
// be resolved.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversionOrBuiltin reports whether the call is a type conversion or a
// builtin like len/append — calls with no function body to worry about.
func isConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, ok := info.Uses[sel.Sel].(*types.Builtin); ok {
			return true
		}
	}
	return false
}

// funcName renders a call target for diagnostics: "pkg.Fn", "T.Method" or
// the expression text for dynamic calls.
func funcName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Signature().Recv(); recv != nil {
			if n := namedType(recv.Type()); n != nil {
				return n.Obj().Name() + "." + fn.Name()
			}
		}
		return fn.Name()
	}
	return exprString(ast.Unparen(call.Fun))
}

// exprString renders simple expressions (identifier chains, calls, index
// expressions) as compact source text for lock keys and diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", e)
	}
}

// inspectWithStack walks every file like ast.Inspect but hands the visitor
// the stack of enclosing nodes (outermost first, not including n itself).
// Analyzers use it for lexical-context questions: "is this call inside a
// loop body?", "what function encloses this expression?".
func inspectWithStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := visit(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// enclosingFunc returns the innermost function declaration in the stack
// (func literals are skipped — they execute in their declaring function's
// context for naming purposes) and its name, or nil and "".
func enclosingFunc(stack []ast.Node) (*ast.FuncDecl, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd, fd.Name.Name
		}
	}
	return nil, ""
}

// matchAny returns a Match predicate true for package paths ending in any
// of the given suffixes.
func matchAny(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if hasPathSuffix(path, s) {
				return true
			}
		}
		return false
	}
}
