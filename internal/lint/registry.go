package lint

// All returns the full analyzer suite in stable order. The qqlvet driver
// runs every analyzer returned here; adding an analyzer to the suite is
// one append plus its file, and the registration test in cmd/qqlvet
// pins the set so a dropped registration cannot pass CI silently.
func All() []*Analyzer {
	return []*Analyzer{
		Atomicmix,
		Cancelflow,
		Errdrop,
		Exhaustive,
		Lockorder,
		Locksafe,
		Metricsreg,
		Releasepair,
		Sharedscan,
		Valuecopy,
		Walorder,
	}
}
