package lint

import "testing"

// The harness types each testdata package under an import path chosen to
// satisfy the path-sensitive bits of the analyzer under test (locksafe's
// storage-owned-lock rule keys off the declaring package's path).

func TestLocksafeTestdata(t *testing.T) {
	runTestdata(t, Locksafe, "locksafe", "test/internal/storage")
}

func TestReleasepairTestdata(t *testing.T) {
	runTestdata(t, Releasepair, "releasepair", "test/releasepair")
}

func TestValuecopyTestdata(t *testing.T) {
	runTestdata(t, Valuecopy, "valuecopy", "test/valuecopy")
}

func TestMetricsregTestdata(t *testing.T) {
	runTestdata(t, Metricsreg, "metricsreg", "test/metricsreg")
}

func TestSharedscanTestdata(t *testing.T) {
	runTestdata(t, Sharedscan, "sharedscan", "test/sharedscan")
}

// The fact-based analyzers get multi-package fixtures: the first package
// exports facts, the second imports them, and the `// want` comments in
// the importing package only come true when the facts actually flowed.

func TestLockorderTestdata(t *testing.T) {
	runTestdataProgram(t, Lockorder, "lockorder", []testdataPkg{
		{subdir: "deps", importPath: "test/lockorder/deps"},
		{subdir: "use", importPath: "test/lockorder/internal/storage"},
	})
}

func TestAtomicmixTestdata(t *testing.T) {
	runTestdataProgram(t, Atomicmix, "atomicmix", []testdataPkg{
		{subdir: "counter", importPath: "test/atomicmix/counter"},
		{subdir: "use", importPath: "test/atomicmix/use"},
	})
}

func TestCancelflowTestdata(t *testing.T) {
	runTestdata(t, Cancelflow, "cancelflow", "test/cancelflow")
}

func TestErrdropTestdata(t *testing.T) {
	runTestdataProgram(t, Errdrop, "errdrop", []testdataPkg{
		{subdir: "dep", importPath: "test/errdrop/dep"},
		{subdir: "storage", importPath: "test/errdrop/internal/storage"},
	})
}

func TestWalorderTestdata(t *testing.T) {
	runTestdata(t, Walorder, "walorder", "test/internal/qql")
}

func TestExhaustiveTestdata(t *testing.T) {
	runTestdataProgram(t, Exhaustive, "exhaustive", []testdataPkg{
		{subdir: "colors", importPath: "test/exhaustive/colors"},
		{subdir: "use", importPath: "test/exhaustive/use"},
	})
}
