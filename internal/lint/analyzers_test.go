package lint

import "testing"

// The harness types each testdata package under an import path chosen to
// satisfy the path-sensitive bits of the analyzer under test (locksafe's
// storage-owned-lock rule keys off the declaring package's path).

func TestLocksafeTestdata(t *testing.T) {
	runTestdata(t, Locksafe, "locksafe", "test/internal/storage")
}

func TestReleasepairTestdata(t *testing.T) {
	runTestdata(t, Releasepair, "releasepair", "test/releasepair")
}

func TestValuecopyTestdata(t *testing.T) {
	runTestdata(t, Valuecopy, "valuecopy", "test/valuecopy")
}

func TestMetricsregTestdata(t *testing.T) {
	runTestdata(t, Metricsreg, "metricsreg", "test/metricsreg")
}

func TestSharedscanTestdata(t *testing.T) {
	runTestdata(t, Sharedscan, "sharedscan", "test/sharedscan")
}
