// Package locksafetest exercises the locksafe analyzer. The harness
// type-checks it under an import path ending in internal/storage, so its
// mutexes count as storage-owned and arm the interface-method rule.
package locksafetest

import (
	"sort"
	"sync"
)

type sink interface{ Emit(int) }

type table struct {
	mu   sync.RWMutex
	rows []int
}

// scanBad is the PR 2 deadlock shape: a caller-supplied visitor invoked
// under the read lock.
func (t *table) scanBad(visit func(int) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !visit(r) { // want `calls function value visit`
			return
		}
	}
}

// flushBad dispatches through an interface while the storage lock is held.
func (t *table) flushBad(s sink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Emit(len(t.rows)) // want `calls interface method s.Emit`
}

// reindex acquires t.mu, so it lands in the package mayLock set.
func (t *table) reindex() {
	t.mu.Lock()
	t.rows = append([]int(nil), t.rows...)
	t.mu.Unlock()
}

// nestedBad calls a lock-acquiring helper inside a locked region.
func (t *table) nestedBad(u *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u.reindex() // want `acquires a lock`
}

// doubleLockBad re-acquires a lock it already holds.
func (t *table) doubleLockBad() {
	t.mu.Lock()
	t.mu.Lock() // want `while already holding`
	t.mu.Unlock()
	t.mu.Unlock()
}

func runner(f func()) { f() }

// passBad hands an opaque function value to a callee under the lock.
func (t *table) passBad(f func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	runner(f) // want `passes function value f`
}

// each is the audited visitor helper: no lock of its own.
func (t *table) each(visit func(int)) {
	for _, r := range t.rows {
		visit(r)
	}
}

// literalOK: function literals passed under the lock are analyzed inline,
// not reported — the forEachLiveLocked / sort.Slice idiom.
func (t *table) literalOK() int {
	total := 0
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.each(func(r int) { total += r })
	sort.Slice(t.rows, func(i, j int) bool { return t.rows[i] < t.rows[j] })
	return total
}

// localClosureOK: a local bound once to a literal is as auditable as the
// literal, so calling it under the lock is fine.
func (t *table) localClosureOK() int {
	n := 0
	add := func(d int) { n += d }
	t.mu.Lock()
	defer t.mu.Unlock()
	add(len(t.rows))
	return n
}

// unlockFirstOK releases the lock before transferring control.
func (t *table) unlockFirstOK(visit func(int)) {
	t.mu.Lock()
	n := len(t.rows)
	t.mu.Unlock()
	visit(n)
}
