// Package deps is the fact-exporting half of the lockorder fixture: the
// acquisition set of LockAux and this package's Aux -> Mu graph edge
// travel to the importing package as facts, where they close a cycle the
// importing package cannot see on its own.
package deps

import "sync"

// Store carries two exported locks so the importing package can take them
// directly.
type Store struct {
	Mu  sync.Mutex
	Aux sync.Mutex
}

// LockAux acquires Aux; a caller holding another lock inherits the edge.
func (s *Store) LockAux() {
	s.Aux.Lock()
	s.Aux.Unlock()
}

// AuxThenMu establishes the Aux -> Mu edge inside this package. Alone it
// is harmless; combined with the importer's Mu -> Aux edge it deadlocks.
func (s *Store) AuxThenMu() {
	s.Aux.Lock()
	defer s.Aux.Unlock()
	s.Mu.Lock()
	s.Mu.Unlock()
}
