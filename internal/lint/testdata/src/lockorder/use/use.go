// Package use exercises the lockorder rules. The harness type-checks it
// under an import path ending in internal/storage, so its own locks are
// io-sensitive; the cross-package cycle finding depends entirely on the
// graph fact exported by the deps package.
package use

import (
	"os"
	"sync"

	"test/lockorder/deps"
)

// muThenAux closes the cycle: Mu is held while LockAux (which takes Aux)
// runs, and deps itself takes Mu under Aux.
func muThenAux(s *deps.Store) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.LockAux() // want `acquiring test/lockorder/deps\.Store\.Aux while holding test/lockorder/deps\.Store\.Mu closes a lock-order cycle`
}

type gate struct {
	mu sync.Mutex
	ch chan int
}

// relock takes the same mutex expression twice.
func (g *gate) relock() {
	g.mu.Lock()
	g.mu.Lock() // want `g\.mu is locked while already held`
	g.mu.Unlock()
	g.mu.Unlock()
}

// notify sends on an unbuffered channel under the lock.
func (g *gate) notify() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1 // want `channel send while holding test/lockorder/internal/storage\.gate\.mu`
}

// waitUnder parks on a WaitGroup under the lock.
func (g *gate) waitUnder(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding`
}

// readUnder performs file I/O under a storage-owned lock.
func (g *gate) readUnder(f *os.File, buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.Read(buf) // want `os\.File\.Read while holding`
}

// ordered releases before blocking: no finding.
func (g *gate) ordered() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 2
}

// localLock's mutex has no declaring-site class, so blocking under it is
// out of scope (a function-local lock cannot participate in a global
// order).
func localLock(ch chan int) {
	var mu sync.Mutex
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
