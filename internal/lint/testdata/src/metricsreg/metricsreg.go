// Package metricsregtest exercises the metricsreg analyzer: request-path
// series must be pre-registered at construction time.
package metricsregtest

import "repro/internal/metrics"

type server struct{ reg *metrics.Registry }

// newServer is construction-time: registrations here happen before the
// listener accepts, so scrapes cannot race them.
func newServer(reg *metrics.Registry) *server {
	reg.Counter("requests_total").Add(0)
	reg.Histogram("latency_seconds").Observe(0)
	// Help declares a series family whose label sets materialize at
	// collection time (the per-table gauge pattern).
	reg.Help("rows_by_table", "Live rows per table.")
	return &server{reg: reg}
}

// handle is the request path.
func (s *server) handle(kind string) {
	s.reg.Counter("requests_total").Inc()
	s.reg.Histogram("latency_seconds").Observe(1)
	s.reg.Gauge("rows_by_table", metrics.L("table", kind)).SetInt(1)
	s.reg.Counter("errors_total").Inc() // want `never pre-registered`
	s.reg.Counter("op_" + kind).Inc()   // want `dynamic series name`
}
