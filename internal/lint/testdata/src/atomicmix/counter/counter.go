// Package counter maintains counters through sync/atomic; the atomic-use
// facts for its variable and field are exported for importing packages.
package counter

import "sync/atomic"

// Hits is a package-level counter maintained atomically.
var Hits int64

// Stats mixes an atomically-accessed field with plain ones.
type Stats struct {
	Ops   int64 // accessed via sync/atomic
	Label string
}

// Incr is the atomic write path that puts Hits and Ops in the fact set.
func Incr(s *Stats) {
	atomic.AddInt64(&Hits, 1)
	atomic.AddInt64(&s.Ops, 1)
}

// Snapshot reads atomically: consistent, no finding.
func Snapshot(s *Stats) (int64, int64) {
	return atomic.LoadInt64(&Hits), atomic.LoadInt64(&s.Ops)
}

// resetBad writes the field plainly inside the defining package itself.
func resetBad(s *Stats) {
	s.Ops = 0 // want `plain access to test/atomicmix/counter\.Stats\.Ops`
}
