// Package use proves the facts travel: plain access to counter's
// atomically-maintained memory is reported here, in a package that never
// touches sync/atomic itself.
package use

import "test/atomicmix/counter"

// Churn reads the counters plainly — the data race atomicmix exists to
// stop. The Label access is plain by design and stays silent.
func Churn(s *counter.Stats) int64 {
	total := counter.Hits // want `plain access to test/atomicmix/counter\.Hits`
	total += s.Ops        // want `plain access to test/atomicmix/counter\.Stats\.Ops`
	return total + int64(len(s.Label))
}
