// Package releasepairtest exercises the releasepair analyzer: sync.Pool
// acquisitions must reach their paired release on every control-flow path.
package releasepairtest

import (
	"errors"
	"sync"
)

type batch struct{ vals []int }

func (b *batch) reset() { b.vals = b.vals[:0] }

var pool = sync.Pool{New: func() any { return new(batch) }}

func getBatch(n int) *batch { b := pool.Get().(*batch); _ = n; return b }

func putBatch(b *batch) { pool.Put(b) }

var errBoom = errors.New("boom")

// leakOnError drops the batch on the early error return.
func leakOnError(fail bool) error {
	b := getBatch(8)
	if fail {
		return errBoom // want `not released on this path`
	}
	putBatch(b)
	return nil
}

// leakAtEnd never releases: falling off the end of the function is a
// return too.
func leakAtEnd() {
	b := getBatch(8)
	b.reset()
} // want `not released on this path`

// leakPoolGet tracks direct sync.Pool.Get acquisitions as well.
func leakPoolGet(fail bool) error {
	b := pool.Get().(*batch)
	if fail {
		return errBoom // want `not released on this path`
	}
	pool.Put(b)
	return nil
}

// deferOK: a deferred release covers every path at once.
func deferOK(fail bool) error {
	b := getBatch(8)
	defer putBatch(b)
	if fail {
		return errBoom
	}
	b.reset()
	return nil
}

// branchesOK releases on every fallthrough branch.
func branchesOK(x bool) {
	b := getBatch(8)
	if x {
		putBatch(b)
	} else {
		pool.Put(b)
	}
}

// transferOK returns the batch: ownership (and the release duty) moves to
// the caller.
func transferOK() *batch {
	return getBatch(8)
}

type holder struct{ buf *batch }

// parkOK stores the batch in a field: lifecycle management moves to the
// struct's Stop/Close, the batchProject pattern.
func parkOK(h *holder) {
	b := getBatch(8)
	h.buf = b
}
