// Package walordertest exercises the walorder analyzer. The harness
// type-checks it under an import path ending in internal/qql, putting it
// in walorder's reporting scope.
package walordertest

import (
	"os"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// applyInsert is a sanctioned door: mutators may be called here.
func applyInsert(tbl *storage.Table, tup relation.Tuple) error {
	_, err := tbl.Insert(tup)
	return err
}

// replayDrop is the other sanctioned prefix.
func replayDrop(cat *storage.Catalog, name string) bool {
	return cat.Drop(name)
}

// execInsertBad mutates table state from an executor-shaped function: the
// write could overtake its log record.
func execInsertBad(tbl *storage.Table, tup relation.Tuple) error {
	_, err := tbl.Insert(tup) // want `storage mutator Table.Insert outside`
	return err
}

func execUpdateBad(tbl *storage.Table, id storage.RowID, tup relation.Tuple) error {
	return tbl.Update(id, tup) // want `storage mutator Table.Update outside`
}

func tagBad(tbl *storage.Table) {
	tbl.SetTableTag("source", value.Value{}) // want `storage mutator Table.SetTableTag outside`
}

func createBad(cat *storage.Catalog, sc *schema.Schema) error {
	_, err := cat.Create(sc, true) // want `storage mutator Catalog.Create outside`
	return err
}

// checkpointGood follows the protocol: write, fsync, then rename.
func checkpointGood(data []byte, tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// checkpointBad renames a file nothing fsynced: after a crash the new
// name can point at unwritten blocks.
func checkpointBad(tmp, final string) error {
	return os.Rename(tmp, final) // want `before any Sync`
}

// shimFS delegates Rename; functions named Rename are the primitive the
// rule is about and are exempt.
type shimFS struct{}

func (shimFS) Rename(oldname, newname string) error {
	return os.Rename(oldname, newname)
}
