// Package valuecopytest exercises the valuecopy analyzer: by-value
// value.Value comparators are banned from per-row contexts.
package valuecopytest

import (
	"sort"

	"repro/internal/value"
)

// findBad compares by value inside a loop body.
func findBad(keys []value.Value, key value.Value) int {
	for i := range keys {
		if value.Equal(keys[i], key) { // want `value.Equal copies two 64-byte Values`
			return i
		}
	}
	return -1
}

// sortBad compares by value inside a per-comparison closure.
func sortBad(keys []value.Value) {
	sort.Slice(keys, func(i, j int) bool {
		return value.Less(keys[i], keys[j]) // want `value.Less copies two 64-byte Values`
	})
}

// rangeBad compares by value inside a range body.
func rangeBad(keys []value.Value, key value.Value) int {
	n := 0
	for _, k := range keys {
		if value.Compare(k, key) > 0 { // want `value.Compare copies two 64-byte Values`
			n++
		}
	}
	return n
}

// onceOK: straight-line comparisons outside loops stay legal (bind-time
// constant folding, one-off bounds checks).
func onceOK(a, b value.Value) bool {
	return value.Equal(a, b)
}

// ptrOK is the fix shape: pointer twins in the loop.
func ptrOK(keys []value.Value, key value.Value) int {
	for i := range keys {
		if value.EqualPtr(&keys[i], &key) {
			return i
		}
	}
	return -1
}
