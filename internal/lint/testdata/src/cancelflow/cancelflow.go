// Package cancelflow exercises the four cancellation-flow rules:
// unbounded loops, ignored ctx parameters, fresh root contexts, and
// goroutines that receive a ctx they can never observe.
package cancelflow

import "context"

// spinBad loops forever with no exit path: rule 1.
func spinBad(work chan int) {
	for { // want `unbounded for-loop with no exit path`
		select {
		case <-work:
		default:
		}
	}
}

// spinOK exits through the done channel.
func spinOK(done chan struct{}, work chan int) {
	for {
		select {
		case <-done:
			return
		case <-work:
		}
	}
}

// dropCtx ignores its context: rule 2.
func dropCtx(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n * 2
}

// freshRoot manufactures a new root under an incoming ctx: rule 3.
func freshRoot(ctx context.Context) context.Context {
	if ctx.Err() != nil {
		return ctx
	}
	return context.Background() // want `context\.Background\(\) inside a function that already has a ctx`
}

// pump uses its ctx only for values — it never consults cancellation.
func pump(ctx context.Context, out chan int) {
	out <- ctx.Value("k").(int)
}

// startBad hands pump a ctx it can never observe being cancelled: rule 4.
func startBad(ctx context.Context, out chan int) {
	go pump(ctx, out) // want `goroutine pump receives a ctx but never consults cancellation`
}

// watcher consults Done, so handing it a ctx is fine.
func watcher(ctx context.Context, out chan int) {
	select {
	case <-ctx.Done():
	case out <- 1:
	}
}

func startOK(ctx context.Context, out chan int) {
	go watcher(ctx, out)
}

// inlineBad's closure receives the ctx as an argument and ignores it.
func inlineBad(ctx context.Context, out chan int) {
	go func(c context.Context) { // want `goroutine receives a ctx but its body never consults cancellation`
		out <- 1
	}(ctx)
}

// inlineOK's closure selects on Done.
func inlineOK(ctx context.Context, out chan int) {
	go func(c context.Context) {
		select {
		case <-c.Done():
		case out <- 1:
		}
	}(ctx)
}
