// Package store holds the reportable errdrop shapes; the harness checks
// it under an internal/storage-suffixed import path, the analyzer's home
// turf. The Recycle case only stays silent because dep exported an
// always-nil fact for Reset.
package store

import (
	"os"

	"test/errdrop/dep"
)

// Persist drops a real error: rule 1.
func Persist(n int) {
	dep.Flush(n) // want `Flush returns an error that is silently dropped`
}

// Recycle drops an always-nil error: the fact from dep suppresses it.
func Recycle(n int) {
	dep.Reset(n)
}

// Acknowledge drops explicitly: the documented idiom.
func Acknowledge(n int) {
	_ = dep.Flush(n)
}

// SnapshotBad defers Close on a written file: rule 2.
func SnapshotBad(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on f, a file opened for writing`
	_, err = f.Write(data)
	return err
}

// SnapshotOK closes explicitly and folds the error.
func SnapshotOK(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Reload clobbers the first error before anyone reads it: rule 3.
func Reload(a, b string) error {
	_, err := os.ReadFile(a)
	_, err = os.ReadFile(b) // want `err is reassigned before the error from`
	return err
}
