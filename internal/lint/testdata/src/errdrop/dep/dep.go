// Package dep exports the always-nil facts the storage-side fixture
// consumes: Reset's error is structurally nil on every path, Flush's is
// real.
package dep

import "errors"

// Reset reports success unconditionally; its error result exists to
// satisfy an interface, and every return ends in a literal nil — the
// always-nil fact lets callers drop it.
func Reset(n int) error {
	if n > 0 {
		return nil
	}
	return nil
}

// Flush can really fail: no fact, callers must check.
func Flush(n int) error {
	if n < 0 {
		return errors.New("dep: negative flush")
	}
	return nil
}
