// Package colors defines the closed sets the importing package switches
// over: a three-member enum and a sealed three-implementation interface.
// Membership leaves this package only as facts.
package colors

// Color is a defined basic type with typed constants: an enum.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Shape is sealed: area is unexported, so only this package implements it.
type Shape interface{ area() int }

type Square struct{ Side int }

func (s Square) area() int { return s.Side * s.Side }

type Circle struct{ R int }

func (c Circle) area() int { return 3 * c.R * c.R }

type Dot struct{}

func (Dot) area() int { return 0 }
