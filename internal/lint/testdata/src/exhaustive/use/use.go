// Package use proves enum and sealed-set facts cross the package
// boundary: both findings here depend on membership only colors can
// export.
package use

import "test/exhaustive/colors"

// Name misses Blue and has no default.
func Name(c colors.Color) string {
	switch c { // want `switch on colors\.Color covers 2 of 3 members of the closed set and has no default: missing Blue`
	case colors.Red:
		return "red"
	case colors.Green:
		return "green"
	}
	return "?"
}

// Hue handles a subset but says so with an explicit default.
func Hue(c colors.Color) string {
	switch c {
	case colors.Red:
		return "warm"
	default:
		return "other"
	}
}

// Full covers every member.
func Full(c colors.Color) int {
	switch c {
	case colors.Red, colors.Green, colors.Blue:
		return 1
	}
	return 0
}

// Area misses Square and has no default.
func Area(s colors.Shape) int {
	switch s.(type) { // want `type switch on sealed interface colors\.Shape covers 2 of 3 implementations and has no default: missing Square`
	case colors.Circle:
		return 1
	case colors.Dot:
		return 2
	}
	return 0
}

// AreaOK names every implementation.
func AreaOK(s colors.Shape) int {
	switch s.(type) {
	case colors.Circle, colors.Dot, colors.Square:
		return 1
	}
	return 0
}
