// Package sharedscantest exercises the sharedscan analyzer: the query
// path rides the zero-clone shared readers; cloning reads are reserved
// for DML/persistence and for dual-mode iterators.
package sharedscantest

import (
	"repro/internal/relation"
	"repro/internal/storage"
)

// countShared is the query-path shape: zero-clone segment scans.
func countShared(t *storage.Table) int {
	n := 0
	for i, segs := 0, t.Segments(); i < segs; i++ {
		n += len(t.ScanSegmentRowsShared(i))
	}
	return n
}

// countCols is the columnar query-path shape: ScanSegmentCols reads the
// requested column vectors straight off the heap's immutable runs — the
// deepest zero-clone reader, never flagged.
func countCols(t *storage.Table) int {
	n := 0
	var cs storage.ColSeg
	for i := 0; t.ScanSegmentCols(i, []int{0}, &cs); i++ {
		n += cs.Live()
	}
	return n
}

// countBad clones every row just to count them.
func countBad(t *storage.Table) int {
	_, rows := t.SnapshotRows() // want `Table.SnapshotRows clones every row`
	return len(rows)
}

// visitBad uses the cloning visitor scan on a read-only pass.
func visitBad(t *storage.Table) int {
	n := 0
	t.Scan(func(_ storage.RowID, _ relation.Tuple) bool { // want `Table.Scan clones every row`
		n++
		return true
	})
	return n
}

// collectForUpdate is DML-shaped: collect-then-apply needs a stable copy
// because it will mutate the table while holding the row set.
func collectForUpdate(t *storage.Table) []relation.Tuple {
	_, rows := t.SnapshotRows()
	return rows
}

// iter is a dual-mode iterator: the `shared bool` knob marks the cloning
// branch as the documented opt-out for non-read-only consumers.
type iter struct {
	t      *storage.Table
	shared bool
}

func (it *iter) segment(i int) int {
	if it.shared {
		return len(it.t.ScanSegmentRowsShared(i))
	}
	return len(it.t.ScanSegmentRows(i))
}
