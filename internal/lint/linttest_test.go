package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts expectations from testdata sources: a comment of the
// form `// want `regex“ on a line means the analyzer must report a
// diagnostic on that line whose message matches the regex. The testdata
// convention mirrors x/tools analysistest so the packages could move there
// unchanged if the repo ever takes the dependency.
var wantRE = regexp.MustCompile("// want `([^`]+)`")

// runTestdata type-checks the package in testdata/src/<dir> under the
// given import path (some analyzers condition on path suffixes) and
// asserts the analyzer's diagnostics match the `// want` comments exactly:
// every diagnostic matched by a want on its line, every want matched by a
// diagnostic.
//
// Testdata packages import real module packages (repro/internal/value,
// ...), so type-checking uses the stdlib source importer, which resolves
// both GOROOT and module-local imports from source. The go tool itself
// never sees these packages: "testdata" directories are invisible to it,
// which is what lets them contain deliberate violations without tripping
// the repo-wide qqlvet run.
func runTestdata(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	runTestdataProgram(t, a, dir, []testdataPkg{{subdir: "", importPath: importPath}})
}

// testdataPkg names one package of a multi-package fixture: a
// subdirectory of testdata/src/<dir> and the import path to type-check it
// under. Packages are listed in dependency order (imported before
// importer), mirroring the real driver; the whole program shares one
// fact store, so a fixture can assert that a diagnostic in package a is
// caused by a fact exported from package b.
type testdataPkg struct {
	subdir     string
	importPath string
}

// runTestdataProgram is the multi-package harness core: it type-checks
// each fixture package in order (earlier fixture packages are importable
// by later ones under their fixture import paths), runs the analyzer over
// each with a shared fact store, and matches the union of diagnostics
// against the union of `// want` comments.
func runTestdataProgram(t *testing.T, a *Analyzer, dir string, pkgPaths []testdataPkg) {
	t.Helper()
	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	source := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return source.Import(path)
	})

	facts := NewFacts()
	var allFiles []*ast.File
	var diags []Diagnostic
	for _, tp := range pkgPaths {
		src := filepath.Join("testdata", "src", dir, tp.subdir)
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(src, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			t.Fatalf("no Go files in %s", src)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(tp.importPath, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", tp.importPath, err)
		}
		checked[tp.importPath] = tpkg
		allFiles = append(allFiles, files...)

		pkg := &Package{Path: tp.importPath, Fset: fset, Files: files, Types: tpkg, Info: info}
		ds, err := RunAnalyzer(a, pkg, facts)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, tp.importPath, err)
		}
		diags = append(diags, ds...)
	}
	files := allFiles

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

// importerFunc adapts a function to types.Importer, letting the harness
// serve already-checked fixture packages before falling back to the
// source importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
