// Lockorder is the inter-procedural generalization of locksafe: instead
// of policing call shapes inside one function's lock region, it builds a
// whole-program lock-acquisition graph and reports
//
//   - lock-order cycles: somewhere lock A is held while B is acquired and
//     somewhere else B is held while A is acquired — two goroutines on
//     those paths deadlock;
//   - re-acquisition of a held mutex (sync.Mutex does not recurse);
//   - blocking while holding a lock: a channel send/receive, select,
//     sync.WaitGroup/Cond.Wait or time.Sleep under any lock, and network
//     or file I/O under a lock owned by internal/storage or
//     internal/server (the engine's shared-state layers, where one stalled
//     syscall would stall every other request; protocol code like the
//     client's lockstep v1 path serializes I/O under its own lock by
//     design and is deliberately out of scope).
//
// Effects propagate across function and package boundaries: each function
// exports a fact listing the lock classes it (transitively) acquires and
// the ways it can block, and each package exports its slice of the
// acquisition graph. Interface method calls resolve through the CHA call
// graph, so "storage calls an iterator callback that locks the catalog"
// is visible even though no direct call exists. A lock class is the
// declaring field or variable ("repro/internal/storage.Table.mu"), not an
// instance: two different Tables share a class, which is exactly the
// granularity a static order needs. Same-class self-edges are only
// reported when one function re-locks the same expression — two-instance
// locking of one class has no static order to check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "build the whole-program lock-acquisition graph and report lock-order " +
		"cycles, re-locked mutexes, and blocking operations (channel, Wait, " +
		"storage/server-owned I/O) performed while a lock is held",
	Match: func(string) bool { return true },
	Run:   runLockorder,
}

// lockBlock is one way a function can block, classified for the held-lock
// rules: "chan" and "wait" are reportable under any lock, "io" only under
// storage/server-owned locks.
type lockBlock struct {
	Kind string `json:"kind"`
	Desc string `json:"desc"`
}

// lockOrderFact is the exported per-function effect summary.
type lockOrderFact struct {
	Acquires []string    `json:"acquires,omitempty"`
	Blocks   []lockBlock `json:"blocks,omitempty"`
}

// lockEdge records "From was held while To was acquired" with the source
// position (rendered, so it survives serialization) that observed it.
type lockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	At   string `json:"at"`
}

// lockGraphFact is the per-package slice of the acquisition graph,
// exported under the "graph:<pkgpath>" key.
type lockGraphFact struct {
	Edges []lockEdge `json:"edges,omitempty"`
}

type lockOrderState struct {
	pass     *Pass
	cg       *CallGraph
	decls    map[*types.Func]*ast.FuncDecl
	sums     map[*types.Func]*lockOrderFact
	visiting map[*types.Func]bool
	edges    []lockEdge
	edgePos  map[string]token.Pos // "from\x00to" -> first observing position
	reported map[token.Pos]bool   // blocking-under-lock positions already diagnosed
}

func runLockorder(pass *Pass) error {
	lo := &lockOrderState{
		pass:     pass,
		cg:       NewCallGraph(&Package{Fset: pass.Fset, Files: pass.Files, Types: pass.Pkg, Info: pass.Info}),
		decls:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]*lockOrderFact{},
		visiting: map[*types.Func]bool{},
		edgePos:  map[string]token.Pos{},
		reported: map[token.Pos]bool{},
	}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				lo.decls[fn] = fd
				order = append(order, fn)
			}
		}
	}
	for _, fn := range order {
		lo.summarize(fn)
	}

	// Export the per-function effect facts and this package's graph slice.
	for _, fn := range order {
		sum := lo.sums[fn]
		if sum != nil && (len(sum.Acquires) > 0 || len(sum.Blocks) > 0) {
			pass.Export(ObjectKey(fn), sum)
		}
	}
	if len(lo.edges) > 0 {
		pass.Export("graph:"+basePkgPath(pass.Pkg.Path()), &lockGraphFact{Edges: lo.edges})
	}

	lo.reportCycles()
	return nil
}

// reportCycles checks every locally observed edge against the accumulated
// whole-program graph (imported package slices plus local edges): if the
// target already reaches the source, this acquisition closes a cycle.
func (lo *lockOrderState) reportCycles() {
	adj := map[string][]lockEdge{}
	add := func(es []lockEdge) {
		for _, e := range es {
			adj[e.From] = append(adj[e.From], e)
		}
	}
	for _, key := range lo.pass.Facts.Keys(lo.pass.Analyzer.Name) {
		if !strings.HasPrefix(key, "graph:") || key == "graph:"+basePkgPath(lo.pass.Pkg.Path()) {
			continue
		}
		var g lockGraphFact
		if lo.pass.Import(key, &g) {
			add(g.Edges)
		}
	}
	add(lo.edges)

	for _, e := range lo.edges {
		path := lockPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		pos, ok := lo.edgePos[e.From+"\x00"+e.To]
		if !ok {
			continue
		}
		var hops []string
		for _, pe := range path {
			hops = append(hops, fmt.Sprintf("%s -> %s (%s)", pe.From, pe.To, pe.At))
		}
		lo.pass.Reportf(pos, "acquiring %s while holding %s closes a lock-order cycle: %s",
			e.To, e.From, strings.Join(hops, ", "))
	}
}

// lockPath finds a path from -> to in the edge graph, returning its edges.
func lockPath(adj map[string][]lockEdge, from, to string) []lockEdge {
	type node struct {
		name string
		via  []lockEdge
	}
	seen := map[string]bool{from: true}
	queue := []node{{name: from}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range adj[n.name] {
			if seen[e.To] {
				continue
			}
			path := append(append([]lockEdge{}, n.via...), e)
			if e.To == to {
				return path
			}
			seen[e.To] = true
			queue = append(queue, node{name: e.To, via: path})
		}
	}
	return nil
}

// summarize computes (once) the effect summary of a function declared in
// this package, walking its body and emitting diagnostics along the way.
// Recursion cycles are cut with an empty partial summary.
func (lo *lockOrderState) summarize(fn *types.Func) *lockOrderFact {
	if s, ok := lo.sums[fn]; ok {
		return s
	}
	decl := lo.decls[fn]
	if decl == nil || lo.visiting[fn] {
		return &lockOrderFact{}
	}
	lo.visiting[fn] = true
	w := &lockWalker{lo: lo, sum: &lockOrderFact{}}
	w.walkStmts(decl.Body.List, nil)
	lo.visiting[fn] = false
	sort.Strings(w.sum.Acquires)
	lo.sums[fn] = w.sum
	return w.sum
}

// heldEntry is one lock on the walker's held stack.
type heldEntry struct {
	class string // declaring-site class, "" when unclassifiable
	owner string // declaring package path, "" when unclassifiable
	expr  string // receiver expression text, for release matching
	pos   token.Pos
}

type lockWalker struct {
	lo   *lockOrderState
	sum  *lockOrderFact
	held []heldEntry
}

func (w *lockWalker) fork() []heldEntry {
	return append([]heldEntry{}, w.held...)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldEntry) {
	if held != nil {
		w.held = held
	}
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	info := w.lo.pass.Info
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X)
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
		w.block(lockBlock{Kind: "chan", Desc: "channel send"}, s.Arrow)
	case *ast.DeferStmt:
		// A deferred unlock keeps the region open to function end, which
		// the walker models by simply never popping the entry. Other
		// deferred work runs after every unlock in this frame.
		if op, ok := mutexOp(info, s.Call); ok && op.release {
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, inner := range collectCalls(lit.Body) {
				if op, ok := mutexOp(info, inner); ok && op.release {
					return
				}
			}
			w.walkLitFresh(lit)
			return
		}
		saved := w.held
		w.held = nil
		w.scanExpr(s.Call)
		w.held = saved
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		saved := w.fork()
		w.walkStmts(s.Body.List, w.fork())
		if s.Else != nil {
			w.held = w.fork()
			w.walkStmt(s.Else)
		}
		w.held = saved
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		saved := w.fork()
		w.walkStmts(s.Body.List, w.fork())
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.held = saved
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		if tv, ok := info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.block(lockBlock{Kind: "chan", Desc: "range over channel"}, s.For)
			}
		}
		saved := w.fork()
		w.walkStmts(s.Body.List, w.fork())
		w.held = saved
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		saved := w.fork()
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e)
				}
				w.walkStmts(cc.Body, w.fork())
			}
		}
		w.held = saved
	case *ast.TypeSwitchStmt:
		saved := w.fork()
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, w.fork())
			}
		}
		w.held = saved
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(lockBlock{Kind: "chan", Desc: "select"}, s.Select)
		}
		saved := w.fork()
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm operations themselves are subsumed by the select
			// classification; walk only the case bodies.
			w.walkStmts(cc.Body, w.fork())
		}
		w.held = saved
	case *ast.BlockStmt:
		saved := w.fork()
		w.walkStmts(s.List, w.fork())
		w.held = saved
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		// The goroutine body runs on its own stack with nothing held, but
		// its lock operations still belong in the acquisition graph.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkLitFresh(lit)
		}
		for _, arg := range s.Call.Args {
			w.scanExpr(arg)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
	}
}

// walkLitFresh analyzes a function literal that runs outside the current
// lock region (goroutine bodies, escaping closures): nothing is held on
// entry, its effects don't join the enclosing summary, but its edges and
// diagnostics are real.
func (w *lockWalker) walkLitFresh(lit *ast.FuncLit) {
	inner := &lockWalker{lo: w.lo, sum: &lockOrderFact{}}
	inner.walkStmts(lit.Body.List, nil)
}

// scanExpr visits an expression, classifying mutex operations, blocking
// operations and calls. Function literals called in place run under the
// current held set; all others are walked fresh.
func (w *lockWalker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkLitFresh(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block(lockBlock{Kind: "chan", Desc: "channel receive"}, n.OpPos)
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, arg := range n.Args {
					w.scanExpr(arg)
				}
				saved := w.fork()
				w.walkStmts(lit.Body.List, w.fork())
				w.held = saved
				return false
			}
			w.call(n)
		}
		return true
	})
}

// call handles one call expression: a mutex transition, a blocking stdlib
// call, or an effectful callee whose summary (local or imported fact)
// joins the current context.
func (w *lockWalker) call(call *ast.CallExpr) {
	info := w.lo.pass.Info
	if op, ok := mutexOp(info, call); ok {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		class, owner := lockClass(info, sel)
		if op.acquire {
			w.acquire(class, owner, exprString(sel.X), call.Pos())
		} else {
			w.release(class, exprString(sel.X))
		}
		return
	}

	fns, _ := w.lo.cg.Callees(call)
	for _, fn := range fns {
		if b, ok := blockingCall(fn); ok {
			w.block(b, call.Pos())
			continue
		}
		sum := w.calleeSummary(fn)
		if sum == nil {
			continue
		}
		for _, acq := range sum.Acquires {
			w.acquireViaCallee(acq, call.Pos(), fn)
		}
		for _, b := range sum.Blocks {
			w.block(lockBlock{Kind: b.Kind, Desc: b.Desc + " (via " + fn.Name() + ")"}, call.Pos())
		}
	}
}

// calleeSummary resolves a callee's effect summary: same-package functions
// summarize on demand, imported ones come from facts, everything else
// (unanalyzed stdlib) is effect-free.
func (w *lockWalker) calleeSummary(fn *types.Func) *lockOrderFact {
	if fn.Pkg() == w.lo.pass.Pkg {
		return w.lo.summarize(fn)
	}
	var f lockOrderFact
	if w.lo.pass.Import(ObjectKey(fn), &f) {
		return &f
	}
	return nil
}

// acquire pushes a lock and records order edges against everything held.
func (w *lockWalker) acquire(class, owner, expr string, pos token.Pos) {
	for _, h := range w.held {
		if h.class == "" || class == "" {
			continue
		}
		if h.class == class {
			if h.expr == expr {
				w.lo.pass.Reportf(pos, "%s is locked while already held (acquired at %s); sync mutexes do not recurse",
					expr, w.lo.pass.Fset.Position(h.pos))
			}
			continue
		}
		w.edge(h.class, class, pos)
	}
	if class != "" {
		w.sum.Acquires = appendUnique(w.sum.Acquires, class)
	}
	w.held = append(w.held, heldEntry{class: class, owner: owner, expr: expr, pos: pos})
}

// acquireViaCallee records edges for a lock class a callee acquires while
// the caller holds locks. Same-class edges are skipped: across a call
// boundary the instances are usually distinct and carry no static order.
func (w *lockWalker) acquireViaCallee(class string, pos token.Pos, fn *types.Func) {
	for _, h := range w.held {
		if h.class == "" || class == "" || h.class == class {
			continue
		}
		w.edge(h.class, class, pos)
	}
	w.sum.Acquires = appendUnique(w.sum.Acquires, class)
}

func (w *lockWalker) release(class, expr string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].expr == expr || (class != "" && w.held[i].class == class) {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// edge records a lock-order edge the first time it is observed.
func (w *lockWalker) edge(from, to string, pos token.Pos) {
	key := from + "\x00" + to
	if _, ok := w.lo.edgePos[key]; ok {
		return
	}
	w.lo.edgePos[key] = pos
	w.lo.edges = append(w.lo.edges, lockEdge{From: from, To: to, At: w.lo.pass.Fset.Position(pos).String()})
}

// block records a blocking operation in the summary and reports it when a
// lock is held: chan/wait operations under any lock, I/O only under
// storage/server-owned locks.
func (w *lockWalker) block(b lockBlock, pos token.Pos) {
	seen := false
	for _, have := range w.sum.Blocks {
		if have == b {
			seen = true
			break
		}
	}
	if !seen {
		w.sum.Blocks = append(w.sum.Blocks, b)
	}
	if w.lo.reported[pos] {
		return
	}
	for _, h := range w.held {
		if h.class == "" {
			continue
		}
		if b.Kind == "io" && !ioSensitiveOwner(h.owner) {
			continue
		}
		w.lo.reported[pos] = true
		w.lo.pass.Reportf(pos, "%s while holding %s (acquired at %s); a blocked holder stalls every user of the lock",
			b.Desc, h.class, w.lo.pass.Fset.Position(h.pos))
		return
	}
}

// ioSensitiveOwner reports whether a lock's declaring package is one whose
// locks must never be held across I/O.
func ioSensitiveOwner(owner string) bool {
	return hasPathSuffix(owner, "internal/storage") || hasPathSuffix(owner, "internal/server")
}

// lockClass names the lock behind a mu.Lock() selector by its declaring
// site: "pkg.Type.field" for mutex fields (including embedded mutexes),
// "pkg.var" for package-level mutexes, "" for locals and unresolvable
// shapes. owner is the declaring package path.
func lockClass(info *types.Info, callSel *ast.SelectorExpr) (class, owner string) {
	classify := func(obj types.Object, recv types.Type) (string, string) {
		if obj == nil || obj.Pkg() == nil {
			return "", ""
		}
		if v, ok := obj.(*types.Var); ok {
			if v.IsField() {
				if n := namedType(recv); n != nil {
					return FieldKey(n, v), basePkgPath(obj.Pkg().Path())
				}
				return "", ""
			}
			if v.Parent() == v.Pkg().Scope() {
				return ObjectKey(v), basePkgPath(obj.Pkg().Path())
			}
		}
		return "", ""
	}

	if sel, ok := info.Selections[callSel]; ok && len(sel.Index()) > 1 {
		// Embedded mutex: t.Lock() — the lock is the embedded field.
		if st, ok := sel.Recv().Underlying().(*types.Struct); ok {
			return classify(st.Field(sel.Index()[0]), sel.Recv())
		}
	}
	switch x := ast.Unparen(callSel.X).(type) {
	case *ast.SelectorExpr: // t.mu.Lock()
		if s, ok := info.Selections[x]; ok {
			return classify(s.Obj(), s.Recv())
		}
		return classify(info.Uses[x.Sel], nil)
	case *ast.Ident: // mu.Lock() on a package-level or local mutex
		return classify(info.Uses[x], nil)
	}
	return "", ""
}

// blockingCall classifies stdlib calls that can block: synchronization
// waits, sleeps, and the network/file I/O entry points the engine uses.
func blockingCall(fn *types.Func) (lockBlock, bool) {
	if fn == nil || fn.Pkg() == nil {
		return lockBlock{}, false
	}
	name := fn.Name()
	var recvName string
	if recv := fn.Signature().Recv(); recv != nil {
		if n := namedType(recv.Type()); n != nil {
			recvName = n.Obj().Name()
		}
	}
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" && (recvName == "WaitGroup" || recvName == "Cond") {
			return lockBlock{Kind: "wait", Desc: "sync." + recvName + ".Wait"}, true
		}
	case "time":
		if recvName == "" && name == "Sleep" {
			return lockBlock{Kind: "wait", Desc: "time.Sleep"}, true
		}
	case "net":
		switch recvName {
		case "Conn", "TCPConn", "UDPConn", "UnixConn", "IPConn", "PacketConn",
			"Listener", "TCPListener", "UnixListener", "Dialer", "Resolver":
			return lockBlock{Kind: "io", Desc: "net." + recvName + "." + name}, true
		}
		if recvName == "" {
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return lockBlock{Kind: "io", Desc: "net." + name}, true
			}
		}
	case "os":
		if recvName == "File" {
			switch name {
			case "Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString",
				"Sync", "Close", "Seek", "Truncate":
				return lockBlock{Kind: "io", Desc: "os.File." + name}, true
			}
		}
		if recvName == "" {
			switch name {
			case "ReadFile", "WriteFile", "Open", "OpenFile", "Create", "Remove",
				"RemoveAll", "Rename", "Stat", "Mkdir", "MkdirAll":
				return lockBlock{Kind: "io", Desc: "os." + name}, true
			}
		}
	case "bufio":
		switch recvName {
		case "Reader", "Writer", "ReadWriter", "Scanner":
			switch name {
			case "Read", "ReadByte", "ReadBytes", "ReadString", "ReadSlice",
				"ReadRune", "ReadLine", "Peek", "Discard", "Write", "WriteByte",
				"WriteString", "WriteRune", "Flush", "ReadFrom", "WriteTo", "Scan":
				return lockBlock{Kind: "io", Desc: "bufio." + recvName + "." + name}, true
			}
		}
	}
	return lockBlock{}, false
}

// appendUnique appends s if absent.
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
