package lint

import (
	"go/ast"
)

// Valuecopy enforces the ComparePtr lesson from the PR 5 vectorization
// work: value.Value is a 64-byte struct (kind + int64 + float64 + string
// header + time.Time), and the by-value comparators Compare/Equal/Less
// copy two of them per call. On a cold path that is noise; inside a
// per-row loop or a per-row callback it is 128 bytes of stack traffic per
// comparison times millions of rows — measurable against the vectorized
// tier's zero-allocation budget. The pointer twins ComparePtr, EqualPtr
// and LessPtr exist precisely so hot paths can compare in place.
//
// The analyzer flags calls to value.Compare, value.Equal and value.Less
// that occur lexically inside a for/range body or inside a function
// literal, in the three hot-path packages (value, storage, algebra).
// Function literals count because that is what per-row code looks like
// here: sort comparators, B-tree search closures, forEachLiveLocked
// visitors, compiled expression evaluators — all invoked once per row or
// once per comparison. Straight-line uses in constructors and planners
// (bind-time constant folding, a one-off bound check) stay legal.
var Valuecopy = &Analyzer{
	Name: "valuecopy",
	Doc: "report by-value value.Value comparators (Compare/Equal/Less) in " +
		"per-row contexts; use ComparePtr/EqualPtr/LessPtr",
	Match: matchAny("internal/value", "internal/storage", "internal/algebra"),
	Run:   runValuecopy,
}

// ptrTwin names the in-place replacement for each by-value comparator.
var ptrTwin = map[string]string{
	"Compare": "ComparePtr",
	"Equal":   "EqualPtr",
	"Less":    "LessPtr",
}

func runValuecopy(pass *Pass) error {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), "internal/value") {
			return true
		}
		twin, hot := ptrTwin[fn.Name()]
		if !hot || fn.Signature().Recv() != nil {
			return true
		}
		// ComparePtr delegating to nothing / Compare delegating to
		// ComparePtr inside package value itself is the one blessed
		// wrapper layer.
		if pass.Pkg != nil && hasPathSuffix(pass.Pkg.Path(), "internal/value") {
			if _, name := enclosingFunc(stack); name == fn.Name() {
				return true
			}
		}
		if inPerRowContext(stack) {
			pass.Reportf(call.Pos(),
				"value.%s copies two 64-byte Values per call in a per-row context; use value.%s on addresses instead (PR 5 ComparePtr lesson)",
				fn.Name(), twin)
		}
		return true
	})
	return nil
}

// inPerRowContext reports whether the innermost relevant scope is a loop
// body or a function literal — the shapes that execute once per row, per
// key or per comparison in this codebase.
func inPerRowContext(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}
