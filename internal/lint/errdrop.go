// Errdrop reports error values that are discarded or clobbered before
// anything looks at them, in the packages where a silent error is data
// loss or a hidden protocol failure: the server, the client, the wire
// codec, storage, and the CLI binaries that own durability (a dropped
// Close error on a just-written snapshot is a lost write the process
// reports as success).
//
// Three rules:
//
//  1. a call whose final result is an error must not stand alone as a
//     bare statement when the callee is module-internal or is named
//     Close/Flush/Sync/Save/Shutdown — assign and check it, or
//     acknowledge the drop explicitly with `_ =`. Two documented
//     exemptions: callees whose every return ends in a literal nil error
//     (exported as an "always nil" fact from their defining package, the
//     returned-and-ignorable case), and Close on net.Conn/net.Listener
//     (connection teardown, where the error is noise by contract);
//  2. `defer f.Close()` on an *os.File opened for writing in the same
//     function (os.Create/os.OpenFile) — the deferred Close swallows the
//     flush error, which is exactly the fsync-style loss the WAL work
//     must not inherit;
//  3. an error variable reassigned from a second call before any
//     statement read the first value — the first failure is
//     unrecoverable.
//
// Unlike the rest of the suite this analyzer keeps _test.go findings:
// a test helper that swallows an error hides real failures from the
// tests that call it.
package lint

import (
	"go/ast"
	"go/types"
)

var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "report dropped or clobbered error values (bare error-returning " +
		"calls, deferred Close on written files, err reassigned before read)",
	Match: matchAny(
		"internal/server", "internal/server/client", "internal/server/wire",
		"internal/storage", "cmd/qqld", "cmd/qqlsh", "cmd/dqm", "cmd/benchrunner",
	),
	IncludeTests: true,
	Run:          runErrdrop,
}

// alwaysNilFact marks a function every return path of which ends the
// error result with a literal nil — callers may drop it freely.
type alwaysNilFact struct {
	AlwaysNil bool `json:"alwaysNil"`
}

func runErrdrop(pass *Pass) error {
	info := pass.Info

	// Export always-nil facts for this package's functions (computed
	// everywhere, reported only in Match scope — the driver handles that).
	localAlwaysNil := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !lastResultIsError(fn) {
				continue
			}
			if returnsAlwaysNilError(info, fd) {
				localAlwaysNil[fn] = true
				pass.Export(ObjectKey(fn), &alwaysNilFact{AlwaysNil: true})
			}
		}
	}

	droppable := func(fn *types.Func) bool {
		if fn == nil {
			return true // dynamic call: not this analyzer's business
		}
		if localAlwaysNil[fn] {
			return true
		}
		var fact alwaysNilFact
		if pass.Import(ObjectKey(fn), &fact) && fact.AlwaysNil {
			return true
		}
		// net.Conn/net.Listener Close: teardown errors are noise.
		if fn.Name() == "Close" {
			if recv := fn.Signature().Recv(); recv != nil {
				if isNamed(recv.Type(), "net", "Conn") || isNamed(recv.Type(), "net", "Listener") ||
					isNamed(recv.Type(), "net", "TCPConn") || isNamed(recv.Type(), "net", "TCPListener") {
					return true
				}
			}
		}
		return false
	}

	inModule := func(fn *types.Func) bool {
		return fn != nil && fn.Pkg() != nil && samePkgTree(fn.Pkg().Path(), pass.Pkg.Path())
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Rule 2 bookkeeping: local vars bound to written files.
			written := writtenFiles(info, fd.Body)

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, ok := ast.Unparen(n.X).(*ast.CallExpr)
					if !ok || isConversionOrBuiltin(info, call) {
						return true
					}
					fn := calleeFunc(info, call)
					if fn == nil || !lastResultIsError(fn) {
						return true
					}
					if !mustCheckCallee(fn, inModule(fn)) || droppable(fn) {
						return true
					}
					pass.Reportf(n.Pos(), "%s returns an error that is silently dropped: assign and check it, or acknowledge with `_ = ...`",
						funcName(info, call))
				case *ast.DeferStmt:
					sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Close" {
						return true
					}
					id, ok := ast.Unparen(sel.X).(*ast.Ident)
					if !ok {
						return true
					}
					if v, ok := info.Uses[id].(*types.Var); ok && written[v] {
						pass.Reportf(n.Pos(), "deferred Close on %s, a file opened for writing, discards the flush error: close explicitly and check it (write-path Close errors are data loss)", id.Name)
					}
				case *ast.BlockStmt:
					checkClobber(pass, n.List)
				}
				return true
			})
		}
	}
	return nil
}

// mustCheckCallee limits rule 1 to callees worth the noise: anything in
// this module, plus the canonical flush-like method names everywhere.
func mustCheckCallee(fn *types.Func, inModule bool) bool {
	if inModule {
		return true
	}
	switch fn.Name() {
	case "Close", "Flush", "Sync", "Save", "Shutdown":
		return true
	}
	return false
}

// samePkgTree reports whether two import paths share a module-ish root
// (first path element).
func samePkgTree(a, b string) bool {
	return firstElem(a) == firstElem(b)
}

func firstElem(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// lastResultIsError reports whether fn's final result is of type error.
func lastResultIsError(fn *types.Func) bool {
	res := fn.Signature().Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// returnsAlwaysNilError reports whether every return statement in fd ends
// with a literal nil error result. Naked returns and non-nil expressions
// disqualify; a body with no return statements (infinite loop) qualifies
// only vacuously and is treated as not-always-nil for safety.
func returnsAlwaysNilError(info *types.Info, fd *ast.FuncDecl) bool {
	sawReturn := false
	always := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			always = false // naked return through named results
			return true
		}
		last := ast.Unparen(ret.Results[len(ret.Results)-1])
		id, ok := last.(*ast.Ident)
		if !ok || id.Name != "nil" {
			always = false
		}
		return true
	})
	return sawReturn && always
}

// writtenFiles finds local variables assigned from os.Create or
// os.OpenFile — handles opened for writing.
func writtenFiles(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if fn.Name() != "Create" && fn.Name() != "OpenFile" {
			return true
		}
		if len(as.Lhs) == 0 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				out[v] = true
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// checkClobber implements rule 3 over one statement list: an error
// variable assigned from a call and reassigned from another call before
// any intervening statement reads it. Control flow is handled
// conservatively — any branching statement, closure or address-taking
// marks everything read.
func checkClobber(pass *Pass, stmts []ast.Stmt) {
	info := pass.Info
	type pending struct {
		assignedAt ast.Node
	}
	unread := map[*types.Var]pending{}

	markReads := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					delete(unread, v)
				}
			}
			return true
		})
	}

	for _, s := range stmts {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			// Anything but a simple assignment: account its reads, then
			// drop tracking across control flow.
			markReads(s)
			if branches(s) {
				unread = map[*types.Var]pending{}
			}
			continue
		}
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			markReads(as)
			continue
		}
		markReads(as.Rhs[0]) // arguments may read pending errors

		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				v, ok = info.Uses[id].(*types.Var)
			}
			if !ok || !isErrorVar(v) {
				continue
			}
			if p, clobbered := unread[v]; clobbered {
				pass.Reportf(id.Pos(), "%s is reassigned before the error from %s was checked: the first failure is lost",
					id.Name, pass.Fset.Position(p.assignedAt.Pos()))
			}
			unread[v] = pending{assignedAt: as}
		}
	}
}

// branches reports whether a statement introduces control flow that the
// clobber tracker cannot follow.
func branches(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.DeferStmt, *ast.GoStmt,
		*ast.LabeledStmt, *ast.BranchStmt, *ast.ReturnStmt, *ast.BlockStmt:
		return true
	}
	return false
}

// isErrorVar reports whether v has type error.
func isErrorVar(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
