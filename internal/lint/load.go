package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// FactsOnly marks a package loaded only because an analysis target
	// depends on it: analyzers run over it to export facts, but its
	// diagnostics are suppressed (the package was not asked about).
	FactsOnly bool

	// TestVariant marks the "p [p.test]" recompilation of a package that
	// includes its _test.go files, or an external "p_test" test package.
	// The driver runs only IncludeTests analyzers over variants and keeps
	// only their _test.go-positioned diagnostics — the plain compilation
	// of the package already covered everything else.
	TestVariant bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	ForTest    string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns through the go tool and type-checks every
// matched package against the build cache's export data. Running `go
// list -export` compiles anything stale as a side effect, so the loader
// never type-checks a dependency from source — each target package costs
// one parse plus one check against binary export data, which keeps a
// whole-repo qqlvet run under a second once the build cache is warm.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pc := p
			targets = append(targets, &pc)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadProgram resolves patterns through the go tool into a whole analysis
// program: every matched package, its test variants, and every in-module
// dependency, returned in dependency order (imports before importers) so a
// fact-driven suite can analyze them front to back with facts flowing
// across package boundaries.
//
// Three kinds of packages come back:
//
//   - matched packages ("./..." roots): fully analyzed, diagnostics
//     reported;
//   - their test variants ("p [p.test]" including _test.go files, and
//     external "p_test" packages): analyzed by IncludeTests analyzers;
//   - in-module dependencies of the matched set: loaded FactsOnly, so
//     analyzing a leaf package still sees the facts of everything below
//     it. Out-of-module dependencies (the standard library) contribute
//     export data for type checking but are never analyzed — analyzers
//     hard-code what they need to know about stdlib behavior.
func LoadProgram(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-test", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,ForTest,Module,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pc := p
		listed = append(listed, &pc)
	}

	fset := token.NewFileSet()
	// Plain packages share one export-data importer (the gc importer
	// caches parsed export files, so the stdlib is read once). Each test
	// program gets its own importer whose lookup prefers the program's
	// recompiled "p [x.test]" variants — the equivalent of cmd/go's
	// ImportMap — because an external test package must see the variant's
	// extra exported test hooks.
	plainLookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	plainImp := importer.ForCompiler(fset, "gc", plainLookup)
	testImps := map[string]types.Importer{}
	impFor := func(importPath string) types.Importer {
		i := strings.IndexByte(importPath, ' ')
		if i < 0 {
			return plainImp
		}
		suffix := importPath[i:] // " [x.test]"
		if imp, ok := testImps[suffix]; ok {
			return imp
		}
		imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if f, ok := exports[path+suffix]; ok {
				return os.Open(f)
			}
			return plainLookup(path)
		})
		testImps[suffix] = imp
		return imp
	}

	var pkgs []*Package
	for _, t := range listed {
		if len(t.GoFiles) == 0 || strings.HasSuffix(t.ImportPath, ".test") {
			continue // generated test mains and file-less packages
		}
		inModule := t.Module != nil
		variant := strings.IndexByte(t.ImportPath, ' ') >= 0
		switch {
		case !t.DepOnly && !variant:
			// A matched package: full analysis.
		case !t.DepOnly && variant:
			// A matched package's test recompilation.
		case t.DepOnly && inModule && !variant:
			// An in-module dependency: facts only.
		default:
			continue // stdlib/dep variants: export data only
		}
		pkg, err := checkFiles(fset, impFor(t.ImportPath), basePkgPath(t.ImportPath), t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = t.DepOnly
		pkg.TestVariant = variant
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// RunProgram applies an analyzer suite to a dependency-ordered program and
// returns every diagnostic plus the accumulated fact store. Each analyzer
// visits each package once, facts-only when the package is a dependency or
// outside the analyzer's Match scope; test variants are visited only by
// IncludeTests analyzers and contribute only _test.go diagnostics (their
// non-test files were already analyzed in the plain compilation).
func RunProgram(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *Facts, error) {
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if pkg.TestVariant && !a.IncludeTests {
				continue
			}
			report := !pkg.FactsOnly && (a.Match == nil || a.Match(pkg.Path))
			ds, err := runPass(a, pkg, facts, report)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", pkg.Path, err)
			}
			for _, d := range ds {
				if pkg.TestVariant {
					if f := pkg.Fset.File(d.Pos); f == nil || !strings.HasSuffix(f.Name(), "_test.go") {
						continue
					}
				}
				diags = append(diags, d)
			}
		}
	}
	return diags, facts, nil
}

// checkFiles parses and type-checks one package's files with the given
// importer.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, fn)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
