package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns through the go tool and type-checks every
// matched package against the build cache's export data. Running `go
// list -export` compiles anything stale as a side effect, so the loader
// never type-checks a dependency from source — each target package costs
// one parse plus one check against binary export data, which keeps a
// whole-repo qqlvet run under a second once the build cache is warm.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pc := p
			targets = append(targets, &pc)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkFiles parses and type-checks one package's files with the given
// importer.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, fn)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
