package relation

import (
	"strings"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew("t", []schema.Attr{
		{Name: "name", Kind: value.KindString, Required: true},
		{Name: "n", Kind: value.KindInt,
			Indicators: []tag.Indicator{{Name: "source", Kind: value.KindString}}},
	})
}

func taggedTuple(name string, n int64, src string) Tuple {
	return Tuple{Cells: []Cell{
		{V: value.Str(name)},
		{V: value.Int(n), Tags: tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str(src)}),
			Sources: tag.NewSources(src)},
	}}
}

func TestCellBasics(t *testing.T) {
	c := NewCell(value.Int(7))
	if !c.Tags.IsEmpty() || len(c.Sources) != 0 {
		t.Error("NewCell should be bare")
	}
	c2 := c.WithTag("source", value.Str("x"))
	if c.Tags.Has("source") {
		t.Error("WithTag mutated receiver")
	}
	if v, _ := c2.Tags.Get("source"); v.AsString() != "x" {
		t.Error("WithTag broken")
	}
	tc := TaggedCell(value.Int(1), tag.NewSet(tag.Tag{Indicator: "a", Value: value.Int(2)}), tag.NewSources("s"))
	if !tc.Tags.Has("a") || !tc.Sources.Contains("s") {
		t.Error("TaggedCell broken")
	}
	if !c.Equal(NewCell(value.Int(7))) || c.Equal(c2) {
		t.Error("Cell.Equal broken")
	}
	out := tc.String()
	if !strings.Contains(out, "{a=2}") || !strings.Contains(out, "<s>") {
		t.Errorf("Cell.String = %q", out)
	}
}

func TestTupleBasics(t *testing.T) {
	tup := NewTuple(value.Str("a"), value.Int(1))
	vals := tup.Values()
	if len(vals) != 2 || vals[0].AsString() != "a" {
		t.Errorf("Values = %v", vals)
	}
	c := tup.Clone()
	c.Cells[0] = Cell{V: value.Str("b")}
	if tup.Cells[0].V.AsString() != "a" {
		t.Error("Clone aliases cells")
	}
	if !tup.Equal(NewTuple(value.Str("a"), value.Int(1))) {
		t.Error("Equal broken for equal tuples")
	}
	if tup.Equal(NewTuple(value.Str("a"))) {
		t.Error("Equal should fail on arity mismatch")
	}
	if got := tup.String(); got != "(a, 1)" {
		t.Errorf("Tuple.String = %q", got)
	}
}

func TestAppendValidation(t *testing.T) {
	rel := New(testSchema())
	if err := rel.Append(taggedTuple("x", 1, "s")); err != nil {
		t.Fatal(err)
	}
	// Missing required indicator.
	if err := rel.Append(NewTuple(value.Str("y"), value.Int(2))); err == nil {
		t.Error("strict append should reject untagged cell")
	}
	if err := rel.AppendLenient(NewTuple(value.Str("y"), value.Int(2))); err != nil {
		t.Errorf("lenient append failed: %v", err)
	}
	// Null in required attribute.
	if err := rel.Append(Tuple{Cells: []Cell{{V: value.Null}, taggedTuple("z", 3, "s").Cells[1]}}); err == nil {
		t.Error("null in required attribute should fail")
	}
	// Arity and kind errors even in lenient mode.
	if err := rel.AppendLenient(NewTuple(value.Str("y"))); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := rel.AppendLenient(NewTuple(value.Int(1), value.Int(2))); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Wrong indicator kind.
	bad := Tuple{Cells: []Cell{
		{V: value.Str("w")},
		{V: value.Int(1), Tags: tag.NewSet(tag.Tag{Indicator: "source", Value: value.Int(3)})},
	}}
	if err := rel.Append(bad); err == nil {
		t.Error("indicator kind mismatch should fail in strict mode")
	}
	if rel.Len() != 2 {
		t.Errorf("Len = %d", rel.Len())
	}
}

func TestMustAppendPanics(t *testing.T) {
	rel := New(testSchema())
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on invalid tuple")
		}
	}()
	rel.MustAppend(NewTuple(value.Str("a")))
}

func TestProject(t *testing.T) {
	rel := New(testSchema())
	rel.MustAppend(taggedTuple("a", 1, "s1"))
	rel.MustAppend(taggedTuple("b", 2, "s2"))
	rel.TableTags = tag.NewSet(tag.Tag{Indicator: "population_method", Value: value.Str("batch")})

	p, err := rel.Project("n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || len(p.Schema.Attrs) != 1 {
		t.Fatalf("projection shape wrong")
	}
	// Tags, sources, and table tags survive.
	if v, _ := p.Tuples[0].Cells[0].Tags.Get("source"); v.AsString() != "s1" {
		t.Error("projection dropped cell tags")
	}
	if !p.Tuples[1].Cells[0].Sources.Contains("s2") {
		t.Error("projection dropped sources")
	}
	if !p.TableTags.Has("population_method") {
		t.Error("projection dropped table tags")
	}
	if _, err := rel.Project("ghost"); err == nil {
		t.Error("projecting unknown attribute should fail")
	}
}

func TestFormatTable1VsTable2(t *testing.T) {
	rel := New(testSchema())
	rel.MustAppend(taggedTuple("Fruit Co", 4004, "Nexis"))

	plain := Format(rel, false)
	if strings.Contains(plain, "Nexis") {
		t.Errorf("untagged format should hide tags:\n%s", plain)
	}
	if !strings.Contains(plain, "Fruit Co") || !strings.Contains(plain, "4004") {
		t.Errorf("plain format missing values:\n%s", plain)
	}
	tagged := Format(rel, true)
	if !strings.Contains(tagged, "(Nexis)") {
		t.Errorf("tagged format should show tag line:\n%s", tagged)
	}
	// Header separator present.
	if !strings.Contains(tagged, "---") {
		t.Error("format should include header rule")
	}
}

func TestCheckTupleTimeIndicator(t *testing.T) {
	s := schema.MustNew("t", []schema.Attr{
		{Name: "v", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "creation_time", Kind: value.KindTime}}},
	})
	good := Tuple{Cells: []Cell{{V: value.Str("x"),
		Tags: tag.NewSet(tag.Tag{Indicator: "creation_time", Value: value.Time(time.Now())})}}}
	if err := CheckTuple(s, good, true); err != nil {
		t.Errorf("good tuple rejected: %v", err)
	}
	bad := Tuple{Cells: []Cell{{V: value.Str("x"),
		Tags: tag.NewSet(tag.Tag{Indicator: "creation_time", Value: value.Str("yesterday")})}}}
	if err := CheckTuple(s, bad, true); err == nil {
		t.Error("string creation_time should be rejected")
	}
}
