// Package relation implements the attribute-based data model from the
// paper's reference [28]: relations whose cells each carry (a) an
// application value, (b) a set of quality indicator tags describing the data
// manufacturing process that produced the value, and (c) a polygen source
// set recording provenance. Table 2 of the paper is one such relation.
//
// A Relation here is a plain in-memory container used by the algebra and
// by fixtures; the indexed, concurrent table lives in internal/storage.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// Cell is one tagged data cell: the unit of quality tagging in the
// attribute-based model.
type Cell struct {
	// V is the application value.
	V value.Value
	// Tags carries the quality indicator values for this cell, e.g.
	// {creation_time=1991-10-03, source=Nexis}.
	Tags tag.Set
	// Sources is the polygen source set this value derives from.
	Sources tag.Sources
	// Meta carries meta-quality: indicator values about indicator values
	// (Premise 1.4 — "what is the quality of the quality indicator
	// values?"). Keyed by the indicator the meta tags describe; nil when
	// no meta-quality is recorded. Treated as immutable: use WithMetaTag.
	Meta map[string]tag.Set
}

// MetaFor returns the meta-quality tags recorded for an indicator.
func (c Cell) MetaFor(indicator string) tag.Set {
	return c.Meta[indicator]
}

// WithMetaTag returns a copy of the cell with one meta-quality tag set on
// the named indicator (e.g. the credibility of the source tag itself).
func (c Cell) WithMetaTag(indicator, metaIndicator string, v value.Value) Cell {
	meta := make(map[string]tag.Set, len(c.Meta)+1)
	for k, s := range c.Meta {
		meta[k] = s
	}
	meta[indicator] = meta[indicator].With(metaIndicator, v)
	c.Meta = meta
	return c
}

// NewCell builds an untagged cell.
func NewCell(v value.Value) Cell { return Cell{V: v} }

// TaggedCell builds a cell with tags and sources.
func TaggedCell(v value.Value, tags tag.Set, sources tag.Sources) Cell {
	return Cell{V: v, Tags: tags, Sources: sources}
}

// WithTag returns a copy of the cell with one indicator set.
func (c Cell) WithTag(indicator string, v value.Value) Cell {
	c.Tags = c.Tags.With(indicator, v)
	return c
}

// Equal reports deep equality of value, tags, sources, and meta-quality.
func (c Cell) Equal(o Cell) bool {
	if !value.Equal(c.V, o.V) || !c.Tags.Equal(o.Tags) || !c.Sources.Equal(o.Sources) {
		return false
	}
	if len(c.Meta) != len(o.Meta) {
		return false
	}
	for k, s := range c.Meta {
		if !s.Equal(o.Meta[k]) {
			return false
		}
	}
	return true
}

// String renders "value {tags} <sources>", omitting empty tag/source parts.
func (c Cell) String() string {
	var b strings.Builder
	b.WriteString(c.V.String())
	if !c.Tags.IsEmpty() {
		b.WriteByte(' ')
		b.WriteString(c.Tags.String())
	}
	if len(c.Sources) > 0 {
		b.WriteByte(' ')
		b.WriteString(c.Sources.String())
	}
	if len(c.Meta) > 0 {
		keys := make([]string, 0, len(c.Meta))
		for k := range c.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(" meta(" + k + ")=" + c.Meta[k].String())
		}
	}
	return b.String()
}

// Tuple is a row of cells, positionally aligned with a schema's attributes.
type Tuple struct {
	Cells []Cell
}

// NewTuple builds a tuple of untagged cells from plain values.
func NewTuple(vals ...value.Value) Tuple {
	cells := make([]Cell, len(vals))
	for i, v := range vals {
		cells[i] = Cell{V: v}
	}
	return Tuple{Cells: cells}
}

// Clone returns a deep-enough copy: cells are value types, so a slice copy
// suffices (tag sets and source sets are treated as immutable).
func (t Tuple) Clone() Tuple {
	return Tuple{Cells: append([]Cell(nil), t.Cells...)}
}

// Values extracts the application values of the tuple.
func (t Tuple) Values() []value.Value {
	out := make([]value.Value, len(t.Cells))
	for i, c := range t.Cells {
		out[i] = c.V
	}
	return out
}

// Equal reports deep equality of all cells.
func (t Tuple) Equal(o Tuple) bool {
	if len(t.Cells) != len(o.Cells) {
		return false
	}
	for i := range t.Cells {
		if !t.Cells[i].Equal(o.Cells[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as "(c1, c2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t.Cells))
	for i, c := range t.Cells {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a schema plus an ordered bag of tuples, with optional
// table-level tags (the paper notes that tagging higher aggregations, such
// as the table level, can record e.g. how the table was populated, §1.2).
type Relation struct {
	Schema *schema.Schema
	Tuples []Tuple
	// TableTags holds table-level quality indicators (population method,
	// load time, completeness estimates).
	TableTags tag.Set
}

// New creates an empty relation over the schema.
func New(s *schema.Schema) *Relation {
	return &Relation{Schema: s}
}

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append validates the tuple against the schema (arity, kinds, required
// values and required indicators) and appends it.
func (r *Relation) Append(t Tuple) error {
	if err := CheckTuple(r.Schema, t, true); err != nil {
		return err
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// AppendLenient appends after checking only arity and kinds, skipping
// required-indicator enforcement. Used while data is still being tagged.
func (r *Relation) AppendLenient(t Tuple) error {
	if err := CheckTuple(r.Schema, t, false); err != nil {
		return err
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on error; for fixtures and tests.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// CheckTuple validates a tuple against a schema. With strict true it also
// enforces Required attributes and required indicator tags.
func CheckTuple(s *schema.Schema, t Tuple, strict bool) error {
	if len(t.Cells) != len(s.Attrs) {
		return fmt.Errorf("relation %s: tuple arity %d, want %d", s.Name, len(t.Cells), len(s.Attrs))
	}
	for i, c := range t.Cells {
		a := s.Attrs[i]
		if !c.V.IsNull() && !value.CoercibleTo(c.V.Kind(), a.Kind) {
			return fmt.Errorf("relation %s: attribute %s: value kind %v not coercible to %v",
				s.Name, a.Name, c.V.Kind(), a.Kind)
		}
		if strict {
			if a.Required && c.V.IsNull() {
				return fmt.Errorf("relation %s: attribute %s: null in required attribute", s.Name, a.Name)
			}
			for _, ind := range a.Indicators {
				got, ok := c.Tags.Get(ind.Name)
				if !ok {
					return fmt.Errorf("relation %s: attribute %s: missing required indicator %q",
						s.Name, a.Name, ind.Name)
				}
				if !got.IsNull() && !value.CoercibleTo(got.Kind(), ind.Kind) {
					return fmt.Errorf("relation %s: attribute %s: indicator %s kind %v, want %v",
						s.Name, a.Name, ind.Name, got.Kind(), ind.Kind)
				}
			}
		}
	}
	return nil
}

// Project returns a new relation containing only the named attributes, with
// each cell's tags and sources preserved (the attribute-based model carries
// tags through projection unchanged).
func (r *Relation) Project(names ...string) (*Relation, error) {
	idx := make([]int, len(names))
	attrs := make([]schema.Attr, len(names))
	for i, n := range names {
		j := r.Schema.ColIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", r.Schema.Name, n)
		}
		idx[i] = j
		attrs[i] = r.Schema.Attrs[j]
	}
	s, err := schema.New(r.Schema.Name, attrs)
	if err != nil {
		return nil, err
	}
	out := New(s)
	out.TableTags = r.TableTags
	for _, t := range r.Tuples {
		cells := make([]Cell, len(idx))
		for i, j := range idx {
			cells[i] = t.Cells[j]
		}
		out.Tuples = append(out.Tuples, Tuple{Cells: cells})
	}
	return out, nil
}

// String renders the relation as an aligned text table including tags,
// mirroring Table 2 of the paper.
func (r *Relation) String() string {
	return Format(r, true)
}

// Format renders the relation as an aligned text table. When withTags is
// false only application values are printed (Table 1 style); when true each
// cell prints its tags beneath the value (Table 2 style).
func Format(r *Relation, withTags bool) string {
	cols := len(r.Schema.Attrs)
	// Each tuple occupies one or two text rows: values, then tags.
	header := make([]string, cols)
	for i, a := range r.Schema.Attrs {
		header[i] = a.Name
	}
	rows := [][]string{header}
	for _, t := range r.Tuples {
		vr := make([]string, cols)
		tr := make([]string, cols)
		hasTags := false
		for i, c := range t.Cells {
			vr[i] = c.V.String()
			if withTags && !c.Tags.IsEmpty() {
				parts := make([]string, 0, c.Tags.Len())
				for _, tg := range c.Tags.Tags() {
					parts = append(parts, tg.Value.String())
				}
				tr[i] = "(" + strings.Join(parts, ", ") + ")"
				hasTags = true
			}
		}
		rows = append(rows, vr)
		if hasTags {
			rows = append(rows, tr)
		}
	}
	widths := make([]int, cols)
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for i, w := range widths {
				total += w
				if i > 0 {
					total += 2
				}
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
