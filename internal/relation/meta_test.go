package relation

import (
	"strings"
	"testing"

	"repro/internal/tag"
	"repro/internal/value"
)

func TestCellMetaQuality(t *testing.T) {
	c := NewCell(value.Int(4004)).
		WithTag("source", value.Str("Nexis")).
		WithMetaTag("source", "credibility", value.Str("high"))
	if v, ok := c.MetaFor("source").Get("credibility"); !ok || v.AsString() != "high" {
		t.Fatalf("meta = %v, %v", v, ok)
	}
	if !c.MetaFor("nothing").IsEmpty() {
		t.Error("meta of untagged indicator should be empty")
	}
	// Immutability: adding meta to a copy leaves the original alone.
	c2 := c.WithMetaTag("source", "assessed_by", value.Str("admin"))
	if c.MetaFor("source").Has("assessed_by") {
		t.Error("WithMetaTag mutated the receiver")
	}
	if !c2.MetaFor("source").Has("credibility") {
		t.Error("WithMetaTag dropped existing meta")
	}
	// Equality includes meta.
	if c.Equal(c2) {
		t.Error("cells with different meta should not be Equal")
	}
	same := NewCell(value.Int(4004)).
		WithTag("source", value.Str("Nexis")).
		WithMetaTag("source", "credibility", value.Str("high"))
	if !c.Equal(same) {
		t.Error("identical meta should be Equal")
	}
	// String renders meta.
	if out := c.String(); !strings.Contains(out, "meta(source)={credibility=high}") {
		t.Errorf("String = %q", out)
	}
	_ = tag.EmptySet
}
