package schema

import (
	"strings"
	"testing"

	"repro/internal/tag"
	"repro/internal/value"
)

func validAttrs() []Attr {
	return []Attr{
		{Name: "id", Kind: value.KindInt, Required: true},
		{Name: "name", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "source", Kind: value.KindString}}},
	}
}

func TestNewAndValidate(t *testing.T) {
	s, err := New("t", validAttrs(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if s.ColIndex("name") != 1 || s.ColIndex("ghost") != -1 {
		t.Error("ColIndex broken")
	}
	a, ok := s.Attr("name")
	if !ok || a.Kind != value.KindString {
		t.Error("Attr broken")
	}
	if _, ok := s.Attr("ghost"); ok {
		t.Error("Attr should miss unknown names")
	}
	if got := s.KeyIndexes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("KeyIndexes = %v", got)
	}
	if got := s.AttrNames(); len(got) != 2 || got[0] != "id" {
		t.Errorf("AttrNames = %v", got)
	}
	if ind, ok := a.IndicatorNamed("source"); !ok || ind.Kind != value.KindString {
		t.Error("IndicatorNamed broken")
	}
	if _, ok := a.IndicatorNamed("ghost"); ok {
		t.Error("IndicatorNamed should miss")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Schema
	}{
		{"empty relation name", func() *Schema { return &Schema{Name: "", Attrs: validAttrs()} }},
		{"no attributes", func() *Schema { return &Schema{Name: "t"} }},
		{"empty attr name", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "", Kind: value.KindInt}}}
		}},
		{"bad attr chars", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "a b", Kind: value.KindInt}}}
		}},
		{"duplicate attr", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "a", Kind: value.KindInt}, {Name: "a", Kind: value.KindInt}}}
		}},
		{"unknown key", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "a", Kind: value.KindInt}}, Key: []string{"zz"}}
		}},
		{"bad indicator", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "a", Kind: value.KindInt,
				Indicators: []tag.Indicator{{Name: "x y"}}}}}
		}},
		{"duplicate indicator", func() *Schema {
			return &Schema{Name: "t", Attrs: []Attr{{Name: "a", Kind: value.KindInt,
				Indicators: []tag.Indicator{{Name: "x"}, {Name: "x"}}}}}
		}},
	}
	for _, tc := range cases {
		if err := tc.build().Validate(); err == nil {
			t.Errorf("%s: should fail", tc.name)
		}
	}
	if _, err := New("t", validAttrs(), "ghost"); err == nil {
		t.Error("New with bad key should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid schema")
		}
	}()
	MustNew("", nil)
}

func TestCloneIndependence(t *testing.T) {
	s := MustNew("t", validAttrs(), "id")
	c := s.Clone()
	c.Attrs[1].Indicators[0].Name = "mutated"
	c.Key[0] = "mutated"
	if s.Attrs[1].Indicators[0].Name != "source" {
		t.Error("Clone aliases indicators")
	}
	if s.Key[0] != "id" {
		t.Error("Clone aliases key")
	}
}

func TestString(t *testing.T) {
	s := MustNew("t", validAttrs(), "id")
	out := s.String()
	for _, want := range []string{"t(", "id int", "name string", "@[source]", "key(id)"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q: %s", want, out)
		}
	}
}
