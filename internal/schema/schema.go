// Package schema defines relation schemas for the quality-extended data
// model. A schema names its attributes, fixes their value kinds, declares a
// primary key, and — this is the quality extension from the paper — declares,
// per attribute, which quality indicators are required to be tagged on that
// attribute's cells (the paper's "data quality requirements": the indicators
// required to be tagged or otherwise documented for the data, §1.3).
//
// Schemas are produced in two ways: directly (QQL CREATE TABLE) or compiled
// from a dqm.QualitySchema at the end of the four-step methodology.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/tag"
	"repro/internal/value"
)

// Attr declares one attribute (column) of a relation.
type Attr struct {
	// Name is the attribute name, unique within the schema.
	Name string
	// Kind is the value kind of stored values.
	Kind value.Kind
	// Required forbids null values when true.
	Required bool
	// Indicators lists the quality indicators that must be tagged on
	// every cell of this attribute (e.g. creation_time, source). The
	// engine rejects inserts missing a required indicator unless the
	// table is opened in lenient mode.
	Indicators []tag.Indicator
	// Doc documents the attribute.
	Doc string
}

// IndicatorNamed returns the declared indicator with the given name.
func (a Attr) IndicatorNamed(name string) (tag.Indicator, bool) {
	for _, ind := range a.Indicators {
		if ind.Name == name {
			return ind, true
		}
	}
	return tag.Indicator{}, false
}

// Schema is the definition of a relation.
type Schema struct {
	// Name is the relation name.
	Name string
	// Attrs are the attributes in column order.
	Attrs []Attr
	// Key lists the attribute names forming the primary key. Empty means
	// no key (bag semantics).
	Key []string
	// Doc documents the relation.
	Doc string
}

// New builds a schema and validates it.
func New(name string, attrs []Attr, key ...string) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, Key: key}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New that panics on error; for fixtures and tests.
func MustNew(name string, attrs []Attr, key ...string) *Schema {
	s, err := New(name, attrs, key...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the schema for structural errors: duplicate or empty
// names, unknown key attributes, invalid indicator declarations.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: relation has empty name")
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("schema %s: no attributes", s.Name)
	}
	seen := make(map[string]bool, len(s.Attrs))
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema %s: attribute with empty name", s.Name)
		}
		if strings.ContainsAny(a.Name, " \t\n@.'\"") {
			return fmt.Errorf("schema %s: attribute name %q contains forbidden characters", s.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema %s: duplicate attribute %q", s.Name, a.Name)
		}
		seen[a.Name] = true
		indSeen := make(map[string]bool, len(a.Indicators))
		for _, ind := range a.Indicators {
			if err := ind.Validate(); err != nil {
				return fmt.Errorf("schema %s, attribute %s: %v", s.Name, a.Name, err)
			}
			if indSeen[ind.Name] {
				return fmt.Errorf("schema %s, attribute %s: duplicate indicator %q", s.Name, a.Name, ind.Name)
			}
			indSeen[ind.Name] = true
		}
	}
	for _, k := range s.Key {
		if !seen[k] {
			return fmt.Errorf("schema %s: key attribute %q not declared", s.Name, k)
		}
	}
	return nil
}

// ColIndex returns the column position of the named attribute, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Attr returns the attribute declaration by name.
func (s *Schema) Attr(name string) (Attr, bool) {
	i := s.ColIndex(name)
	if i < 0 {
		return Attr{}, false
	}
	return s.Attrs[i], true
}

// KeyIndexes returns the column positions of the key attributes.
func (s *Schema) KeyIndexes() []int {
	out := make([]int, len(s.Key))
	for i, k := range s.Key {
		out[i] = s.ColIndex(k)
	}
	return out
}

// AttrNames returns the attribute names in column order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Name: s.Name, Doc: s.Doc}
	out.Attrs = make([]Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		ca := a
		ca.Indicators = append([]tag.Indicator(nil), a.Indicators...)
		out.Attrs[i] = ca
	}
	out.Key = append([]string(nil), s.Key...)
	return out
}

// String renders a compact one-line description of the schema.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Kind.String())
		if len(a.Indicators) > 0 {
			names := make([]string, len(a.Indicators))
			for j, ind := range a.Indicators {
				names[j] = ind.Name
			}
			b.WriteString(" @[" + strings.Join(names, ",") + "]")
		}
	}
	b.WriteByte(')')
	if len(s.Key) > 0 {
		b.WriteString(" key(" + strings.Join(s.Key, ",") + ")")
	}
	return b.String()
}
